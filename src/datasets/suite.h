// SuiteSparse-like synthetic collection (paper Table 3, bottom; Figure 3).
//
// The paper evaluates 2,519 SuiteSparse matrices with NNZ in [1000, 89.3M],
// rows/cols in [24, 3M], and density in [8.75e-7, 1]. This sampler draws a
// deterministic collection spanning the same ranges (log-uniform in NNZ and
// density, mixed structure kinds) so Figure 3's throughput-vs-NNZ scatter
// can be regenerated at any collection size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/coo.h"

namespace serpens::datasets {

enum class SuiteKind { uniform, rmat, banded };

struct SuiteRecipe {
    std::string tag;   // "S0042-rmat" style label
    sparse::index_t n; // square dimension
    sparse::nnz_t nnz; // target non-zeros
    SuiteKind kind;
    std::uint64_t seed;
};

struct SuiteSpec {
    std::size_t count = 160;
    sparse::nnz_t min_nnz = 1'000;
    sparse::nnz_t max_nnz = 10'000'000;
    sparse::index_t max_dim = 2'500'000;
    std::uint64_t seed = 20220710;  // DAC'22 opened July 10
};

// Draw the collection recipes (cheap; no matrices are built yet).
std::vector<SuiteRecipe> sample_suite(const SuiteSpec& spec);

// Materialize one recipe.
sparse::CooMatrix realize(const SuiteRecipe& recipe);

} // namespace serpens::datasets
