// The paper's evaluation matrices (Table 3) as synthetic stand-ins.
//
// The twelve large matrices/graphs come from SNAP, OGB, and SuiteSparse,
// which are not available offline; each is replaced by a deterministic
// generator of the same structural family with matched row count and NNZ
// (see DESIGN.md §2). `realize` accepts a scale divisor so the bench suite
// can run the whole table at 1/16 scale in minutes while benches also print
// analytic full-size estimates.
//
// Paper-published Table 4 execution times (and Table 8 A24 throughputs) are
// carried alongside so every bench can print paper-vs-measured columns.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/coo.h"

namespace serpens::datasets {

using sparse::CooMatrix;
using sparse::index_t;
using sparse::nnz_t;

enum class MatrixKind {
    social_rmat,    // power-law social graph (soc_pokec)
    citation_rmat,  // flatter power-law (ogbl_ppa, ogbn_products)
    community,      // overlapping consecutive-id cliques + power-law hubs
                    // (googleplus ego networks, coPapersCiteseer clique
                    // expansion, hollywood movie cliques)
    fem_banded,     // FEM/stencil band structure (crankseg_2, ML_Laplace, ...)
    gene_dense,     // dense-ish uniform random (mouse_gene)
    power_block,    // dense blocks on a sparse skeleton (TSOPF_RS_b2383)
};

struct PaperTimes {
    double sextans_ms;    // NaN where the paper reports "-" (unsupported)
    double graphlily_ms;
    double serpens_a16_ms;
    double serpens_a24_gflops;  // Table 8
};

struct MatrixSpec {
    std::string id;    // "G1" ... "G12"
    std::string name;  // original matrix name
    index_t rows;      // vertices (square matrices)
    nnz_t nnz;         // edges / non-zeros
    MatrixKind kind;
    // Maximum row degree as a fraction of NNZ, measured on the real dataset
    // (0 = uncapped). R-MAT at reduced scale produces relatively far heavier
    // hubs than the graphs it stands in for; realize() redistributes the
    // excess so the stand-in's degree skew matches the original.
    double max_row_frac;
    // community kind only: mean clique size and background fraction.
    sparse::index_t clique;
    double background;
    PaperTimes paper;
};

// The twelve large matrices of Table 3 with the paper's published results.
const std::vector<MatrixSpec>& twelve_large();

// Build the synthetic stand-in at 1/scale_div size (scale_div = 1 for full).
// Deterministic in (spec.id, seed).
CooMatrix realize(const MatrixSpec& spec, unsigned scale_div,
                  std::uint64_t seed = 2022);

// Fold a matrix onto an n x n grid (index modulo), coalescing duplicates.
// Used to give R-MAT stand-ins exact non-power-of-two dimensions.
CooMatrix fold_square(const CooMatrix& m, index_t n);

// Redistribute the excess non-zeros of rows heavier than `cap` onto
// deterministic pseudo-random rows (columns unchanged). Keeps NNZ (up to
// coalescing) while bounding the degree skew.
CooMatrix cap_row_degree(const CooMatrix& m, nnz_t cap, std::uint64_t seed);

// Relocate random non-zeros into a few giant "hub" rows (columns unchanged),
// one hub per entry of `fracs` with degree ~ frac * nnz. Models the massive
// in-degree celebrities of ego-network crawls: a hub row's per-segment
// URAM-address bucket bounds the schedule at T * bucket slots, which is the
// mechanism that makes the real googleplus hard for Serpens (the one matrix
// where GraphLily wins in Table 4).
CooMatrix inject_hub_rows(const CooMatrix& m, std::span<const double> fracs,
                          std::uint64_t seed);

} // namespace serpens::datasets
