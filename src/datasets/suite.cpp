#include "datasets/suite.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sparse/generators.h"
#include "datasets/table3.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens::datasets {

using sparse::index_t;
using sparse::nnz_t;

std::vector<SuiteRecipe> sample_suite(const SuiteSpec& spec)
{
    SERPENS_CHECK(spec.count > 0, "collection must be non-empty");
    SERPENS_CHECK(spec.min_nnz >= 16 && spec.min_nnz < spec.max_nnz,
                  "invalid nnz range");
    Rng rng(spec.seed);
    std::vector<SuiteRecipe> recipes;
    recipes.reserve(spec.count);

    const double log_lo = std::log(static_cast<double>(spec.min_nnz));
    const double log_hi = std::log(static_cast<double>(spec.max_nnz));

    for (std::size_t i = 0; i < spec.count; ++i) {
        const double nnz_d = std::exp(log_lo + rng.next_double() * (log_hi - log_lo));
        const auto nnz = static_cast<nnz_t>(nnz_d);

        // Density log-uniform in [1e-5, 0.3], then n = sqrt(nnz / density),
        // clamped so the matrix is neither over-dense nor over-large.
        const double density =
            std::exp(std::log(1e-5) + rng.next_double() * (std::log(0.3) - std::log(1e-5)));
        double n_d = std::sqrt(nnz_d / density);
        n_d = std::clamp(n_d, std::ceil(std::sqrt(nnz_d / 0.5)),
                         static_cast<double>(spec.max_dim));
        const auto n = std::max<index_t>(24, static_cast<index_t>(n_d));

        const double kind_draw = rng.next_double();
        SuiteKind kind = SuiteKind::uniform;
        if (kind_draw > 0.5 && kind_draw <= 0.8)
            kind = SuiteKind::rmat;
        else if (kind_draw > 0.8)
            kind = SuiteKind::banded;

        const char* kind_name = kind == SuiteKind::uniform  ? "uni"
                                : kind == SuiteKind::rmat   ? "rmat"
                                                            : "band";
        std::string name = "S";
        name += std::to_string(i);
        name += '-';
        name += kind_name;
        recipes.push_back({std::move(name), n, nnz, kind, rng.next_u64()});
    }
    return recipes;
}

sparse::CooMatrix realize(const SuiteRecipe& r)
{
    switch (r.kind) {
    case SuiteKind::uniform:
        return sparse::make_uniform_random(r.n, r.n, std::min<nnz_t>(r.nnz,
                                           static_cast<nnz_t>(r.n) * r.n),
                                           r.seed);
    case SuiteKind::rmat: {
        const unsigned scale =
            std::max(1u, static_cast<unsigned>(
                             std::bit_width(static_cast<std::uint64_t>(r.n) - 1)));
        const nnz_t per_vertex =
            std::max<nnz_t>(1, ceil_div<nnz_t>(r.nnz, nnz_t{1} << scale));
        return fold_square(sparse::make_rmat(scale, per_vertex, r.seed), r.n);
    }
    case SuiteKind::banded: {
        const index_t band = std::clamp<index_t>(
            static_cast<index_t>(r.nnz / r.n), 1, r.n);
        return sparse::make_banded(r.n, band, r.seed);
    }
    }
    SERPENS_ASSERT(false, "unknown suite kind");
    return sparse::CooMatrix(1, 1);
}

} // namespace serpens::datasets
