#include "datasets/table3.h"

#include <bit>
#include <cmath>
#include <limits>

#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/check.h"
#include "util/rng.h"

namespace serpens::datasets {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

const std::vector<MatrixSpec>& twelve_large()
{
    // {id, name, rows, nnz, kind, max_row_frac,
    //  {sextans_ms, graphlily_ms, a16_ms, a24_gflops}}
    // max_row_frac = (max row degree) / NNZ measured on the real dataset;
    // G1 keeps its giant ego-network hubs — the one matrix where the paper's
    // Serpens loses to GraphLily.
    static const std::vector<MatrixSpec> specs = {
        {"G1", "googleplus", 108'000, 13'700'000, MatrixKind::community,
         4.5e-3, 96, 0.2, {3.06, 1.73, 1.87, 15.33}},
        {"G2", "crankseg_2", 63'800, 14'100'000, MatrixKind::fem_banded,
         0.0, 0, 0.0, {1.38, 1.47, 0.930, 36.05}},
        {"G3", "Si41Ge41H72", 186'000, 15'000'000, MatrixKind::fem_banded,
         0.0, 0, 0.0, {1.64, 1.85, 0.853, 45.07}},
        {"G4", "TSOPF_RS_b2383", 38'120, 16'200'000, MatrixKind::power_block,
         0.0, 0, 0.0, {1.36, 1.57, 0.730, 60.55}},
        {"G5", "ML_Laplace", 377'000, 27'600'000, MatrixKind::fem_banded,
         0.0, 0, 0.0, {2.73, 2.96, 1.37, 52.30}},
        {"G6", "mouse_gene", 45'100, 29'000'000, MatrixKind::gene_dense,
         0.0, 0, 0.0, {2.72, 2.80, 1.37, 57.96}},
        {"G7", "soc_pokec", 1'630'000, 30'600'000, MatrixKind::community,
         5.0e-4, 12, 0.5, {kNaN, 7.04, 4.52, 18.34}},
        {"G8", "coPapersCiteseer", 434'000, 21'100'000, MatrixKind::community,
         1.0e-4, 48, 0.1, {3.58, 3.63, 2.09, 36.47}},
        {"G9", "PFlow_742", 743'000, 37'100'000, MatrixKind::fem_banded,
         0.0, 0, 0.0, {kNaN, 4.52, 2.05, 46.86}},
        {"G10", "ogbl_ppa", 576'000, 42'500'000, MatrixKind::citation_rmat,
         2.0e-4, 0, 0.0, {kNaN, 4.59, 2.04, 56.11}},
        {"G11", "hollywood", 1'070'000, 113'000'000, MatrixKind::community,
         1.0e-4, 32, 0.3, {kNaN, 12.4, 6.20, 45.08}},
        {"G12", "ogbn_products", 2'450'000, 124'000'000, MatrixKind::citation_rmat,
         2.0e-4, 0, 0.0, {kNaN, 18.6, 6.32, 51.56}},
    };
    return specs;
}

CooMatrix fold_square(const CooMatrix& m, index_t n)
{
    SERPENS_CHECK(n > 0, "fold target must be positive");
    // When folding a power-of-two R-MAT domain onto n rows, first scramble
    // vertex ids with a bit-mixing bijection. R-MAT degree correlates with
    // the id's bit pattern (zero bits pick the heavy quadrant), so without
    // mixing, the high-degree vertices share low-bit residues and the
    // accelerator's `pair % P` mapping piles them onto one PE — a load
    // pathology the real graphs do not have. Multiplication alone is not
    // enough (it preserves trailing-zero structure); interleave xor-shifts,
    // each of which is bijective on the power-of-two domain.
    const index_t domain = m.rows();
    const bool pow2 = (domain & (domain - 1)) == 0;
    const index_t mask = domain - 1;
    const unsigned shift = std::max(1u, unsigned{std::bit_width(domain)} / 2);
    const auto scramble = [&](index_t v) {
        if (!pow2)
            return v;
        v = (v * 2654435761u) & mask;
        v ^= v >> shift;
        v = (v * 0x9E3779B1u) & mask;
        v ^= v >> shift;
        return v & mask;
    };

    CooMatrix folded(n, n);
    folded.reserve(m.nnz());
    for (const sparse::Triplet& t : m.elements())
        folded.add(scramble(t.row) % n, scramble(t.col) % n, t.val);
    folded.coalesce_duplicates();
    return folded;
}

CooMatrix cap_row_degree(const CooMatrix& m, nnz_t cap, std::uint64_t seed)
{
    SERPENS_CHECK(cap >= 1, "row-degree cap must be positive");
    std::vector<nnz_t> degree(m.rows(), 0);
    for (const sparse::Triplet& t : m.elements())
        ++degree[t.row];

    Rng rng(seed);
    CooMatrix capped(m.rows(), m.cols());
    capped.reserve(m.nnz());
    std::vector<nnz_t> kept(m.rows(), 0);
    for (const sparse::Triplet& t : m.elements()) {
        if (degree[t.row] <= cap || kept[t.row] < cap) {
            ++kept[t.row];
            capped.add(t.row, t.col, t.val);
        } else {
            // Excess mass moves to a pseudo-random row, like the many
            // medium-degree vertices of the real graph.
            capped.add(static_cast<index_t>(rng.next_below(m.rows())), t.col,
                       t.val);
        }
    }
    capped.coalesce_duplicates();
    return capped;
}

CooMatrix inject_hub_rows(const CooMatrix& m, std::span<const double> fracs,
                          std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<sparse::Triplet> elems = m.elements();
    for (double frac : fracs) {
        SERPENS_CHECK(frac > 0.0 && frac < 0.5, "hub fraction out of range");
        const auto hub = static_cast<index_t>(rng.next_below(m.rows()));
        const auto degree =
            static_cast<nnz_t>(frac * static_cast<double>(elems.size()));
        for (nnz_t k = 0; k < degree; ++k) {
            auto& e = elems[rng.next_below(elems.size())];
            e.row = hub;
        }
    }
    CooMatrix out = CooMatrix::from_triplets(m.rows(), m.cols(), std::move(elems));
    out.coalesce_duplicates();
    return out;
}

CooMatrix realize(const MatrixSpec& spec, unsigned scale_div, std::uint64_t seed)
{
    SERPENS_CHECK(scale_div >= 1, "scale divisor must be at least 1");
    const index_t rows = std::max<index_t>(spec.rows / scale_div, 64);
    // Dividing rows and nnz by the same factor keeps the average row degree
    // but multiplies density; clamp so heavy scaling of dense-ish matrices
    // (mouse_gene) cannot exceed the matrix area.
    const nnz_t area_cap = static_cast<nnz_t>(rows) * rows / 2;
    const nnz_t nnz =
        std::min(std::max<nnz_t>(spec.nnz / scale_div, 256), area_cap);
    const std::uint64_t mixed_seed =
        seed ^ std::hash<std::string>{}(spec.id);

    switch (spec.kind) {
    case MatrixKind::community: {
        const index_t cmin = std::max<index_t>(2, spec.clique / 2);
        const index_t cmax = std::min<index_t>(rows, spec.clique * 2);
        CooMatrix g = sparse::make_clustered(rows, nnz, cmin, cmax,
                                             spec.background, mixed_seed);
        if (spec.max_row_frac > 0.0) {
            // A small Zipf series of hubs topped by max_row_frac.
            const double fracs[] = {spec.max_row_frac, spec.max_row_frac / 2,
                                    spec.max_row_frac / 4};
            g = inject_hub_rows(g, fracs, mixed_seed ^ 0x4B1D);
        }
        return g;
    }
    case MatrixKind::social_rmat:
    case MatrixKind::citation_rmat: {
        const unsigned scale = std::bit_width(static_cast<std::uint64_t>(rows) - 1);
        const nnz_t per_vertex =
            std::max<nnz_t>(1, ceil_div<nnz_t>(nnz, nnz_t{1} << scale));
        // Citation-style graphs have flatter degree distributions.
        const bool flat = spec.kind == MatrixKind::citation_rmat;
        const double a = flat ? 0.45 : 0.57;
        const double bc = flat ? 0.22 : 0.19;
        CooMatrix g = sparse::make_rmat(scale, per_vertex, mixed_seed, {}, a,
                                        bc, bc);
        CooMatrix folded = fold_square(g, rows);
        if (spec.max_row_frac > 0.0) {
            const auto cap = std::max<nnz_t>(
                16, static_cast<nnz_t>(spec.max_row_frac *
                                       static_cast<double>(folded.nnz())));
            folded = cap_row_degree(folded, cap, mixed_seed ^ 0xCAB);
        }
        return folded;
    }
    case MatrixKind::fem_banded: {
        const index_t band =
            std::max<index_t>(1, static_cast<index_t>(nnz / rows));
        return sparse::make_banded(rows, std::min<index_t>(band, rows),
                                   mixed_seed);
    }
    case MatrixKind::gene_dense:
        return sparse::make_uniform_random(rows, rows, nnz, mixed_seed);
    case MatrixKind::power_block: {
        const index_t block = std::min<index_t>(16, rows);
        return sparse::make_block_random(rows, block, nnz, mixed_seed);
    }
    }
    SERPENS_ASSERT(false, "unknown matrix kind");
    return CooMatrix(1, 1);
}

} // namespace serpens::datasets
