#include "util/thread_pool.h"

#include <algorithm>

namespace serpens::util {

unsigned resolve_threads(unsigned requested)
{
    if (requested != 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned spawned = threads > 1 ? threads - 1 : 0;
    if (spawned > 0) {
        const std::lock_guard<std::mutex> lock(mu_);
        spawn_locked(spawned);
    }
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

unsigned ThreadPool::threads() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return static_cast<unsigned>(workers_.size()) + 1;
}

void ThreadPool::spawn_locked(unsigned extra)
{
    workers_.reserve(workers_.size() + extra);
    for (unsigned t = 0; t < extra; ++t) {
        // New workers start with the current generation so they never pick
        // up a job that was dispatched before they existed.
        const std::size_t id = workers_.size();
        workers_.emplace_back(
            [this, id, gen = generation_] { worker_loop(id, gen); });
    }
}

void ThreadPool::ensure_threads(unsigned threads)
{
    // gate_ keeps growth out of any in-flight parallel_for's active_
    // accounting; mu_ protects the worker list itself.
    const std::lock_guard<std::mutex> gate(gate_);
    const std::lock_guard<std::mutex> lock(mu_);
    if (threads > workers_.size() + 1)
        spawn_locked(threads - 1 - static_cast<unsigned>(workers_.size()));
}

void ThreadPool::worker_loop(std::size_t id, std::uint64_t seen)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock,
                           [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            // The calling thread occupies one of the `width` slots;
            // workers beyond the cap are not part of the job's done
            // accounting at all — they just note the generation and go
            // back to sleep, so a width-capped job on a wide pool pays
            // for `width` workers, not the pool's historical maximum.
            if (id + 1 >= job_width_)
                continue;
        }
        run_items();
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (--active_ == 0)
                cv_done_.notify_one();
        }
    }
}

void ThreadPool::run_items()
{
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_count_)
            return;
        try {
            (*job_)(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
            // Abandon the remaining items; in-flight ones still finish.
            next_.store(job_count_, std::memory_order_relaxed);
        }
    }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              unsigned width)
{
    // One job at a time: gate_ serializes whole calls so the pool is safe
    // to share between independent pipelines (batched serving, tests).
    const std::lock_guard<std::mutex> gate(gate_);
    const std::size_t pool_width = workers_.size() + 1;
    const std::size_t w =
        width == 0 ? pool_width : std::min<std::size_t>(width, pool_width);
    if (workers_.empty() || count <= 1 || w <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        job_count_ = count;
        job_width_ = w;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        active_ = w - 1;  // participating workers; the caller is slot w-1
        ++generation_;
    }
    cv_start_.notify_all();
    run_items();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    if (error_)
        std::rethrow_exception(error_);
}

ThreadPool& shared_pool()
{
    static ThreadPool pool(1);
    return pool;
}

void shared_parallel_for(unsigned threads, std::size_t count,
                         const std::function<void(std::size_t)>& fn)
{
    const unsigned t = resolve_threads(threads);
    if (t <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool& pool = shared_pool();
    pool.ensure_threads(t);
    pool.parallel_for(count, fn, t);
}

} // namespace serpens::util
