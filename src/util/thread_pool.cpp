#include "util/thread_pool.h"

#include <algorithm>

namespace serpens::util {

unsigned resolve_threads(unsigned requested)
{
    if (requested != 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned spawned = threads > 1 ? threads - 1 : 0;
    workers_.reserve(spawned);
    for (unsigned t = 0; t < spawned; ++t)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void ThreadPool::worker_loop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock,
                           [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        run_items();
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (--active_ == 0)
                cv_done_.notify_one();
        }
    }
}

void ThreadPool::run_items()
{
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_count_)
            return;
        try {
            (*job_)(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
            // Abandon the remaining items; in-flight ones still finish.
            next_.store(job_count_, std::memory_order_relaxed);
        }
    }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn)
{
    if (workers_.empty() || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        job_count_ = count;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        active_ = workers_.size();
        ++generation_;
    }
    cv_start_.notify_all();
    run_items();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    if (error_)
        std::rethrow_exception(error_);
}

} // namespace serpens::util
