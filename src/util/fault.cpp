#include "util/fault.h"

namespace serpens::util {

namespace detail {
std::atomic<FaultInjector*> g_fault_injector{nullptr};
}

void FaultInjector::arm(const std::string& site, double probability,
                        double value, std::uint64_t max_fires)
{
    const std::lock_guard<std::mutex> lock(mu_);
    Site& s = sites_[site];
    s.probability = probability;
    s.value = value;
    s.max_fires = max_fires;
}

void FaultInjector::disarm(const std::string& site)
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it != sites_.end())
        it->second.probability = 0.0;  // keep the counters readable
}

bool FaultInjector::should_fire(const std::string& site)
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end())
        return false;
    Site& s = it->second;
    ++s.probes;
    if (s.probability <= 0.0)
        return false;
    if (s.max_fires != 0 && s.fired >= s.max_fires)
        return false;
    // One RNG draw per armed probe, always taken, so the decision sequence
    // of a site depends only on the seed and the probe order.
    if (rng_.next_double() >= s.probability)
        return false;
    ++s.fired;
    return true;
}

double FaultInjector::value(const std::string& site) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0.0 : it->second.value;
}

std::uint64_t FaultInjector::fired(const std::string& site) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
}

std::uint64_t FaultInjector::probes(const std::string& site) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.probes;
}

std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
FaultInjector::site_counts() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> out;
    for (const auto& [name, site] : sites_)
        out[name] = {site.probes, site.fired};
    return out;
}

void set_fault_injector(FaultInjector* injector)
{
    detail::g_fault_injector.store(injector, std::memory_order_release);
}

FaultInjector* fault_injector()
{
    return detail::g_fault_injector.load(std::memory_order_acquire);
}

} // namespace serpens::util
