#include "util/fs.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace serpens::util {

void atomic_write_file(const std::string& path, std::string_view contents)
{
    // The temp name carries the pid so two processes racing on the same
    // destination never clobber each other's staging file; last rename
    // wins and both leave a complete document behind.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("atomic_write_file: cannot create " +
                                     tmp);
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw std::runtime_error("atomic_write_file: write failed: " +
                                     tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("atomic_write_file: rename to " + path +
                                 " failed");
    }
}

} // namespace serpens::util
