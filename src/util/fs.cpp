#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace serpens::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what)
{
    throw std::runtime_error("atomic_write_file: " + what + ": " +
                             std::strerror(errno));
}

} // namespace

void fsync_parent_dir(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? "."
                                : (slash == 0 ? "/" : path.substr(0, slash));
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        throw std::runtime_error("fsync_parent_dir: cannot open " + dir +
                                 ": " + std::strerror(errno));
    const int rc = ::fsync(fd);
    const int saved = errno;
    ::close(fd);
    // Some filesystems refuse fsync on a directory fd; the rename is then
    // as durable as that filesystem can make it.
    if (rc != 0 && saved != EINVAL && saved != ENOTSUP)
        throw std::runtime_error("fsync_parent_dir: fsync " + dir + ": " +
                                 std::strerror(saved));
}

void atomic_write_file(const std::string& path, std::string_view contents)
{
    // The temp name carries the pid so two processes racing on the same
    // destination never clobber each other's staging file; last rename
    // wins and both leave a complete document behind.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw_errno("cannot create " + tmp);

    const char* data = contents.data();
    std::size_t left = contents.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::remove(tmp.c_str());
            throw_errno("write failed: " + tmp);
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    // Flush the DATA before the rename publishes the name: a crash after
    // rename must never reveal a complete-looking file of stale blocks.
    if (::fsync(fd) != 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        throw_errno("fsync failed: " + tmp);
    }
    if (::close(fd) != 0) {
        std::remove(tmp.c_str());
        throw_errno("close failed: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("atomic_write_file: rename to " + path +
                                 " failed");
    }
    // Commit the rename itself (see fs.h: the step that makes the
    // publication survive power loss, not just process death).
    fsync_parent_dir(path);
}

} // namespace serpens::util
