// Small filesystem helpers for the tools.
//
// atomic_write_file publishes a file's full contents in one step: the
// bytes land in a hidden sibling temp file which is then rename(2)d over
// the destination. POSIX rename within a directory is atomic, so a
// concurrent reader sees either the previous file (or none) or the
// complete new contents — never a partial write. serpens_served uses this
// for --port-file, where CI polls the file while the daemon starts.
#pragma once

#include <string>
#include <string_view>

namespace serpens::util {

// Write `contents` to `path` atomically (temp + rename). Throws
// std::runtime_error when the temp file cannot be created, written, or
// renamed; on failure the destination is untouched and the temp file is
// removed best-effort.
void atomic_write_file(const std::string& path, std::string_view contents);

} // namespace serpens::util
