// Small filesystem helpers for the tools and the serving durability layer.
//
// atomic_write_file publishes a file's full contents in one step AND makes
// the publication crash-durable:
//
//   1. the bytes land in a hidden sibling temp file,
//   2. the temp file is fsync(2)ed — its contents reach stable storage,
//   3. rename(2) moves it over the destination (atomic within a
//      directory, so a concurrent reader sees either the previous file,
//      none, or the complete new contents — never a partial write),
//   4. the PARENT DIRECTORY is fsynced, committing the rename itself.
//
// Step 4 is the one naive implementations skip: without it a power loss
// after rename can roll the directory entry back to the old file (or to
// nothing) even though the data blocks were flushed. With it, once
// atomic_write_file returns, the new contents survive power loss. The
// serving registry's manifest/image publications and serpens_served's
// --port-file both lean on this guarantee.
#pragma once

#include <string>
#include <string_view>

namespace serpens::util {

// Write `contents` to `path` atomically and durably (temp + fsync +
// rename + parent-dir fsync). Throws std::runtime_error when the temp
// file cannot be created, written, fsynced, or renamed; on failure the
// destination is untouched and the temp file is removed best-effort.
void atomic_write_file(const std::string& path, std::string_view contents);

// fsync the directory containing `path`, committing directory-entry
// mutations (rename, unlink, creat) made under it. Filesystems that do
// not support directory fsync (EINVAL/ENOTSUP) are tolerated silently;
// any other failure throws std::runtime_error.
void fsync_parent_dir(const std::string& path);

} // namespace serpens::util
