// Deterministic random number generation for generators, tests, and benches.
//
// SplitMix64 seeds xoshiro256**; both are tiny, fast, and fully reproducible
// across platforms — every matrix in the evaluation is a pure function of its
// seed, so benches and tests are repeatable bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace serpens {

// SplitMix64: used to expand a single user seed into generator state.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

// xoshiro256**: the workhorse generator.
class Rng {
public:
    explicit Rng(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto& s : state_)
            s = sm.next();
    }

    std::uint64_t next_u64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
    std::uint64_t next_below(std::uint64_t bound)
    {
        SERPENS_CHECK(bound > 0, "next_below requires a positive bound");
        return mulhi64(next_u64(), bound);
    }

    // Uniform double in [0, 1).
    double next_double()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    // Uniform float in [lo, hi).
    float next_float(float lo, float hi)
    {
        return lo + static_cast<float>(next_double()) * (hi - lo);
    }

    // Small integer-valued float in [1, n]; sums of these are exact in FP32
    // (below 2^24), which lets tests assert bitwise equality independent of
    // accumulation order.
    float next_exact_float(int n)
    {
        SERPENS_CHECK(n >= 1, "next_exact_float requires n >= 1");
        return static_cast<float>(1 + next_below(static_cast<std::uint64_t>(n)));
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    // High 64 bits of a 64x64 product. The portable 32-bit-halves path keeps
    // the value stream identical on compilers without __int128 (MSVC), so
    // matrices stay a pure function of their seed on every platform.
    static std::uint64_t mulhi64(std::uint64_t a, std::uint64_t b)
    {
#if defined(__SIZEOF_INT128__)
        __extension__ typedef unsigned __int128 uint128;
        return static_cast<std::uint64_t>((static_cast<uint128>(a) * b) >> 64);
#else
        const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
        const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
        const std::uint64_t mid = a_hi * b_lo + ((a_lo * b_lo) >> 32) +
                                  ((a_lo * b_hi) & 0xffffffffULL);
        return a_hi * b_hi + ((a_lo * b_hi) >> 32) + (mid >> 32);
#endif
    }

    std::uint64_t state_[4];
};

} // namespace serpens
