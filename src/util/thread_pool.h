// A small thread pool shared by the host-side stages.
//
// Four stages parallelize over naturally disjoint work: the parser over
// newline-aligned file chunks (sparse/matrix_market_fast.cpp), the encoder
// over HBM channels (encode/image.cpp), and the simulator over channel
// streams in both the packed and the decoded/batched engines
// (sim/simulator.cpp). This pool provides the one primitive they all need:
// a blocking parallel_for over an index range. Work items are claimed from
// an atomic counter, so the assignment of items to workers is
// nondeterministic — callers must ensure (as all stages do) that each item
// writes only its own outputs, which keeps results byte-identical for every
// thread count.
//
// Iterative workloads (PageRank, multi-source BFS, batched serving) issue
// thousands of parallel_for calls on one process, so spawning and joining
// threads per call is real overhead. `shared_pool()` returns one lazily
// constructed process-wide pool that grows to the widest width ever
// requested; the stages dispatch through it with a per-call `width` cap
// instead of building private pools.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace serpens::util {

// Resolve a user-facing thread-count option: 0 means one worker per
// hardware thread, anything else is taken literally.
unsigned resolve_threads(unsigned requested);

class ThreadPool {
public:
    // A pool of `threads` total workers, including the thread that calls
    // parallel_for; `threads <= 1` spawns nothing and runs serially.
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned threads() const;

    // Grow the pool so it holds at least `threads` total workers (including
    // the calling thread). Never shrinks. Safe to call concurrently with
    // parallel_for from other threads.
    void ensure_threads(unsigned threads);

    // Run fn(i) for every i in [0, count), distributing items over the pool
    // plus the calling thread; blocks until all items complete. At most
    // `width` workers (counting the caller) claim items; 0 means the whole
    // pool. If any item throws, the first exception is rethrown here
    // (remaining items are abandoned). Concurrent parallel_for calls from
    // different threads are serialized against each other.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& fn,
                      unsigned width = 0);

private:
    void worker_loop(std::size_t id, std::uint64_t start_generation);
    void run_items();
    void spawn_locked(unsigned extra);

    std::vector<std::thread> workers_;
    std::mutex gate_;                    // serializes whole parallel_for calls
    mutable std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;       // bumped per parallel_for call
    std::size_t active_ = 0;             // workers still on the current job
    std::size_t job_width_ = 0;          // workers allowed to claim items
    const std::function<void(std::size_t)>* job_ = nullptr;
    std::size_t job_count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::exception_ptr error_;
};

// The process-wide pool. Constructed on first use, grows on demand to the
// widest `ensure_threads` request, and lives until process exit. Stages
// that accept a `threads` knob resolve it and pass it as `width`, so a
// knob of 1 costs nothing (the caller runs items inline) and any other
// value reuses the same long-lived workers instead of spawn/join per call.
ThreadPool& shared_pool();

// Convenience used by the pipeline stages: run fn over [0, count) with
// `threads` resolved workers from the shared pool. threads <= 1 (or
// count <= 1) runs inline without touching the pool.
void shared_parallel_for(unsigned threads, std::size_t count,
                         const std::function<void(std::size_t)>& fn);

} // namespace serpens::util
