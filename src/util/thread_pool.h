// A small fixed-size thread pool shared by the host-side stages.
//
// Three stages parallelize over naturally disjoint work: the parser over
// newline-aligned file chunks (sparse/matrix_market_fast.cpp), the encoder
// over HBM channels (encode/image.cpp), and the simulator over channel
// streams (sim/simulator.cpp). This pool provides the one primitive they
// all need: a blocking parallel_for over an index range. Work items are
// claimed from an atomic counter, so the assignment of items to workers is
// nondeterministic — callers must ensure (as all three stages do) that each
// item writes only its own outputs, which keeps results byte-identical for
// every thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace serpens::util {

// Resolve a user-facing thread-count option: 0 means one worker per
// hardware thread, anything else is taken literally.
unsigned resolve_threads(unsigned requested);

class ThreadPool {
public:
    // A pool of `threads` total workers, including the thread that calls
    // parallel_for; `threads <= 1` spawns nothing and runs serially.
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

    // Run fn(i) for every i in [0, count), distributing items over the pool
    // plus the calling thread; blocks until all items complete. If any item
    // throws, the first exception is rethrown here (remaining items are
    // abandoned). Not reentrant: one parallel_for at a time.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();
    void run_items();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;       // bumped per parallel_for call
    std::size_t active_ = 0;             // workers still on the current job
    const std::function<void(std::size_t)>* job_ = nullptr;
    std::size_t job_count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::exception_ptr error_;
};

} // namespace serpens::util
