// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// checks on serialized artifacts — the image format's per-section
// checksums are this CRC.
//
// The implementation is the classic byte-at-a-time table walk with a
// constexpr-built table; the runtime cost is one table lookup per byte, so
// integrity verification never becomes the slow part of loading an image.
//
// crc32() is incremental: feed sections through repeated calls by passing
// the previous return value as `seed`. The empty-input CRC is 0, and the
// function matches zlib's crc32() bit-for-bit, so externally produced
// checksums (python zlib.crc32, /usr/bin/crc32) validate our files.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace serpens::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

} // namespace detail

// CRC-32 of `n` bytes at `data`, continuing from `seed` (the CRC of the
// bytes already consumed; 0 to start).
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace serpens::util
