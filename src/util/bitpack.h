// Bit-field packing helpers used by the 64-bit sparse-element encoding.
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace serpens {

// Extract `width` bits starting at bit `lo` from `word`.
constexpr std::uint32_t extract_bits(std::uint32_t word, unsigned lo, unsigned width)
{
    return (word >> lo) & ((width == 32) ? 0xffffffffu : ((1u << width) - 1u));
}

// Insert `value` (must fit in `width` bits) into `word` at bit `lo`.
constexpr std::uint32_t insert_bits(std::uint32_t word, unsigned lo, unsigned width,
                                    std::uint32_t value)
{
    const std::uint32_t mask = (width == 32) ? 0xffffffffu : ((1u << width) - 1u);
    return (word & ~(mask << lo)) | ((value & mask) << lo);
}

// Value fits in `width` bits?
constexpr bool fits_bits(std::uint64_t value, unsigned width)
{
    return width >= 64 || value < (1ULL << width);
}

// Bit-exact float <-> u32 conversions (the hardware stores raw IEEE-754 bits).
inline std::uint32_t float_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
inline float bits_float(std::uint32_t u) { return std::bit_cast<float>(u); }

// Ceiling division for unsigned quantities.
template <typename T>
constexpr T ceil_div(T a, T b)
{
    SERPENS_ASSERT(b > 0, "ceil_div by zero");
    return (a + b - 1) / b;
}

} // namespace serpens
