// Checked invariants and argument validation for the Serpens library.
//
// Two failure categories, per the library's error-handling policy:
//  - SERPENS_CHECK / check_arg: caller-visible contract violations -> throw.
//  - SERPENS_ASSERT: internal invariants -> throw CheckError (logic_error);
//    these indicate a library bug, never bad user input.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace serpens {

// Thrown when an internal invariant of the library is violated (a bug).
class CheckError : public std::logic_error {
public:
    explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

// Thrown when a matrix/vector exceeds the configured accelerator capacity.
class CapacityError : public std::invalid_argument {
public:
    explicit CapacityError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failed(const char* kind, const char* expr,
                                            const char* file, int line,
                                            const std::string& msg)
{
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty())
        os << " — " << msg;
    if (std::string(kind) == "argument check")
        throw std::invalid_argument(os.str());
    throw CheckError(os.str());
}

} // namespace detail

// Validate a user-supplied argument; throws std::invalid_argument.
#define SERPENS_CHECK(cond, msg)                                                      \
    do {                                                                              \
        if (!(cond))                                                                  \
            ::serpens::detail::throw_check_failed("argument check", #cond, __FILE__,  \
                                                  __LINE__, (msg));                   \
    } while (false)

// Assert an internal invariant; throws serpens::CheckError.
#define SERPENS_ASSERT(cond, msg)                                                     \
    do {                                                                              \
        if (!(cond))                                                                  \
            ::serpens::detail::throw_check_failed("internal invariant", #cond,        \
                                                  __FILE__, __LINE__, (msg));         \
    } while (false)

} // namespace serpens
