// Deterministic fault injection for the serving stack's chaos tests.
//
// A FaultInjector is a seeded registry of named fault sites. Production
// code probes a site by name at the exact point where a real fault would
// strike; the injector decides — from its own RNG stream, so a given seed
// replays the same fault pattern — whether the fault fires this time:
//
//   util::FaultInjector chaos(42);
//   chaos.arm("net.frame.drop", /*probability=*/0.05);
//   chaos.arm("net.frame.delay", 0.10, /*value=*/2.0);   // 2 ms stall
//   util::set_fault_injector(&chaos);
//   ... hammer the daemon ...
//   util::set_fault_injector(nullptr);
//   EXPECT_GT(chaos.fired("net.frame.drop"), 0u);
//
// The probes compiled into net::framing and serve::Server go through the
// inline helpers at the bottom: with no injector installed (the production
// state, and every test that does not opt in) a probe is one relaxed
// atomic load and a null test — no lock, no RNG, no string.
//
// Sites are plain strings so the harness and the probe sites need no
// shared enum; arming a site nobody probes is simply inert. The documented
// sites are:
//
//   net.frame.delay         stall value() ms before sending a frame
//   net.frame.drop          kill the connection instead of sending
//   net.frame.corrupt       send a poisoned length prefix, then kill
//   serve.queue_full        force admission to refuse (QueueFullError)
//   serve.evict_mid_flight  evict the resolved matrix right after submit
//                           pins it (the next request misses)
//
// Thread-safe: probes may arrive from any connection or dispatcher thread.
// One mutex serializes the RNG and the counters — fault injection is a
// test-only regime, never on a measured path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "util/rng.h"

namespace serpens::util {

class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

    // Arm `site`: each probe fires with `probability`. `value` rides along
    // for sites that need a magnitude (delay ms). max_fires > 0 caps the
    // total number of firings (0 = unlimited).
    void arm(const std::string& site, double probability, double value = 0.0,
             std::uint64_t max_fires = 0);
    void disarm(const std::string& site);

    // Probe `site`: true when the armed fault fires now. Counts the probe
    // either way.
    bool should_fire(const std::string& site);

    // The armed value for `site` (0.0 when not armed).
    double value(const std::string& site) const;

    std::uint64_t fired(const std::string& site) const;
    std::uint64_t probes(const std::string& site) const;

    // Every site this injector has seen (armed or probed), with its
    // (probes, fired) counts — for metrics export.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
    site_counts() const;

private:
    struct Site {
        double probability = 0.0;
        double value = 0.0;
        std::uint64_t max_fires = 0;
        std::uint64_t fired = 0;
        std::uint64_t probes = 0;
    };

    mutable std::mutex mu_;
    Rng rng_;
    std::map<std::string, Site> sites_;
};

// Install/clear the process-global injector the probe sites consult. The
// caller keeps ownership and must clear it (or outlive every probing
// thread) before destroying the injector.
void set_fault_injector(FaultInjector* injector);
FaultInjector* fault_injector();

namespace detail {
extern std::atomic<FaultInjector*> g_fault_injector;
}

// The probe the instrumented sites call: free when no injector is
// installed.
inline bool fault_fires(const char* site)
{
    FaultInjector* f =
        detail::g_fault_injector.load(std::memory_order_acquire);
    return f != nullptr && f->should_fire(site);
}

inline double fault_value(const char* site)
{
    FaultInjector* f =
        detail::g_fault_injector.load(std::memory_order_acquire);
    return f != nullptr ? f->value(site) : 0.0;
}

} // namespace serpens::util
