#include "net/protocol.h"

namespace serpens::net {

std::vector<std::uint8_t> encode_request(RequestType type, WireWriter body)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(type));
    std::vector<std::uint8_t> frame = w.take();
    std::vector<std::uint8_t> tail = body.take();
    frame.insert(frame.end(), tail.begin(), tail.end());
    return frame;
}

RequestType decode_request_type(WireReader& r)
{
    const std::uint8_t raw = r.u8();
    if (raw < static_cast<std::uint8_t>(RequestType::kPing) ||
        raw > static_cast<std::uint8_t>(RequestType::kMetrics))
        throw ProtocolError("unknown request type " + std::to_string(raw));
    return static_cast<RequestType>(raw);
}

std::vector<std::uint8_t> encode_admit(const AdmitRequest& req)
{
    WireWriter w;
    w.str(req.name);
    w.u32(req.rows);
    w.u32(req.cols);
    w.u32_array(req.row_idx);
    w.u32_array(req.col_idx);
    w.f32_array(req.values);
    return encode_request(RequestType::kAdmit, std::move(w));
}

AdmitRequest decode_admit(WireReader& r)
{
    AdmitRequest req;
    req.name = r.str();
    req.rows = r.u32();
    req.cols = r.u32();
    req.row_idx = r.u32_array();
    req.col_idx = r.u32_array();
    req.values = r.f32_array();
    r.require_done();
    return req;
}

sparse::CooMatrix admit_to_coo(const AdmitRequest& req)
{
    if (req.row_idx.size() != req.values.size() ||
        req.col_idx.size() != req.values.size())
        throw ProtocolError("admit: triplet arrays disagree on length");
    std::vector<sparse::Triplet> triplets;
    triplets.reserve(req.values.size());
    for (std::size_t i = 0; i < req.values.size(); ++i)
        triplets.push_back({req.row_idx[i], req.col_idx[i], req.values[i]});
    return sparse::CooMatrix::from_triplets(req.rows, req.cols,
                                            std::move(triplets));
}

std::vector<std::uint8_t> encode_spmv(const SpmvRequest& req)
{
    WireWriter w;
    w.str(req.name);
    w.f32_array(req.x);
    w.f32_array(req.y);
    w.f32(req.alpha);
    w.f32(req.beta);
    w.f64(req.deadline_ms);
    if (req.trace_id != 0)
        w.u64(req.trace_id);
    return encode_request(RequestType::kSpmv, std::move(w));
}

SpmvRequest decode_spmv(WireReader& r)
{
    SpmvRequest req;
    req.name = r.str();
    req.x = r.f32_array();
    req.y = r.f32_array();
    req.alpha = r.f32();
    req.beta = r.f32();
    req.deadline_ms = r.f64();
    // Optional trailing trace id: absent from old (or untraced) clients.
    if (r.remaining() >= sizeof(std::uint64_t))
        req.trace_id = r.u64();
    r.require_done();
    return req;
}

std::vector<std::uint8_t> encode_evict(const std::string& name)
{
    WireWriter w;
    w.str(name);
    return encode_request(RequestType::kEvict, std::move(w));
}

std::string decode_evict(WireReader& r)
{
    std::string name = r.str();
    r.require_done();
    return name;
}

std::vector<std::uint8_t> encode_set_batching(const SetBatchingRequest& req)
{
    WireWriter w;
    w.u32(req.max_batch);
    w.f64(req.slo_ms);
    w.f64(req.batch_wait_ms);
    w.u64(req.max_queue_depth);
    return encode_request(RequestType::kSetBatching, std::move(w));
}

SetBatchingRequest decode_set_batching(WireReader& r)
{
    SetBatchingRequest req;
    req.max_batch = r.u32();
    req.slo_ms = r.f64();
    req.batch_wait_ms = r.f64();
    req.max_queue_depth = r.u64();
    r.require_done();
    return req;
}

std::vector<std::uint8_t> encode_ok(WireWriter body)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(Status::kOk));
    std::vector<std::uint8_t> frame = w.take();
    std::vector<std::uint8_t> tail = body.take();
    frame.insert(frame.end(), tail.begin(), tail.end());
    return frame;
}

std::vector<std::uint8_t> encode_error(Status status,
                                       const std::string& message)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(status));
    w.str(message);
    return w.take();
}

WireReader open_reply(const std::vector<std::uint8_t>& frame)
{
    WireReader r(frame);
    const std::uint8_t raw = r.u8();
    switch (static_cast<Status>(raw)) {
    case Status::kOk:
        return r;
    case Status::kOverloaded:
        throw OverloadedError(r.str());
    case Status::kDeadlineExceeded:
        throw DeadlineExceededError(r.str());
    case Status::kError:
        throw RemoteError(r.str());
    }
    throw ProtocolError("unknown response status " + std::to_string(raw));
}

void encode_spmv_reply(WireWriter& w, const serve::SpmvResult& result)
{
    w.f32_array(result.run.y);
    w.f64(result.run.time_ms);
    w.f64(result.queue_ms);
    w.f64(result.service_ms);
    w.f64(result.device_batch_ms);
    w.f64(result.device_amortized_ms);
    w.u32(result.batch_width);
    w.u64(result.sequence);
    w.u64(result.run.cycles.x_load_cycles);
    w.u64(result.run.cycles.compute_cycles);
    w.u64(result.run.cycles.y_phase_cycles);
    w.u64(result.run.cycles.fill_cycles);
    w.u64(result.run.cycles.total_slots);
    w.u64(result.run.cycles.padding_slots);
}

SpmvReply decode_spmv_reply(WireReader& r)
{
    SpmvReply reply;
    reply.y = r.f32_array();
    reply.time_ms = r.f64();
    reply.queue_ms = r.f64();
    reply.service_ms = r.f64();
    reply.device_batch_ms = r.f64();
    reply.device_amortized_ms = r.f64();
    reply.batch_width = r.u32();
    reply.sequence = r.u64();
    reply.x_load_cycles = r.u64();
    reply.compute_cycles = r.u64();
    reply.y_phase_cycles = r.u64();
    reply.fill_cycles = r.u64();
    reply.total_slots = r.u64();
    reply.padding_slots = r.u64();
    r.require_done();
    return reply;
}

} // namespace serpens::net
