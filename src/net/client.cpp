#include "net/client.h"

namespace serpens::net {

Client::Client(const std::string& host, std::uint16_t port, int timeout_ms)
    : sock_(connect_tcp(host, port, timeout_ms))
{
}

WireReader Client::roundtrip(const std::vector<std::uint8_t>& frame)
{
    write_frame(sock_, frame);
    std::optional<std::vector<std::uint8_t>> reply = read_frame(sock_);
    if (!reply)
        throw NetError("daemon closed the connection");
    last_reply_ = std::move(*reply);
    return open_reply(last_reply_);
}

void Client::ping()
{
    WireReader r = roundtrip(encode_request(RequestType::kPing));
    r.require_done();
}

void Client::admit(const std::string& name, const sparse::CooMatrix& m)
{
    AdmitRequest req;
    req.name = name;
    req.rows = m.rows();
    req.cols = m.cols();
    req.row_idx.reserve(m.nnz());
    req.col_idx.reserve(m.nnz());
    req.values.reserve(m.nnz());
    for (const sparse::Triplet& t : m.elements()) {
        req.row_idx.push_back(t.row);
        req.col_idx.push_back(t.col);
        req.values.push_back(t.val);
    }
    WireReader r = roundtrip(encode_admit(req));
    r.require_done();
}

SpmvReply Client::spmv(const std::string& name, const std::vector<float>& x,
                       const std::vector<float>& y, float alpha, float beta,
                       double deadline_ms, std::uint64_t trace_id)
{
    SpmvRequest req;
    req.name = name;
    req.x = x;
    req.y = y;
    req.alpha = alpha;
    req.beta = beta;
    req.deadline_ms = deadline_ms;
    req.trace_id = trace_id;
    WireReader r = roundtrip(encode_spmv(req));
    return decode_spmv_reply(r);
}

std::string Client::stats_json()
{
    WireReader r = roundtrip(encode_request(RequestType::kStats));
    std::string json = r.str();
    r.require_done();
    return json;
}

std::string Client::metrics_text()
{
    WireReader r = roundtrip(encode_request(RequestType::kMetrics));
    std::string text = r.str();
    r.require_done();
    return text;
}

void Client::set_batching(const SetBatchingRequest& req)
{
    WireReader r = roundtrip(encode_set_batching(req));
    r.require_done();
}

bool Client::evict(const std::string& name)
{
    WireReader r = roundtrip(encode_evict(name));
    const bool present = r.u8() != 0;
    r.require_done();
    return present;
}

void Client::shutdown_daemon()
{
    WireReader r = roundtrip(encode_request(RequestType::kShutdown));
    r.require_done();
}

} // namespace serpens::net
