// Message layer of the serving protocol: what travels inside each frame.
//
// Request frame:   u8 RequestType, then the request body.
// Response frame:  u8 Status, then the reply body (kOk) or a u32-prefixed
//                  error message (kError / kOverloaded /
//                  kDeadlineExceeded).
//
// The SpMV reply deliberately carries the full serving telemetry AND the
// six CycleStats accounting fields of the device model, so a network
// client can run the exact same bit-level replay verification as an
// in-process caller — the serving layer's differential contract does not
// weaken across the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/server.h"
#include "sparse/coo.h"

namespace serpens::net {

enum class RequestType : std::uint8_t {
    kPing = 1,         // liveness probe, empty body both ways
    kAdmit = 2,        // AdmitRequest -> empty
    kSpmv = 3,         // SpmvRequest -> SpmvReply
    kStats = 4,        // empty -> u32-prefixed stats JSON document
    kSetBatching = 5,  // SetBatchingRequest -> empty
    kEvict = 6,        // u32-prefixed name -> u8 (1 = was resident)
    kShutdown = 7,     // empty -> empty; daemon's wait() returns after
    kMetrics = 8,      // empty -> u32-prefixed Prometheus text exposition
};

enum class Status : std::uint8_t {
    kOk = 0,
    kError = 1,       // request executed badly: message explains
    kOverloaded = 2,  // admission refused at max_queue_depth; retryable
    kDeadlineExceeded = 3,  // shed: deadline_ms expired before its batch
};

struct AdmitRequest {
    std::string name;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    // Parallel triplet arrays (same length).
    std::vector<std::uint32_t> row_idx;
    std::vector<std::uint32_t> col_idx;
    std::vector<float> values;
};

struct SpmvRequest {
    std::string name;
    std::vector<float> x;
    std::vector<float> y;
    float alpha = 1.0f;
    float beta = 0.0f;
    // Latency budget in ms from server-side admission (0 = none). A
    // request still queued when the budget runs out is shed with
    // DEADLINE_EXCEEDED instead of burning a batch slot.
    double deadline_ms = 0.0;
    // Distributed-tracing id stitching client and daemon spans (0 = not
    // traced). Encoded as an optional trailing u64 so old peers interop:
    // an untraced (or old) client omits the field and an old daemon's
    // strict decode still passes; decode treats an absent tail as id 0.
    std::uint64_t trace_id = 0;
};

// Everything serve::SpmvResult reports, flattened for the wire.
struct SpmvReply {
    std::vector<float> y;
    double time_ms = 0.0;  // modeled single-SpMV device time
    double queue_ms = 0.0;
    double service_ms = 0.0;
    double device_batch_ms = 0.0;
    double device_amortized_ms = 0.0;
    std::uint32_t batch_width = 1;
    std::uint64_t sequence = 0;
    // sim::CycleStats accounting fields (replay verification compares all
    // six bit-exactly against a local reference run).
    std::uint64_t x_load_cycles = 0;
    std::uint64_t compute_cycles = 0;
    std::uint64_t y_phase_cycles = 0;
    std::uint64_t fill_cycles = 0;
    std::uint64_t total_slots = 0;
    std::uint64_t padding_slots = 0;
};

struct SetBatchingRequest {
    std::uint32_t max_batch = 8;
    double slo_ms = 0.0;
    double batch_wait_ms = 0.0;
    std::uint64_t max_queue_depth = 0;
};

// --- request framing ---
// encode_request produces the full frame payload (type byte + body);
// decode_request_type reads and validates the leading byte, leaving the
// reader positioned at the body.
std::vector<std::uint8_t> encode_request(RequestType type,
                                         WireWriter body = {});
RequestType decode_request_type(WireReader& r);

std::vector<std::uint8_t> encode_admit(const AdmitRequest& req);
AdmitRequest decode_admit(WireReader& r);
// Validate + convert (throws ProtocolError on mismatched array lengths,
// std::invalid_argument on out-of-range indices).
sparse::CooMatrix admit_to_coo(const AdmitRequest& req);

std::vector<std::uint8_t> encode_spmv(const SpmvRequest& req);
SpmvRequest decode_spmv(WireReader& r);

std::vector<std::uint8_t> encode_evict(const std::string& name);
std::string decode_evict(WireReader& r);

std::vector<std::uint8_t> encode_set_batching(const SetBatchingRequest& req);
SetBatchingRequest decode_set_batching(WireReader& r);

// --- responses ---
std::vector<std::uint8_t> encode_ok(WireWriter body = {});
std::vector<std::uint8_t> encode_error(Status status,
                                       const std::string& message);

// Client side: strip the status byte. kOk returns a reader over the body;
// kOverloaded throws OverloadedError, kDeadlineExceeded throws
// DeadlineExceededError, kError throws RemoteError.
WireReader open_reply(const std::vector<std::uint8_t>& frame);

void encode_spmv_reply(WireWriter& w, const serve::SpmvResult& result);
SpmvReply decode_spmv_reply(WireReader& r);

} // namespace serpens::net
