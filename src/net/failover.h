// Health-checked failover over an ordered endpoint list: the way a client
// survives a daemon that dies, not just a request that fails.
//
//   auto eps = net::parse_endpoints("10.0.0.1:7070,10.0.0.2:7070");
//   net::FailoverClient client(eps, 30000, policy);
//   net::SpmvReply r = client.spmv("web", x, y, alpha, beta);
//
// Each endpoint gets its own RetryingClient (transient faults are still
// retried in place — see retry.h) plus a circuit breaker:
//
//   closed     operations flow; `failure_threshold` CONSECUTIVE failed
//              operations open the breaker.
//   open       the endpoint is skipped until a seeded-jitter cooldown
//              expires (cooldown escalates multiplicatively up to
//              max_cooldown_ms while the endpoint stays dead).
//   half-open  the first selection after the cooldown sends a cheap ping
//              probe on a FRESH connection; success closes the breaker,
//              failure re-opens it with an escalated cooldown. Real
//              traffic never plays guinea pig against a dead endpoint.
//
// Endpoint selection is sticky: the cursor stays on the endpoint that
// last succeeded and only moves (counted as a failover) when that
// endpoint's breaker forces it elsewhere, so a recovered primary is not
// flapped back to mid-storm. One operation makes up to `max_rounds`
// passes over the list; when every breaker is open and none is due, the
// client sleeps until the earliest reopen time. After max_rounds the
// operation gives up, rethrowing the last transport error.
//
// RemoteError and DeadlineExceededError pass through immediately without
// touching the breaker: the daemon answered (or the budget is spent) —
// another endpoint would say the same thing, only later.
//
// All randomness (cooldown jitter here, backoff jitter per slot) draws
// from seeded Rng streams, so a chaos run replays the exact same
// failover sequence from the same seed. Like Client, NOT thread-safe.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "net/retry.h"
#include "obs/clock.h"

namespace serpens::net {

struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
};

// Parse "host:port[,host:port...]". Throws std::invalid_argument on an
// empty list, a missing/garbage port, or an empty host.
std::vector<Endpoint> parse_endpoints(const std::string& spec);

struct FailoverPolicy {
    RetryPolicy retry;               // per-endpoint transient-fault policy
    unsigned failure_threshold = 3;  // consecutive op failures that open
    double cooldown_ms = 100.0;      // first open's probe delay
    double cooldown_multiplier = 2.0;
    double max_cooldown_ms = 2000.0;
    // Fraction of each cooldown that is randomized, same convention as
    // RetryPolicy::jitter: cooldown * (1 - jitter + jitter * U[0,1)).
    double jitter = 0.5;
    std::uint64_t seed = 1;   // cooldown jitter stream
    unsigned max_rounds = 8;  // passes over the endpoint list per op
};

struct FailoverStats {
    std::uint64_t failovers = 0;       // cursor moved to another endpoint
    std::uint64_t breaker_opens = 0;   // closed -> open transitions
    std::uint64_t probes = 0;          // half-open pings sent
    std::uint64_t probe_failures = 0;  // probes that re-opened the breaker
    std::uint64_t giveups = 0;         // ops that exhausted max_rounds
};

class FailoverClient {
public:
    // `clock` drives breaker cooldowns and every slot's retry backoff
    // (nullptr = the real clock); a FakeClock makes the whole failover
    // schedule instant and reproducible in tests.
    FailoverClient(std::vector<Endpoint> endpoints, int timeout_ms,
                   FailoverPolicy policy = {}, obs::Clock* clock = nullptr);

    void ping();
    void admit(const std::string& name, const sparse::CooMatrix& m);
    SpmvReply spmv(const std::string& name, const std::vector<float>& x,
                   const std::vector<float>& y, float alpha, float beta,
                   double deadline_ms = 0.0, std::uint64_t trace_id = 0);
    std::string stats_json();
    std::string metrics_text();
    void set_batching(const SetBatchingRequest& req);
    bool evict(const std::string& name);
    void shutdown_daemon();

    const FailoverStats& stats() const { return stats_; }
    // Transient-fault retries summed over every endpoint's RetryingClient.
    std::uint64_t total_retries() const;
    std::size_t endpoint_count() const { return slots_.size(); }
    // The endpoint operations currently route to.
    const Endpoint& current_endpoint() const
    {
        return slots_[cursor_].endpoint;
    }

private:
    struct Slot {
        Endpoint endpoint;
        RetryingClient client;
        unsigned consecutive_failures = 0;
        bool open = false;
        std::uint64_t reopen_at_ns = 0;  // obs::Clock timestamp
        double next_cooldown_ms = 0.0;  // escalates while the slot is dead

        Slot(Endpoint ep, int timeout_ms, const RetryPolicy& retry,
             obs::Clock* clock)
            : endpoint(std::move(ep)),
              client(endpoint.host, endpoint.port, timeout_ms, retry, clock)
        {
        }
    };

    // True when `slot` may carry traffic now: closed, or open with an
    // expired cooldown whose half-open probe just succeeded.
    bool admit_traffic(Slot& slot);
    void note_success(Slot& slot);
    void note_failure(Slot& slot);
    void open_breaker(Slot& slot);
    void sleep_until_earliest_reopen();

    // The failover loop shared by every operation; see the header comment
    // for the walk order and breaker interplay.
    template <typename F>
    auto run(F&& op, std::uint64_t trace_id = 0)
        -> decltype(op(std::declval<RetryingClient&>()))
    {
        std::exception_ptr last_error;
        for (unsigned round = 0; round < policy_.max_rounds; ++round) {
            bool tried = false;
            for (std::size_t k = 0; k < slots_.size(); ++k) {
                const std::size_t idx = (cursor_ + k) % slots_.size();
                Slot& slot = slots_[idx];
                if (!admit_traffic(slot))
                    continue;
                tried = true;
                if (idx != cursor_) {
                    ++stats_.failovers;
                    cursor_ = idx;
                    if (obs::TraceRecorder* const rec = obs::trace_recorder())
                        rec->instant("client.failover", "client", trace_id,
                                     "endpoint",
                                     static_cast<std::uint64_t>(idx));
                }
                try {
                    auto result = op(slot.client);
                    note_success(slot);
                    return result;
                } catch (const RemoteError&) {
                    note_success(slot);  // the daemon is alive and answered
                    throw;
                } catch (const DeadlineExceededError&) {
                    throw;  // budget spent; no endpoint can un-spend it
                } catch (const NetError&) {
                    last_error = std::current_exception();
                    note_failure(slot);
                }
            }
            if (!tried)
                sleep_until_earliest_reopen();
        }
        ++stats_.giveups;
        if (last_error)
            std::rethrow_exception(last_error);
        throw NetError("failover: every endpoint's breaker stayed open");
    }

    int timeout_ms_;
    FailoverPolicy policy_;
    obs::Clock* clock_ = nullptr;  // never null after construction
    FailoverStats stats_;
    Rng rng_;  // cooldown jitter
    std::vector<Slot> slots_;
    std::size_t cursor_ = 0;
};

} // namespace serpens::net
