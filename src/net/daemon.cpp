#include "net/daemon.h"

#include <exception>
#include <utility>

#include "net/protocol.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/snapshot.h"
#include "serve/store.h"

namespace serpens::net {

Daemon::Daemon(serve::Server& server, std::uint16_t port,
               serve::RegistryStore* store)
    : server_(server), store_(store)
{
    start_ns_ = obs::real_clock().now_ns();
    listener_ = listen_tcp(port, &port_);
    acceptor_ = std::thread([this] { accept_loop(); });
}

double Daemon::uptime_ms() const
{
    return obs::Clock::ms_between(start_ns_, obs::real_clock().now_ns());
}

Daemon::~Daemon()
{
    stop();
}

void Daemon::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_shutdown_.wait(lock, [this] { return shutdown_requested_; });
}

void Daemon::request_shutdown()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
    }
    cv_shutdown_.notify_all();
}

bool Daemon::shutdown_requested()
{
    const std::lock_guard<std::mutex> lock(mu_);
    return shutdown_requested_;
}

std::size_t Daemon::open_connections()
{
    const std::lock_guard<std::mutex> lock(mu_);
    return conns_.size();
}

void Daemon::stop()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        shutdown_requested_ = true;
        // Unblock the acceptor and every connection thread parked in
        // recv(); they observe EOF/EINVAL and wind down.
        listener_.shutdown_both();
        for (auto& [id, sock] : conns_)
            sock.shutdown_both();
    }
    cv_shutdown_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    // No new connection threads once the acceptor has exited.
    for (std::thread& t : threads_)
        if (t.joinable())
            t.join();
}

void Daemon::accept_loop()
{
    for (;;) {
        std::optional<Socket> conn;
        try {
            conn = accept_conn(listener_);
        } catch (const NetError&) {
            break;  // listener torn down under us
        }
        if (!conn)
            break;
        const std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            break;  // drop the straggler; stop() already swept conns_
        const std::uint64_t id = next_conn_id_++;
        conns_.emplace(id, std::move(*conn));
        threads_.emplace_back([this, id] { serve_conn(id); });
    }
}

void Daemon::serve_conn(std::uint64_t conn_id)
{
    Socket* sock = nullptr;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        // unordered_map element references stay valid across rehashes;
        // only this thread erases this entry.
        sock = &conns_.at(conn_id);
    }
    for (;;) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
            frame = read_frame(*sock);
        } catch (const ProtocolError& e) {
            // Unframeable bytes: we cannot resync the stream. Best-effort
            // error reply, then drop the connection.
            try {
                write_frame(*sock,
                            encode_error(Status::kError, e.what()));
            } catch (const NetError&) {
            }
            break;
        } catch (const NetError&) {
            break;
        }
        if (!frame)
            break;  // clean close
        try {
            write_frame(*sock, handle_frame(*frame));
        } catch (const NetError&) {
            break;
        }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    conns_.erase(conn_id);
}

std::vector<std::uint8_t> Daemon::handle_frame(
    const std::vector<std::uint8_t>& frame)
{
    // Exception wall: anything a handler throws becomes a status reply on
    // this connection; the daemon itself never unwinds.
    try {
        WireReader r(frame);
        switch (decode_request_type(r)) {
        case RequestType::kPing:
            r.require_done();
            return encode_ok();
        case RequestType::kAdmit: {
            const AdmitRequest req = decode_admit(r);
            const auto prepared =
                server_.registry().admit(req.name, admit_to_coo(req));
            // Journal only what the registry accepted; if the journal
            // write fails, the error reply tells the client to retry the
            // idempotent admission.
            if (store_)
                store_->record_admit(req.name, prepared->image());
            return encode_ok();
        }
        case RequestType::kSpmv: {
            SpmvRequest req = decode_spmv(r);
            // The daemon-side request span wraps the whole server pass —
            // queue wait, batch, device, extraction — under the client's
            // trace id, so a stitched trace shows where the wire time went.
            obs::TraceRecorder* const rec = obs::trace_recorder();
            const std::uint64_t start_ns =
                rec != nullptr ? rec->now_ns() : 0;
            const serve::SpmvResult result =
                server_.spmv(req.name, std::move(req.x), std::move(req.y),
                             req.alpha, req.beta, req.deadline_ms,
                             req.trace_id);
            if (rec != nullptr)
                rec->span("daemon.request", "daemon", req.trace_id,
                          start_ns, rec->now_ns(), "bytes", frame.size());
            WireWriter body;
            encode_spmv_reply(body, result);
            return encode_ok(std::move(body));
        }
        case RequestType::kStats: {
            r.require_done();
            serve::MatrixRegistry& reg = server_.registry();
            const std::optional<serve::StoreStats> store_stats =
                store_ ? std::optional(store_->stats()) : std::nullopt;
            WireWriter body;
            body.str(serve::server_stats_to_json(
                server_.stats(), reg.stats(), reg.size(),
                reg.bytes_resident(),
                store_stats ? &*store_stats : nullptr, uptime_ms()));
            return encode_ok(std::move(body));
        }
        case RequestType::kMetrics: {
            r.require_done();
            // Scrape-time translation: no instrument lives on the hot
            // path; the registry is rebuilt from the stats structs at
            // each scrape (see obs/export.h).
            obs::MetricsRegistry metrics;
            metrics.gauge("serpens_uptime_ms",
                          "Milliseconds since the daemon started.",
                          uptime_ms());
            obs::export_server_metrics(metrics, server_.stats());
            obs::export_registry_metrics(metrics, server_.registry());
            if (store_)
                obs::export_store_metrics(metrics, store_->stats());
            WireWriter body;
            body.str(metrics.prometheus_text());
            return encode_ok(std::move(body));
        }
        case RequestType::kSetBatching: {
            const SetBatchingRequest req = decode_set_batching(r);
            server_.set_batching(req.max_batch, req.slo_ms,
                                 req.batch_wait_ms,
                                 static_cast<std::size_t>(
                                     req.max_queue_depth));
            return encode_ok();
        }
        case RequestType::kEvict: {
            const std::string name = decode_evict(r);
            const bool present = server_.registry().evict(name);
            if (present && store_)
                store_->record_evict(name);
            WireWriter body;
            body.u8(present ? 1 : 0);
            return encode_ok(std::move(body));
        }
        case RequestType::kShutdown:
            r.require_done();
            // Runs on a connection thread, so only flag + wake: the owner
            // of wait() performs the actual stop() from outside.
            request_shutdown();
            return encode_ok();
        }
        throw ProtocolError("unhandled request type");
    } catch (const serve::QueueFullError& e) {
        return encode_error(Status::kOverloaded, e.what());
    } catch (const serve::DeadlineExceededError& e) {
        return encode_error(Status::kDeadlineExceeded, e.what());
    } catch (const std::exception& e) {
        return encode_error(Status::kError, e.what());
    }
}

} // namespace serpens::net
