// The TCP front-end over serve::Server: serpens_served's engine room.
//
//   serve::Server server(cfg);
//   net::Daemon daemon(server, /*port=*/0);   // 0 = ephemeral
//   std::printf("listening on %u\n", daemon.port());
//   daemon.wait();                            // until a Shutdown frame
//   daemon.stop();
//
// One accept-loop thread plus one thread per connection; each connection
// handles length-prefixed request frames sequentially (pipelining within a
// connection is the client's choice, ordering is preserved). All request
// handling is exception-walled: a serve::QueueFullError becomes an
// OVERLOADED response, any other std::exception becomes an ERROR response
// with the message, and only transport-level corruption (bad frame length,
// unparseable type byte) closes the connection — a misbehaving client can
// never take the daemon down.
//
// Shutdown is two-phase on purpose: the wire's kShutdown handler runs ON a
// connection thread, so it only flips a flag and wakes wait(); the owner
// (who is not a connection thread) then calls stop(), which closes the
// listener, half-closes every live connection to unblock parked reads, and
// joins all threads. The destructor calls stop().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/framing.h"
#include "obs/clock.h"
#include "serve/server.h"

namespace serpens::serve {
class RegistryStore;
}

namespace serpens::net {

class Daemon {
public:
    // Binds 127.0.0.1:port (throws NetError if taken) and starts
    // accepting. A non-null `store` makes the daemon durable: every wire
    // admission/eviction is journaled (WAL + image file) AFTER the
    // registry accepted it, so a crash-restarted daemon can replay the
    // manifest and serve the same residents bit-identically. Store I/O
    // failures ride the existing exception wall — the client sees an
    // ERROR reply and can safely retry the (idempotent) operation.
    Daemon(serve::Server& server, std::uint16_t port,
           serve::RegistryStore* store = nullptr);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    std::uint16_t port() const { return port_; }

    // Block until request_shutdown() — from a kShutdown frame or any
    // thread.
    void wait();
    void request_shutdown();
    // Non-blocking probe, for owners that must also watch signal flags.
    bool shutdown_requested();

    // Live connection count — the chaos test's leak check: after every
    // client is gone this must drain back to zero, no matter how many
    // connections the fault injector killed mid-frame.
    std::size_t open_connections();

    // Milliseconds since construction; the `uptime_ms` gauge in the stats
    // reply and the metrics exposition.
    double uptime_ms() const;

    // Stop accepting, unblock and join every connection thread. Safe to
    // call twice; must NOT be called from a connection thread.
    void stop();

private:
    void accept_loop();
    void serve_conn(std::uint64_t conn_id);
    std::vector<std::uint8_t> handle_frame(
        const std::vector<std::uint8_t>& frame);

    serve::Server& server_;
    serve::RegistryStore* store_ = nullptr;  // optional durability
    std::uint64_t start_ns_ = 0;             // uptime epoch
    std::uint16_t port_ = 0;
    Socket listener_;

    std::mutex mu_;
    std::condition_variable cv_shutdown_;
    bool shutdown_requested_ = false;
    bool stopping_ = false;
    // Live connection sockets by id, so stop() can shutdown_both() each to
    // unblock its thread's read_frame. The socket is owned here (not by
    // the thread) for exactly that reason.
    std::unordered_map<std::uint64_t, Socket> conns_;
    std::vector<std::thread> threads_;  // joined in stop()
    std::uint64_t next_conn_id_ = 0;

    std::thread acceptor_;
};

} // namespace serpens::net
