#include "net/failover.h"

#include <algorithm>
#include <stdexcept>

#include "net/client.h"
#include "util/check.h"

namespace serpens::net {

std::vector<Endpoint> parse_endpoints(const std::string& spec)
{
    std::vector<Endpoint> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (item.empty())
            throw std::invalid_argument(
                "endpoints: empty entry in \"" + spec + "\"");
        // rfind, so IPv6-ish hosts with colons keep their last segment as
        // the port.
        const std::size_t colon = item.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == item.size())
            throw std::invalid_argument(
                "endpoints: expected host:port, got \"" + item + "\"");
        const std::string port_str = item.substr(colon + 1);
        unsigned long port = 0;
        try {
            std::size_t used = 0;
            port = std::stoul(port_str, &used);
            if (used != port_str.size())
                throw std::invalid_argument(port_str);
        } catch (const std::exception&) {
            throw std::invalid_argument(
                "endpoints: bad port in \"" + item + "\"");
        }
        if (port == 0 || port > 65535)
            throw std::invalid_argument(
                "endpoints: port out of range in \"" + item + "\"");
        out.push_back(Endpoint{item.substr(0, colon),
                               static_cast<std::uint16_t>(port)});
    }
    return out;
}

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               int timeout_ms, FailoverPolicy policy,
                               obs::Clock* clock)
    : timeout_ms_(timeout_ms),
      policy_(policy),
      clock_(clock != nullptr ? clock : &obs::real_clock()),
      rng_(policy.seed)
{
    SERPENS_CHECK(!endpoints.empty(),
                  "failover: need at least one endpoint");
    SERPENS_CHECK(policy_.failure_threshold >= 1,
                  "failover: failure_threshold must be at least 1");
    SERPENS_CHECK(policy_.max_rounds >= 1,
                  "failover: max_rounds must be at least 1");
    SERPENS_CHECK(policy_.jitter >= 0.0 && policy_.jitter <= 1.0,
                  "failover: jitter must lie in [0, 1]");
    slots_.reserve(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        // Each slot's backoff jitter gets its own deterministic stream so
        // endpoints never sleep in lockstep, yet the whole sequence
        // replays from FailoverPolicy::seed.
        RetryPolicy retry = policy_.retry;
        retry.seed = policy_.retry.seed + i;
        slots_.emplace_back(std::move(endpoints[i]), timeout_ms_, retry,
                            clock_);
    }
}

bool FailoverClient::admit_traffic(Slot& slot)
{
    if (!slot.open)
        return true;
    if (clock_->now_ns() < slot.reopen_at_ns)
        return false;
    // Half-open: probe on a fresh connection so a still-dead endpoint
    // costs one ping, not a live request.
    ++stats_.probes;
    try {
        Client(slot.endpoint.host, slot.endpoint.port, timeout_ms_).ping();
    } catch (const std::exception&) {
        ++stats_.probe_failures;
        open_breaker(slot);  // escalated cooldown, stays open
        return false;
    }
    slot.open = false;
    slot.consecutive_failures = 0;
    slot.next_cooldown_ms = 0.0;
    return true;
}

void FailoverClient::note_success(Slot& slot)
{
    slot.consecutive_failures = 0;
    slot.next_cooldown_ms = 0.0;
}

void FailoverClient::note_failure(Slot& slot)
{
    if (++slot.consecutive_failures >= policy_.failure_threshold) {
        ++stats_.breaker_opens;
        open_breaker(slot);
    }
}

void FailoverClient::open_breaker(Slot& slot)
{
    slot.open = true;
    const double base = slot.next_cooldown_ms > 0.0
                            ? std::min(policy_.max_cooldown_ms,
                                       slot.next_cooldown_ms *
                                           policy_.cooldown_multiplier)
                            : policy_.cooldown_ms;
    slot.next_cooldown_ms = base;
    const double scale =
        1.0 - policy_.jitter + policy_.jitter * rng_.next_double();
    const double cooldown = std::max(0.0, base * scale);
    slot.reopen_at_ns =
        clock_->now_ns() +
        static_cast<std::uint64_t>(cooldown * 1.0e6);
}

void FailoverClient::sleep_until_earliest_reopen()
{
    std::uint64_t earliest = UINT64_MAX;
    for (const Slot& slot : slots_)
        if (slot.open)
            earliest = std::min(earliest, slot.reopen_at_ns);
    if (earliest == UINT64_MAX)
        return;  // nothing open — nothing to wait for
    const std::uint64_t now = clock_->now_ns();
    if (earliest > now)
        clock_->sleep_ms(obs::Clock::ms_between(now, earliest));
}

std::uint64_t FailoverClient::total_retries() const
{
    std::uint64_t n = 0;
    for (const Slot& slot : slots_)
        n += slot.client.stats().retries;
    return n;
}

void FailoverClient::ping()
{
    run([&](RetryingClient& c) { c.ping(); return 0; });
}

void FailoverClient::admit(const std::string& name,
                           const sparse::CooMatrix& m)
{
    run([&](RetryingClient& c) { c.admit(name, m); return 0; });
}

SpmvReply FailoverClient::spmv(const std::string& name,
                               const std::vector<float>& x,
                               const std::vector<float>& y, float alpha,
                               float beta, double deadline_ms,
                               std::uint64_t trace_id)
{
    return run(
        [&](RetryingClient& c) {
            return c.spmv(name, x, y, alpha, beta, deadline_ms, trace_id);
        },
        trace_id);
}

std::string FailoverClient::stats_json()
{
    return run([&](RetryingClient& c) { return c.stats_json(); });
}

std::string FailoverClient::metrics_text()
{
    return run([&](RetryingClient& c) { return c.metrics_text(); });
}

void FailoverClient::set_batching(const SetBatchingRequest& req)
{
    run([&](RetryingClient& c) { c.set_batching(req); return 0; });
}

bool FailoverClient::evict(const std::string& name)
{
    return run([&](RetryingClient& c) { return c.evict(name); });
}

void FailoverClient::shutdown_daemon()
{
    run([&](RetryingClient& c) { c.shutdown_daemon(); return 0; });
}

} // namespace serpens::net
