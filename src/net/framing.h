// TCP transport for the serving daemon: RAII sockets and length-prefixed
// frames.
//
// A frame is a 4-byte little-endian payload length followed by the
// payload. read_frame() refuses lengths above kMaxFrameBytes before
// allocating anything, so a hostile or corrupted length prefix cannot
// drive an allocation; a clean EOF at a frame boundary is a normal
// connection close (nullopt), EOF mid-frame is a ProtocolError.
//
// Sockets are plain blocking POSIX fds wrapped for ownership. Timeouts are
// per-socket (SO_RCVTIMEO / SO_SNDTIMEO); an expired deadline surfaces as
// TimeoutError, every other socket failure as NetError with errno text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace serpens::net {

// Hard bound on a single frame's payload. Generous: a 256 MiB frame holds
// a ~10M-nnz admit request, while a 32-bit length prefix could otherwise
// demand 4 GiB.
constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
    Socket& operator=(Socket&& other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();

    // Half-close both directions without releasing the fd — how the daemon
    // unblocks a connection thread parked in read_frame().
    void shutdown_both();

    // Apply a deadline to every subsequent send and receive (0 = none).
    void set_timeout_ms(int timeout_ms);

private:
    int fd_ = -1;
};

// Client side: resolve host:port and connect (throws NetError on failure).
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms);

// Server side: bind + listen on 127.0.0.1:port. port 0 picks an ephemeral
// port; *bound_port reports the actual one either way.
Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port);

// Accept one connection. nullopt when the listener was shut down (the
// daemon's stop path); throws NetError on real failures.
std::optional<Socket> accept_conn(Socket& listener);

// Write one length-prefixed frame, completely (loops over partial sends).
void write_frame(Socket& s, const std::vector<std::uint8_t>& payload);

// Read one frame. nullopt on clean EOF before any byte of the length
// prefix; ProtocolError on oversized length or mid-frame EOF;
// TimeoutError when the socket deadline expires.
std::optional<std::vector<std::uint8_t>> read_frame(Socket& s);

} // namespace serpens::net
