// Blocking client for the serpens_served daemon.
//
//   net::Client client("127.0.0.1", port, /*timeout_ms=*/30000);
//   client.admit("web", coo);
//   net::SpmvReply r = client.spmv("web", x, y, alpha, beta);
//
// One Client owns one connection and is NOT thread-safe — the open-loop
// benchmark gives each worker thread its own Client, which also exercises
// the daemon's thread-per-connection path. Errors follow the wire.h
// taxonomy: TimeoutError on an expired socket deadline, OverloadedError
// when admission was refused (retryable), RemoteError for application
// failures on the daemon, ProtocolError/NetError for transport trouble.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/framing.h"
#include "net/protocol.h"
#include "sparse/coo.h"

namespace serpens::net {

class Client {
public:
    Client(const std::string& host, std::uint16_t port, int timeout_ms);

    void ping();
    void admit(const std::string& name, const sparse::CooMatrix& m);
    // deadline_ms > 0 is forwarded on the wire: the daemon sheds the
    // request (DeadlineExceededError here) if its batch has not started
    // within that budget of server-side admission. trace_id != 0 rides
    // the frame too, stitching the daemon's spans to this client's trace
    // (an old daemon rejects traced frames; untraced requests are wire-
    // compatible both ways).
    SpmvReply spmv(const std::string& name, const std::vector<float>& x,
                   const std::vector<float>& y, float alpha, float beta,
                   double deadline_ms = 0.0, std::uint64_t trace_id = 0);
    std::string stats_json();
    // The daemon's metrics scrape: Prometheus text exposition (server,
    // registry, store, per-channel utilization, uptime).
    std::string metrics_text();
    void set_batching(const SetBatchingRequest& req);
    bool evict(const std::string& name);  // true if the name was resident

    // Ask the daemon to shut down: its wait() returns and the owner stops
    // it. The daemon acknowledges before winding down.
    void shutdown_daemon();

private:
    // One request/response exchange; returns a reader over the kOk body.
    WireReader roundtrip(const std::vector<std::uint8_t>& frame);

    Socket sock_;
    std::vector<std::uint8_t> last_reply_;  // backing store for the reader
};

} // namespace serpens::net
