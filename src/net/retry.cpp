#include "net/retry.h"

#include <algorithm>
#include <utility>

namespace serpens::net {

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               int timeout_ms, RetryPolicy policy,
                               obs::Clock* clock)
    : host_(std::move(host)),
      port_(port),
      timeout_ms_(timeout_ms),
      policy_(policy),
      clock_(clock != nullptr ? clock : &obs::real_clock()),
      rng_(policy.seed)
{
    SERPENS_CHECK(policy_.max_attempts >= 1,
                  "retry: max_attempts must be at least 1");
    SERPENS_CHECK(policy_.jitter >= 0.0 && policy_.jitter <= 1.0,
                  "retry: jitter must lie in [0, 1]");
}

Client& RetryingClient::ensure_client()
{
    if (!client_) {
        client_ = std::make_unique<Client>(host_, port_, timeout_ms_);
        ++stats_.reconnects;
    }
    return *client_;
}

void RetryingClient::drop_client()
{
    client_.reset();
}

void RetryingClient::sleep_with_jitter(double backoff_ms, double cap_ms,
                                       std::uint64_t trace_id)
{
    const double scale =
        1.0 - policy_.jitter + policy_.jitter * rng_.next_double();
    double ms = std::max(0.0, backoff_ms * scale);
    if (cap_ms >= 0.0)
        ms = std::min(ms, cap_ms);  // never sleep past the deadline budget
    if (ms > 0.0) {
        obs::TraceRecorder* const rec = obs::trace_recorder();
        const std::uint64_t start = rec != nullptr ? rec->now_ns() : 0;
        clock_->sleep_ms(ms);
        if (rec != nullptr)
            rec->span("client.backoff", "client", trace_id, start,
                      rec->now_ns());
    }
}

void RetryingClient::ping()
{
    run([&](Client& c) { c.ping(); return 0; });
}

void RetryingClient::admit(const std::string& name,
                           const sparse::CooMatrix& m)
{
    run([&](Client& c) { c.admit(name, m); return 0; });
}

SpmvReply RetryingClient::spmv(const std::string& name,
                               const std::vector<float>& x,
                               const std::vector<float>& y, float alpha,
                               float beta, double deadline_ms,
                               std::uint64_t trace_id)
{
    return run(
        [&](Client& c) {
            return c.spmv(name, x, y, alpha, beta, deadline_ms, trace_id);
        },
        deadline_ms, trace_id);
}

std::string RetryingClient::stats_json()
{
    return run([&](Client& c) { return c.stats_json(); });
}

std::string RetryingClient::metrics_text()
{
    return run([&](Client& c) { return c.metrics_text(); });
}

void RetryingClient::set_batching(const SetBatchingRequest& req)
{
    run([&](Client& c) { c.set_batching(req); return 0; });
}

bool RetryingClient::evict(const std::string& name)
{
    return run([&](Client& c) { return c.evict(name); });
}

void RetryingClient::shutdown_daemon()
{
    run([&](Client& c) { c.shutdown_daemon(); return 0; });
}

} // namespace serpens::net
