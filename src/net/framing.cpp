#include "net/framing.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/wire.h"
#include "util/fault.h"

namespace serpens::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what)
{
    const int err = errno;
    if (err == EAGAIN || err == EWOULDBLOCK || err == EINPROGRESS)
        throw TimeoutError(what + ": timed out");
    throw NetError(what + ": " + std::strerror(err));
}

void send_all(Socket& s, const std::uint8_t* data, std::size_t n)
{
    while (n > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-write must surface as
        // EPIPE, not kill the process with SIGPIPE.
        const ssize_t sent = ::send(s.fd(), data, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            throw_errno("send");
        }
        data += sent;
        n -= static_cast<std::size_t>(sent);
    }
}

// Receive exactly n bytes. Returns false on EOF before the first byte
// (allowed = clean close); EOF after a partial read always throws.
bool recv_all(Socket& s, std::uint8_t* data, std::size_t n, bool eof_ok)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(s.fd(), data + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw_errno("recv");
        }
        if (r == 0) {
            if (got == 0 && eof_ok)
                return false;
            throw ProtocolError("connection closed mid-frame");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

} // namespace

void Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::shutdown_both()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_timeout_ms(int timeout_ms)
{
    if (fd_ < 0)
        return;
    // A zero timeval disables SO_RCVTIMEO/SO_SNDTIMEO, which is how the
    // "0 = none" contract clears a previously-set deadline — the old early
    // return here made deadlines one-way.
    timeval tv{};
    if (timeout_ms > 0) {
        tv.tv_sec = timeout_ms / 1000;
        tv.tv_usec = (timeout_ms % 1000) * 1000;
    }
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string service = std::to_string(port);
    const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (gai != 0)
        throw NetError("resolve " + host + ": " + ::gai_strerror(gai));

    std::string last_error = "no addresses";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        Socket s(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!s.valid())
            continue;
        // The timeout also bounds connect(): a blocking connect honors
        // SO_SNDTIMEO on Linux.
        s.set_timeout_ms(timeout_ms);
        if (::connect(s.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            const int one = 1;
            ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return s;
        }
        last_error = std::strerror(errno);
    }
    ::freeaddrinfo(res);
    throw NetError("connect " + host + ":" + service + ": " + last_error);
}

Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port)
{
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid())
        throw_errno("socket");
    const int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        throw_errno("bind 127.0.0.1:" + std::to_string(port));
    if (::listen(s.fd(), 64) != 0)
        throw_errno("listen");

    if (bound_port != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound),
                          &len) != 0)
            throw_errno("getsockname");
        *bound_port = ntohs(bound.sin_port);
    }
    return s;
}

std::optional<Socket> accept_conn(Socket& listener)
{
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            Socket s(fd);
            const int one = 1;
            ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return s;
        }
        if (errno == EINTR)
            continue;
        // The stop path shuts the listener down (or closes it) under us;
        // report that as end-of-accepting rather than an error.
        if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED)
            return std::nullopt;
        throw_errno("accept");
    }
}

void write_frame(Socket& s, const std::vector<std::uint8_t>& payload)
{
    if (payload.size() > kMaxFrameBytes)
        throw ProtocolError("frame payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds kMaxFrameBytes");
    // Chaos-test hooks (free when no util::FaultInjector is installed).
    // Each models a transport fault the retry layer must absorb; none can
    // deliver a silently wrong payload — the bit-identical serving
    // contract admits lost or killed frames, never altered ones.
    if (util::fault_fires("net.frame.delay")) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                util::fault_value("net.frame.delay")));
    }
    if (util::fault_fires("net.frame.drop")) {
        // The peer sees a half-closed connection (EOF / reset), the
        // sender an immediate transport error: a frame that never left.
        s.shutdown_both();
        throw NetError("fault injection: frame dropped");
    }
    if (util::fault_fires("net.frame.corrupt")) {
        // A length prefix beyond kMaxFrameBytes is the one corruption the
        // receiver detects before trusting a single payload byte; the
        // stream is then unframeable, so kill it on this side too.
        const std::uint32_t evil = 0xFFFFFFFFu;
        std::uint8_t poison[4];
        std::memcpy(poison, &evil, sizeof evil);
        try {
            send_all(s, poison, sizeof poison);
        } catch (const NetError&) {
        }
        s.shutdown_both();
        throw NetError("fault injection: frame corrupted");
    }
    std::uint8_t header[4];
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    std::memcpy(header, &n, sizeof n);
    send_all(s, header, sizeof header);
    send_all(s, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> read_frame(Socket& s)
{
    std::uint8_t header[4];
    if (!recv_all(s, header, sizeof header, /*eof_ok=*/true))
        return std::nullopt;
    std::uint32_t n = 0;
    std::memcpy(&n, header, sizeof n);
    if (n > kMaxFrameBytes)
        throw ProtocolError("frame length " + std::to_string(n) +
                            " exceeds kMaxFrameBytes");
    std::vector<std::uint8_t> payload(n);
    recv_all(s, payload.data(), n, /*eof_ok=*/false);
    return payload;
}

} // namespace serpens::net
