// Wire-format primitives for the network front-end: the error taxonomy
// and a pair of little-endian byte-buffer codecs.
//
// Every payload the daemon and client exchange is built from six scalar
// shapes (u8/u32/u64/f32/f64 plus length-prefixed strings and f32 arrays),
// written by WireWriter and read back by WireReader. The reader is strict:
// any read past the end of the buffer, any length prefix that does not fit
// in the remaining bytes, and any trailing garbage after a complete
// message throws ProtocolError — a malformed frame can never index out of
// bounds or allocate from an attacker-controlled length.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace serpens::net {

// Root of the network error taxonomy: anything the socket layer throws.
class NetError : public std::runtime_error {
public:
    explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

// The peer sent bytes that do not parse as the protocol: bad frame
// length, truncated payload, unknown message type, trailing garbage.
class ProtocolError : public NetError {
public:
    using NetError::NetError;
};

// A socket operation exceeded its deadline (SO_RCVTIMEO / SO_SNDTIMEO).
class TimeoutError : public NetError {
public:
    using NetError::NetError;
};

// The daemon refused admission (serve::QueueFullError on the far side).
// Retryable by contract: the request was never queued.
class OverloadedError : public NetError {
public:
    using NetError::NetError;
};

// The request blew its deadline_ms budget before the dispatcher could
// start its batch; the server shed it without executing (the slot went to
// a request that could still make its SLO). NOT retryable by contract: the
// budget is spent, and a retry would arrive even later.
class DeadlineExceededError : public NetError {
public:
    using NetError::NetError;
};

// The daemon executed the request and reported an application error
// (unknown matrix name, mis-sized vector, ...). Carries the remote
// exception's message.
class RemoteError : public NetError {
public:
    using NetError::NetError;
};

class WireWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    void f32_array(const std::vector<float>& v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        for (float x : v)
            f32(x);
    }

    void u32_array(const std::vector<std::uint32_t>& v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        for (std::uint32_t x : v)
            u32(x);
    }

    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

private:
    void raw(const void* p, std::size_t n)
    {
        const auto* bytes = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), bytes, bytes + n);
    }

    static_assert(std::endian::native == std::endian::little,
                  "wire format assumes a little-endian host");

    std::vector<std::uint8_t> buf_;
};

class WireReader {
public:
    WireReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit WireReader(const std::vector<std::uint8_t>& buf)
        : WireReader(buf.data(), buf.size())
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t u32()
    {
        std::uint32_t v;
        raw(&v, sizeof v);
        return v;
    }

    std::uint64_t u64()
    {
        std::uint64_t v;
        raw(&v, sizeof v);
        return v;
    }

    float f32() { return std::bit_cast<float>(u32()); }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::vector<float> f32_array()
    {
        const std::uint32_t n = u32();
        need(static_cast<std::size_t>(n) * 4);  // bound before allocating
        std::vector<float> v(n);
        for (std::uint32_t i = 0; i < n; ++i)
            v[i] = f32();
        return v;
    }

    std::vector<std::uint32_t> u32_array()
    {
        const std::uint32_t n = u32();
        need(static_cast<std::size_t>(n) * 4);
        std::vector<std::uint32_t> v(n);
        for (std::uint32_t i = 0; i < n; ++i)
            v[i] = u32();
        return v;
    }

    std::size_t remaining() const { return size_ - pos_; }

    // Every decode ends here: a well-formed message consumes its frame
    // exactly.
    void require_done() const
    {
        if (pos_ != size_)
            throw ProtocolError("wire: " + std::to_string(size_ - pos_) +
                                " trailing bytes after message");
    }

private:
    void need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw ProtocolError("wire: truncated message (need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(size_ - pos_) + ")");
    }

    void raw(void* p, std::size_t n)
    {
        need(n);
        std::memcpy(p, data_ + pos_, n);
        pos_ += n;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace serpens::net
