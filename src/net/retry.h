// Retrying wrapper over net::Client: the fault-tolerant way to talk to a
// serpens_served daemon.
//
//   net::RetryingClient client("127.0.0.1", port, 30000, policy);
//   net::SpmvReply r = client.spmv("web", x, y, alpha, beta);
//
// The retry contract follows the error taxonomy, not optimism:
//   - OverloadedError      retried on the SAME connection (the daemon
//                          answered; the request was never queued).
//   - TimeoutError, ProtocolError, plain NetError
//                          retried on a FRESH connection (the old one is
//                          unusable after a killed or unframeable stream).
//                          Every protocol operation is idempotent — an
//                          SpMV recomputes the same bits, an admit
//                          re-installs the same matrix — so resending
//                          after an ambiguous failure is safe.
//   - RemoteError          NOT retried: the daemon executed the request
//                          and rejected it; a byte-identical resend gets a
//                          byte-identical rejection.
//   - DeadlineExceededError NOT retried: the latency budget is spent, and
//                          a retry would arrive even later.
// Anything outside the NetError taxonomy propagates untouched.
//
// Backoff is exponential with multiplicative growth capped at
// max_backoff_ms, and jittered from a seeded Rng so chaos tests replay the
// exact same sleep sequence — determinism extends into the failure paths.
//
// A request's deadline_ms budget bounds the whole retry loop, not just the
// server-side queue: the backoff sleep is capped at whatever budget
// remains, and once the budget is spent the client gives up with
// DeadlineExceededError instead of sending a retry that could only arrive
// past its deadline.
// Like Client, a RetryingClient is NOT thread-safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace serpens::net {

struct RetryPolicy {
    unsigned max_attempts = 5;        // total tries, first one included
    double initial_backoff_ms = 1.0;  // sleep before the first retry
    double backoff_multiplier = 2.0;
    double max_backoff_ms = 100.0;
    // Fraction of each backoff that is randomized: the actual sleep is
    // backoff * (1 - jitter + jitter * U[0,1)). 0 = fully deterministic.
    double jitter = 0.5;
    std::uint64_t seed = 1;  // jitter stream seed (deterministic replay)
};

struct RetryStats {
    std::uint64_t attempts = 0;    // operations sent, retries included
    std::uint64_t retries = 0;     // attempts beyond each op's first
    std::uint64_t reconnects = 0;  // connections rebuilt after transport loss
    std::uint64_t giveups = 0;     // ops that exhausted max_attempts
};

class RetryingClient {
public:
    // `clock` drives the deadline budget and the backoff sleeps (nullptr =
    // the real clock); a test's FakeClock makes the retry schedule instant
    // and exactly reproducible.
    RetryingClient(std::string host, std::uint16_t port, int timeout_ms,
                   RetryPolicy policy = {}, obs::Clock* clock = nullptr);

    void ping();
    void admit(const std::string& name, const sparse::CooMatrix& m);
    SpmvReply spmv(const std::string& name, const std::vector<float>& x,
                   const std::vector<float>& y, float alpha, float beta,
                   double deadline_ms = 0.0, std::uint64_t trace_id = 0);
    std::string stats_json();
    std::string metrics_text();
    void set_batching(const SetBatchingRequest& req);
    bool evict(const std::string& name);
    void shutdown_daemon();

    const RetryStats& stats() const { return stats_; }

private:
    // Connect lazily (and re-connect after drop_client), so construction
    // never races a daemon that is still binding its port.
    Client& ensure_client();
    void drop_client();
    // Sleep the jittered backoff; cap_ms >= 0 truncates the sleep at the
    // remaining deadline budget (the jitter draw still happens, so the
    // random stream stays aligned with the uncapped replay).
    void sleep_with_jitter(double backoff_ms, double cap_ms = -1.0,
                           std::uint64_t trace_id = 0);

    // The retry loop shared by every operation. `op` runs against a live
    // Client; see the header comment for which failures re-enter the loop.
    // deadline_ms > 0 bounds the loop: the backoff sleep never exceeds the
    // remaining budget, and a retry whose budget is already spent is
    // abandoned with DeadlineExceededError instead of sent doomed.
    template <typename F>
    auto run(F&& op, double deadline_ms = 0.0, std::uint64_t trace_id = 0)
        -> decltype(op(std::declval<Client&>()))
    {
        obs::TraceRecorder* const rec = obs::trace_recorder();
        const std::uint64_t start = clock_->now_ns();
        const auto remaining = [&]() -> double {
            return deadline_ms -
                   obs::Clock::ms_between(start, clock_->now_ns());
        };
        double backoff_ms = policy_.initial_backoff_ms;
        for (unsigned attempt = 1;; ++attempt) {
            if (deadline_ms > 0.0 && attempt > 1 && remaining() <= 0.0) {
                ++stats_.giveups;
                throw DeadlineExceededError(
                    "deadline_ms budget spent after " +
                    std::to_string(attempt - 1) +
                    " attempt(s); not retrying");
            }
            if (attempt > 1)
                ++stats_.retries;  // this attempt really goes out
            ++stats_.attempts;
            const std::uint64_t attempt_start =
                rec != nullptr ? rec->now_ns() : 0;
            try {
                auto result = op(ensure_client());
                if (rec != nullptr)
                    rec->span("client.attempt", "client", trace_id,
                              attempt_start, rec->now_ns(), "attempt",
                              attempt);
                return result;
            } catch (const RemoteError&) {
                throw;
            } catch (const DeadlineExceededError&) {
                throw;
            } catch (const OverloadedError&) {
                if (attempt >= policy_.max_attempts) {
                    ++stats_.giveups;
                    throw;
                }
            } catch (const NetError&) {
                drop_client();
                if (attempt >= policy_.max_attempts) {
                    ++stats_.giveups;
                    throw;
                }
            }
            if (rec != nullptr)
                rec->span("client.attempt", "client", trace_id,
                          attempt_start, rec->now_ns(), "attempt", attempt);
            sleep_with_jitter(backoff_ms,
                              deadline_ms > 0.0 ? std::max(0.0, remaining())
                                                : -1.0,
                              trace_id);
            backoff_ms = std::min(policy_.max_backoff_ms,
                                  backoff_ms * policy_.backoff_multiplier);
        }
    }

    std::string host_;
    std::uint16_t port_;
    int timeout_ms_;
    RetryPolicy policy_;
    obs::Clock* clock_ = nullptr;  // never null after construction
    RetryStats stats_;
    Rng rng_;
    std::unique_ptr<Client> client_;
};

} // namespace serpens::net
