#include "core/resource_model.h"

#include "core/analytic.h"

namespace serpens::core {

namespace {

// Calibrated so HA=16, U=3 lands on the paper's Table 6 row for Serpens.
constexpr std::uint64_t kLutPerPe = 700;
constexpr std::uint64_t kLutBase = 83'400;
constexpr std::uint64_t kFfPerPe = 1'800;
constexpr std::uint64_t kFfBase = 96'600;
constexpr std::uint64_t kDspPerPe = 5;   // 3 (FP32 mul) + 2 (FP32 acc)
constexpr std::uint64_t kDspCompY = 80;  // 16 lanes x 5
constexpr std::uint64_t kBramBase = 143; // vector buffers + AXI FIFOs + shell

} // namespace

ResourceEstimate estimate_resources(const SerpensConfig& c,
                                    const U280Resources& device)
{
    const std::uint64_t pes = c.arch.total_pes();

    ResourceEstimate r;
    r.luts = kLutPerPe * pes + kLutBase;
    r.ffs = kFfPerPe * pes + kFfBase;
    r.dsps = kDspPerPe * pes + kDspCompY;
    // Double-buffered x segments need a second set of x-buffer BRAMs.
    r.brams = brams_required(c.arch) * (c.double_buffer_x ? 2 : 1) + kBramBase;
    r.urams = urams_required(c.arch);

    const auto pct = [](std::uint64_t used, std::uint64_t avail) {
        return 100.0 * static_cast<double>(used) / static_cast<double>(avail);
    };
    r.lut_pct = pct(r.luts, device.luts);
    r.ff_pct = pct(r.ffs, device.ffs);
    r.dsp_pct = pct(r.dsps, device.dsps);
    r.bram_pct = pct(r.brams, device.brams);
    r.uram_pct = pct(r.urams, device.urams);
    return r;
}

} // namespace serpens::core
