// FPGA resource model (paper Table 6 and §3.5).
//
// BRAM/URAM counts come from the paper's Eq. 1/2 plus an infrastructure
// constant (vector buffers, AXI FIFOs, the Vitis shell interface); LUT/FF/
// DSP scale linearly in the PE count with coefficients calibrated so the
// model reproduces the paper's published Serpens-A16 utilization exactly:
//
//   LUT 173K (15%)  FF 327K (14%)  DSP 720 (8%)  BRAM 655 (36%)  URAM 384 (40%)
//
// Per-PE structure: 5 DSPs (3 for the FP32 multiplier, 2 for the
// accumulator), ~700 LUTs, ~1800 FFs; CompY adds 16 lanes x 5 DSPs = 80.
// "Available" totals are the paper-implied post-shell counts on the U280.
#pragma once

#include <cstdint>

#include "core/config.h"

namespace serpens::core {

struct ResourceEstimate {
    std::uint64_t luts = 0;
    std::uint64_t ffs = 0;
    std::uint64_t dsps = 0;
    std::uint64_t brams = 0;  // BRAM36 units
    std::uint64_t urams = 0;

    double lut_pct = 0.0;
    double ff_pct = 0.0;
    double dsp_pct = 0.0;
    double bram_pct = 0.0;
    double uram_pct = 0.0;
};

// U280 available resources as implied by the paper's Table 6 percentages.
struct U280Resources {
    std::uint64_t luts = 1'153'000;
    std::uint64_t ffs = 2'336'000;
    std::uint64_t dsps = 9'024;
    std::uint64_t brams = 1'819;
    std::uint64_t urams = 960;
};

ResourceEstimate estimate_resources(const SerpensConfig& c,
                                    const U280Resources& device = {});

} // namespace serpens::core
