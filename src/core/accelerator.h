// The Serpens accelerator facade — the library's primary public API.
//
//   serpens::core::Accelerator acc(SerpensConfig::a16());
//   auto prepared = acc.prepare(matrix);          // offline format conversion
//   auto result   = acc.run(prepared, x, y, alpha, beta);
//   result.y, result.time_ms, result.metrics ...
//
// `prepare` performs the paper's preprocessing (segmentation, PE
// distribution, index coalescing, non-zero reordering) once; `run` executes
// the cycle-level simulation and derives wall-clock time and the paper's
// metrics from the configured operating point. A prepared matrix can be run
// many times with different vectors, exactly like a real device buffer.
#pragma once

#include <memory>
#include <span>

#include "analysis/metrics.h"
#include "core/config.h"
#include "encode/image.h"
#include "sim/simulator.h"

namespace serpens::core {

class PreparedMatrix {
public:
    const encode::SerpensImage& image() const { return *image_; }
    sparse::index_t rows() const { return image_->rows(); }
    sparse::index_t cols() const { return image_->cols(); }
    sparse::nnz_t nnz() const { return image_->stats().nnz; }
    const encode::EncodeStats& encode_stats() const { return image_->stats(); }

    // Wrap an image obtained elsewhere (e.g. encode::load_image_file).
    static PreparedMatrix from_image(encode::SerpensImage image)
    {
        return PreparedMatrix(std::move(image));
    }

private:
    friend class Accelerator;
    explicit PreparedMatrix(encode::SerpensImage image)
        : image_(std::make_unique<encode::SerpensImage>(std::move(image)))
    {
    }

    std::unique_ptr<encode::SerpensImage> image_;
};

struct RunResult {
    std::vector<float> y;
    sim::CycleStats cycles;
    double time_ms = 0.0;            // modeled wall-clock time
    analysis::Metrics metrics;       // the paper's Table 4 metrics
};

class Accelerator {
public:
    explicit Accelerator(SerpensConfig config);

    const SerpensConfig& config() const { return config_; }

    // Offline preprocessing. Throws CapacityError when the matrix exceeds
    // the on-chip row capacity (paper Eq. 3).
    PreparedMatrix prepare(const sparse::CooMatrix& m) const;

    // Execute y = alpha * A * x + beta * y. x.size() == cols,
    // y.size() == rows.
    RunResult run(const PreparedMatrix& prepared, std::span<const float> x,
                  std::span<const float> y, float alpha = 1.0f,
                  float beta = 0.0f) const;

    // Compile the 32-bit control program for a prepared matrix (the paper's
    // instruction channel; Table 1/5).
    std::vector<std::uint32_t> compile_program(const PreparedMatrix& prepared,
                                               float alpha, float beta) const;

    // Execute through the instruction path: decode the program with the
    // device FSM, cross-validate it against the image, then run with the
    // program's alpha/beta. Throws encode::InstructionError on any
    // malformed or mismatched stream.
    RunResult run_program(const PreparedMatrix& prepared,
                          std::span<const std::uint32_t> program,
                          std::span<const float> x,
                          std::span<const float> y) const;

    // Closed-form full-size estimate (no encode/simulate), for matrices too
    // large to simulate; `padding_ratio` can carry a measured value from a
    // scaled run.
    double estimate_time_ms(std::uint64_t rows, std::uint64_t cols,
                            std::uint64_t nnz, double padding_ratio = 0.0) const;

    // Row capacity of this configuration.
    std::uint64_t row_capacity() const { return config_.arch.row_capacity(); }

private:
    // Convert a simulated cycle count into modeled wall-clock milliseconds
    // (HBM streaming efficiency + invocation overhead).
    double cycles_to_ms(const sim::CycleStats& s) const;

    SerpensConfig config_;
};

} // namespace serpens::core
