// The Serpens accelerator facade — the library's primary public API.
//
//   serpens::core::Accelerator acc(SerpensConfig::a16());
//   auto prepared = acc.prepare(matrix);          // offline format conversion
//   auto result   = acc.run(prepared, x, y, alpha, beta);
//   result.y, result.time_ms, result.metrics ...
//
// `prepare` performs the paper's preprocessing (segmentation, PE
// distribution, index coalescing, non-zero reordering) once; `run` executes
// the cycle-level simulation and derives wall-clock time and the paper's
// metrics from the configured operating point. A prepared matrix can be run
// many times with different vectors, exactly like a real device buffer —
// and, like a device buffer, its decoded form is cached: the first run
// expands the packed lane streams once (sim::DecodedImage) and every later
// run or batch streams the cache-friendly expansion instead of re-unpacking
// bits. `run_batch` pushes B right-hand sides through one decoded pass
// (Sextans-style SpMM amortization on the host).
#pragma once

#include <memory>
#include <span>

#include "analysis/metrics.h"
#include "core/config.h"
#include "encode/image.h"
#include "sim/simulator.h"

namespace serpens::core {

class PreparedMatrix {
public:
    const encode::SerpensImage& image() const { return *image_; }
    sparse::index_t rows() const { return image_->rows(); }
    sparse::index_t cols() const { return image_->cols(); }
    sparse::nnz_t nnz() const { return image_->stats().nnz; }
    const encode::EncodeStats& encode_stats() const { return image_->stats(); }

    // Wrap an image obtained elsewhere (e.g. encode::load_image_file).
    static PreparedMatrix from_image(encode::SerpensImage image)
    {
        return PreparedMatrix(std::move(image));
    }

    // The decode-once expansion of the packed image, built on first use
    // (thread-safe) and shared by every subsequent run/batch on this
    // matrix. `threads` parallelizes only the first, building call.
    const sim::DecodedImage& decoded(unsigned threads = 1) const;

    // True once decoded() has materialized the cache (for tests/telemetry).
    bool decode_cached() const;

    // Populate the decode cache now instead of on the first run — the
    // admission path of the serving registry and the CLI's --load-image,
    // so a resident matrix pays encode + decode exactly once up front.
    void warm_decode(unsigned threads = 1) const { (void)decoded(threads); }

    // Host bytes this prepared matrix keeps resident: the packed image
    // (lines + segment tables) plus, once the decode cache is populated,
    // the SoA expansion and its accumulator bank. The serving registry
    // charges this number against resident_budget_bytes.
    std::uint64_t memory_footprint_bytes() const;

private:
    friend class Accelerator;
    explicit PreparedMatrix(encode::SerpensImage image)
        : image_(std::make_unique<encode::SerpensImage>(std::move(image)))
    {
    }

    struct DecodeCache;  // once_flag + image; boxed so moves stay cheap

    std::unique_ptr<encode::SerpensImage> image_;
    std::shared_ptr<DecodeCache> cache_ = make_cache();

    static std::shared_ptr<DecodeCache> make_cache();
};

struct RunResult {
    std::vector<float> y;
    sim::CycleStats cycles;
    double time_ms = 0.0;            // modeled wall-clock time
    analysis::Metrics metrics;       // the paper's Table 4 metrics
};

// Result of one batched execution: the per-vector RunResults (each exactly
// what run() would report for that column — the published per-SpMV
// baseline) plus the batched device model, which prices the batch as ONE
// SpMM-mode invocation sharing the A stream across column blocks
// (sim::BatchCycleStats). `amortized_time_ms` is the per-SpMV device time
// that mode achieves; at B = 1 it equals the single-run time_ms exactly.
struct BatchRunResult {
    std::vector<RunResult> per_vector;
    sim::BatchCycleStats batch_cycles;
    double batch_time_ms = 0.0;      // modeled device time, whole batch
    double amortized_time_ms = 0.0;  // batch_time_ms / B

    // Column access mirrors the pre-SpMM-mode vector<RunResult> API.
    std::size_t size() const { return per_vector.size(); }
    bool empty() const { return per_vector.empty(); }
    const RunResult& operator[](std::size_t b) const { return per_vector[b]; }
    RunResult& operator[](std::size_t b) { return per_vector[b]; }
    const RunResult& front() const { return per_vector.front(); }
    auto begin() const { return per_vector.begin(); }
    auto end() const { return per_vector.end(); }
};

class Accelerator {
public:
    explicit Accelerator(SerpensConfig config);

    const SerpensConfig& config() const { return config_; }

    // Offline preprocessing. Throws CapacityError when the matrix exceeds
    // the on-chip row capacity (paper Eq. 3).
    PreparedMatrix prepare(const sparse::CooMatrix& m) const;

    // Execute y = alpha * A * x + beta * y. x.size() == cols,
    // y.size() == rows. Runs off the cached decode when
    // config().decode_cache is set (the default); results are bit-identical
    // either way.
    RunResult run(const PreparedMatrix& prepared, std::span<const float> x,
                  std::span<const float> y, float alpha = 1.0f,
                  float beta = 0.0f) const;

    // Execute y[b] = alpha * A * xs[b] + beta * ys[b] for every b in one
    // decoded pass with a column-blocked accumulator. Each per_vector
    // entry is exactly what run() would report for that column (same y
    // bits, same CycleStats, same per-vector modeled time), and the result
    // additionally carries the batched device model: one SpMM-mode
    // invocation streaming A once per config().batch_columns-wide column
    // block, with amortized per-SpMV device time. With
    // config().decode_cache off the columns run the packed reference walk
    // one by one instead (the batch accounting is computed from the packed
    // image and is bit-identical), so the differential knob keeps its
    // meaning under batching. xs and ys must be the same non-zero length.
    BatchRunResult run_batch(const PreparedMatrix& prepared,
                             std::span<const std::vector<float>> xs,
                             std::span<const std::vector<float>> ys,
                             float alpha = 1.0f, float beta = 0.0f) const;

    // Closed-form batched estimate: estimate_time_ms extended to a B-wide
    // SpMM invocation (core::estimate_batch_time_ms). Divide by `batch`
    // for the amortized per-SpMV figure.
    double estimate_batch_time_ms(std::uint64_t rows, std::uint64_t cols,
                                  std::uint64_t nnz, unsigned batch,
                                  double padding_ratio = 0.0) const;

    // Compile the 32-bit control program for a prepared matrix (the paper's
    // instruction channel; Table 1/5).
    std::vector<std::uint32_t> compile_program(const PreparedMatrix& prepared,
                                               float alpha, float beta) const;

    // Execute through the instruction path: decode the program with the
    // device FSM, cross-validate it against the image, then run with the
    // program's alpha/beta. Throws encode::InstructionError on any
    // malformed or mismatched stream.
    RunResult run_program(const PreparedMatrix& prepared,
                          std::span<const std::uint32_t> program,
                          std::span<const float> x,
                          std::span<const float> y) const;

    // Closed-form full-size estimate (no encode/simulate), for matrices too
    // large to simulate; `padding_ratio` can carry a measured value from a
    // scaled run.
    double estimate_time_ms(std::uint64_t rows, std::uint64_t cols,
                            std::uint64_t nnz, double padding_ratio = 0.0) const;

    // Row capacity of this configuration.
    std::uint64_t row_capacity() const { return config_.arch.row_capacity(); }

private:
    // Convert a simulated cycle count into modeled wall-clock milliseconds
    // (HBM streaming efficiency + invocation overhead).
    double cycles_to_ms(const sim::CycleStats& s) const;
    // Same conversion for a batched invocation: one kickoff overhead for
    // the whole batch, the same per-term weighting otherwise.
    double batch_cycles_to_ms(const sim::BatchCycleStats& s) const;

    // Shared run()/run_batch() plumbing.
    sim::SimOptions sim_options() const;
    RunResult finish_run(sparse::nnz_t nnz, std::vector<float> y,
                         const sim::CycleStats& cycles) const;

    SerpensConfig config_;
};

} // namespace serpens::core
