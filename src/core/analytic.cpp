#include "core/analytic.h"

#include <algorithm>

#include "util/bitpack.h"

namespace serpens::core {

std::uint64_t brams_required(const encode::EncodeParams& p)
{
    return 32ULL * p.ha_channels;
}

std::uint64_t urams_required(const encode::EncodeParams& p)
{
    return 8ULL * p.ha_channels * p.urams_per_pe;
}

std::uint64_t row_capacity(const encode::EncodeParams& p)
{
    return p.row_capacity();
}

std::uint64_t ideal_cycles(const encode::EncodeParams& p, std::uint64_t rows,
                           std::uint64_t cols, std::uint64_t nnz)
{
    const std::uint64_t vector_cycles =
        ceil_div<std::uint64_t>(rows, 16) + ceil_div<std::uint64_t>(cols, 16);
    const std::uint64_t compute_cycles =
        ceil_div<std::uint64_t>(nnz, 8ULL * p.ha_channels);
    return vector_cycles + compute_cycles;
}

double ideal_time_ms(const SerpensConfig& c, std::uint64_t rows,
                     std::uint64_t cols, std::uint64_t nnz)
{
    const double cycles =
        static_cast<double>(ideal_cycles(c.arch, rows, cols, nnz));
    return cycles / (c.frequency_mhz * 1e3);
}

double estimate_time_ms(const SerpensConfig& c, std::uint64_t rows,
                        std::uint64_t cols, std::uint64_t nnz,
                        double padding_ratio)
{
    SERPENS_CHECK(padding_ratio >= 0.0 && padding_ratio < 1.0,
                  "padding ratio must lie in [0, 1)");
    const double vector_cycles =
        static_cast<double>(ceil_div<std::uint64_t>(rows, 16) +
                            ceil_div<std::uint64_t>(cols, 16));
    // Padding inflates the slot count: slots = nnz / (1 - padding_ratio).
    const double slots = static_cast<double>(nnz) / (1.0 - padding_ratio);
    const double compute_cycles =
        slots / (8.0 * c.arch.ha_channels) / c.hbm.stream_efficiency;
    const double segments =
        static_cast<double>(ceil_div<std::uint64_t>(cols, c.arch.window));
    const double fill_cycles =
        segments * c.fill_per_segment + c.fill_y_phase;
    const double cycles = vector_cycles + compute_cycles + fill_cycles;
    return cycles / (c.frequency_mhz * 1e3) + c.invocation_overhead_us / 1e3;
}

double estimate_batch_time_ms(const SerpensConfig& c, std::uint64_t rows,
                              std::uint64_t cols, std::uint64_t nnz,
                              unsigned batch, double padding_ratio)
{
    SERPENS_CHECK(batch >= 1, "batch must contain at least one vector");
    SERPENS_CHECK(padding_ratio >= 0.0 && padding_ratio < 1.0,
                  "padding ratio must lie in [0, 1)");
    const std::uint64_t block = c.batch_columns;
    const std::uint64_t passes = ceil_div<std::uint64_t>(batch, block);

    const double slots = static_cast<double>(nnz) / (1.0 - padding_ratio);
    const double compute_per_pass =
        slots / (8.0 * c.arch.ha_channels) / c.hbm.stream_efficiency;
    const double segments =
        static_cast<double>(ceil_div<std::uint64_t>(cols, c.arch.window));
    const double fills_per_pass =
        segments * c.fill_per_segment + c.fill_y_phase;

    double cycles = 0.0;
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        const std::uint64_t pass_cols =
            std::min<std::uint64_t>(block, batch - pass * block);
        // x and y traffic widens with the column block; the A stream does
        // not (that is the whole amortization).
        cycles += static_cast<double>(
            ceil_div<std::uint64_t>(rows * pass_cols, 16) +
            ceil_div<std::uint64_t>(cols * pass_cols, 16));
        cycles += compute_per_pass + fills_per_pass;
    }
    return cycles / (c.frequency_mhz * 1e3) + c.invocation_overhead_us / 1e3;
}

} // namespace serpens::core
