// The paper's closed-form resource and performance models (§3.5).
//
//   Eq. 1: #BRAMs     = 32 * HA
//   Eq. 2: #URAMs     = 8 * HA * U
//   Eq. 3: row depth  = 16 * HA * U * D        (with index coalescing)
//   Eq. 4: #cycles    = (M + K) / 16 + NNZ / (8 * HA)
//
// `estimate_time_ms` extends Eq. 4 with the explicitly modeled deviations
// (HBM streaming efficiency, per-segment pipeline fills, invocation
// overhead, measured padding ratio) so benches can report a full-size
// estimate next to the scaled simulation.
#pragma once

#include <cstdint>

#include "core/config.h"

namespace serpens::core {

// Eq. 1 — BRAM36s consumed by the PE array's x-segment copies.
std::uint64_t brams_required(const encode::EncodeParams& p);

// Eq. 2 — URAMs across all PEs.
std::uint64_t urams_required(const encode::EncodeParams& p);

// Eq. 3 — on-chip accumulation row capacity (halves without coalescing).
std::uint64_t row_capacity(const encode::EncodeParams& p);

// Eq. 4 — ideal cycle count (no padding, no overheads), with exact ceils.
std::uint64_t ideal_cycles(const encode::EncodeParams& p, std::uint64_t rows,
                           std::uint64_t cols, std::uint64_t nnz);

// Ideal time from Eq. 4 at the configured frequency (no overheads).
double ideal_time_ms(const SerpensConfig& c, std::uint64_t rows,
                     std::uint64_t cols, std::uint64_t nnz);

// Full performance-model time: Eq. 4 + padding stretch + HBM streaming
// efficiency on the A-stream + pipeline fills + invocation overhead.
double estimate_time_ms(const SerpensConfig& c, std::uint64_t rows,
                        std::uint64_t cols, std::uint64_t nnz,
                        double padding_ratio = 0.0);

// estimate_time_ms extended to a B-wide SpMM invocation (Sextans-style
// batched device mode): the A stream is traversed ceil(B / batch_columns)
// times, the x/y vector traffic scales with B, fills are paid per pass, and
// the kickoff overhead is paid once. At batch = 1 this equals
// estimate_time_ms exactly. Divide by `batch` for the amortized per-SpMV
// figure.
double estimate_batch_time_ms(const SerpensConfig& c, std::uint64_t rows,
                              std::uint64_t cols, std::uint64_t nnz,
                              unsigned batch, double padding_ratio = 0.0);

} // namespace serpens::core
