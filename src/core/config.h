// Top-level Serpens accelerator configuration.
//
// Bundles the architecture parameters (encode::EncodeParams — Table 1 of the
// paper), the physical operating point (frequency/power — Table 2), and the
// calibration constants of the performance model. The two published design
// points are available as presets:
//
//   SerpensConfig::a16(): 16 A-channels + 3 vector channels = 19 HBM
//       channels, 273 GB/s, 223 MHz, 48 W       (paper §3.1.1, Table 2)
//   SerpensConfig::a24(): 24 + 3 = 27 channels, 388 GB/s, 270 MHz
//       (paper §4.4; power interpolated at 52 W — the paper gives none)
#pragma once

#include <cstddef>

#include "encode/mapping.h"
#include "hbm/spec.h"

namespace serpens::core {

struct SerpensConfig {
    encode::EncodeParams arch;   // HA, PEs/channel, U, D, W, T, coalescing
    hbm::HbmSpec hbm;            // per-channel bandwidth & stream efficiency

    double frequency_mhz = 223.0;
    double power_w = 48.0;
    unsigned vector_channels = 3;     // x, y_in, y_out (paper §3.1.1)
    // Extension experiment: double-buffer the x-segment BRAMs to overlap
    // RdX with compute (bench_ablation_overlap). Off = published design.
    bool double_buffer_x = false;
    unsigned fill_per_segment = 48;   // pipeline fill cycles per segment
    unsigned fill_y_phase = 48;
    double invocation_overhead_us = 3.0;  // host->device kickoff latency
    // Host-side worker threads for prepare()'s per-channel encode
    // (1 = serial, 0 = one per hardware thread); never changes the image.
    unsigned encode_threads = 1;
    // Host-side worker threads for run()'s per-channel simulator loop
    // (same convention); never changes the simulated y or CycleStats.
    unsigned sim_threads = 1;
    // Decode each prepared matrix's packed image once and run repeated
    // SpMV off the cached SoA expansion (sim::DecodedImage). Off = every
    // run re-unpacks the packed lanes (the differential reference engine).
    // Either way y and CycleStats are bit-identical.
    bool decode_cache = true;
    // Batched device mode (sim::BatchCycleStats): dense columns one
    // A-stream pass feeds. This is the Sextans-style SpMM block width —
    // each PE multiply-accumulates this many right-hand-side columns per
    // streamed element, and the x-segment BRAMs hold this many x columns
    // resident (the paper's 128 BRAM18K/PE budget at W = 8192 covers 8).
    // Batches wider than this take ceil(B / batch_columns) passes over the
    // sparse stream, so amortized device time saturates here — the knee
    // bench_ablation_batch validates.
    unsigned batch_columns = 8;

    // --- Serving layer (serve::Server / serve::MatrixRegistry) ---
    // Width of the request scheduler's drain rounds: how many coalesced
    // batches execute concurrently on util::shared_pool (1 = serial drain,
    // 0 = one per hardware thread). When > 1 the per-request simulator
    // runs serially (sim_threads is forced to 1 inside the server) because
    // the shared pool's parallel_for is not reentrant — parallelism moves
    // across requests instead of within one.
    unsigned serve_threads = 1;
    // Byte budget for resident prepared matrices in the registry
    // (PreparedMatrix::memory_footprint_bytes accounting; LRU eviction
    // above it). 0 = unlimited.
    std::uint64_t resident_budget_bytes = 0;
    // Max same-matrix, same-alpha/beta requests coalesced into one
    // simulate_spmv_batch call per drain round (Sextans-style multi-vector
    // amortization; per-request results are bit-identical at any width).
    unsigned max_batch = 8;
    // Hold a forming dispatch round up to this long waiting for the
    // effective max_batch to fill before draining (0 = drain the moment
    // anything is queued — the pre-daemon behavior). This is the
    // throughput/latency trade the SLO controller below steers: wider
    // batches amortize the A stream, but every held request pays the hold
    // as queue time.
    double batch_wait_ms = 0.0;
    // Target p99 queue time for SLO-driven adaptive batching. When > 0 the
    // dispatcher maintains an EWMA of each round's p99 queue time and
    // halves its effective max_batch (floor 1, so batches form instantly)
    // whenever the estimate exceeds the target, doubling back toward
    // max_batch once the estimate drops below half the target. 0 = fixed
    // max_batch, no adaptation.
    double slo_queue_ms = 0.0;
    // Admission bound: a submit() arriving when this many requests are
    // already queued fails fast with serve::QueueFullError instead of
    // growing the backlog without bound (0 = unbounded). Overload degrades
    // into visible rejections the client can retry, never silent drops or
    // unbounded queueing.
    std::size_t max_queue_depth = 0;

    static SerpensConfig a16()
    {
        SerpensConfig c;
        c.arch.ha_channels = 16;
        c.frequency_mhz = 223.0;
        c.power_w = 48.0;
        return c;
    }

    static SerpensConfig a24()
    {
        SerpensConfig c;
        c.arch.ha_channels = 24;
        c.frequency_mhz = 270.0;  // paper §4.4 (TAPA + AutoBridge closure)
        c.power_w = 52.0;
        // Lateral-channel congestion: with 27 of 32 HBM channels active, the
        // switch network sustains a lower per-channel rate (the same effect
        // that made vanilla Vitis fail P&R, §4.4). Calibrated so the model
        // reproduces the paper's A24/A16 speedup of ~1.36x rather than the
        // ideal 1.81x.
        c.hbm.stream_efficiency = 0.62;
        return c;
    }

    unsigned total_hbm_channels() const
    {
        return arch.ha_channels + vector_channels;
    }

    // Paper-style "utilized bandwidth": channels x per-channel GB/s
    // (A16: 19 x 14.375 = 273 GB/s; A24: 27 x 14.375 = 388 GB/s).
    double utilized_bandwidth_gbps() const
    {
        return hbm.utilized_gbps(static_cast<int>(total_hbm_channels()));
    }
};

} // namespace serpens::core
