#include "core/accelerator.h"

#include "core/analytic.h"
#include "encode/instructions.h"

namespace serpens::core {

Accelerator::Accelerator(SerpensConfig config) : config_(config)
{
    config_.arch.validate();
    SERPENS_CHECK(config_.frequency_mhz > 0.0, "frequency must be positive");
    SERPENS_CHECK(config_.power_w > 0.0, "power must be positive");
    SERPENS_CHECK(config_.hbm.stream_efficiency > 0.0 &&
                      config_.hbm.stream_efficiency <= 1.0,
                  "stream efficiency must lie in (0, 1]");
}

PreparedMatrix Accelerator::prepare(const sparse::CooMatrix& m) const
{
    encode::EncodeOptions options;
    options.threads = config_.encode_threads;
    return PreparedMatrix(encode::encode_matrix(m, config_.arch, options));
}

double Accelerator::cycles_to_ms(const sim::CycleStats& s) const
{
    // The A-stream is the only multi-channel burst consumer; streaming
    // efficiency stretches its cycles. Vector streams are single sequential
    // channels and run at full rate.
    const double compute =
        static_cast<double>(s.compute_cycles) / config_.hbm.stream_efficiency;
    const double cycles = compute + static_cast<double>(s.x_load_cycles) +
                          static_cast<double>(s.y_phase_cycles) +
                          static_cast<double>(s.fill_cycles);
    return cycles / (config_.frequency_mhz * 1e3) +
           config_.invocation_overhead_us / 1e3;
}

RunResult Accelerator::run(const PreparedMatrix& prepared,
                           std::span<const float> x, std::span<const float> y,
                           float alpha, float beta) const
{
    sim::SimOptions options;
    options.fill_per_segment = config_.fill_per_segment;
    options.fill_y_phase = config_.fill_y_phase;
    options.double_buffer_x = config_.double_buffer_x;
    options.threads = config_.sim_threads;

    sim::SimResult sim = sim::simulate_spmv(prepared.image(), x, y, alpha,
                                            beta, options);

    RunResult result;
    result.time_ms = cycles_to_ms(sim.cycles);
    result.metrics = analysis::Metrics::from_run(
        prepared.nnz(), result.time_ms, config_.utilized_bandwidth_gbps(),
        config_.power_w);
    result.cycles = sim.cycles;
    result.y = std::move(sim.y);
    return result;
}

std::vector<std::uint32_t> Accelerator::compile_program(
    const PreparedMatrix& prepared, float alpha, float beta) const
{
    return encode::build_instructions(prepared.image(), alpha, beta);
}

RunResult Accelerator::run_program(const PreparedMatrix& prepared,
                                   std::span<const std::uint32_t> program,
                                   std::span<const float> x,
                                   std::span<const float> y) const
{
    const encode::ControlProgram decoded = encode::decode_instructions(
        program, prepared.image().params().ha_channels);
    encode::validate_program(decoded, prepared.image());
    return run(prepared, x, y, decoded.alpha, decoded.beta);
}

double Accelerator::estimate_time_ms(std::uint64_t rows, std::uint64_t cols,
                                     std::uint64_t nnz,
                                     double padding_ratio) const
{
    return core::estimate_time_ms(config_, rows, cols, nnz, padding_ratio);
}

} // namespace serpens::core
