#include "core/accelerator.h"

#include <mutex>

#include "core/analytic.h"
#include "encode/instructions.h"

namespace serpens::core {

struct PreparedMatrix::DecodeCache {
    std::once_flag once;
    std::unique_ptr<const sim::DecodedImage> decoded;
};

std::shared_ptr<PreparedMatrix::DecodeCache> PreparedMatrix::make_cache()
{
    return std::make_shared<DecodeCache>();
}

const sim::DecodedImage& PreparedMatrix::decoded(unsigned threads) const
{
    std::call_once(cache_->once, [&] {
        sim::DecodeOptions options;
        options.threads = threads;
        // The packed image is hazard-verified here, once, instead of on
        // every simulate call.
        options.verify_hazards = true;
        cache_->decoded = std::make_unique<const sim::DecodedImage>(
            sim::DecodedImage::decode(*image_, options));
    });
    return *cache_->decoded;
}

bool PreparedMatrix::decode_cached() const
{
    return cache_->decoded != nullptr;
}

std::uint64_t PreparedMatrix::memory_footprint_bytes() const
{
    std::uint64_t bytes = image_->memory_bytes();
    if (decode_cached())
        bytes += cache_->decoded->memory_bytes();
    return bytes;
}

Accelerator::Accelerator(SerpensConfig config) : config_(config)
{
    config_.arch.validate();
    SERPENS_CHECK(config_.frequency_mhz > 0.0, "frequency must be positive");
    SERPENS_CHECK(config_.power_w > 0.0, "power must be positive");
    SERPENS_CHECK(config_.hbm.stream_efficiency > 0.0 &&
                      config_.hbm.stream_efficiency <= 1.0,
                  "stream efficiency must lie in (0, 1]");
}

PreparedMatrix Accelerator::prepare(const sparse::CooMatrix& m) const
{
    encode::EncodeOptions options;
    options.threads = config_.encode_threads;
    return PreparedMatrix(encode::encode_matrix(m, config_.arch, options));
}

double Accelerator::cycles_to_ms(const sim::CycleStats& s) const
{
    // The A-stream is the only multi-channel burst consumer; streaming
    // efficiency stretches its cycles. Vector streams are single sequential
    // channels and run at full rate.
    const double compute =
        static_cast<double>(s.compute_cycles) / config_.hbm.stream_efficiency;
    const double cycles = compute + static_cast<double>(s.x_load_cycles) +
                          static_cast<double>(s.y_phase_cycles) +
                          static_cast<double>(s.fill_cycles);
    return cycles / (config_.frequency_mhz * 1e3) +
           config_.invocation_overhead_us / 1e3;
}

double Accelerator::batch_cycles_to_ms(const sim::BatchCycleStats& s) const
{
    // Same per-term weighting as cycles_to_ms; the host->device kickoff is
    // paid once for the whole SpMM invocation, not per vector.
    const double compute =
        static_cast<double>(s.compute_cycles) / config_.hbm.stream_efficiency;
    const double cycles = compute + static_cast<double>(s.x_load_cycles) +
                          static_cast<double>(s.y_phase_cycles) +
                          static_cast<double>(s.fill_cycles);
    return cycles / (config_.frequency_mhz * 1e3) +
           config_.invocation_overhead_us / 1e3;
}

sim::SimOptions Accelerator::sim_options() const
{
    sim::SimOptions options;
    options.fill_per_segment = config_.fill_per_segment;
    options.fill_y_phase = config_.fill_y_phase;
    options.double_buffer_x = config_.double_buffer_x;
    options.threads = config_.sim_threads;
    options.batch_columns = config_.batch_columns;
    return options;
}

RunResult Accelerator::finish_run(sparse::nnz_t nnz, std::vector<float> y,
                                  const sim::CycleStats& cycles) const
{
    RunResult result;
    result.time_ms = cycles_to_ms(cycles);
    result.metrics = analysis::Metrics::from_run(
        nnz, result.time_ms, config_.utilized_bandwidth_gbps(),
        config_.power_w);
    result.cycles = cycles;
    result.y = std::move(y);
    return result;
}

RunResult Accelerator::run(const PreparedMatrix& prepared,
                           std::span<const float> x, std::span<const float> y,
                           float alpha, float beta) const
{
    const sim::SimOptions options = sim_options();

    sim::SimResult sim =
        config_.decode_cache
            ? sim::simulate_spmv_decoded(prepared.decoded(config_.sim_threads),
                                         x, y, alpha, beta, options)
            : sim::simulate_spmv(prepared.image(), x, y, alpha, beta, options);

    return finish_run(prepared.nnz(), std::move(sim.y), sim.cycles);
}

BatchRunResult Accelerator::run_batch(
    const PreparedMatrix& prepared, std::span<const std::vector<float>> xs,
    std::span<const std::vector<float>> ys, float alpha, float beta) const
{
    SERPENS_CHECK(!xs.empty(), "batch must contain at least one vector");
    SERPENS_CHECK(xs.size() == ys.size(),
                  "batch x and y vector counts must match");

    BatchRunResult result;
    result.per_vector.reserve(xs.size());

    if (!config_.decode_cache) {
        // Honor the knob's contract even for batches: every column runs
        // the packed reference walk, one pass each — the differential
        // cross-check mode stays meaningful under --batch. The batched
        // device accounting comes from the packed image and is
        // bit-identical to the decoded path's.
        for (std::size_t b = 0; b < xs.size(); ++b)
            result.per_vector.push_back(
                run(prepared, xs[b], ys[b], alpha, beta));
        result.batch_cycles =
            sim::batch_cycle_stats(prepared.image(), xs.size(), sim_options());
    } else {
        sim::SimBatchResult batch = sim::simulate_spmv_batch(
            prepared.decoded(config_.sim_threads), xs, ys, alpha, beta,
            sim_options());
        for (std::vector<float>& y : batch.y)
            result.per_vector.push_back(
                finish_run(prepared.nnz(), std::move(y), batch.cycles));
        result.batch_cycles = batch.batch_cycles;
    }

    result.batch_time_ms = batch_cycles_to_ms(result.batch_cycles);
    result.amortized_time_ms =
        result.batch_time_ms / static_cast<double>(xs.size());
    return result;
}

std::vector<std::uint32_t> Accelerator::compile_program(
    const PreparedMatrix& prepared, float alpha, float beta) const
{
    return encode::build_instructions(prepared.image(), alpha, beta);
}

RunResult Accelerator::run_program(const PreparedMatrix& prepared,
                                   std::span<const std::uint32_t> program,
                                   std::span<const float> x,
                                   std::span<const float> y) const
{
    const encode::ControlProgram decoded = encode::decode_instructions(
        program, prepared.image().params().ha_channels);
    encode::validate_program(decoded, prepared.image());
    return run(prepared, x, y, decoded.alpha, decoded.beta);
}

double Accelerator::estimate_time_ms(std::uint64_t rows, std::uint64_t cols,
                                     std::uint64_t nnz,
                                     double padding_ratio) const
{
    return core::estimate_time_ms(config_, rows, cols, nnz, padding_ratio);
}

double Accelerator::estimate_batch_time_ms(std::uint64_t rows,
                                           std::uint64_t cols,
                                           std::uint64_t nnz, unsigned batch,
                                           double padding_ratio) const
{
    return core::estimate_batch_time_ms(config_, rows, cols, nnz, batch,
                                        padding_ratio);
}

} // namespace serpens::core
