#include "sim/simulator.h"

#include <algorithm>

#include "encode/decode.h"
#include "util/bitpack.h"

namespace serpens::sim {

using encode::EncodedElement;
using sparse::index_t;

SimResult simulate_spmv(const encode::SerpensImage& img,
                        std::span<const float> x,
                        std::span<const float> y_in, float alpha, float beta,
                        const SimOptions& options)
{
    const encode::EncodeParams& p = img.params();
    SERPENS_CHECK(x.size() == img.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y_in.size() == img.rows(), "y length must equal matrix rows");

    if (options.verify_hazards)
        encode::verify_image(img);

    const unsigned lanes = p.pes_per_channel;
    const unsigned pes = p.total_pes();
    const encode::RowMapping mapping(p);

    // Private URAM accumulator banks: acc[pe][addr][half]. Addresses are
    // disjoint across PEs by construction (paper §3.3), so this layout is
    // exactly the hardware's.
    struct Word {
        float half[2] = {0.0f, 0.0f};
    };
    std::vector<std::vector<Word>> acc(
        pes, std::vector<Word>(p.addrs_per_pe()));

    CycleStats stats;

    // Per-channel cursor into its line stream.
    std::vector<std::size_t> cursor(img.channels(), 0);

    std::vector<float> xseg(p.window, 0.0f);

    // With double buffering, segment s+1's x-load overlaps segment s's
    // compute; only the load that is longer than the concurrent compute
    // contributes stall cycles. Track the previous segment's compute depth.
    std::uint64_t prev_compute_depth = 0;

    for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
        // --- RdX: stream this x segment into the BRAM copies. ---
        const index_t seg_base = static_cast<index_t>(seg) * p.window;
        const index_t seg_width =
            std::min<index_t>(p.window, img.cols() - seg_base);
        for (index_t i = 0; i < seg_width; ++i)
            xseg[i] = x[seg_base + i];
        const std::uint64_t load_cycles = ceil_div<std::uint64_t>(seg_width, 16);
        if (options.double_buffer_x && seg > 0) {
            // This load ran during the previous segment's compute.
            stats.x_load_cycles +=
                load_cycles > prev_compute_depth
                    ? load_cycles - prev_compute_depth
                    : 0;
        } else {
            stats.x_load_cycles += load_cycles;
        }
        stats.traffic.add_read(load_cycles * hbm::kLineBytes);

        // --- RdA / PEs: all channels advance in lockstep; the segment
        // completes when the deepest channel drains. ---
        std::uint32_t depth = 0;
        for (unsigned ch = 0; ch < img.channels(); ++ch)
            depth = std::max(depth, img.segment_lines(ch, seg));
        stats.compute_cycles += depth;
        prev_compute_depth = depth;

        for (unsigned ch = 0; ch < img.channels(); ++ch) {
            const std::uint32_t ch_depth = img.segment_lines(ch, seg);
            const hbm::ChannelStream& stream = img.channel(ch);
            for (std::uint32_t i = 0; i < ch_depth; ++i) {
                const hbm::Line512& line = stream.line(cursor[ch] + i);
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    ++stats.total_slots;
                    if (!e.valid()) {
                        ++stats.padding_slots;
                        continue;
                    }
                    const unsigned pe = ch * lanes + lane;
                    Word& w = acc[pe][e.pair_addr()];
                    w.half[e.half() ? 1 : 0] += e.value() * xseg[e.col_off()];
                }
            }
            cursor[ch] += ch_depth;
            stats.traffic.add_read(static_cast<std::uint64_t>(ch_depth) *
                                   hbm::kLineBytes);
        }

        stats.fill_cycles += options.fill_per_segment;
    }

    // --- RdY / CompY / WrY: read y_in and write y_out in parallel. ---
    SimResult result;
    result.y.resize(img.rows());
    for (index_t r = 0; r < img.rows(); ++r) {
        const encode::PeLocation loc = mapping.locate(r);
        const float a = acc[loc.pe][loc.addr].half[loc.half ? 1 : 0];
        result.y[r] = alpha * a + beta * y_in[r];
    }
    const std::uint64_t y_lines = ceil_div<std::uint64_t>(img.rows(), 16);
    stats.y_phase_cycles = y_lines;
    stats.fill_cycles += options.fill_y_phase;
    stats.traffic.add_read(y_lines * hbm::kLineBytes);
    stats.traffic.add_write(y_lines * hbm::kLineBytes);

    result.cycles = stats;
    return result;
}

} // namespace serpens::sim
