#include "sim/simulator.h"

#include <algorithm>

#include "encode/decode.h"
#include "util/bitpack.h"
#include "util/thread_pool.h"

namespace serpens::sim {

using encode::EncodedElement;
using sparse::index_t;

SimResult simulate_spmv(const encode::SerpensImage& img,
                        std::span<const float> x,
                        std::span<const float> y_in, float alpha, float beta,
                        const SimOptions& options)
{
    const encode::EncodeParams& p = img.params();
    SERPENS_CHECK(x.size() == img.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y_in.size() == img.rows(), "y length must equal matrix rows");

    if (options.verify_hazards)
        encode::verify_image(img);

    const unsigned lanes = p.pes_per_channel;
    const unsigned pes = p.total_pes();
    const encode::RowMapping mapping(p);

    // Private URAM accumulator banks, flattened into one contiguous bank:
    // acc[pe * addrs_per_pe + addr].half[]. Addresses are disjoint across
    // PEs by construction (paper §3.3), so this layout is exactly the
    // hardware's — and the per-PE slices are what make the per-channel loop
    // below race-free: channel ch touches only PEs [ch*lanes, (ch+1)*lanes).
    struct Word {
        float half[2] = {0.0f, 0.0f};
    };
    const std::uint32_t addrs = p.addrs_per_pe();
    std::vector<Word> acc(static_cast<std::size_t>(pes) * addrs);

    CycleStats stats;

    // Per-channel cursor into its line stream, and per-channel slot/padding
    // partials. Each channel is owned by exactly one worker per segment, so
    // these stay data-race-free; the partials are reduced once at the end
    // (integer sums, so the totals match the serial order exactly).
    std::vector<std::size_t> cursor(img.channels(), 0);
    std::vector<std::uint64_t> ch_slots(img.channels(), 0);
    std::vector<std::uint64_t> ch_padding(img.channels(), 0);
    std::vector<std::uint64_t> ch_lines(img.channels(), 0);

    std::vector<float> xseg(p.window, 0.0f);

    // With double buffering, segment s+1's x-load overlaps segment s's
    // compute; only the load that is longer than the concurrent compute
    // contributes stall cycles. Track the previous segment's compute depth.
    std::uint64_t prev_compute_depth = 0;

    for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
        // --- RdX: stream this x segment into the BRAM copies. ---
        const index_t seg_base = static_cast<index_t>(seg) * p.window;
        const index_t seg_width =
            std::min<index_t>(p.window, img.cols() - seg_base);
        for (index_t i = 0; i < seg_width; ++i)
            xseg[i] = x[seg_base + i];
        const std::uint64_t load_cycles = ceil_div<std::uint64_t>(seg_width, 16);
        if (options.double_buffer_x && seg > 0) {
            // This load ran during the previous segment's compute.
            stats.x_load_cycles +=
                load_cycles > prev_compute_depth
                    ? load_cycles - prev_compute_depth
                    : 0;
        } else {
            stats.x_load_cycles += load_cycles;
        }
        stats.traffic.add_read(load_cycles * hbm::kLineBytes);

        // --- RdA / PEs: all channels advance in lockstep; the segment
        // completes when the deepest channel drains. ---
        std::uint32_t depth = 0;
        for (unsigned ch = 0; ch < img.channels(); ++ch)
            depth = std::max(depth, img.segment_lines(ch, seg));
        stats.compute_cycles += depth;
        prev_compute_depth = depth;

        util::shared_parallel_for(options.threads, img.channels(), [&](std::size_t ch) {
            const std::uint32_t ch_depth =
                img.segment_lines(static_cast<unsigned>(ch), seg);
            const hbm::ChannelStream& stream =
                img.channel(static_cast<unsigned>(ch));
            Word* const bank =
                acc.data() + static_cast<std::size_t>(ch) * lanes * addrs;
            // Slot/padding tallies stay in registers inside the hot loop;
            // writing ch_slots[ch] per slot would false-share the counter
            // cache lines across workers.
            std::uint64_t slots = 0, padding = 0;
            for (std::uint32_t i = 0; i < ch_depth; ++i) {
                const hbm::Line512& line = stream.line(cursor[ch] + i);
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    ++slots;
                    if (!e.valid()) {
                        ++padding;
                        continue;
                    }
                    Word& w = bank[static_cast<std::size_t>(lane) * addrs +
                                   e.pair_addr()];
                    w.half[e.half() ? 1 : 0] += e.value() * xseg[e.col_off()];
                }
            }
            ch_slots[ch] += slots;
            ch_padding[ch] += padding;
            cursor[ch] += ch_depth;
            ch_lines[ch] += ch_depth;
        });

        stats.fill_cycles += options.fill_per_segment;
    }

    for (unsigned ch = 0; ch < img.channels(); ++ch) {
        stats.total_slots += ch_slots[ch];
        stats.padding_slots += ch_padding[ch];
        stats.traffic.add_read(ch_lines[ch] * hbm::kLineBytes);
    }

    // --- RdY / CompY / WrY: read y_in and write y_out in parallel. ---
    SimResult result;
    result.y.resize(img.rows());
    for (index_t r = 0; r < img.rows(); ++r) {
        const encode::PeLocation loc = mapping.locate(r);
        const float a = acc[static_cast<std::size_t>(loc.pe) * addrs + loc.addr]
                            .half[loc.half ? 1 : 0];
        result.y[r] = alpha * a + beta * y_in[r];
    }
    const std::uint64_t y_lines = ceil_div<std::uint64_t>(img.rows(), 16);
    stats.y_phase_cycles = y_lines;
    stats.fill_cycles += options.fill_y_phase;
    stats.traffic.add_read(y_lines * hbm::kLineBytes);
    stats.traffic.add_write(y_lines * hbm::kLineBytes);

    result.cycles = stats;
    return result;
}

namespace {

// Segment-phase cycle accounting for the decoded engines: the same
// arithmetic, in the same order, as the packed walk above — the depths were
// preserved per segment when the image was decoded, so no stream traversal
// is needed to reproduce every CycleStats term bit-identically.
CycleStats decoded_phase_stats(const DecodedImage& img,
                               const SimOptions& options)
{
    CycleStats stats;
    std::uint64_t prev_compute_depth = 0;
    for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
        const index_t seg_base =
            static_cast<index_t>(seg) * img.params().window;
        const index_t seg_width =
            std::min<index_t>(img.params().window, img.cols() - seg_base);
        const std::uint64_t load_cycles = ceil_div<std::uint64_t>(seg_width, 16);
        if (options.double_buffer_x && seg > 0) {
            stats.x_load_cycles +=
                load_cycles > prev_compute_depth
                    ? load_cycles - prev_compute_depth
                    : 0;
        } else {
            stats.x_load_cycles += load_cycles;
        }
        stats.traffic.add_read(load_cycles * hbm::kLineBytes);

        const std::uint32_t depth = img.segment_depth(seg);
        stats.compute_cycles += depth;
        prev_compute_depth = depth;
        stats.fill_cycles += options.fill_per_segment;
    }
    stats.total_slots = img.total_slots();
    stats.padding_slots = img.padding_slots();
    stats.traffic.add_read(img.total_lines() * hbm::kLineBytes);
    return stats;
}

void apply_y_phase(CycleStats& stats, index_t rows, const SimOptions& options)
{
    const std::uint64_t y_lines = ceil_div<std::uint64_t>(rows, 16);
    stats.y_phase_cycles = y_lines;
    stats.fill_cycles += options.fill_y_phase;
    stats.traffic.add_read(y_lines * hbm::kLineBytes);
    stats.traffic.add_write(y_lines * hbm::kLineBytes);
}

// Batched-device accounting core, shared by the packed-image and decoded
// overloads of batch_cycle_stats. The per-pass arithmetic is the single
// SpMV phase loop above with the x/y streams widened to the pass's column
// block — at batch = 1 (one pass, one column) every term degenerates to
// exactly decoded_phase_stats + apply_y_phase, which is the B=1
// bit-identity the model-differential suite pins.
template <typename DepthFn>
BatchCycleStats batch_stats_impl(unsigned num_segments, index_t rows,
                                 index_t cols, index_t window,
                                 std::uint64_t total_slots,
                                 std::uint64_t padding_slots,
                                 std::uint64_t total_lines, DepthFn depth_of,
                                 std::size_t batch, const SimOptions& options)
{
    SERPENS_CHECK(batch >= 1, "batch must contain at least one vector");
    SERPENS_CHECK(options.batch_columns >= 1,
                  "batch_columns must be positive");

    BatchCycleStats s;
    s.batch = static_cast<unsigned>(batch);
    const std::uint64_t block = options.batch_columns;
    s.passes =
        static_cast<unsigned>(ceil_div<std::uint64_t>(batch, block));

    for (unsigned pass = 0; pass < s.passes; ++pass) {
        const std::uint64_t pass_cols = std::min<std::uint64_t>(
            block, static_cast<std::uint64_t>(batch) - pass * block);
        std::uint64_t prev_compute_depth = 0;
        for (unsigned seg = 0; seg < num_segments; ++seg) {
            const index_t seg_base = static_cast<index_t>(seg) * window;
            const index_t seg_width = std::min<index_t>(window, cols - seg_base);
            // The single x channel streams pass_cols columns of this
            // segment, 16 floats per line.
            const std::uint64_t load_cycles = ceil_div<std::uint64_t>(
                static_cast<std::uint64_t>(seg_width) * pass_cols, 16);
            if (options.double_buffer_x && seg > 0) {
                s.x_load_cycles += load_cycles > prev_compute_depth
                                       ? load_cycles - prev_compute_depth
                                       : 0;
            } else {
                s.x_load_cycles += load_cycles;
            }
            s.traffic.add_read(load_cycles * hbm::kLineBytes);

            // One A-stream traversal feeds the whole column block: each
            // line still occupies one cycle (the PEs multiply-accumulate
            // pass_cols-wide per element, Sextans §3).
            const std::uint32_t depth = depth_of(seg);
            s.compute_cycles += depth;
            prev_compute_depth = depth;
            s.fill_cycles += options.fill_per_segment;
        }
        s.total_slots += total_slots;
        s.padding_slots += padding_slots;
        s.traffic.add_read(total_lines * hbm::kLineBytes);

        const std::uint64_t y_lines = ceil_div<std::uint64_t>(
            static_cast<std::uint64_t>(rows) * pass_cols, 16);
        s.y_phase_cycles += y_lines;
        s.fill_cycles += options.fill_y_phase;
        s.traffic.add_read(y_lines * hbm::kLineBytes);
        s.traffic.add_write(y_lines * hbm::kLineBytes);
    }
    return s;
}

// Blocked-accumulator walk of one channel with the batch width as a
// compile-time constant: the b-loop fully unrolls (and vectorizes at 4/8),
// which is where the per-element amortization over the single-vector walk
// comes from. Unrolling never reorders ops within a column, so per-column
// results stay bit-identical to the runtime-width fallback.
template <std::size_t B>
void walk_channel_batch(const DecodedImage::Channel& c, float* bank,
                        const float* xi)
{
    const std::uint32_t* const off = c.acc_off.data();
    const std::uint32_t* const col = c.col.data();
    const float* const val = c.value.data();
    const std::size_t n = c.value.size();
    for (std::size_t i = 0; i < n; ++i) {
        float* const a = bank + static_cast<std::size_t>(off[i]) * B;
        const float* const xv = xi + static_cast<std::size_t>(col[i]) * B;
        const float v = val[i];
        for (std::size_t b = 0; b < B; ++b)
            a[b] += v * xv[b];
    }
}

void walk_channel_batch_n(const DecodedImage::Channel& c, float* bank,
                          const float* xi, std::size_t batch)
{
    switch (batch) {
    case 1: return walk_channel_batch<1>(c, bank, xi);
    case 2: return walk_channel_batch<2>(c, bank, xi);
    case 3: return walk_channel_batch<3>(c, bank, xi);
    case 4: return walk_channel_batch<4>(c, bank, xi);
    case 5: return walk_channel_batch<5>(c, bank, xi);
    case 6: return walk_channel_batch<6>(c, bank, xi);
    case 7: return walk_channel_batch<7>(c, bank, xi);
    case 8: return walk_channel_batch<8>(c, bank, xi);
    default:
        break;
    }
    const std::uint32_t* const off = c.acc_off.data();
    const std::uint32_t* const col = c.col.data();
    const float* const val = c.value.data();
    const std::size_t n = c.value.size();
    for (std::size_t i = 0; i < n; ++i) {
        float* const a = bank + static_cast<std::size_t>(off[i]) * batch;
        const float* const xv = xi + static_cast<std::size_t>(col[i]) * batch;
        const float v = val[i];
        for (std::size_t b = 0; b < batch; ++b)
            a[b] += v * xv[b];
    }
}

} // namespace

SimResult simulate_spmv_decoded(const DecodedImage& img,
                                std::span<const float> x,
                                std::span<const float> y_in, float alpha,
                                float beta, const SimOptions& options)
{
    SERPENS_CHECK(x.size() == img.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y_in.size() == img.rows(), "y length must equal matrix rows");

    const unsigned lanes = img.params().pes_per_channel;
    const std::uint32_t ua = img.used_addrs();
    std::vector<float> acc(
        static_cast<std::size_t>(img.channels()) * lanes * ua * 2, 0.0f);

    CycleStats stats = decoded_phase_stats(img, options);

    // The hot loop: one fused multiply-add per decoded element. Elements
    // are stored in the packed walk order and channels own disjoint
    // accumulator banks, so the FP32 accumulation order per URAM slot is
    // exactly the packed engine's, for every thread count.
    const float* const xp = x.data();
    util::shared_parallel_for(options.threads, img.channels(), [&](std::size_t ch) {
        const DecodedImage::Channel& c =
            img.channel(static_cast<unsigned>(ch));
        float* const bank = acc.data() + ch * lanes * ua * 2;
        const std::uint32_t* const off = c.acc_off.data();
        const std::uint32_t* const col = c.col.data();
        const float* const val = c.value.data();
        const std::size_t n = c.value.size();
        for (std::size_t i = 0; i < n; ++i)
            bank[off[i]] += val[i] * xp[col[i]];
    });

    SimResult result;
    result.y.resize(img.rows());
    const encode::RowMapping mapping(img.params());
    for (index_t r = 0; r < img.rows(); ++r) {
        const encode::PeLocation loc = mapping.locate(r);
        // Address-major bank layout (see DecodedImage): channel slice,
        // then (addr * lanes + lane) word — sequential in r.
        const std::size_t ch = loc.pe / lanes;
        const std::size_t lane = loc.pe % lanes;
        const float a =
            acc[ch * lanes * ua * 2 +
                (static_cast<std::size_t>(loc.addr) * lanes + lane) * 2 +
                (loc.half ? 1 : 0)];
        result.y[r] = alpha * a + beta * y_in[r];
    }
    apply_y_phase(stats, img.rows(), options);

    result.cycles = stats;
    return result;
}

SimBatchResult simulate_spmv_batch(const DecodedImage& img,
                                   std::span<const std::vector<float>> xs,
                                   std::span<const std::vector<float>> ys_in,
                                   float alpha, float beta,
                                   const SimOptions& options)
{
    SERPENS_CHECK(!xs.empty(), "batch must contain at least one vector");
    SERPENS_CHECK(xs.size() == ys_in.size(),
                  "batch x and y_in counts must match");
    for (const std::vector<float>& x : xs)
        SERPENS_CHECK(x.size() == img.cols(), "x length must equal matrix cols");
    for (const std::vector<float>& y : ys_in)
        SERPENS_CHECK(y.size() == img.rows(), "y length must equal matrix rows");

    const std::size_t batch = xs.size();
    const unsigned lanes = img.params().pes_per_channel;
    const std::uint32_t ua = img.used_addrs();

    // Column-interleaved right-hand sides: xi[col * B + b], so the B
    // multiplies of one decoded element read consecutive floats. Repacking
    // costs O(B * cols) once; the walk it feeds is O(nnz * B).
    std::vector<float> xi(static_cast<std::size_t>(img.cols()) * batch);
    for (index_t c = 0; c < img.cols(); ++c)
        for (std::size_t b = 0; b < batch; ++b)
            xi[static_cast<std::size_t>(c) * batch + b] = xs[b][c];

    // Blocked accumulator: B consecutive floats per URAM half-word. Each
    // column's accumulator sequence is independent, so per-column results
    // are bit-identical to a single-vector run for every batch width.
    std::vector<float> acc(static_cast<std::size_t>(img.channels()) * lanes *
                               ua * 2 * batch,
                           0.0f);

    CycleStats stats = decoded_phase_stats(img, options);

    util::shared_parallel_for(options.threads, img.channels(), [&](std::size_t ch) {
        walk_channel_batch_n(img.channel(static_cast<unsigned>(ch)),
                             acc.data() + ch * lanes * ua * 2 * batch,
                             xi.data(), batch);
    });

    SimBatchResult result;
    result.y.resize(batch);
    for (std::vector<float>& y : result.y)
        y.resize(img.rows());
    const encode::RowMapping mapping(img.params());
    for (index_t r = 0; r < img.rows(); ++r) {
        const encode::PeLocation loc = mapping.locate(r);
        // Address-major bank layout: consecutive rows read consecutive
        // B-wide blocks, so this loop streams the blocked bank instead of
        // hopping used_addrs * B floats per row.
        const std::size_t ch = loc.pe / lanes;
        const std::size_t lane = loc.pe % lanes;
        const std::size_t base =
            (ch * lanes * ua * 2 +
             (static_cast<std::size_t>(loc.addr) * lanes + lane) * 2 +
             (loc.half ? 1 : 0)) *
            batch;
        for (std::size_t b = 0; b < batch; ++b)
            result.y[b][r] = alpha * acc[base + b] + beta * ys_in[b][r];
    }
    apply_y_phase(stats, img.rows(), options);

    result.cycles = stats;
    result.batch_cycles = batch_cycle_stats(img, batch, options);
    return result;
}

BatchCycleStats batch_cycle_stats(const encode::SerpensImage& img,
                                  std::size_t batch, const SimOptions& options)
{
    return batch_stats_impl(
        img.num_segments(), img.rows(), img.cols(), img.params().window,
        img.stats().total_slots, img.stats().padding_slots,
        img.stats().total_lines,
        [&](unsigned seg) {
            std::uint32_t depth = 0;
            for (unsigned ch = 0; ch < img.channels(); ++ch)
                depth = std::max(depth, img.segment_lines(ch, seg));
            return depth;
        },
        batch, options);
}

BatchCycleStats batch_cycle_stats(const DecodedImage& img, std::size_t batch,
                                  const SimOptions& options)
{
    return batch_stats_impl(
        img.num_segments(), img.rows(), img.cols(), img.params().window,
        img.total_slots(), img.padding_slots(), img.total_lines(),
        [&](unsigned seg) { return img.segment_depth(seg); }, batch, options);
}

} // namespace serpens::sim
