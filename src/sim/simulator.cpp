#include "sim/simulator.h"

#include <algorithm>

#include "encode/decode.h"
#include "util/bitpack.h"
#include "util/thread_pool.h"

namespace serpens::sim {

using encode::EncodedElement;
using sparse::index_t;

SimResult simulate_spmv(const encode::SerpensImage& img,
                        std::span<const float> x,
                        std::span<const float> y_in, float alpha, float beta,
                        const SimOptions& options)
{
    const encode::EncodeParams& p = img.params();
    SERPENS_CHECK(x.size() == img.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y_in.size() == img.rows(), "y length must equal matrix rows");

    if (options.verify_hazards)
        encode::verify_image(img);

    const unsigned lanes = p.pes_per_channel;
    const unsigned pes = p.total_pes();
    const encode::RowMapping mapping(p);

    // Private URAM accumulator banks, flattened into one contiguous bank:
    // acc[pe * addrs_per_pe + addr].half[]. Addresses are disjoint across
    // PEs by construction (paper §3.3), so this layout is exactly the
    // hardware's — and the per-PE slices are what make the per-channel loop
    // below race-free: channel ch touches only PEs [ch*lanes, (ch+1)*lanes).
    struct Word {
        float half[2] = {0.0f, 0.0f};
    };
    const std::uint32_t addrs = p.addrs_per_pe();
    std::vector<Word> acc(static_cast<std::size_t>(pes) * addrs);

    CycleStats stats;

    // Per-channel cursor into its line stream, and per-channel slot/padding
    // partials. Each channel is owned by exactly one worker per segment, so
    // these stay data-race-free; the partials are reduced once at the end
    // (integer sums, so the totals match the serial order exactly).
    std::vector<std::size_t> cursor(img.channels(), 0);
    std::vector<std::uint64_t> ch_slots(img.channels(), 0);
    std::vector<std::uint64_t> ch_padding(img.channels(), 0);
    std::vector<std::uint64_t> ch_lines(img.channels(), 0);

    util::ThreadPool pool(std::min(util::resolve_threads(options.threads),
                                   std::max(1u, img.channels())));

    std::vector<float> xseg(p.window, 0.0f);

    // With double buffering, segment s+1's x-load overlaps segment s's
    // compute; only the load that is longer than the concurrent compute
    // contributes stall cycles. Track the previous segment's compute depth.
    std::uint64_t prev_compute_depth = 0;

    for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
        // --- RdX: stream this x segment into the BRAM copies. ---
        const index_t seg_base = static_cast<index_t>(seg) * p.window;
        const index_t seg_width =
            std::min<index_t>(p.window, img.cols() - seg_base);
        for (index_t i = 0; i < seg_width; ++i)
            xseg[i] = x[seg_base + i];
        const std::uint64_t load_cycles = ceil_div<std::uint64_t>(seg_width, 16);
        if (options.double_buffer_x && seg > 0) {
            // This load ran during the previous segment's compute.
            stats.x_load_cycles +=
                load_cycles > prev_compute_depth
                    ? load_cycles - prev_compute_depth
                    : 0;
        } else {
            stats.x_load_cycles += load_cycles;
        }
        stats.traffic.add_read(load_cycles * hbm::kLineBytes);

        // --- RdA / PEs: all channels advance in lockstep; the segment
        // completes when the deepest channel drains. ---
        std::uint32_t depth = 0;
        for (unsigned ch = 0; ch < img.channels(); ++ch)
            depth = std::max(depth, img.segment_lines(ch, seg));
        stats.compute_cycles += depth;
        prev_compute_depth = depth;

        pool.parallel_for(img.channels(), [&](std::size_t ch) {
            const std::uint32_t ch_depth =
                img.segment_lines(static_cast<unsigned>(ch), seg);
            const hbm::ChannelStream& stream =
                img.channel(static_cast<unsigned>(ch));
            Word* const bank =
                acc.data() + static_cast<std::size_t>(ch) * lanes * addrs;
            // Slot/padding tallies stay in registers inside the hot loop;
            // writing ch_slots[ch] per slot would false-share the counter
            // cache lines across workers.
            std::uint64_t slots = 0, padding = 0;
            for (std::uint32_t i = 0; i < ch_depth; ++i) {
                const hbm::Line512& line = stream.line(cursor[ch] + i);
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    ++slots;
                    if (!e.valid()) {
                        ++padding;
                        continue;
                    }
                    Word& w = bank[static_cast<std::size_t>(lane) * addrs +
                                   e.pair_addr()];
                    w.half[e.half() ? 1 : 0] += e.value() * xseg[e.col_off()];
                }
            }
            ch_slots[ch] += slots;
            ch_padding[ch] += padding;
            cursor[ch] += ch_depth;
            ch_lines[ch] += ch_depth;
        });

        stats.fill_cycles += options.fill_per_segment;
    }

    for (unsigned ch = 0; ch < img.channels(); ++ch) {
        stats.total_slots += ch_slots[ch];
        stats.padding_slots += ch_padding[ch];
        stats.traffic.add_read(ch_lines[ch] * hbm::kLineBytes);
    }

    // --- RdY / CompY / WrY: read y_in and write y_out in parallel. ---
    SimResult result;
    result.y.resize(img.rows());
    for (index_t r = 0; r < img.rows(); ++r) {
        const encode::PeLocation loc = mapping.locate(r);
        const float a = acc[static_cast<std::size_t>(loc.pe) * addrs + loc.addr]
                            .half[loc.half ? 1 : 0];
        result.y[r] = alpha * a + beta * y_in[r];
    }
    const std::uint64_t y_lines = ceil_div<std::uint64_t>(img.rows(), 16);
    stats.y_phase_cycles = y_lines;
    stats.fill_cycles += options.fill_y_phase;
    stats.traffic.add_read(y_lines * hbm::kLineBytes);
    stats.traffic.add_write(y_lines * hbm::kLineBytes);

    result.cycles = stats;
    return result;
}

} // namespace serpens::sim
