// Decode-once execution image (host-side; Sextans-style SpMM amortization).
//
// The packed SerpensImage is exactly what the hardware streams from HBM:
// 64-bit lane elements whose fields must be unpacked on every walk. The
// simulator's iterative workloads (PageRank, BFS rounds, batched serving)
// walk the *same* image hundreds of times, so DecodedImage expands each
// channel's lane stream exactly once into a cache-friendly SoA layout:
//
//   acc_off[i]  channel-local accumulator offset, half-select folded in:
//               ((pair_addr * lanes + lane) << 1) | half — address-major,
//               lane-interleaved, so consecutive rows of a channel sit in
//               consecutive bank words and the engines' y-extraction
//               streams the bank sequentially instead of striding by
//               used_addrs (the stride grows with the batch width; at B=8
//               it was a 16 KiB hop per row)
//   col[i]      absolute column index (segment base + col_off folded in)
//   value[i]    the FP32 value
//
// Padding slots are elided entirely — they contribute no FP op, so skipping
// them preserves the exact per-accumulator addition order of the packed
// walk (elements stay in segment-major, line, lane order within a channel).
// Per-segment extents (seg_begin) and line counts are preserved so every
// CycleStats term of the packed walk stays derivable; simulate results are
// bit-identical between the packed and decoded engines.
//
// `used_addrs` shrinks the accumulator bank from the architectural
// U*D address space to the addresses the matrix's rows can actually reach,
// which is what makes the decoded hot loop cache-resident for typical
// matrices (65K rows -> 256 addresses/PE instead of 12288).
#pragma once

#include <cstdint>
#include <vector>

#include "encode/image.h"

namespace serpens::sim {

struct DecodeOptions {
    // Worker threads for the per-channel decode (1 = serial, 0 = one per
    // hardware thread); the decoded arrays are identical for every count.
    unsigned threads = 1;
    // Verify the packed image's hazard invariant once, here, instead of on
    // every simulate call.
    bool verify_hazards = true;
};

class DecodedImage {
public:
    struct Channel {
        // SoA views of the valid (non-padding) elements in packed walk
        // order: segment-major, then line, then lane.
        std::vector<std::uint32_t> acc_off;
        std::vector<std::uint32_t> col;
        std::vector<float> value;
        // Element extent of segment s is [seg_begin[s], seg_begin[s + 1]).
        std::vector<std::size_t> seg_begin;
        // Lines this channel contributes per segment (the packed
        // segment_lines row), and their total.
        std::vector<std::uint32_t> seg_lines;
        std::uint64_t total_lines = 0;
    };

    // Expand a packed image. Throws CheckError if an element addresses a
    // URAM word beyond the image's row range (a malformed image; the packed
    // engine would silently accumulate into a dead slot).
    static DecodedImage decode(const encode::SerpensImage& img,
                               const DecodeOptions& options = {});

    const encode::EncodeParams& params() const { return params_; }
    sparse::index_t rows() const { return rows_; }
    sparse::index_t cols() const { return cols_; }
    unsigned num_segments() const { return num_segments_; }
    unsigned channels() const { return static_cast<unsigned>(channels_.size()); }
    const Channel& channel(unsigned c) const { return channels_[c]; }

    // URAM addresses per PE actually reachable from this image's rows; the
    // decoded accumulator bank is channels * lanes * used_addrs * 2 floats.
    std::uint32_t used_addrs() const { return used_addrs_; }

    // Max over channels of segment s's line count (the packed walk's
    // compute-cycle depth for the segment).
    std::uint32_t segment_depth(unsigned s) const { return seg_depth_[s]; }

    // Slot tallies of one full walk (identical to the packed engine's).
    std::uint64_t total_slots() const { return total_slots_; }
    std::uint64_t padding_slots() const { return padding_slots_; }
    std::uint64_t total_lines() const { return total_lines_; }

    // Valid (non-padding) elements across all channels.
    std::uint64_t nnz() const { return total_slots_ - padding_slots_; }

    // Resident bytes of the expansion: the per-channel SoA arrays and
    // segment tables, plus the single-vector accumulator bank the decoded
    // walk allocates (channels * lanes * used_addrs * 2 floats). Together
    // with the packed image this is a prepared matrix's full working set —
    // what the serving registry charges against its byte budget.
    std::uint64_t memory_bytes() const;

private:
    encode::EncodeParams params_;
    sparse::index_t rows_ = 0;
    sparse::index_t cols_ = 0;
    unsigned num_segments_ = 0;
    std::uint32_t used_addrs_ = 0;
    std::vector<Channel> channels_;
    std::vector<std::uint32_t> seg_depth_;
    std::uint64_t total_slots_ = 0;
    std::uint64_t padding_slots_ = 0;
    std::uint64_t total_lines_ = 0;
};

} // namespace serpens::sim
