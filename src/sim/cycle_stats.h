// Cycle breakdown of one simulated Serpens run.
//
// The components mirror the phase structure of the accelerator (paper §3.2 /
// Eq. 4): sequential x-segment loads, per-segment sparse compute, the final
// y read/modify/write pass, and pipeline fill overheads between phases.
// Everything is exposed separately so tests can predict each term exactly.
#pragma once

#include <cstdint>

#include "hbm/channel.h"

namespace serpens::sim {

struct CycleStats {
    std::uint64_t x_load_cycles = 0;   // sum over segments of ceil(Wseg/16)
    std::uint64_t compute_cycles = 0;  // sum over segments of max-channel depth
    std::uint64_t y_phase_cycles = 0;  // ceil(M/16): y_in read || y_out write
    std::uint64_t fill_cycles = 0;     // pipeline fill/drain overhead
    std::uint64_t total_slots = 0;     // PE element slots walked (incl. padding)
    std::uint64_t padding_slots = 0;   // null elements seen
    hbm::TrafficCounter traffic;       // off-chip bytes moved

    std::uint64_t total_cycles() const
    {
        return x_load_cycles + compute_cycles + y_phase_cycles + fill_cycles;
    }

    double padding_ratio() const
    {
        return total_slots == 0
                   ? 0.0
                   : static_cast<double>(padding_slots) /
                         static_cast<double>(total_slots);
    }
};

} // namespace serpens::sim
