// Cycle breakdown of one simulated Serpens run.
//
// The components mirror the phase structure of the accelerator (paper §3.2 /
// Eq. 4): sequential x-segment loads, per-segment sparse compute, the final
// y read/modify/write pass, and pipeline fill overheads between phases.
// Everything is exposed separately so tests can predict each term exactly.
#pragma once

#include <cstdint>

#include "hbm/channel.h"

namespace serpens::sim {

struct CycleStats {
    std::uint64_t x_load_cycles = 0;   // sum over segments of ceil(Wseg/16)
    std::uint64_t compute_cycles = 0;  // sum over segments of max-channel depth
    std::uint64_t y_phase_cycles = 0;  // ceil(M/16): y_in read || y_out write
    std::uint64_t fill_cycles = 0;     // pipeline fill/drain overhead
    std::uint64_t total_slots = 0;     // PE element slots walked (incl. padding)
    std::uint64_t padding_slots = 0;   // null elements seen
    hbm::TrafficCounter traffic;       // off-chip bytes moved

    std::uint64_t total_cycles() const
    {
        return x_load_cycles + compute_cycles + y_phase_cycles + fill_cycles;
    }

    double padding_ratio() const
    {
        return total_slots == 0
                   ? 0.0
                   : static_cast<double>(padding_slots) /
                         static_cast<double>(total_slots);
    }
};

// Cycle breakdown of one batched (SpMM-mode) device invocation over B
// right-hand sides — the Sextans-style extension where the sparse A stream
// is shared across a block of dense columns instead of being re-streamed
// per vector:
//
//   - A-stream:   traversed once per `passes` column blocks of up to
//                 `batch_columns` columns (Sextans §3: each streamed
//                 element feeds the whole block in one cycle), so
//                 compute_cycles = passes * single-SpMV compute depth.
//   - x-stream:   B-scaled: each pass streams its block's columns of every
//                 x segment through the single x channel
//                 (ceil(Wseg * block / 16) cycles per segment).
//   - y-stream:   B-scaled the same way (ceil(M * block / 16) per pass).
//   - fills:      paid once per pass, not once per vector.
//
// The six accounting fields mirror CycleStats term for term, and at B = 1
// (one pass, one column) every field is bit-identical to the CycleStats of
// a single SpMV — the model-differential invariant tests/test_batch_model
// pins. Amortized per-SpMV device time is total over B, and is monotone
// non-increasing in B over power-of-two widths.
struct BatchCycleStats {
    unsigned batch = 1;   // B right-hand sides in this invocation
    unsigned passes = 1;  // A-stream traversals: ceil(B / batch_columns)

    std::uint64_t x_load_cycles = 0;   // B-scaled x segment streaming
    std::uint64_t compute_cycles = 0;  // passes * per-pass max-channel depth
    std::uint64_t y_phase_cycles = 0;  // B-scaled y read/modify/write
    std::uint64_t fill_cycles = 0;     // per-pass segment + y-phase fills
    std::uint64_t total_slots = 0;     // PE slots walked across all passes
    std::uint64_t padding_slots = 0;   // null elements across all passes
    hbm::TrafficCounter traffic;       // off-chip bytes for the whole batch

    std::uint64_t total_cycles() const
    {
        return x_load_cycles + compute_cycles + y_phase_cycles + fill_cycles;
    }

    double padding_ratio() const
    {
        return total_slots == 0
                   ? 0.0
                   : static_cast<double>(padding_slots) /
                         static_cast<double>(total_slots);
    }
};

} // namespace serpens::sim
