#include "sim/decoded_image.h"

#include <algorithm>

#include "encode/decode.h"
#include "util/thread_pool.h"

namespace serpens::sim {

using encode::EncodedElement;

DecodedImage DecodedImage::decode(const encode::SerpensImage& img,
                                  const DecodeOptions& options)
{
    if (options.verify_hazards)
        encode::verify_image(img);

    DecodedImage d;
    d.params_ = img.params();
    d.rows_ = img.rows();
    d.cols_ = img.cols();
    d.num_segments_ = img.num_segments();

    // Highest PE-local URAM address any row of this matrix maps to (the
    // address is monotone in the row index for both mapping modes).
    const encode::RowMapping mapping(d.params_);
    d.used_addrs_ = img.rows() > 0
                        ? mapping.locate(img.rows() - 1).addr + 1
                        : 1;

    const unsigned lanes = d.params_.pes_per_channel;
    const sparse::index_t window = d.params_.window;
    const std::uint32_t ua = d.used_addrs_;
    d.channels_.resize(img.channels());

    util::shared_parallel_for(options.threads, img.channels(), [&](std::size_t ch) {
        const hbm::ChannelStream& stream =
            img.channel(static_cast<unsigned>(ch));
        Channel& c = d.channels_[ch];
        c.seg_begin.reserve(d.num_segments_ + 1);
        c.seg_lines.resize(d.num_segments_);
        const std::size_t slot_bound = stream.size() * lanes;
        c.acc_off.reserve(slot_bound);
        c.col.reserve(slot_bound);
        c.value.reserve(slot_bound);

        std::size_t cursor = 0;
        for (unsigned seg = 0; seg < d.num_segments_; ++seg) {
            const std::uint32_t lines =
                img.segment_lines(static_cast<unsigned>(ch), seg);
            c.seg_lines[seg] = lines;
            c.seg_begin.push_back(c.value.size());
            const std::uint32_t seg_base =
                static_cast<std::uint32_t>(seg) * window;
            for (std::uint32_t i = 0; i < lines; ++i) {
                const hbm::Line512& line = stream.line(cursor + i);
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    if (!e.valid())
                        continue;
                    SERPENS_ASSERT(e.pair_addr() < ua,
                                   "element addresses a URAM word beyond the "
                                   "image's row range");
                    c.acc_off.push_back(
                        ((e.pair_addr() * lanes + lane) << 1) |
                        (e.half() ? 1u : 0u));
                    c.col.push_back(seg_base + e.col_off());
                    c.value.push_back(e.value());
                }
            }
            cursor += lines;
        }
        c.seg_begin.push_back(c.value.size());
        c.total_lines = cursor;
        c.acc_off.shrink_to_fit();
        c.col.shrink_to_fit();
        c.value.shrink_to_fit();
    });

    d.seg_depth_.assign(d.num_segments_, 0);
    for (const Channel& c : d.channels_) {
        for (unsigned s = 0; s < d.num_segments_; ++s)
            d.seg_depth_[s] = std::max(d.seg_depth_[s], c.seg_lines[s]);
        d.total_lines_ += c.total_lines;
        d.total_slots_ += c.total_lines * lanes;
        d.padding_slots_ +=
            c.total_lines * lanes - static_cast<std::uint64_t>(c.value.size());
    }
    return d;
}

std::uint64_t DecodedImage::memory_bytes() const
{
    std::uint64_t bytes = 0;
    for (const Channel& c : channels_) {
        bytes += c.acc_off.size() * sizeof(std::uint32_t);
        bytes += c.col.size() * sizeof(std::uint32_t);
        bytes += c.value.size() * sizeof(float);
        bytes += c.seg_begin.size() * sizeof(std::size_t);
        bytes += c.seg_lines.size() * sizeof(std::uint32_t);
    }
    bytes += seg_depth_.size() * sizeof(std::uint32_t);
    // The decoded walk's accumulator bank: 2 half-words per URAM address,
    // truncated to the row-reachable address range.
    bytes += static_cast<std::uint64_t>(channels_.size()) *
             params_.pes_per_channel * used_addrs_ * 2 * sizeof(float);
    return bytes;
}

} // namespace serpens::sim
