// Cycle-level functional simulator of the Serpens dataflow.
//
// Consumes the same encoded channel streams a real Serpens reads from HBM
// and reproduces, cycle for cycle, the statically scheduled pipeline:
//
//   for each x segment:                      (paper Fig. 1b)
//     RdX   : stream the segment into BRAM   -> ceil(Wseg/16) cycles
//     RdA*  : each A channel feeds its 8 PEs one 512-bit line per cycle;
//             PEs multiply-accumulate into their private URAM banks;
//             segment latency = the deepest channel's line count
//   RdY/CompY/WrY: stream y_in, apply alpha/beta against the on-chip
//             accumulators, stream y_out     -> ceil(M/16) cycles
//
// Because the hardware is II=1 and statically scheduled, walking the streams
// in order *is* the cycle-accurate execution; hazards were discharged by the
// encoder and are re-verified here when `verify_hazards` is set.
//
// Floating-point results follow hardware semantics: FP32 accumulation in
// exactly the schedule order each PE sees.
#pragma once

#include <span>
#include <vector>

#include "encode/image.h"
#include "sim/cycle_stats.h"

namespace serpens::sim {

struct SimOptions {
    bool verify_hazards = true;       // re-check the encoder's invariant
    unsigned fill_per_segment = 48;   // pipeline fill cycles per segment phase
    unsigned fill_y_phase = 48;       // fill cycles for the final y pass
    // Extension (not in the published design): double-buffer the x-segment
    // BRAMs so segment s+1 streams in while segment s computes. Costs 2x the
    // x-buffer BRAMs (see core::resource_model); hides the K/16 term of
    // Eq. 4 behind compute.
    bool double_buffer_x = false;
    // Host-side worker threads for the per-channel lane-decode loop
    // (1 = serial, 0 = one per hardware thread). Channels write disjoint PE
    // accumulators (paper §3.3 address disjointness), so the simulated y and
    // CycleStats are bit-identical for every thread count.
    unsigned threads = 1;
};

struct SimResult {
    std::vector<float> y;
    CycleStats cycles;
};

// Run y = alpha * A * x + beta * y_in on the encoded image.
// x must have img.cols() entries and y_in img.rows().
SimResult simulate_spmv(const encode::SerpensImage& img,
                        std::span<const float> x,
                        std::span<const float> y_in, float alpha, float beta,
                        const SimOptions& options = {});

} // namespace serpens::sim
