// Cycle-level functional simulator of the Serpens dataflow.
//
// Consumes the same encoded channel streams a real Serpens reads from HBM
// and reproduces, cycle for cycle, the statically scheduled pipeline:
//
//   for each x segment:                      (paper Fig. 1b)
//     RdX   : stream the segment into BRAM   -> ceil(Wseg/16) cycles
//     RdA*  : each A channel feeds its 8 PEs one 512-bit line per cycle;
//             PEs multiply-accumulate into their private URAM banks;
//             segment latency = the deepest channel's line count
//   RdY/CompY/WrY: stream y_in, apply alpha/beta against the on-chip
//             accumulators, stream y_out     -> ceil(M/16) cycles
//
// Because the hardware is II=1 and statically scheduled, walking the streams
// in order *is* the cycle-accurate execution; hazards were discharged by the
// encoder and are re-verified here when `verify_hazards` is set.
//
// Two host-side engines walk the same machine:
//
//   simulate_spmv          the packed engine and differential reference:
//                          unpacks every 64-bit lane element from the HBM
//                          image on every call, exactly as first written.
//   simulate_spmv_decoded  decode-once engine: runs off a DecodedImage that
//                          expanded the lane streams once, so repeated SpMV
//                          on a fixed matrix skips per-element unpacking.
//   simulate_spmv_batch    one decoded pass over B right-hand-side vectors
//                          with a blocked accumulator (Sextans-style SpMM):
//                          stream traversal is amortized across columns.
//
// All engines produce bit-identical y and CycleStats for every thread count
// and batch width (pinned by tests/test_decoded_sim.cpp): same FP32
// accumulation order per URAM slot, same integer cycle arithmetic.
#pragma once

#include <span>
#include <vector>

#include "encode/image.h"
#include "sim/cycle_stats.h"
#include "sim/decoded_image.h"

namespace serpens::sim {

struct SimOptions {
    bool verify_hazards = true;       // re-check the encoder's invariant
                                      // (packed engine; the decoded engines
                                      // verify once at decode time instead)
    unsigned fill_per_segment = 48;   // pipeline fill cycles per segment phase
    unsigned fill_y_phase = 48;       // fill cycles for the final y pass
    // Extension (not in the published design): double-buffer the x-segment
    // BRAMs so segment s+1 streams in while segment s computes. Costs 2x the
    // x-buffer BRAMs (see core::resource_model); hides the K/16 term of
    // Eq. 4 behind compute.
    bool double_buffer_x = false;
    // Host-side worker threads for the per-channel compute loop
    // (1 = serial, 0 = one per hardware thread). Channels write disjoint PE
    // accumulators (paper §3.3 address disjointness), so the simulated y and
    // CycleStats are bit-identical for every thread count.
    unsigned threads = 1;
    // Device SpMM mode (BatchCycleStats): dense columns one A-stream pass
    // feeds — the column block each PE multiply-accumulates per streamed
    // element (Sextans §3 fixes 8) and the number of x columns the
    // segment BRAMs can hold resident. Batches wider than this take
    // ceil(B / batch_columns) passes over the sparse stream.
    unsigned batch_columns = 8;
};

struct SimResult {
    std::vector<float> y;
    CycleStats cycles;
};

// One decoded pass over a batch of right-hand sides. `cycles` is the
// per-vector cycle breakdown — identical to what one packed run over any
// single column reports (the published Serpens baseline, which re-streams
// A per vector). `batch_cycles` prices the same batch as ONE device SpMM
// invocation with the A stream shared across column blocks (the Sextans
// extension); at B = 1 its accounting fields are bit-identical to
// `cycles`.
struct SimBatchResult {
    std::vector<std::vector<float>> y;  // [batch][rows]
    CycleStats cycles;
    BatchCycleStats batch_cycles;
};

// Run y = alpha * A * x + beta * y_in on the encoded image (packed engine;
// the differential reference). x must have img.cols() entries and y_in
// img.rows().
SimResult simulate_spmv(const encode::SerpensImage& img,
                        std::span<const float> x,
                        std::span<const float> y_in, float alpha, float beta,
                        const SimOptions& options = {});

// Same machine, decode-once engine: per-element field unpacking happened
// once in DecodedImage::decode, so repeated calls stream flat SoA arrays.
SimResult simulate_spmv_decoded(const DecodedImage& img,
                                std::span<const float> x,
                                std::span<const float> y_in, float alpha,
                                float beta, const SimOptions& options = {});

// One decoded pass over B right-hand sides: for each b,
// y[b] = alpha * A * xs[b] + beta * ys_in[b], with the accumulator blocked
// across columns so each decoded element is applied to all B vectors while
// it is hot. Every xs[b] must have img.cols() entries and every ys_in[b]
// img.rows(); xs and ys_in must be the same (non-zero) length.
SimBatchResult simulate_spmv_batch(const DecodedImage& img,
                                   std::span<const std::vector<float>> xs,
                                   std::span<const std::vector<float>> ys_in,
                                   float alpha, float beta,
                                   const SimOptions& options = {});

// Batched-device cycle accounting alone (no functional execution): price a
// B-wide SpMM invocation from the image's per-segment extents. The two
// overloads compute identical numbers from the packed image and from its
// decoded expansion, so the accounting is available on both engine paths
// (and with the decode cache disabled). options.batch_columns sets the
// dense-column block width; at batch = 1 the result's accounting fields
// are bit-identical to the CycleStats of one simulate_spmv call with the
// same options.
BatchCycleStats batch_cycle_stats(const encode::SerpensImage& img,
                                  std::size_t batch,
                                  const SimOptions& options = {});
BatchCycleStats batch_cycle_stats(const DecodedImage& img, std::size_t batch,
                                  const SimOptions& options = {});

} // namespace serpens::sim
