// Injectable monotonic time for the serving stack.
//
// Every component that timestamps or sleeps — the dispatcher's latency
// sampling, retry/failover backoff, the trace recorder — takes an
// obs::Clock* and defaults to the process-wide RealClock. Tests inject a
// FakeClock whose time only moves when the test says so, which makes
// queue/service latencies and whole trace files exactly reproducible:
//
//   obs::FakeClock clk;
//   serve::Server server(cfg, &clk);
//   clk.advance_ms(5.0);            // the only way time passes
//
// now_ns() is monotonic nanoseconds from an arbitrary epoch (process
// start for the real clock, zero for a fresh fake). sleep_ms() blocks on
// the real clock and merely advances time on the fake one, so backoff
// loops driven through the clock stay instant and deterministic under
// test.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace serpens::obs {

class Clock {
public:
    virtual ~Clock() = default;

    // Monotonic nanoseconds since an arbitrary fixed epoch.
    virtual std::uint64_t now_ns() = 0;

    // Block (real) or advance time (fake) for `ms` milliseconds.
    virtual void sleep_ms(double ms) = 0;

    // Convenience: elapsed milliseconds between two now_ns() readings.
    static double ms_between(std::uint64_t start_ns, std::uint64_t end_ns)
    {
        return end_ns >= start_ns
                   ? static_cast<double>(end_ns - start_ns) / 1e6
                   : -static_cast<double>(start_ns - end_ns) / 1e6;
    }
};

// Wall production clock: steady_clock, shared process-wide.
class RealClock final : public Clock {
public:
    std::uint64_t now_ns() override
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    void sleep_ms(double ms) override
    {
        if (ms <= 0.0)
            return;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
};

// The process-wide default. Components that take an optional Clock* fall
// back to this when handed nullptr.
Clock& real_clock();

// Deterministic clock for tests: time starts at 0 and moves only via
// advance_*() or sleep_ms(). Thread-safe (atomic counter) so dispatcher
// threads may read it while the test advances it.
class FakeClock final : public Clock {
public:
    explicit FakeClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

    std::uint64_t now_ns() override { return now_ns_.load(std::memory_order_acquire); }

    void sleep_ms(double ms) override
    {
        if (ms > 0.0)
            advance_ns(static_cast<std::uint64_t>(ms * 1e6));
    }

    void advance_ns(std::uint64_t ns) { now_ns_.fetch_add(ns, std::memory_order_acq_rel); }
    void advance_ms(double ms) { advance_ns(static_cast<std::uint64_t>(ms * 1e6)); }

private:
    std::atomic<std::uint64_t> now_ns_;
};

} // namespace serpens::obs
