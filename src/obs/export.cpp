#include "obs/export.h"

#include <string>

#include "net/failover.h"
#include "net/retry.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/store.h"
#include "sim/decoded_image.h"
#include "util/fault.h"

namespace serpens::obs {

void export_server_metrics(MetricsRegistry& reg, const serve::ServerStats& s)
{
    reg.counter("serpens_serve_requests_total", "Completed SpMV requests.",
                s.requests);
    reg.counter("serpens_serve_batches_total", "Device run_batch calls.",
                s.batches);
    reg.counter("serpens_serve_coalesced_total",
                "Requests that shared a batch (width > 1).", s.coalesced);
    reg.counter("serpens_serve_rounds_total", "Dispatcher drain rounds.",
                s.rounds);
    reg.counter("serpens_serve_rejected_total",
                "Submits refused at max_queue_depth.", s.rejected);
    reg.counter("serpens_serve_shed_total",
                "Requests dropped at an expired deadline.", s.shed);
    reg.counter("serpens_serve_batch_shrinks_total",
                "SLO controller effective-width halvings.", s.batch_shrinks);
    reg.counter("serpens_serve_batch_grows_total",
                "SLO controller effective-width doublings.", s.batch_grows);
    reg.gauge("serpens_serve_current_max_batch",
              "Effective batch width in force.",
              static_cast<double>(s.current_max_batch));
    reg.gauge("serpens_serve_p99_queue_ewma_ms",
              "SLO controller p99 queue-time estimate.", s.p99_queue_ewma_ms);
    reg.histogram("serpens_serve_queue_ms",
                  "Queue time to the request's own batch start.",
                  s.queue_hist);
    reg.histogram("serpens_serve_service_ms",
                  "Service time from batch start to reply.", s.service_hist);
    for (unsigned w = 0; w < serve::kWidthBuckets; ++w) {
        if (s.width_hist[w] != 0)
            reg.counter("serpens_serve_batch_width_total",
                        "Requests by the width of the batch they rode in.",
                        s.width_hist[w], {{"width", std::to_string(w)}});
    }
}

void export_registry_metrics(MetricsRegistry& reg,
                             const serve::MatrixRegistry& registry)
{
    const serve::RegistryStats s = registry.stats();
    reg.counter("serpens_registry_admissions_total",
                "Successful admit/admit_image calls.", s.admissions);
    reg.counter("serpens_registry_encodes_total",
                "Admissions that paid the encode stage.", s.encodes);
    reg.counter("serpens_registry_evictions_total",
                "Residents dropped for budget room or by evict().",
                s.evictions);
    reg.counter("serpens_registry_replacements_total",
                "Same-name re-admissions.", s.replacements);
    reg.counter("serpens_registry_hits_total", "get() calls that resolved.",
                s.hits);
    reg.counter("serpens_registry_misses_total",
                "get() calls that found nothing.", s.misses);
    reg.gauge("serpens_registry_residents", "Matrices currently resident.",
              static_cast<double>(registry.size()));
    reg.gauge("serpens_registry_bytes_resident",
              "Bytes charged against the resident budget.",
              static_cast<double>(registry.bytes_resident()));

    for (const auto& [name, prepared] : registry.residents_snapshot()) {
        const sim::DecodedImage& d = prepared->decoded();
        double depth = 0.0;
        for (unsigned seg = 0; seg < d.num_segments(); ++seg)
            depth += static_cast<double>(d.segment_depth(seg));
        for (unsigned c = 0; c < d.channels(); ++c) {
            const double lines =
                static_cast<double>(d.channel(c).total_lines);
            reg.gauge("serpens_channel_utilization",
                      "Channel's share of the stall-inclusive device passes "
                      "for one resident matrix (1.0 = perfectly balanced).",
                      depth > 0.0 ? lines / depth : 0.0,
                      {{"matrix", name}, {"channel", std::to_string(c)}});
        }
    }
}

void export_store_metrics(MetricsRegistry& reg, const serve::StoreStats& s)
{
    reg.counter("serpens_store_wal_records_total",
                "Valid WAL records replayed at open.", s.wal_records);
    reg.counter("serpens_store_wal_torn_bytes_total",
                "Torn WAL tail bytes truncated at open.", s.wal_torn_bytes);
    reg.counter("serpens_store_recovered_total",
                "Residents re-admitted by recover().", s.recovered);
    reg.counter("serpens_store_skipped_corrupt_total",
                "Residents whose image failed to load.", s.skipped_corrupt);
    reg.counter("serpens_store_appends_total", "WAL records appended.",
                s.appends);
    reg.counter("serpens_store_compactions_total", "WAL rewrites.",
                s.compactions);
    reg.gauge("serpens_store_recovery_ms", "Wall time recover() spent.",
              s.recovery_ms);
    reg.gauge("serpens_store_clean_shutdown",
              "1 when the previous session left the clean-shutdown marker.",
              s.clean_shutdown ? 1.0 : 0.0);
}

void export_retry_metrics(MetricsRegistry& reg, const net::RetryStats& s)
{
    reg.counter("serpens_client_attempts_total",
                "Operations sent, retries included.", s.attempts);
    reg.counter("serpens_client_retries_total",
                "Attempts beyond each operation's first.", s.retries);
    reg.counter("serpens_client_reconnects_total",
                "Connections rebuilt after transport loss.", s.reconnects);
    reg.counter("serpens_client_giveups_total",
                "Operations that exhausted max_attempts.", s.giveups);
}

void export_failover_metrics(MetricsRegistry& reg, const net::FailoverStats& s)
{
    reg.counter("serpens_failover_moves_total",
                "Cursor moves to another endpoint.", s.failovers);
    reg.counter("serpens_failover_breaker_opens_total",
                "Closed-to-open breaker transitions.", s.breaker_opens);
    reg.counter("serpens_failover_probes_total", "Half-open pings sent.",
                s.probes);
    reg.counter("serpens_failover_probe_failures_total",
                "Probes that re-opened the breaker.", s.probe_failures);
    reg.counter("serpens_failover_giveups_total",
                "Operations that exhausted max_rounds.", s.giveups);
}

void export_fault_metrics(MetricsRegistry& reg,
                          const util::FaultInjector& injector)
{
    for (const auto& [site, counts] : injector.site_counts()) {
        reg.counter("serpens_fault_probes_total",
                    "Fault-site probes, by site.", counts.first,
                    {{"site", site}});
        reg.counter("serpens_fault_fired_total",
                    "Fault-site firings, by site.", counts.second,
                    {{"site", site}});
    }
}

} // namespace serpens::obs
