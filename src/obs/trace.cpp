#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace serpens::obs {

namespace detail {
std::atomic<TraceRecorder*> g_trace_recorder{nullptr};
}

void set_trace_recorder(TraceRecorder* recorder)
{
    detail::g_trace_recorder.store(recorder, std::memory_order_release);
}

namespace {

// Unique per-recorder id so a thread_local buffer cache can never alias
// a dead recorder's address with a new one's (ABA on the pointer).
std::atomic<std::uint64_t> g_recorder_ids{0};

} // namespace

TraceRecorder::TraceRecorder(Clock* clock, std::size_t per_thread_capacity)
    : clock_(clock != nullptr ? clock : &real_clock()),
      capacity_(per_thread_capacity > 0 ? per_thread_capacity : 1),
      recorder_id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed) + 1)
{
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Buffer& TraceRecorder::local_buffer()
{
    thread_local std::uint64_t cached_id = 0;
    thread_local Buffer* cached = nullptr;
    if (cached_id == recorder_id_ && cached != nullptr)
        return *cached;
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffers_.back()->spans.reserve(std::min<std::size_t>(capacity_, 1024));
    cached = buffers_.back().get();
    cached_id = recorder_id_;
    return *cached;
}

void TraceRecorder::span(const char* name, const char* category,
                         std::uint64_t trace_id, std::uint64_t start_ns,
                         std::uint64_t end_ns, const char* arg_name,
                         std::uint64_t arg)
{
    Buffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.spans.size() >= capacity_) {
        ++buf.dropped;
        return;
    }
    Span s;
    s.name = name;
    s.category = category;
    s.trace_id = trace_id;
    s.start_ns = start_ns;
    s.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    s.instant = false;
    s.arg_name = arg_name;
    s.arg = arg;
    buf.spans.push_back(s);
}

void TraceRecorder::instant(const char* name, const char* category,
                            std::uint64_t trace_id, const char* arg_name,
                            std::uint64_t arg)
{
    const std::uint64_t now = clock_->now_ns();
    Buffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.spans.size() >= capacity_) {
        ++buf.dropped;
        return;
    }
    Span s;
    s.name = name;
    s.category = category;
    s.trace_id = trace_id;
    s.start_ns = now;
    s.dur_ns = 0;
    s.instant = true;
    s.arg_name = arg_name;
    s.arg = arg;
    buf.spans.push_back(s);
}

std::vector<Span> TraceRecorder::snapshot() const
{
    std::vector<Span> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t b = 0; b < buffers_.size(); ++b) {
            std::lock_guard<std::mutex> bl(buffers_[b]->mu);
            for (std::size_t i = 0; i < buffers_[b]->spans.size(); ++i) {
                Span s = buffers_[b]->spans[i];
                s.tid = static_cast<std::uint32_t>(b);
                s.seq = i;
                out.push_back(s);
            }
        }
    }
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
        if (a.start_ns != b.start_ns)
            return a.start_ns < b.start_ns;
        if (a.tid != b.tid)
            return a.tid < b.tid;
        return a.seq < b.seq;
    });
    return out;
}

std::uint64_t TraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& b : buffers_) {
        std::lock_guard<std::mutex> bl(b->mu);
        n += b->dropped;
    }
    return n;
}

std::size_t TraceRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& b : buffers_) {
        std::lock_guard<std::mutex> bl(b->mu);
        n += b->spans.size();
    }
    return n;
}

namespace {

// Trace-event timestamps are microseconds; print ns/1000 with three
// decimals so the nanosecond value survives exactly and the text is
// deterministic.
void append_us(std::string& out, std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

void append_json_string(std::string& out, const char* s)
{
    out += '"';
    for (const char* p = s; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
}

} // namespace

std::string TraceRecorder::to_chrome_json() const
{
    const std::vector<Span> spans = snapshot();
    std::string out;
    out.reserve(128 + spans.size() * 128);
    out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const Span& s = spans[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": ";
        append_json_string(out, s.name);
        out += ", \"cat\": ";
        append_json_string(out, s.category);
        out += s.instant ? ", \"ph\": \"i\", \"s\": \"t\"" : ", \"ph\": \"X\"";
        out += ", \"ts\": ";
        append_us(out, s.start_ns);
        if (!s.instant) {
            out += ", \"dur\": ";
            append_us(out, s.dur_ns);
        }
        out += ", \"pid\": 1, \"tid\": ";
        out += std::to_string(s.tid);
        out += ", \"args\": {\"trace_id\": ";
        out += std::to_string(s.trace_id);
        if (s.arg_name != nullptr) {
            out += ", ";
            append_json_string(out, s.arg_name);
            out += ": ";
            out += std::to_string(s.arg);
        }
        out += "}}";
    }
    out += spans.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

namespace {

bool fail(std::string* error, const std::string& why)
{
    if (error != nullptr)
        *error = why;
    return false;
}

void skip_ws(const std::string& s, std::size_t& pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
        ++pos;
}

// Within one event object's text, find `"key"` and parse the number that
// follows its ':'. Returns false when the key is absent or malformed.
bool number_in_object(const std::string& obj, const char* key, double* out)
{
    const std::string quoted = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(quoted);
    if (pos == std::string::npos)
        return false;
    pos += quoted.size();
    skip_ws(obj, pos);
    if (pos >= obj.size() || obj[pos] != ':')
        return false;
    ++pos;
    skip_ws(obj, pos);
    char buf[64];
    std::size_t n = 0;
    while (pos < obj.size() && n + 1 < sizeof buf &&
           (std::isdigit(static_cast<unsigned char>(obj[pos])) != 0 ||
            obj[pos] == '-' || obj[pos] == '+' || obj[pos] == '.' ||
            obj[pos] == 'e' || obj[pos] == 'E')) {
        buf[n++] = obj[pos++];
    }
    buf[n] = '\0';
    if (n == 0)
        return false;
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + n)
        return false;
    *out = v;
    return true;
}

// `"key"` followed by ':' and a JSON string; returns the string value.
bool string_in_object(const std::string& obj, const char* key,
                      std::string* out)
{
    const std::string quoted = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(quoted);
    if (pos == std::string::npos)
        return false;
    pos += quoted.size();
    skip_ws(obj, pos);
    if (pos >= obj.size() || obj[pos] != ':')
        return false;
    ++pos;
    skip_ws(obj, pos);
    if (pos >= obj.size() || obj[pos] != '"')
        return false;
    ++pos;
    std::string v;
    while (pos < obj.size() && obj[pos] != '"') {
        if (obj[pos] == '\\') {
            ++pos;
            if (pos >= obj.size())
                return false;
        }
        v += obj[pos++];
    }
    if (pos >= obj.size())
        return false;
    *out = v;
    return true;
}

} // namespace

bool validate_trace_json(const std::string& text, std::string* error)
{
    const std::string key = "\"traceEvents\"";
    std::size_t pos = text.find(key);
    if (pos == std::string::npos)
        return fail(error, "missing \"traceEvents\" key");
    pos += key.size();
    skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != ':')
        return fail(error, "\"traceEvents\" not followed by ':'");
    ++pos;
    skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != '[')
        return fail(error, "\"traceEvents\" is not an array");
    ++pos;

    std::size_t events = 0;
    for (;;) {
        skip_ws(text, pos);
        if (pos >= text.size())
            return fail(error, "unterminated traceEvents array");
        if (text[pos] == ']')
            break;
        if (events > 0) {
            if (text[pos] != ',')
                return fail(error, "missing ',' between trace events");
            ++pos;
            skip_ws(text, pos);
        }
        if (pos >= text.size() || text[pos] != '{')
            return fail(error, "trace event is not an object");
        // Balanced-brace scan, string-aware, to slice out one event.
        const std::size_t begin = pos;
        int depth = 0;
        bool in_string = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (in_string) {
                if (c == '\\')
                    ++pos;
                else if (c == '"')
                    in_string = false;
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
                if (depth == 0)
                    break;
            }
            ++pos;
        }
        if (pos >= text.size())
            return fail(error, "unterminated trace event object");
        const std::string obj = text.substr(begin, pos - begin + 1);
        ++pos;
        ++events;

        std::string name;
        if (!string_in_object(obj, "name", &name) || name.empty())
            return fail(error, "trace event missing \"name\"");
        std::string ph;
        if (!string_in_object(obj, "ph", &ph))
            return fail(error, "trace event missing \"ph\"");
        if (ph != "X" && ph != "i" && ph != "M")
            return fail(error, "trace event \"" + name +
                                   "\" has unsupported ph \"" + ph + "\"");
        double v = 0.0;
        if (!number_in_object(obj, "ts", &v) || !std::isfinite(v) || v < 0.0)
            return fail(error,
                        "trace event \"" + name + "\" has a bad \"ts\"");
        if (ph == "X" &&
            (!number_in_object(obj, "dur", &v) || !std::isfinite(v) || v < 0.0))
            return fail(error,
                        "trace event \"" + name + "\" has a bad \"dur\"");
        if (!number_in_object(obj, "pid", &v) || !std::isfinite(v) || v < 0.0)
            return fail(error,
                        "trace event \"" + name + "\" has a bad \"pid\"");
        if (!number_in_object(obj, "tid", &v) || !std::isfinite(v) || v < 0.0)
            return fail(error,
                        "trace event \"" + name + "\" has a bad \"tid\"");
    }
    return true;
}

} // namespace serpens::obs
