// Metrics registry with Prometheus text exposition.
//
// The serving stack already keeps authoritative counters in plain stats
// structs (serve::ServerStats, RegistryStats, StoreStats, net::RetryStats,
// net::FailoverStats, util::FaultInjector). MetricsRegistry converts those
// into the Prometheus exposition format at scrape time — nothing on the
// request hot path touches it. A scrape builds (or refreshes) a registry
// from live stats via the export_* helpers in obs/export.h, then renders:
//
//   obs::MetricsRegistry reg;
//   obs::export_server_metrics(reg, server.stats());
//   obs::export_registry_metrics(reg, server.registry());
//   std::string text = reg.prometheus_text();
//
// The daemon answers the kMetrics wire message with exactly this text;
// `serpens_serve --dump-metrics` fetches and prints it.
//
// Families render in registration order and samples in label-insertion
// order, so the output is deterministic and golden-testable. Histograms
// reuse serve::LatencyHistogram's octave buckets; `le` edges are the
// bucket upper edges in milliseconds (metric names end in _ms to make the
// unit explicit).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/latency.h"

namespace serpens::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
public:
    // Each setter upserts the sample identified by (name, labels) to the
    // given value — scrape semantics, not increments. Registering one name
    // with two different types throws std::invalid_argument.
    void counter(const std::string& name, const std::string& help,
                 std::uint64_t value, const Labels& labels = {});
    void gauge(const std::string& name, const std::string& help, double value,
               const Labels& labels = {});
    void histogram(const std::string& name, const std::string& help,
                   const serve::LatencyHistogram& hist,
                   const Labels& labels = {});

    void clear();

    // Prometheus text exposition: # HELP / # TYPE per family, histogram
    // families expanded to cumulative _bucket{le=...} + _sum + _count.
    std::string prometheus_text() const;

private:
    enum class Type { kCounter, kGauge, kHistogram };

    struct Sample {
        std::string label_text; // rendered "{k=\"v\",...}" or ""
        std::uint64_t ivalue = 0;
        double dvalue = 0.0;
        serve::LatencyHistogram hist;
    };

    struct Family {
        std::string name;
        std::string help;
        Type type = Type::kCounter;
        std::vector<Sample> samples;
    };

    Family& family_locked(const std::string& name, const std::string& help,
                          Type type);
    static Sample& sample_locked(Family& fam, const Labels& labels);

    mutable std::mutex mu_;
    std::vector<Family> families_; // registration order == render order
};

// Structural validator for the exposition format prometheus_text() emits:
// every sample line's family must be preceded by # HELP and # TYPE lines,
// metric names must be well-formed, values finite, histogram families
// must carry a le="+Inf" bucket, and the document must end with a
// newline. Used by `serpens_serve --check-snapshot` on archived metrics
// dumps.
bool validate_prometheus_text(const std::string& text, std::string* error);

} // namespace serpens::obs
