#include "obs/clock.h"

namespace serpens::obs {

Clock& real_clock()
{
    static RealClock clock;
    return clock;
}

} // namespace serpens::obs
