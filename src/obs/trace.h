// Request tracing for the serving stack: bounded per-thread span buffers
// and Chrome trace-event JSON export (load the file in Perfetto or
// chrome://tracing).
//
// A TraceRecorder is installed process-wide like util::FaultInjector:
//
//   obs::TraceRecorder rec;
//   obs::set_trace_recorder(&rec);
//   ... traffic ...
//   obs::set_trace_recorder(nullptr);
//   util::atomic_write_file("trace.json", rec.to_chrome_json());
//
// Instrumented sites probe through obs::trace_recorder(): with no
// recorder installed (the production default) a probe is one acquire
// atomic load and a null test — no lock, no clock read, no allocation.
// That is the entire disabled-mode cost, and ObsTrace.NoOpRecorder pins
// it.
//
// Spans carry a trace_id that stitches one request's lifecycle across
// threads and, via the wire protocol, across processes: the client mints
// the id (next_trace_id()), SpmvRequest carries it, and daemon-side spans
// record the same id. Old peers that never heard of tracing interop as
// id 0 (the field is simply absent from their frames).
//
// Span names are expected to be string literals (the recorder stores the
// pointers, not copies); every instrumented site in the tree satisfies
// this.
//
// Buffers are bounded: each recording thread gets a fixed-capacity
// vector; once full, further spans on that thread are counted in
// dropped() and discarded. Export order is deterministic — spans sort by
// (start_ns, thread registration order, per-thread sequence) — so a fake
// clock plus a deterministic load reproduces the identical JSON byte for
// byte (ObsTrace.ByteIdenticalReplay).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace serpens::obs {

struct Span {
    const char* name = "";
    const char* category = "";
    std::uint64_t trace_id = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    bool instant = false;
    // Optional numeric argument (batch width, byte count, ...).
    const char* arg_name = nullptr;
    std::uint64_t arg = 0;
    // Filled at snapshot time: thread registration order + append index.
    std::uint32_t tid = 0;
    std::uint64_t seq = 0;
};

class TraceRecorder {
public:
    // `clock` defaults to real_clock(). `per_thread_capacity` bounds each
    // recording thread's buffer; overflow increments dropped().
    explicit TraceRecorder(Clock* clock = nullptr,
                           std::size_t per_thread_capacity = 1 << 16);
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    Clock& clock() { return *clock_; }
    std::uint64_t now_ns() { return clock_->now_ns(); }

    // Fresh nonzero id for a new request's span tree.
    std::uint64_t next_trace_id()
    {
        return trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    // Record a completed span [start_ns, end_ns). `name`/`category`/
    // `arg_name` must be string literals (or otherwise outlive the
    // recorder).
    void span(const char* name, const char* category, std::uint64_t trace_id,
              std::uint64_t start_ns, std::uint64_t end_ns,
              const char* arg_name = nullptr, std::uint64_t arg = 0);

    // Record a point event at now_ns().
    void instant(const char* name, const char* category,
                 std::uint64_t trace_id, const char* arg_name = nullptr,
                 std::uint64_t arg = 0);

    // Spans recorded so far (all threads), in deterministic export order.
    std::vector<Span> snapshot() const;

    std::uint64_t dropped() const;
    std::size_t recorded() const;

    // Chrome trace-event JSON ({"traceEvents": [...]}). Deterministic for
    // a deterministic span set.
    std::string to_chrome_json() const;

private:
    struct Buffer {
        mutable std::mutex mu;
        std::vector<Span> spans;
        std::uint64_t dropped = 0;
    };

    Buffer& local_buffer();

    Clock* clock_;
    std::size_t capacity_;
    std::uint64_t recorder_id_;
    std::atomic<std::uint64_t> trace_seq_{0};
    mutable std::mutex mu_; // guards buffers_ growth
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

// Install/clear the process-global recorder the probe sites consult. The
// caller keeps ownership and must clear it before destroying it.
void set_trace_recorder(TraceRecorder* recorder);

namespace detail {
extern std::atomic<TraceRecorder*> g_trace_recorder;
}

// The probe: one acquire load + null test when tracing is off.
inline TraceRecorder* trace_recorder()
{
    return detail::g_trace_recorder.load(std::memory_order_acquire);
}

// Structural validator for Chrome trace-event JSON (the same contract
// to_chrome_json() emits): a "traceEvents" array of objects, each with a
// string "name", a "ph" of "X" (with finite non-negative "dur") or "i",
// and finite non-negative "ts"/"pid"/"tid". Used by
// `serpens_serve --check-snapshot` on archived trace artifacts.
bool validate_trace_json(const std::string& text, std::string* error);

} // namespace serpens::obs
