#include "obs/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>

namespace serpens::obs {

namespace {

// Inner label text ("k=\"v\",k2=\"v2\"", no braces) with Prometheus label
// value escaping. Label insertion order is preserved — callers pass
// labels in a fixed order, which keeps the exposition deterministic.
std::string render_labels(const Labels& labels)
{
    std::string out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ',';
        out += labels[i].first;
        out += "=\"";
        for (const char c : labels[i].second) {
            if (c == '\\')
                out += "\\\\";
            else if (c == '"')
                out += "\\\"";
            else if (c == '\n')
                out += "\\n";
            else
                out += c;
        }
        out += '"';
    }
    return out;
}

void append_value(std::string& out, double v)
{
    char buf[64];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    out += buf;
}

// Octave bucket edge (2^b microseconds) rendered in milliseconds with
// exact decimals: "0.001", "1.024", "1048.576", ...
std::string edge_label_ms(unsigned bucket)
{
    const std::uint64_t us = std::uint64_t{1} << bucket;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(us / 1000),
                  static_cast<unsigned long long>(us % 1000));
    return buf;
}

const char* type_name(int t)
{
    switch (t) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
    }
}

} // namespace

MetricsRegistry::Family&
MetricsRegistry::family_locked(const std::string& name, const std::string& help,
                               Type type)
{
    for (Family& f : families_) {
        if (f.name == name) {
            if (f.type != type)
                throw std::invalid_argument(
                    "metric '" + name + "' registered as " +
                    type_name(static_cast<int>(f.type)) + " and " +
                    type_name(static_cast<int>(type)));
            return f;
        }
    }
    Family f;
    f.name = name;
    f.help = help;
    f.type = type;
    families_.push_back(std::move(f));
    return families_.back();
}

MetricsRegistry::Sample& MetricsRegistry::sample_locked(Family& fam,
                                                        const Labels& labels)
{
    const std::string text = render_labels(labels);
    for (Sample& s : fam.samples) {
        if (s.label_text == text)
            return s;
    }
    Sample s;
    s.label_text = text;
    fam.samples.push_back(std::move(s));
    return fam.samples.back();
}

void MetricsRegistry::counter(const std::string& name, const std::string& help,
                              std::uint64_t value, const Labels& labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    sample_locked(family_locked(name, help, Type::kCounter), labels).ivalue =
        value;
}

void MetricsRegistry::gauge(const std::string& name, const std::string& help,
                            double value, const Labels& labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    sample_locked(family_locked(name, help, Type::kGauge), labels).dvalue =
        value;
}

void MetricsRegistry::histogram(const std::string& name,
                                const std::string& help,
                                const serve::LatencyHistogram& hist,
                                const Labels& labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    sample_locked(family_locked(name, help, Type::kHistogram), labels).hist =
        hist;
}

void MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    families_.clear();
}

std::string MetricsRegistry::prometheus_text() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const Family& f : families_) {
        out += "# HELP " + f.name + " " + f.help + "\n";
        out += "# TYPE " + f.name + " ";
        out += type_name(static_cast<int>(f.type));
        out += '\n';
        for (const Sample& s : f.samples) {
            if (f.type == Type::kCounter) {
                out += f.name;
                if (!s.label_text.empty())
                    out += "{" + s.label_text + "}";
                out += ' ';
                out += std::to_string(s.ivalue);
                out += '\n';
            } else if (f.type == Type::kGauge) {
                out += f.name;
                if (!s.label_text.empty())
                    out += "{" + s.label_text + "}";
                out += ' ';
                append_value(out, s.dvalue);
                out += '\n';
            } else {
                const auto& buckets = s.hist.buckets();
                std::uint64_t cumulative = 0;
                for (unsigned b = 0; b < serve::LatencyHistogram::kBuckets;
                     ++b) {
                    cumulative += buckets[b];
                    out += f.name + "_bucket{";
                    if (!s.label_text.empty())
                        out += s.label_text + ",";
                    out += "le=\"" + edge_label_ms(b) + "\"} ";
                    out += std::to_string(cumulative);
                    out += '\n';
                }
                out += f.name + "_bucket{";
                if (!s.label_text.empty())
                    out += s.label_text + ",";
                out += "le=\"+Inf\"} ";
                out += std::to_string(s.hist.count());
                out += '\n';
                out += f.name + "_sum";
                if (!s.label_text.empty())
                    out += "{" + s.label_text + "}";
                out += ' ';
                append_value(out, s.hist.mean_ms() *
                                      static_cast<double>(s.hist.count()));
                out += '\n';
                out += f.name + "_count";
                if (!s.label_text.empty())
                    out += "{" + s.label_text + "}";
                out += ' ';
                out += std::to_string(s.hist.count());
                out += '\n';
            }
        }
    }
    return out;
}

namespace {

bool fail(std::string* error, const std::string& why)
{
    if (error != nullptr)
        *error = why;
    return false;
}

bool valid_metric_name(const std::string& name)
{
    if (name.empty())
        return false;
    const auto head = static_cast<unsigned char>(name[0]);
    if (std::isalpha(head) == 0 && name[0] != '_' && name[0] != ':')
        return false;
    for (const char c : name) {
        const auto u = static_cast<unsigned char>(c);
        if (std::isalnum(u) == 0 && c != '_' && c != ':')
            return false;
    }
    return true;
}

// Strip a histogram sample suffix to recover the family name.
std::string family_base(const std::string& name)
{
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s = suffix;
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0)
            return name.substr(0, name.size() - s.size());
    }
    return name;
}

} // namespace

bool validate_prometheus_text(const std::string& text, std::string* error)
{
    if (text.empty())
        return fail(error, "empty metrics document");
    if (text.back() != '\n')
        return fail(error, "metrics document must end with a newline");

    std::map<std::string, std::string> types; // family -> type
    std::set<std::string> helps;
    std::set<std::string> hist_saw_inf;
    std::size_t samples = 0;

    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;
        const std::string where = "line " + std::to_string(line_no) + ": ";
        if (line.empty())
            continue;

        if (line[0] == '#') {
            // "# HELP name text" / "# TYPE name type"; other comments pass.
            if (line.rfind("# HELP ", 0) == 0) {
                const std::string rest = line.substr(7);
                const std::size_t sp = rest.find(' ');
                const std::string name =
                    sp == std::string::npos ? rest : rest.substr(0, sp);
                if (!valid_metric_name(name))
                    return fail(error, where + "bad HELP metric name");
                helps.insert(name);
            } else if (line.rfind("# TYPE ", 0) == 0) {
                const std::string rest = line.substr(7);
                const std::size_t sp = rest.find(' ');
                if (sp == std::string::npos)
                    return fail(error, where + "TYPE line missing a type");
                const std::string name = rest.substr(0, sp);
                const std::string type = rest.substr(sp + 1);
                if (!valid_metric_name(name))
                    return fail(error, where + "bad TYPE metric name");
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped")
                    return fail(error,
                                where + "unknown metric type '" + type + "'");
                types[name] = type;
            }
            continue;
        }

        // Sample line: name[{labels}] value
        std::size_t i = 0;
        while (i < line.size() && line[i] != '{' && line[i] != ' ')
            ++i;
        const std::string name = line.substr(0, i);
        if (!valid_metric_name(name))
            return fail(error, where + "bad metric name");
        std::string labels;
        bool saw_inf_le = false;
        if (i < line.size() && line[i] == '{') {
            const std::size_t open = i;
            ++i;
            bool in_string = false;
            while (i < line.size()) {
                const char c = line[i];
                if (in_string) {
                    if (c == '\\')
                        ++i;
                    else if (c == '"')
                        in_string = false;
                } else if (c == '"') {
                    in_string = true;
                } else if (c == '}') {
                    break;
                }
                ++i;
            }
            if (i >= line.size())
                return fail(error, where + "unterminated label set");
            labels = line.substr(open + 1, i - open - 1);
            saw_inf_le = labels.find("le=\"+Inf\"") != std::string::npos;
            ++i;
        }
        if (i >= line.size() || line[i] != ' ')
            return fail(error, where + "missing space before sample value");
        while (i < line.size() && line[i] == ' ')
            ++i;
        const std::string value = line.substr(i);
        if (value.empty())
            return fail(error, where + "missing sample value");
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size())
            return fail(error, where + "unparseable sample value '" + value +
                                   "'");
        if (!std::isfinite(v))
            return fail(error, where + "non-finite sample value");

        const std::string base = family_base(name);
        const auto it = types.count(name) != 0 ? types.find(name)
                                               : types.find(base);
        if (it == types.end())
            return fail(error, where + "sample '" + name +
                                   "' has no preceding # TYPE");
        const std::string& family = it->first;
        if (helps.count(family) == 0)
            return fail(error, where + "sample '" + name +
                                   "' has no preceding # HELP");
        if (it->second == "histogram") {
            if (name == family)
                return fail(error, where + "histogram sample '" + name +
                                       "' lacks _bucket/_sum/_count suffix");
            if (v < 0.0)
                return fail(error,
                            where + "negative histogram sample value");
            if (saw_inf_le)
                hist_saw_inf.insert(family);
        }
        ++samples;
    }

    if (samples == 0)
        return fail(error, "metrics document has no samples");
    for (const auto& [name, type] : types) {
        if (type == "histogram" && hist_saw_inf.count(name) == 0)
            return fail(error, "histogram '" + name +
                                   "' has no le=\"+Inf\" bucket");
    }
    return true;
}

} // namespace serpens::obs
