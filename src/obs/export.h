// Bridges from the serving stack's stats structs to the MetricsRegistry.
//
// Each export_* call upserts one component's families into the registry;
// a scrape composes whichever components exist in the process (the daemon
// exports server + registry + store, the client tools export retry +
// failover + fault). Calling an exporter again with fresh stats refreshes
// the same samples in place, so one long-lived registry per process works
// too.
//
// Metric naming: serpens_<component>_<what>[_total|_ms|_bytes], with
// per-matrix/per-channel breakdowns as labels —
// serpens_channel_utilization{matrix="m0",channel="3"} is the live,
// per-resident form of the paper's Fig-2 channel-bandwidth story.
#pragma once

namespace serpens::serve {
struct ServerStats;
class MatrixRegistry;
struct StoreStats;
}
namespace serpens::net {
struct RetryStats;
struct FailoverStats;
}
namespace serpens::util {
class FaultInjector;
}

namespace serpens::obs {

class MetricsRegistry;

void export_server_metrics(MetricsRegistry& reg,
                           const serve::ServerStats& stats);

// Registry counters, resident footprint, and per-resident channel
// utilization: for each resident matrix, channel c's share of the device
// passes it could have streamed — total_lines(c) / sum_s(segment_depth(s))
// (the denominator is the stall-inclusive depth every channel pays, so a
// perfectly balanced matrix reads 1.0 on every channel).
void export_registry_metrics(MetricsRegistry& reg,
                             const serve::MatrixRegistry& registry);

void export_store_metrics(MetricsRegistry& reg,
                          const serve::StoreStats& stats);
void export_retry_metrics(MetricsRegistry& reg, const net::RetryStats& stats);
void export_failover_metrics(MetricsRegistry& reg,
                             const net::FailoverStats& stats);

// Per-site probe/fired counters for every site the injector has seen.
void export_fault_metrics(MetricsRegistry& reg,
                          const util::FaultInjector& injector);

} // namespace serpens::obs
