// The instruction channel (paper Table 1: 32-bit instructions; Table 5:
// Serpens uses one HBM channel for instructions).
//
// The host compiles a small control program that tells the accelerator the
// problem geometry and the per-segment stream lengths; the device control
// FSM walks it. Word layout: [31:28] opcode, [27:0] payload.
//
//   SET_ROWS n      SET_COLS n        matrix dimensions
//   SET_ALPHA/BETA  next word is the raw FP32 bit pattern
//   SEGMENT depth   one per x segment: the max channel line count
//   LINES count     HA words after each SEGMENT: per-channel line counts
//   RUN             start executing the loaded program
//   HALT            end of stream
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "encode/image.h"

namespace serpens::encode {

enum class Opcode : std::uint32_t {
    set_rows = 0x1,
    set_cols = 0x2,
    set_alpha = 0x3,  // payload ignored; next word = FP32 bits
    set_beta = 0x4,   // payload ignored; next word = FP32 bits
    segment = 0x5,    // payload = segment depth (max channel lines)
    lines = 0x6,      // payload = one channel's line count for the segment
    run = 0x7,
    halt = 0x8,
};

inline constexpr unsigned kOpcodeShift = 28;
inline constexpr std::uint32_t kPayloadMask = (1u << kOpcodeShift) - 1;

constexpr std::uint32_t make_instruction(Opcode op, std::uint32_t payload = 0)
{
    return (static_cast<std::uint32_t>(op) << kOpcodeShift) |
           (payload & kPayloadMask);
}

constexpr Opcode opcode_of(std::uint32_t word)
{
    return static_cast<Opcode>(word >> kOpcodeShift);
}

constexpr std::uint32_t payload_of(std::uint32_t word)
{
    return word & kPayloadMask;
}

// The decoded control program.
struct ControlProgram {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    float alpha = 1.0f;
    float beta = 0.0f;
    // [segment] -> (depth, per-channel line counts)
    struct Segment {
        std::uint32_t depth = 0;
        std::vector<std::uint32_t> channel_lines;
    };
    std::vector<Segment> segments;
};

// Thrown on malformed instruction streams.
class InstructionError : public std::runtime_error {
public:
    explicit InstructionError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

// Compile the control program for an encoded image.
std::vector<std::uint32_t> build_instructions(const SerpensImage& img,
                                              float alpha, float beta);

// Decode and validate an instruction stream (the device FSM's job).
ControlProgram decode_instructions(std::span<const std::uint32_t> words,
                                   unsigned ha_channels);

// Cross-check a decoded program against the image it will drive.
// Throws InstructionError on any disagreement.
void validate_program(const ControlProgram& program, const SerpensImage& img);

} // namespace serpens::encode
