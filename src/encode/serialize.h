// Binary serialization of the encoded accelerator image.
//
// A SerpensImage is exactly the byte layout a real deployment would DMA
// into the HBM channels, so being able to write it once and reload it is
// the production workflow: preprocess offline, ship the image, run many
// SpMVs. Format (little-endian):
//
//   magic "SRPN", u32 version
//   EncodeParams fields (u32 each; policy/coalescing as u32)
//   u32 rows, u32 cols, u32 num_segments, u32 channels
//   [v2: u32 CRC-32 of the bytes since the version field]
//   per channel: u32 seg_lines[num_segments]
//   [v2: u32 CRC-32 of the segment-line table]
//   per channel: u64 line_count, then line_count * 64 bytes of lines
//                [v2: u32 CRC-32 of this channel's count + lines]
//   [v2: end of file — trailing bytes are an error]
//
// Version 2 (the current writer default) checksums every section with
// util::crc32, so a torn copy, a truncated download, or a single flipped
// bit anywhere past the magic is rejected with a precise ImageFormatError
// instead of loading garbage into the registry. Version-1 files (no CRCs)
// remain loadable: integrity checking is an upgrade, not a migration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "encode/image.h"

namespace serpens::encode {

// Thrown on malformed or incompatible image files.
class ImageFormatError : public std::runtime_error {
public:
    explicit ImageFormatError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

// The version save_image writes by default; load_image reads 1 and 2.
constexpr std::uint32_t kImageFormatVersion = 2;

// `version` exists for tests and forward-compat fixtures (writing a v1
// image to prove the loader still reads them); production callers use the
// default. Throws ImageFormatError for versions the loader cannot read.
void save_image(std::ostream& out, const SerpensImage& img,
                std::uint32_t version = kImageFormatVersion);
void save_image_file(const std::string& path, const SerpensImage& img,
                     std::uint32_t version = kImageFormatVersion);

SerpensImage load_image(std::istream& in);
SerpensImage load_image_file(const std::string& path);

} // namespace serpens::encode
