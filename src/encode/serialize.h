// Binary serialization of the encoded accelerator image.
//
// A SerpensImage is exactly the byte layout a real deployment would DMA
// into the HBM channels, so being able to write it once and reload it is
// the production workflow: preprocess offline, ship the image, run many
// SpMVs. Format (little-endian):
//
//   magic "SRPN", u32 version
//   EncodeParams fields (u32 each; policy/coalescing as u32)
//   u32 rows, u32 cols, u32 num_segments, u32 channels
//   per channel: u32 seg_lines[num_segments]
//   per channel: u64 line_count, then line_count * 64 bytes of lines
#pragma once

#include <iosfwd>
#include <string>

#include "encode/image.h"

namespace serpens::encode {

// Thrown on malformed or incompatible image files.
class ImageFormatError : public std::runtime_error {
public:
    explicit ImageFormatError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

void save_image(std::ostream& out, const SerpensImage& img);
void save_image_file(const std::string& path, const SerpensImage& img);

SerpensImage load_image(std::istream& in);
SerpensImage load_image_file(const std::string& path);

} // namespace serpens::encode
