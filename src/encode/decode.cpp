#include "encode/decode.h"

#include <algorithm>
#include <unordered_map>

namespace serpens::encode {

std::vector<sparse::Triplet> decode_image(const SerpensImage& img)
{
    const EncodeParams& p = img.params();
    const RowMapping mapping(p);
    const unsigned lanes = p.pes_per_channel;

    std::vector<sparse::Triplet> out;
    out.reserve(img.stats().nnz);

    for (unsigned ch = 0; ch < img.channels(); ++ch) {
        std::size_t line_at = 0;
        for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
            const std::uint32_t depth = img.segment_lines(ch, seg);
            for (std::uint32_t i = 0; i < depth; ++i) {
                const hbm::Line512& line = img.channel(ch).line(line_at + i);
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    if (!e.valid())
                        continue;
                    const unsigned pe = ch * lanes + lane;
                    const index_t row =
                        mapping.row_of({pe, e.pair_addr(), e.half()});
                    const index_t col =
                        static_cast<index_t>(seg) * p.window + e.col_off();
                    out.push_back({row, col, e.value()});
                }
            }
            line_at += depth;
        }
        SERPENS_ASSERT(line_at == img.channel(ch).size(),
                       "segment line counts disagree with the stream length");
    }

    std::sort(out.begin(), out.end(), [](const sparse::Triplet& a,
                                         const sparse::Triplet& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    return out;
}

void verify_image(const SerpensImage& img)
{
    const EncodeParams& p = img.params();
    const unsigned lanes = p.pes_per_channel;
    const unsigned window = p.dsp_latency;

    for (unsigned ch = 0; ch < img.channels(); ++ch) {
        std::size_t line_at = 0;
        for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
            const std::uint32_t depth = img.segment_lines(ch, seg);
            for (unsigned lane = 0; lane < lanes; ++lane) {
                // Last slot (within this segment) at which each address was
                // touched by this PE.
                std::unordered_map<std::uint32_t, std::uint32_t> last_use;
                for (std::uint32_t i = 0; i < depth; ++i) {
                    const hbm::Line512& line = img.channel(ch).line(line_at + i);
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    if (!e.valid())
                        continue;
                    SERPENS_ASSERT(e.pair_addr() < p.addrs_per_pe(),
                                   "URAM address out of range");
                    SERPENS_ASSERT(e.col_off() < p.window,
                                   "column offset outside the segment window");
                    auto [it, fresh] = last_use.try_emplace(e.pair_addr(), i);
                    if (!fresh) {
                        SERPENS_ASSERT(i - it->second >= window,
                                       "RAW hazard: same URAM address within "
                                       "the DSP latency window");
                        it->second = i;
                    }
                }
            }
            line_at += depth;
        }
    }
}

} // namespace serpens::encode
