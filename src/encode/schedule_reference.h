// Reference implementation of the hazard-aware scheduler.
//
// This is the original three-priority-queue list scheduler (O(log g) per
// slot), kept verbatim so the production calendar-queue scheduler in
// schedule.cpp can be differentially tested and benchmarked against it:
//
//   - tests/test_schedule_differential.cpp asserts the fast path emits a
//     valid schedule with padding equal to this implementation's on every
//     tested input, and byte-identical slots for the fifo policy;
//   - bench_micro_encode times both on the same streams.
//
// Do not call this from production code paths — it exists for verification.
#pragma once

#include "encode/schedule.h"

namespace serpens::encode {

// Semantics are identical to schedule_hazard_aware (see schedule.h), except
// largest_bucket_first breaks remaining-count ties toward the smaller
// address, whereas the calendar-queue scheduler serves count ties in
// insertion order. Both tie-breaks are deterministic and both achieve the
// same schedule length (greedy largest-remaining-first is makespan-optimal
// for this separation-constrained problem regardless of tie-break).
ScheduleResult schedule_hazard_aware_reference(std::span<const std::uint32_t> addrs,
                                               unsigned window,
                                               SchedulePolicy policy);

} // namespace serpens::encode
