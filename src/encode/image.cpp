#include "encode/image.h"

#include <algorithm>

#include "encode/schedule.h"
#include "util/bitpack.h"

namespace serpens::encode {

SerpensImage::SerpensImage(EncodeParams params, index_t rows, index_t cols)
    : params_(params), rows_(rows), cols_(cols)
{
    num_segments_ = static_cast<unsigned>(ceil_div<index_t>(cols, params_.window));
    streams_.reserve(params_.ha_channels);
    for (unsigned c = 0; c < params_.ha_channels; ++c)
        streams_.emplace_back("A" + std::to_string(c));
    seg_lines_.assign(params_.ha_channels,
                      std::vector<std::uint32_t>(num_segments_, 0));
}

std::uint32_t SerpensImage::segment_depth(unsigned s) const
{
    std::uint32_t depth = 0;
    for (unsigned c = 0; c < channels(); ++c)
        depth = std::max(depth, seg_lines_[c][s]);
    return depth;
}

SerpensImage encode_matrix(const sparse::CooMatrix& m, const EncodeParams& params)
{
    params.validate();
    SERPENS_CHECK(m.rows() > 0 && m.cols() > 0, "matrix must be non-empty");
    if (m.rows() > params.row_capacity())
        throw CapacityError(
            "matrix rows (" + std::to_string(m.rows()) +
            ") exceed on-chip accumulator capacity (" +
            std::to_string(params.row_capacity()) +
            "); increase HA/U or enable index coalescing");

    SerpensImage img(params, m.rows(), m.cols());
    const RowMapping mapping(params);
    const unsigned lanes = params.pes_per_channel;
    const unsigned channels = params.ha_channels;
    const unsigned segments = img.num_segments();

    // Bucket elements by (segment, channel, lane). Stable order within a
    // bucket keeps encoding deterministic.
    struct LaneElem {
        std::uint32_t addr;
        bool half;
        std::uint32_t col_off;
        float val;
    };
    std::vector<std::vector<LaneElem>> buckets(
        static_cast<std::size_t>(segments) * channels * lanes);

    const auto bucket_index = [&](unsigned seg, unsigned ch, unsigned lane) {
        return (static_cast<std::size_t>(seg) * channels + ch) * lanes + lane;
    };

    for (const sparse::Triplet& t : m.elements()) {
        const PeLocation loc = mapping.locate(t.row);
        SERPENS_ASSERT(loc.addr < params.addrs_per_pe(),
                       "row maps beyond the PE URAM space");
        const unsigned seg = t.col / params.window;
        const std::uint32_t col_off = t.col % params.window;
        const unsigned ch = loc.pe / lanes;
        const unsigned lane = loc.pe % lanes;
        buckets[bucket_index(seg, ch, lane)].push_back(
            {loc.addr, loc.half, col_off, t.val});
    }

    EncodeStats stats;
    stats.nnz = m.nnz();
    stats.num_segments = segments;

    std::vector<std::vector<EncodedElement>> lane_slots(lanes);
    std::vector<std::uint32_t> addrs;

    for (unsigned seg = 0; seg < segments; ++seg) {
        for (unsigned ch = 0; ch < channels; ++ch) {
            std::size_t depth = 0;
            for (unsigned lane = 0; lane < lanes; ++lane) {
                const auto& bucket = buckets[bucket_index(seg, ch, lane)];
                addrs.clear();
                addrs.reserve(bucket.size());
                for (const LaneElem& e : bucket)
                    addrs.push_back(e.addr);
                const ScheduleResult sched = schedule_hazard_aware(
                    addrs, params.dsp_latency, params.policy);

                auto& slots = lane_slots[lane];
                slots.clear();
                slots.reserve(sched.slots.size());
                for (std::int64_t s : sched.slots) {
                    if (s == ScheduleResult::kPaddingSlot) {
                        slots.push_back(EncodedElement::padding());
                    } else {
                        const LaneElem& e = bucket[static_cast<std::size_t>(s)];
                        slots.push_back(
                            EncodedElement::make(e.addr, e.half, e.col_off, e.val));
                    }
                }
                depth = std::max(depth, slots.size());
            }

            // Pad every lane to the channel's depth and pack into lines.
            hbm::ChannelStream& stream = img.streams_[ch];
            for (std::size_t i = 0; i < depth; ++i) {
                hbm::Line512 line;
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const EncodedElement e = i < lane_slots[lane].size()
                                                 ? lane_slots[lane][i]
                                                 : EncodedElement::padding();
                    line.set_lane64(lane, e.bits());
                }
                stream.push(line);
            }
            img.seg_lines_[ch][seg] = static_cast<std::uint32_t>(depth);
            stats.total_slots += depth * lanes;
            stats.total_lines += depth;
        }
    }

    stats.padding_slots = stats.total_slots - stats.nnz;
    img.stats_ = stats;
    return img;
}

} // namespace serpens::encode
