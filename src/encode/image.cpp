#include "encode/image.h"

#include <algorithm>

#include "encode/schedule.h"
#include "util/bitpack.h"
#include "util/thread_pool.h"

namespace serpens::encode {

SerpensImage::SerpensImage(EncodeParams params, index_t rows, index_t cols)
    : params_(params), rows_(rows), cols_(cols)
{
    num_segments_ = static_cast<unsigned>(ceil_div<index_t>(cols, params_.window));
    streams_.reserve(params_.ha_channels);
    for (unsigned c = 0; c < params_.ha_channels; ++c)
        streams_.emplace_back("A" + std::to_string(c));
    seg_lines_.assign(params_.ha_channels,
                      std::vector<std::uint32_t>(num_segments_, 0));
}

std::uint32_t SerpensImage::segment_depth(unsigned s) const
{
    std::uint32_t depth = 0;
    for (unsigned c = 0; c < channels(); ++c)
        depth = std::max(depth, seg_lines_[c][s]);
    return depth;
}

std::uint64_t SerpensImage::memory_bytes() const
{
    std::uint64_t bytes = 0;
    for (const hbm::ChannelStream& stream : streams_)
        bytes += stream.bytes();
    bytes += static_cast<std::uint64_t>(channels()) * num_segments_ *
             sizeof(std::uint32_t);
    return bytes;
}

SerpensImage encode_matrix(const sparse::CooMatrix& m,
                           const EncodeParams& params,
                           const EncodeOptions& options)
{
    params.validate();
    SERPENS_CHECK(m.rows() > 0 && m.cols() > 0, "matrix must be non-empty");
    if (m.rows() > params.row_capacity())
        throw CapacityError(
            "matrix rows (" + std::to_string(m.rows()) +
            ") exceed on-chip accumulator capacity (" +
            std::to_string(params.row_capacity()) +
            "); increase HA/U or enable index coalescing");

    SerpensImage img(params, m.rows(), m.cols());
    const RowMapping mapping(params);
    const unsigned lanes = params.pes_per_channel;
    const unsigned channels = params.ha_channels;
    const unsigned segments = img.num_segments();

    // Bucket elements by (segment, channel, lane). Stable order within a
    // bucket keeps encoding deterministic.
    struct LaneElem {
        std::uint32_t addr;
        bool half;
        std::uint32_t col_off;
        float val;
    };
    std::vector<std::vector<LaneElem>> buckets(
        static_cast<std::size_t>(segments) * channels * lanes);

    const auto bucket_index = [&](unsigned seg, unsigned ch, unsigned lane) {
        return (static_cast<std::size_t>(seg) * channels + ch) * lanes + lane;
    };

    for (const sparse::Triplet& t : m.elements()) {
        const ElementPlacement p = place_element(mapping, params, t.row, t.col);
        SERPENS_ASSERT(p.addr < params.addrs_per_pe(),
                       "row maps beyond the PE URAM space");
        buckets[bucket_index(p.segment, p.channel, p.lane)].push_back(
            {p.addr, p.half, p.col_off, t.val});
    }

    EncodeStats stats;
    stats.nnz = m.nnz();
    stats.num_segments = segments;

    // Each channel owns its stream, its seg_lines row, and its slice of the
    // buckets, so channels encode independently — the parallel workers
    // below share no mutable state and the image is byte-identical for
    // every thread count.
    struct ChannelTotals {
        std::uint64_t slots = 0;
        std::uint64_t lines = 0;
    };
    std::vector<ChannelTotals> totals(channels);

    const auto encode_channel = [&](std::size_t ch) {
        std::vector<std::vector<EncodedElement>> lane_slots(lanes);
        std::vector<std::uint32_t> addrs;
        hbm::ChannelStream& stream = img.streams_[ch];

        for (unsigned seg = 0; seg < segments; ++seg) {
            std::size_t depth = 0;
            for (unsigned lane = 0; lane < lanes; ++lane) {
                const auto& bucket =
                    buckets[bucket_index(seg, static_cast<unsigned>(ch), lane)];
                addrs.clear();
                addrs.reserve(bucket.size());
                for (const LaneElem& e : bucket)
                    addrs.push_back(e.addr);
                const ScheduleResult sched = schedule_hazard_aware(
                    addrs, params.dsp_latency, params.policy);

                auto& slots = lane_slots[lane];
                slots.clear();
                slots.reserve(sched.slots.size());
                for (std::int64_t s : sched.slots) {
                    if (s == ScheduleResult::kPaddingSlot) {
                        slots.push_back(EncodedElement::padding());
                    } else {
                        const LaneElem& e = bucket[static_cast<std::size_t>(s)];
                        slots.push_back(
                            EncodedElement::make(e.addr, e.half, e.col_off, e.val));
                    }
                }
                depth = std::max(depth, slots.size());
            }

            // Pad every lane to the channel's depth and pack into lines.
            for (std::size_t i = 0; i < depth; ++i) {
                hbm::Line512 line;
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    const EncodedElement e = i < lane_slots[lane].size()
                                                 ? lane_slots[lane][i]
                                                 : EncodedElement::padding();
                    line.set_lane64(lane, e.bits());
                }
                stream.push(line);
            }
            img.seg_lines_[ch][seg] = static_cast<std::uint32_t>(depth);
            totals[ch].slots += depth * lanes;
            totals[ch].lines += depth;
        }
    };

    util::shared_parallel_for(options.threads, channels, encode_channel);

    // Deterministic reduction in channel order.
    for (const ChannelTotals& t : totals) {
        stats.total_slots += t.slots;
        stats.total_lines += t.lines;
    }
    stats.padding_slots = stats.total_slots - stats.nnz;
    img.stats_ = stats;
    return img;
}

} // namespace serpens::encode
