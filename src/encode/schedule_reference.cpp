#include "encode/schedule_reference.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace serpens::encode {

namespace {

struct Group {
    std::uint32_t addr = 0;
    std::vector<std::int64_t> members; // input indices, original order
    std::size_t next = 0;              // cursor into members

    std::size_t remaining() const { return members.size() - next; }
};

// Pending heap entry: group becomes eligible at `ready_slot`.
struct Pending {
    std::size_t ready_slot;
    std::size_t group;
};

struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const
    {
        return a.ready_slot > b.ready_slot;
    }
};

// Eligible heap entry for largest_bucket_first: more remaining elements wins;
// ties break toward the smaller address for determinism.
struct EligibleLbf {
    std::size_t remaining;
    std::uint32_t addr;
    std::size_t group;
};

struct LbfWorse {
    bool operator()(const EligibleLbf& a, const EligibleLbf& b) const
    {
        if (a.remaining != b.remaining)
            return a.remaining < b.remaining;
        return a.addr > b.addr;
    }
};

// Eligible heap entry for fifo: earlier eligibility wins; ties toward the
// smaller address.
struct EligibleFifo {
    std::size_t ready_slot;
    std::uint32_t addr;
    std::size_t group;
};

struct FifoWorse {
    bool operator()(const EligibleFifo& a, const EligibleFifo& b) const
    {
        if (a.ready_slot != b.ready_slot)
            return a.ready_slot > b.ready_slot;
        return a.addr > b.addr;
    }
};

} // namespace

ScheduleResult schedule_hazard_aware_reference(std::span<const std::uint32_t> addrs,
                                               unsigned window,
                                               SchedulePolicy policy)
{
    SERPENS_CHECK(window >= 1, "hazard window must be at least one slot");

    ScheduleResult result;
    result.real_count = addrs.size();
    if (addrs.empty())
        return result;

    // Bucket inputs by conflict address, preserving arrival order.
    std::unordered_map<std::uint32_t, std::size_t> group_of;
    std::vector<Group> groups;
    group_of.reserve(addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        auto [it, inserted] = group_of.try_emplace(addrs[i], groups.size());
        if (inserted)
            groups.push_back({addrs[i], {}, 0});
        groups[it->second].members.push_back(static_cast<std::int64_t>(i));
    }

    std::priority_queue<Pending, std::vector<Pending>, PendingLater> pending;
    std::priority_queue<EligibleLbf, std::vector<EligibleLbf>, LbfWorse> ready_lbf;
    std::priority_queue<EligibleFifo, std::vector<EligibleFifo>, FifoWorse> ready_fifo;

    const bool lbf = policy == SchedulePolicy::largest_bucket_first;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (lbf)
            ready_lbf.push({groups[g].remaining(), groups[g].addr, g});
        else
            ready_fifo.push({0, groups[g].addr, g});
    }

    std::size_t emitted = 0;
    result.slots.reserve(addrs.size());
    while (emitted < addrs.size()) {
        const std::size_t slot = result.slots.size();

        // Promote pending groups whose hazard window has elapsed.
        while (!pending.empty() && pending.top().ready_slot <= slot) {
            const Pending p = pending.top();
            pending.pop();
            Group& g = groups[p.group];
            if (lbf)
                ready_lbf.push({g.remaining(), g.addr, p.group});
            else
                ready_fifo.push({p.ready_slot, g.addr, p.group});
        }

        std::size_t chosen = groups.size();
        if (lbf && !ready_lbf.empty()) {
            chosen = ready_lbf.top().group;
            ready_lbf.pop();
        } else if (!lbf && !ready_fifo.empty()) {
            chosen = ready_fifo.top().group;
            ready_fifo.pop();
        }

        if (chosen == groups.size()) {
            // Nothing eligible: emit a padding bubble.
            result.slots.push_back(ScheduleResult::kPaddingSlot);
            ++result.padding_count;
            continue;
        }

        Group& g = groups[chosen];
        result.slots.push_back(g.members[g.next++]);
        ++emitted;
        if (g.remaining() > 0)
            pending.push({slot + window, chosen});
    }

    return result;
}

} // namespace serpens::encode
