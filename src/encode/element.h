// 64-bit encoded sparse element (paper §3.1.2, §3.4).
//
// The hardware streams sparse elements as 64 bits: a 32-bit FP32 value and a
// 32-bit compressed index word. Compression is possible because, after
// segmentation and PE distribution, both indices are bounded:
//   - the column offset lies inside the current x segment (< W <= 16384),
//   - the row reduces to a PE-local URAM address (< U*D <= 32768) plus,
//     with index coalescing, a 1-bit half-select inside the 72-bit word.
//
// Index word layout (bit 31 .. bit 0):
//   [31]     valid      0 marks a padding (null) element inserted by the
//                       reorderer; the PE pipeline treats it as a bubble
//   [30:16]  pair_addr  PE-local URAM address (15 bits)
//   [15]     half       which FP32 half of the 72-bit URAM word (row parity)
//   [14]     reserved
//   [13:0]   col_off    column offset within the current x segment (14 bits)
#pragma once

#include <cstdint>

#include "util/bitpack.h"
#include "util/check.h"

namespace serpens::encode {

inline constexpr unsigned kColOffBits = 14;
inline constexpr unsigned kColOffLo = 0;
inline constexpr unsigned kHalfBit = 15;
inline constexpr unsigned kAddrBits = 15;
inline constexpr unsigned kAddrLo = 16;
inline constexpr unsigned kValidBit = 31;

inline constexpr std::uint32_t kMaxWindow = 1u << kColOffBits;    // 16384
inline constexpr std::uint32_t kMaxPairAddr = 1u << kAddrBits;    // 32768

class EncodedElement {
public:
    EncodedElement() = default;  // invalid (padding) by default

    static EncodedElement make(std::uint32_t pair_addr, bool half,
                               std::uint32_t col_off, float value)
    {
        SERPENS_ASSERT(fits_bits(pair_addr, kAddrBits), "pair_addr overflows field");
        SERPENS_ASSERT(fits_bits(col_off, kColOffBits), "col_off overflows field");
        std::uint32_t idx = 0;
        idx = insert_bits(idx, kAddrLo, kAddrBits, pair_addr);
        idx = insert_bits(idx, kHalfBit, 1, half ? 1u : 0u);
        idx = insert_bits(idx, kColOffLo, kColOffBits, col_off);
        idx = insert_bits(idx, kValidBit, 1, 1u);
        EncodedElement e;
        e.bits_ = (static_cast<std::uint64_t>(idx) << 32) | float_bits(value);
        return e;
    }

    static EncodedElement padding() { return EncodedElement{}; }

    static EncodedElement from_bits(std::uint64_t bits)
    {
        EncodedElement e;
        e.bits_ = bits;
        return e;
    }

    std::uint64_t bits() const { return bits_; }
    std::uint32_t index_word() const { return static_cast<std::uint32_t>(bits_ >> 32); }

    bool valid() const { return extract_bits(index_word(), kValidBit, 1) != 0; }
    std::uint32_t pair_addr() const { return extract_bits(index_word(), kAddrLo, kAddrBits); }
    bool half() const { return extract_bits(index_word(), kHalfBit, 1) != 0; }
    std::uint32_t col_off() const { return extract_bits(index_word(), kColOffLo, kColOffBits); }
    float value() const { return bits_float(static_cast<std::uint32_t>(bits_)); }

    friend bool operator==(const EncodedElement&, const EncodedElement&) = default;

private:
    std::uint64_t bits_ = 0;
};

} // namespace serpens::encode
