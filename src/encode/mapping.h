// Architecture parameters and the row -> (PE, URAM address, half) mapping.
//
// Serpens distributes rows across PEs so that each PE's accumulator
// addresses are disjoint (paper §3.3) and, with index coalescing (§3.4),
// two consecutive rows share one 72-bit URAM word:
//
//   pair       = row / 2
//   pe         = pair mod P          (P = 8 * HA processing engines)
//   pair_addr  = pair / P            (PE-local URAM address)
//   half       = row mod 2           (which FP32 half of the word)
//
// Without coalescing (the ablation configuration) each row owns a whole
// URAM word: pe = row mod P, addr = row / P, half = 0 — and the on-chip
// row capacity halves, exactly the effect the paper's optimization buys.
#pragma once

#include <cstdint>

#include "encode/element.h"
#include "sparse/coo.h"
#include "util/check.h"

namespace serpens::encode {

using sparse::index_t;
using sparse::nnz_t;

enum class SchedulePolicy {
    fifo,                 // serve conflict groups in arrival order
    largest_bucket_first, // serve the group with the most remaining elements
};

struct EncodeParams {
    unsigned ha_channels = 16;    // HBM channels for the sparse matrix (HA)
    unsigned pes_per_channel = 8; // fixed by the 512-bit bus: 8 elements/line
    unsigned urams_per_pe = 3;    // U in the paper (Table 1)
    unsigned uram_depth = 4096;   // D: depth of a 72-bit-wide URAM
    index_t window = 8192;        // W: x-segment length (paper §3.2)
    unsigned dsp_latency = 8;     // T: FP32 accumulation latency in cycles
    bool coalescing = true;       // index coalescing on/off (§3.4)
    SchedulePolicy policy = SchedulePolicy::largest_bucket_first;

    unsigned total_pes() const { return ha_channels * pes_per_channel; }

    // URAM words available to one PE.
    std::uint32_t addrs_per_pe() const { return urams_per_pe * uram_depth; }

    // Paper Eq. 3: row capacity = 16 * HA * U * D with coalescing
    // (= 2 * P * U * D); halves without it.
    std::uint64_t row_capacity() const
    {
        const std::uint64_t words =
            static_cast<std::uint64_t>(total_pes()) * addrs_per_pe();
        return coalescing ? 2 * words : words;
    }

    void validate() const
    {
        SERPENS_CHECK(ha_channels >= 1 && ha_channels <= 28,
                      "ha_channels must be in [1, 28]");
        SERPENS_CHECK(pes_per_channel == 8,
                      "the 512-bit bus fixes 8 PEs per channel");
        SERPENS_CHECK(urams_per_pe >= 1, "urams_per_pe must be positive");
        SERPENS_CHECK(uram_depth >= 1, "uram_depth must be positive");
        SERPENS_CHECK(window >= 16 && window <= kMaxWindow,
                      "window must be in [16, 16384]");
        SERPENS_CHECK(window % 16 == 0,
                      "window must be a multiple of the 16-float line");
        SERPENS_CHECK(dsp_latency >= 1 && dsp_latency <= 64,
                      "dsp_latency must be in [1, 64]");
        SERPENS_CHECK(addrs_per_pe() <= kMaxPairAddr,
                      "URAM address space overflows the 15-bit address field");
    }
};

struct PeLocation {
    unsigned pe = 0;           // global PE index in [0, 8*HA)
    std::uint32_t addr = 0;    // PE-local URAM address
    bool half = false;         // FP32 half within the 72-bit word
};

class RowMapping {
public:
    explicit RowMapping(const EncodeParams& p)
        : pes_(p.total_pes()), coalescing_(p.coalescing)
    {
        SERPENS_CHECK(pes_ > 0, "mapping requires at least one PE");
    }

    PeLocation locate(index_t row) const
    {
        if (coalescing_) {
            const index_t pair = row >> 1;
            return {static_cast<unsigned>(pair % pes_), pair / pes_,
                    (row & 1u) != 0};
        }
        return {static_cast<unsigned>(row % pes_), row / pes_, false};
    }

    index_t row_of(const PeLocation& loc) const
    {
        if (coalescing_) {
            const index_t pair = loc.addr * pes_ + loc.pe;
            return 2 * pair + (loc.half ? 1u : 0u);
        }
        SERPENS_ASSERT(!loc.half, "half-select unused without coalescing");
        return loc.addr * pes_ + loc.pe;
    }

    unsigned pes() const { return pes_; }
    bool coalescing() const { return coalescing_; }

private:
    unsigned pes_;
    bool coalescing_;
};

// Where one non-zero lands in the encoded image: its (segment, channel,
// lane) bucket plus the in-lane encoding fields. encode_matrix and the
// schedule tests both derive bucketing from this one function, so the
// streams the tests validate are the streams the encoder builds.
struct ElementPlacement {
    unsigned segment = 0;
    unsigned channel = 0;
    unsigned lane = 0;
    std::uint32_t addr = 0;
    bool half = false;
    std::uint32_t col_off = 0;
};

inline ElementPlacement place_element(const RowMapping& mapping,
                                      const EncodeParams& params,
                                      index_t row, index_t col)
{
    const PeLocation loc = mapping.locate(row);
    return {static_cast<unsigned>(col / params.window),
            loc.pe / params.pes_per_channel,
            loc.pe % params.pes_per_channel,
            loc.addr,
            loc.half,
            static_cast<std::uint32_t>(col % params.window)};
}

} // namespace serpens::encode
