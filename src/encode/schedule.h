// Hazard-aware non-zero reordering (paper §3.4, Figure 2).
//
// A PE accumulates one element per cycle in an II=1 pipeline, but the FP32
// accumulation takes T cycles, so two elements that touch the same URAM
// address must be at least T slots apart (read-after-write hazard). With
// index coalescing the conflict unit is the *coalesced address* — i.e. two
// consecutive rows — which is exactly the paper's "color two consecutive
// rows with the same color" rule.
//
// The scheduler is an off-line greedy list scheduler: at each slot it emits
// an element whose conflict group has been quiet for >= T slots, or a
// padding (null) element when none is eligible. Two service policies:
//   - fifo: groups are served in the order they become eligible (stable);
//   - largest_bucket_first: the group with the most remaining elements is
//     served first. This provably minimizes makespan for this
//     single-machine problem with sequence-independent separation, and is
//     what keeps padding negligible on real matrices.
//
// The implementation (schedule.cpp) is a calendar queue: pending groups
// sit in a ring of T + 1 slot-keyed buckets and ready groups in
// count-indexed lists (largest_bucket_first) or one intrusive FIFO (fifo),
// so each slot costs amortized O(1) instead of the O(log g) of a heap.
// The original heap-based scheduler survives as
// schedule_hazard_aware_reference (schedule_reference.h); the two are
// differentially tested against each other, and fifo schedules are
// byte-identical across both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encode/mapping.h"

namespace serpens::encode {

struct ScheduleResult {
    // One entry per emitted slot: the index of the scheduled input element,
    // or kPaddingSlot for an inserted null element.
    std::vector<std::int64_t> slots;
    std::size_t real_count = 0;
    std::size_t padding_count = 0;

    static constexpr std::int64_t kPaddingSlot = -1;
};

// Schedule elements whose conflict-group keys are `addrs[i]`. Returns a slot
// sequence containing every input index exactly once, padded so that equal
// addresses are >= window slots apart.
ScheduleResult schedule_hazard_aware(std::span<const std::uint32_t> addrs,
                                     unsigned window, SchedulePolicy policy);

// Lower bound on the schedule length: max(n, (max_bucket - 1) * window + 1).
// Exposed so tests and benches can measure scheduler quality.
std::size_t schedule_lower_bound(std::span<const std::uint32_t> addrs,
                                 unsigned window);

} // namespace serpens::encode
