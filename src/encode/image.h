// The accelerator-efficient storage image (paper §3.1.2, §3.2, §3.4).
//
// `encode_matrix` turns a COO matrix into exactly what a real Serpens
// consumes: one 512-bit line stream per sparse-matrix HBM channel, ordered
// by x-segment, with eight 64-bit encoded elements per line (one per PE
// lane), already reordered so no PE sees a URAM-address hazard within the
// DSP latency window, and padded with null elements where reordering could
// not fill a slot.
#pragma once

#include <cstdint>
#include <vector>

#include "encode/element.h"
#include "encode/mapping.h"
#include "hbm/channel.h"
#include "sparse/coo.h"

namespace serpens::encode {

struct EncodeStats {
    nnz_t nnz = 0;
    std::uint64_t total_slots = 0;    // element slots incl. padding
    std::uint64_t padding_slots = 0;  // null elements inserted
    std::uint64_t total_lines = 0;    // 512-bit lines across all A channels
    unsigned num_segments = 0;

    double padding_ratio() const
    {
        return total_slots == 0
                   ? 0.0
                   : static_cast<double>(padding_slots) / static_cast<double>(total_slots);
    }
};

// Host-side knobs of the encode stage (not part of the architecture; they
// never change the produced image, only how fast it is built).
struct EncodeOptions {
    // Worker threads for the per-channel encode: every HBM channel's
    // schedule is independent, so channels encode in parallel. 1 = serial
    // (the default), 0 = one worker per hardware thread. The image bytes
    // are identical for every thread count.
    unsigned threads = 1;
};

class SerpensImage {
public:
    SerpensImage(EncodeParams params, index_t rows, index_t cols);

    const EncodeParams& params() const { return params_; }
    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    unsigned num_segments() const { return num_segments_; }

    const hbm::ChannelStream& channel(unsigned c) const { return streams_[c]; }
    unsigned channels() const { return static_cast<unsigned>(streams_.size()); }

    // Lines channel `c` contributes to segment `s` (channels advance in
    // lockstep per segment; the slowest channel bounds the segment).
    std::uint32_t segment_lines(unsigned c, unsigned s) const
    {
        return seg_lines_[c][s];
    }

    // Max over channels: the compute-cycle count of segment `s`.
    std::uint32_t segment_depth(unsigned s) const;

    const EncodeStats& stats() const { return stats_; }

    // Resident bytes of the packed image: the 512-bit channel lines
    // (exactly what a deployment DMAs into HBM) plus the per-channel
    // segment-line tables. This is the "image" term of
    // core::PreparedMatrix::memory_footprint_bytes(), which the serving
    // layer's MatrixRegistry charges against its resident budget.
    std::uint64_t memory_bytes() const;

    // Mutators for deserialization (encode/serialize.cpp); application code
    // obtains images through encode_matrix or load_image only.
    void set_segment_lines(unsigned c, unsigned s, std::uint32_t lines)
    {
        seg_lines_[c][s] = lines;
    }
    hbm::ChannelStream& mutable_channel(unsigned c) { return streams_[c]; }
    void set_stats(const EncodeStats& stats) { stats_ = stats; }

private:
    friend SerpensImage encode_matrix(const sparse::CooMatrix&,
                                      const EncodeParams&,
                                      const EncodeOptions&);

    EncodeParams params_;
    index_t rows_ = 0;
    index_t cols_ = 0;
    unsigned num_segments_ = 0;
    std::vector<hbm::ChannelStream> streams_;          // [ha_channels]
    std::vector<std::vector<std::uint32_t>> seg_lines_; // [channel][segment]
    EncodeStats stats_;
};

// Encode a matrix for the given architecture parameters.
// Throws CapacityError if the row count exceeds the on-chip accumulator
// capacity (paper Eq. 3), std::invalid_argument on invalid params.
SerpensImage encode_matrix(const sparse::CooMatrix& m,
                           const EncodeParams& params,
                           const EncodeOptions& options = {});

} // namespace serpens::encode
