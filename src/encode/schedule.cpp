// Calendar-queue list scheduler.
//
// The scheduler emits one slot per iteration, so every data structure here
// is keyed by slot or by remaining-count and paid for in O(1) amortized
// time (the only super-constant step is a bounded walk past count levels
// whose groups are all inside the hazard window — at most `window` of them
// can exist). The pieces:
//
//   - groups are a flat CSR table (offsets + member array), built with a
//     dense addr -> group map when the address space is small (URAM
//     addresses are 15-bit in practice) and a hash map otherwise;
//   - the *pending* set is a calendar: a ring of `window + 1` buckets keyed
//     by ready slot. One element is emitted per slot, so every ready slot
//     is distinct and each bucket holds at most one group — promotion is a
//     single array read per slot;
//   - the *ready* set for largest_bucket_first is a vertical doubly-linked
//     list of count levels (one node per distinct remaining-count, each
//     holding an intrusive FIFO of eligible groups). Serving a group moves
//     it exactly one level down, so levels are created/removed adjacently
//     in O(1); ties within a level are served in insertion order;
//   - the *ready* set for fifo is a single intrusive FIFO, seeded in
//     ascending address order and appended to in promotion order — which
//     reproduces the reference heap's (ready_slot, addr) order exactly, so
//     fifo schedules are byte-identical to schedule_hazard_aware_reference.
#include "encode/schedule.h"

#include <algorithm>
#include <unordered_map>

namespace serpens::encode {

namespace {

constexpr std::int32_t kNone = -1;

// Flat group table: member input-indices of group g, in arrival order, are
// members[offset[g] .. offset[g+1]); head[g] is the emission cursor.
struct GroupTable {
    std::vector<std::uint32_t> addr;
    std::vector<std::size_t> offset;     // size() + 1 entries
    std::vector<std::int64_t> members;
    std::vector<std::size_t> head;

    std::size_t size() const { return addr.size(); }
    std::size_t remaining(std::size_t g) const { return offset[g + 1] - head[g]; }
};

GroupTable build_groups(std::span<const std::uint32_t> addrs)
{
    const std::size_t n = addrs.size();
    GroupTable t;
    std::vector<std::uint32_t> group_of_elem(n);

    // Dense direct-mapped assignment when the address range is comparable to
    // the input size (always true for URAM addresses); hash map fallback for
    // arbitrary 32-bit keys.
    std::uint32_t max_addr = 0;
    for (std::uint32_t a : addrs)
        max_addr = std::max(max_addr, a);
    const std::uint64_t dense_limit =
        std::max<std::uint64_t>(1u << 16, 4 * static_cast<std::uint64_t>(n));
    if (max_addr < dense_limit) {
        std::vector<std::int32_t> id_of(static_cast<std::size_t>(max_addr) + 1,
                                        kNone);
        for (std::size_t i = 0; i < n; ++i) {
            std::int32_t& id = id_of[addrs[i]];
            if (id == kNone) {
                id = static_cast<std::int32_t>(t.addr.size());
                t.addr.push_back(addrs[i]);
            }
            group_of_elem[i] = static_cast<std::uint32_t>(id);
        }
    } else {
        std::unordered_map<std::uint32_t, std::uint32_t> id_of;
        id_of.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto [it, inserted] =
                id_of.try_emplace(addrs[i],
                                  static_cast<std::uint32_t>(t.addr.size()));
            if (inserted)
                t.addr.push_back(addrs[i]);
            group_of_elem[i] = it->second;
        }
    }

    // Counting pass -> CSR offsets -> member fill, preserving arrival order.
    const std::size_t g_count = t.addr.size();
    t.offset.assign(g_count + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++t.offset[group_of_elem[i] + 1];
    for (std::size_t g = 0; g < g_count; ++g)
        t.offset[g + 1] += t.offset[g];
    t.members.resize(n);
    t.head = t.offset; // per-group fill cursor, reused as emission cursor
    t.head.pop_back();
    for (std::size_t i = 0; i < n; ++i)
        t.members[t.head[group_of_elem[i]]++] = static_cast<std::int64_t>(i);
    // Reset cursors to the start of each group.
    std::copy(t.offset.begin(), t.offset.end() - 1, t.head.begin());
    return t;
}

// The pending calendar: ring[s % size] holds the group (if any) that
// becomes eligible at slot s. At most one group per bucket (one emission
// per slot => distinct ready slots), at most `window` groups pending.
class Calendar {
public:
    // The +1 is computed in size_t space: window == UINT_MAX must not wrap
    // to a zero-size ring (modulo by zero below).
    Calendar(unsigned window, bool needed)
        : ring_(needed ? static_cast<std::size_t>(window) + 1 : 1, kNone)
    {
    }

    // Group becoming ready at `slot + window` while processing `slot`.
    void push(std::size_t ready_slot, std::size_t group)
    {
        std::int32_t& cell = ring_[ready_slot % ring_.size()];
        SERPENS_ASSERT(cell == kNone, "calendar bucket collision");
        cell = static_cast<std::int32_t>(group);
    }

    // The group (or kNone) whose hazard window elapses at `slot`.
    std::int32_t pop(std::size_t slot)
    {
        std::int32_t& cell = ring_[slot % ring_.size()];
        const std::int32_t g = cell;
        cell = kNone;
        return g;
    }

private:
    std::vector<std::int32_t> ring_;
};

// Count-indexed ready lists for largest_bucket_first: a doubly-linked stack
// of *levels*, one per distinct remaining-count present, highest count on
// top. Each level holds an intrusive FIFO of eligible groups plus the
// number of its groups currently inside the hazard window. A served group
// moves to the level directly below (count - 1), so level creation and
// removal only ever touch adjacent links.
class LbfReady {
public:
    LbfReady(const GroupTable& groups)
        : next_group_(groups.size(), kNone), level_of_(groups.size(), kNone)
    {
        // Bucket groups by initial count (counting sort: counts are bounded
        // by the input size), then materialize levels top-down.
        std::size_t max_count = 0;
        for (std::size_t g = 0; g < groups.size(); ++g)
            max_count = std::max(max_count, groups.remaining(g));
        std::vector<std::int32_t> bucket_head(max_count + 1, kNone);
        std::vector<std::int32_t> bucket_tail(max_count + 1, kNone);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const std::size_t c = groups.remaining(g);
            const auto gi = static_cast<std::int32_t>(g);
            if (bucket_head[c] == kNone)
                bucket_head[c] = gi;
            else
                next_group_[bucket_tail[c]] = gi;
            bucket_tail[c] = gi;
        }
        for (std::size_t c = max_count; c >= 1; --c) {
            if (bucket_head[c] == kNone)
                continue;
            const std::int32_t lv = new_level(c);
            levels_[lv].up = bottom_;
            levels_[lv].elig_head = bucket_head[c];
            levels_[lv].elig_tail = bucket_tail[c];
            for (std::int32_t g = bucket_head[c]; g != kNone;
                 g = next_group_[g])
                level_of_[g] = lv;
            if (bottom_ != kNone)
                levels_[bottom_].down = lv;
            else
                top_ = lv;
            bottom_ = lv;
        }
    }

    // Highest-count eligible group, or kNone when everything is pending.
    // Walks past levels whose groups are all pending — at most `window` of
    // them exist, and empty levels are unlinked eagerly.
    std::int32_t pop_max()
    {
        std::int32_t lv = top_;
        while (lv != kNone && levels_[lv].elig_head == kNone)
            lv = levels_[lv].down;
        if (lv == kNone)
            return kNone;
        Level& level = levels_[lv];
        const std::int32_t g = level.elig_head;
        level.elig_head = next_group_[g];
        if (level.elig_head == kNone)
            level.elig_tail = kNone;
        next_group_[g] = kNone;
        return g;
    }

    // The group just served from level `level_of(g)` now has one fewer
    // element and sits inside the hazard window: park it one level down.
    void park_below(std::int32_t g, std::size_t new_count)
    {
        const std::int32_t lv = level_of_[g];
        SERPENS_ASSERT(levels_[lv].count == new_count + 1,
                       "a served group moves exactly one level down");
        std::int32_t target = levels_[lv].down;
        if (target == kNone || levels_[target].count != new_count) {
            // new_level may reallocate levels_, so no Level& survives it.
            target = new_level(new_count);
            link_below(lv, target);
        }
        ++levels_[target].pending;
        level_of_[g] = target;
        maybe_unlink(lv);
    }

    // The group's count reached zero: it leaves its level for good.
    void retire(std::int32_t g) { maybe_unlink(level_of_[g]); }

    // Hazard window elapsed: the group rejoins its level's eligible FIFO.
    void promote(std::int32_t g)
    {
        Level& level = levels_[level_of_[g]];
        --level.pending;
        if (level.elig_head == kNone)
            level.elig_head = g;
        else
            next_group_[level.elig_tail] = g;
        level.elig_tail = g;
    }

private:
    struct Level {
        std::size_t count = 0;           // remaining-count of member groups
        std::int32_t elig_head = kNone;  // intrusive FIFO of eligible groups
        std::int32_t elig_tail = kNone;
        std::uint32_t pending = 0;       // member groups inside the window
        std::int32_t up = kNone;
        std::int32_t down = kNone;
    };

    std::int32_t new_level(std::size_t count)
    {
        levels_.push_back(Level{count, kNone, kNone, 0, kNone, kNone});
        return static_cast<std::int32_t>(levels_.size() - 1);
    }

    void link_below(std::int32_t above, std::int32_t lv)
    {
        Level& a = levels_[above];
        levels_[lv].up = above;
        levels_[lv].down = a.down;
        if (a.down != kNone)
            levels_[a.down].up = lv;
        else
            bottom_ = lv;
        a.down = lv;
    }

    void maybe_unlink(std::int32_t lv)
    {
        Level& level = levels_[lv];
        if (level.elig_head != kNone || level.pending != 0)
            return;
        if (level.up != kNone)
            levels_[level.up].down = level.down;
        else
            top_ = level.down;
        if (level.down != kNone)
            levels_[level.down].up = level.up;
        else
            bottom_ = level.up;
    }

    std::vector<Level> levels_;
    std::vector<std::int32_t> next_group_; // group -> next in its level FIFO
    std::vector<std::int32_t> level_of_;   // group -> level index
    std::int32_t top_ = kNone;
    std::int32_t bottom_ = kNone;
};

ScheduleResult schedule_lbf(GroupTable groups, unsigned window,
                            ScheduleResult result)
{
    const std::size_t n = result.real_count;
    bool any_repeat = false;
    for (std::size_t g = 0; g < groups.size(); ++g)
        any_repeat |= groups.remaining(g) > 1;

    LbfReady ready(groups);
    Calendar calendar(window, any_repeat);

    std::size_t emitted = 0;
    for (std::size_t slot = 0; emitted < n; ++slot) {
        const std::int32_t due = calendar.pop(slot);
        if (due != kNone)
            ready.promote(due);

        const std::int32_t g = ready.pop_max();
        if (g == kNone) {
            result.slots.push_back(ScheduleResult::kPaddingSlot);
            ++result.padding_count;
            continue;
        }
        result.slots.push_back(groups.members[groups.head[g]++]);
        ++emitted;
        const std::size_t rem = groups.remaining(static_cast<std::size_t>(g));
        if (rem > 0) {
            ready.park_below(g, rem);
            calendar.push(slot + window, static_cast<std::size_t>(g));
        } else {
            ready.retire(g);
        }
    }
    return result;
}

ScheduleResult schedule_fifo(GroupTable groups, unsigned window,
                             ScheduleResult result)
{
    const std::size_t n = result.real_count;
    const std::size_t g_count = groups.size();
    bool any_repeat = false;
    for (std::size_t g = 0; g < g_count; ++g)
        any_repeat |= groups.remaining(g) > 1;

    // Ready FIFO. Seeded in ascending address order (the reference heap's
    // tie-break for the shared ready-slot 0); every later ready slot is
    // unique, so appending in promotion order keeps the exact reference
    // service order. Total enqueues are bounded by n + g_count.
    std::vector<std::uint32_t> queue;
    queue.reserve(n + g_count);
    for (std::uint32_t g = 0; g < g_count; ++g)
        queue.push_back(g);
    std::sort(queue.begin(), queue.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return groups.addr[a] < groups.addr[b];
              });
    std::size_t q_head = 0;

    Calendar calendar(window, any_repeat);

    std::size_t emitted = 0;
    for (std::size_t slot = 0; emitted < n; ++slot) {
        const std::int32_t due = calendar.pop(slot);
        if (due != kNone)
            queue.push_back(static_cast<std::uint32_t>(due));

        if (q_head == queue.size()) {
            result.slots.push_back(ScheduleResult::kPaddingSlot);
            ++result.padding_count;
            continue;
        }
        const std::uint32_t g = queue[q_head++];
        result.slots.push_back(groups.members[groups.head[g]++]);
        ++emitted;
        if (groups.remaining(g) > 0)
            calendar.push(slot + window, g);
    }
    return result;
}

} // namespace

ScheduleResult schedule_hazard_aware(std::span<const std::uint32_t> addrs,
                                     unsigned window, SchedulePolicy policy)
{
    SERPENS_CHECK(window >= 1, "hazard window must be at least one slot");

    ScheduleResult result;
    result.real_count = addrs.size();
    if (addrs.empty())
        return result;
    result.slots.reserve(addrs.size());

    GroupTable groups = build_groups(addrs);
    if (policy == SchedulePolicy::largest_bucket_first)
        return schedule_lbf(std::move(groups), window, std::move(result));
    return schedule_fifo(std::move(groups), window, std::move(result));
}

std::size_t schedule_lower_bound(std::span<const std::uint32_t> addrs,
                                 unsigned window)
{
    if (addrs.empty())
        return 0;
    std::unordered_map<std::uint32_t, std::size_t> counts;
    counts.reserve(addrs.size());
    std::size_t max_bucket = 0;
    for (std::uint32_t a : addrs)
        max_bucket = std::max(max_bucket, ++counts[a]);
    const std::size_t spacing_bound = (max_bucket - 1) * window + 1;
    return std::max(addrs.size(), spacing_bound);
}

} // namespace serpens::encode
