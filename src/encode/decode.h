// Decoder: reconstruct the matrix a SerpensImage represents, and verify the
// hazard-freedom invariant of its streams. Used by tests (round-trip
// checking) and by the simulator's verification mode.
#pragma once

#include <vector>

#include "encode/image.h"

namespace serpens::encode {

// Reconstruct all (row, col, val) triplets from the encoded streams.
// The result is sorted row-major so callers can compare against the
// normalized input matrix directly.
std::vector<sparse::Triplet> decode_image(const SerpensImage& img);

// Verify that, for every (channel, segment, lane), equal URAM addresses are
// at least `params.dsp_latency` line slots apart, and that every element's
// fields are within architectural bounds. Throws CheckError on violation.
void verify_image(const SerpensImage& img);

} // namespace serpens::encode
