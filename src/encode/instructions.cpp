#include "encode/instructions.h"

#include "util/bitpack.h"

namespace serpens::encode {

std::vector<std::uint32_t> build_instructions(const SerpensImage& img,
                                              float alpha, float beta)
{
    std::vector<std::uint32_t> words;
    words.reserve(6 + img.num_segments() * (2 + img.channels()));

    SERPENS_CHECK(fits_bits(img.rows(), kOpcodeShift),
                  "row count overflows the instruction payload");
    SERPENS_CHECK(fits_bits(img.cols(), kOpcodeShift),
                  "column count overflows the instruction payload");

    words.push_back(make_instruction(Opcode::set_rows, img.rows()));
    words.push_back(make_instruction(Opcode::set_cols, img.cols()));
    words.push_back(make_instruction(Opcode::set_alpha));
    words.push_back(float_bits(alpha));
    words.push_back(make_instruction(Opcode::set_beta));
    words.push_back(float_bits(beta));

    for (unsigned s = 0; s < img.num_segments(); ++s) {
        words.push_back(make_instruction(Opcode::segment, img.segment_depth(s)));
        for (unsigned c = 0; c < img.channels(); ++c)
            words.push_back(
                make_instruction(Opcode::lines, img.segment_lines(c, s)));
    }
    words.push_back(make_instruction(Opcode::run));
    words.push_back(make_instruction(Opcode::halt));
    return words;
}

ControlProgram decode_instructions(std::span<const std::uint32_t> words,
                                   unsigned ha_channels)
{
    ControlProgram program;
    bool saw_run = false;
    bool saw_halt = false;

    for (std::size_t i = 0; i < words.size(); ++i) {
        if (saw_halt)
            throw InstructionError("instruction after HALT");
        const std::uint32_t word = words[i];
        switch (opcode_of(word)) {
        case Opcode::set_rows:
            program.rows = payload_of(word);
            break;
        case Opcode::set_cols:
            program.cols = payload_of(word);
            break;
        case Opcode::set_alpha:
            if (++i >= words.size())
                throw InstructionError("SET_ALPHA missing its value word");
            program.alpha = bits_float(words[i]);
            break;
        case Opcode::set_beta:
            if (++i >= words.size())
                throw InstructionError("SET_BETA missing its value word");
            program.beta = bits_float(words[i]);
            break;
        case Opcode::segment: {
            ControlProgram::Segment segment;
            segment.depth = payload_of(word);
            segment.channel_lines.reserve(ha_channels);
            for (unsigned c = 0; c < ha_channels; ++c) {
                if (++i >= words.size() ||
                    opcode_of(words[i]) != Opcode::lines)
                    throw InstructionError(
                        "SEGMENT must be followed by one LINES per channel");
                segment.channel_lines.push_back(payload_of(words[i]));
            }
            program.segments.push_back(std::move(segment));
            break;
        }
        case Opcode::lines:
            throw InstructionError("stray LINES outside a SEGMENT block");
        case Opcode::run:
            saw_run = true;
            break;
        case Opcode::halt:
            saw_halt = true;
            break;
        default:
            throw InstructionError("unknown opcode in instruction stream");
        }
    }
    if (!saw_run)
        throw InstructionError("instruction stream never issues RUN");
    if (!saw_halt)
        throw InstructionError("instruction stream never issues HALT");
    if (program.rows == 0 || program.cols == 0)
        throw InstructionError("matrix dimensions were not programmed");
    return program;
}

void validate_program(const ControlProgram& program, const SerpensImage& img)
{
    if (program.rows != img.rows() || program.cols != img.cols())
        throw InstructionError("program dimensions disagree with the image");
    if (program.segments.size() != img.num_segments())
        throw InstructionError("program segment count disagrees with the image");
    for (unsigned s = 0; s < img.num_segments(); ++s) {
        const auto& segment = program.segments[s];
        if (segment.depth != img.segment_depth(s))
            throw InstructionError("segment depth disagrees with the image");
        if (segment.channel_lines.size() != img.channels())
            throw InstructionError("per-channel line list has wrong length");
        for (unsigned c = 0; c < img.channels(); ++c)
            if (segment.channel_lines[c] != img.segment_lines(c, s))
                throw InstructionError("channel line count disagrees");
    }
}

} // namespace serpens::encode
