#include "encode/serialize.h"

#include <cstring>
#include <fstream>

namespace serpens::encode {

namespace {

constexpr char kMagic[4] = {'S', 'R', 'P', 'N'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& out, std::uint32_t v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::ostream& out, std::uint64_t v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t get_u32(std::istream& in)
{
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in)
        throw ImageFormatError("truncated image file");
    return v;
}

std::uint64_t get_u64(std::istream& in)
{
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in)
        throw ImageFormatError("truncated image file");
    return v;
}

} // namespace

void save_image(std::ostream& out, const SerpensImage& img)
{
    out.write(kMagic, sizeof kMagic);
    put_u32(out, kVersion);

    const EncodeParams& p = img.params();
    put_u32(out, p.ha_channels);
    put_u32(out, p.pes_per_channel);
    put_u32(out, p.urams_per_pe);
    put_u32(out, p.uram_depth);
    put_u32(out, p.window);
    put_u32(out, p.dsp_latency);
    put_u32(out, p.coalescing ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(p.policy));

    put_u32(out, img.rows());
    put_u32(out, img.cols());
    put_u32(out, img.num_segments());
    put_u32(out, img.channels());

    for (unsigned c = 0; c < img.channels(); ++c)
        for (unsigned s = 0; s < img.num_segments(); ++s)
            put_u32(out, img.segment_lines(c, s));

    for (unsigned c = 0; c < img.channels(); ++c) {
        const auto& lines = img.channel(c).lines();
        put_u64(out, lines.size());
        for (const hbm::Line512& line : lines)
            out.write(reinterpret_cast<const char*>(line.words.data()),
                      hbm::kLineBytes);
    }
}

void save_image_file(const std::string& path, const SerpensImage& img)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw ImageFormatError("cannot open file for writing: " + path);
    save_image(out, img);
}

SerpensImage load_image(std::istream& in)
{
    char magic[4] = {};
    in.read(magic, sizeof magic);
    if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        throw ImageFormatError("not a Serpens image (bad magic)");
    const std::uint32_t version = get_u32(in);
    if (version != kVersion)
        throw ImageFormatError("unsupported image version " +
                               std::to_string(version));

    EncodeParams p;
    p.ha_channels = get_u32(in);
    p.pes_per_channel = get_u32(in);
    p.urams_per_pe = get_u32(in);
    p.uram_depth = get_u32(in);
    p.window = get_u32(in);
    p.dsp_latency = get_u32(in);
    p.coalescing = get_u32(in) != 0;
    p.policy = static_cast<SchedulePolicy>(get_u32(in));
    p.validate();

    const std::uint32_t rows = get_u32(in);
    const std::uint32_t cols = get_u32(in);
    const std::uint32_t segments = get_u32(in);
    const std::uint32_t channels = get_u32(in);
    if (channels != p.ha_channels)
        throw ImageFormatError("channel count disagrees with parameters");

    SerpensImage img(p, rows, cols);
    if (img.num_segments() != segments)
        throw ImageFormatError("segment count disagrees with cols/window");

    EncodeStats stats;
    stats.num_segments = segments;
    for (unsigned c = 0; c < channels; ++c)
        for (unsigned s = 0; s < segments; ++s)
            img.set_segment_lines(c, s, get_u32(in));

    for (unsigned c = 0; c < channels; ++c) {
        const std::uint64_t count = get_u64(in);
        std::uint64_t expected = 0;
        for (unsigned s = 0; s < segments; ++s)
            expected += img.segment_lines(c, s);
        if (count != expected)
            throw ImageFormatError("stream length disagrees with segments");
        hbm::ChannelStream& stream = img.mutable_channel(c);
        for (std::uint64_t i = 0; i < count; ++i) {
            hbm::Line512 line;
            in.read(reinterpret_cast<char*>(line.words.data()), hbm::kLineBytes);
            if (!in)
                throw ImageFormatError("truncated line data");
            stream.push(line);
            stats.total_lines += 1;
            stats.total_slots += hbm::kElemsPerLine;
            for (unsigned lane = 0; lane < hbm::kElemsPerLine; ++lane) {
                const auto e = EncodedElement::from_bits(line.lane64(lane));
                if (e.valid())
                    ++stats.nnz;
            }
        }
    }
    stats.padding_slots = stats.total_slots - stats.nnz;
    img.set_stats(stats);
    return img;
}

SerpensImage load_image_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ImageFormatError("cannot open file: " + path);
    return load_image(in);
}

} // namespace serpens::encode
