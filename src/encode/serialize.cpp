#include "encode/serialize.h"

#include <cstring>
#include <fstream>

#include "util/crc32.h"

namespace serpens::encode {

namespace {

constexpr char kMagic[4] = {'S', 'R', 'P', 'N'};

// Running checksum over one section of the stream. Disabled (version 1) it
// costs nothing; enabled, every byte written/read between section
// boundaries folds into the CRC that the boundary then emits/verifies.
struct SectionCrc {
    bool enabled = false;
    std::uint32_t value = 0;

    void feed(const void* p, std::size_t n)
    {
        if (enabled)
            value = util::crc32(p, n, value);
    }
    void reset() { value = 0; }
};

void put_raw(std::ostream& out, const void* p, std::size_t n, SectionCrc& crc)
{
    out.write(static_cast<const char*>(p),
              static_cast<std::streamsize>(n));
    crc.feed(p, n);
}

void put_u32(std::ostream& out, std::uint32_t v, SectionCrc& crc)
{
    put_raw(out, &v, sizeof v, crc);
}

void put_u64(std::ostream& out, std::uint64_t v, SectionCrc& crc)
{
    put_raw(out, &v, sizeof v, crc);
}

// Close a section on the write side: emit the accumulated CRC (outside any
// checksum) and start the next section.
void put_section_crc(std::ostream& out, SectionCrc& crc)
{
    if (crc.enabled) {
        out.write(reinterpret_cast<const char*>(&crc.value),
                  sizeof crc.value);
    }
    crc.reset();
}

void get_raw(std::istream& in, void* p, std::size_t n, SectionCrc& crc,
             const char* what)
{
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (!in)
        throw ImageFormatError(std::string("truncated image file (") +
                               what + ")");
    crc.feed(p, n);
}

std::uint32_t get_u32(std::istream& in, SectionCrc& crc,
                      const char* what = "field")
{
    std::uint32_t v = 0;
    get_raw(in, &v, sizeof v, crc, what);
    return v;
}

std::uint64_t get_u64(std::istream& in, SectionCrc& crc,
                      const char* what = "field")
{
    std::uint64_t v = 0;
    get_raw(in, &v, sizeof v, crc, what);
    return v;
}

// Close a section on the read side: compare the stored CRC against the
// accumulated one. The comparison runs before any value of the section is
// trusted structurally downstream, so a flipped bit surfaces as this
// precise error, never as a mis-built image.
void check_section_crc(std::istream& in, SectionCrc& crc, const char* what)
{
    if (crc.enabled) {
        std::uint32_t stored = 0;
        in.read(reinterpret_cast<char*>(&stored), sizeof stored);
        if (!in)
            throw ImageFormatError(std::string("truncated image file (") +
                                   what + " checksum)");
        if (stored != crc.value)
            throw ImageFormatError(std::string("image checksum mismatch in ") +
                                   what + " section");
    }
    crc.reset();
}

} // namespace

void save_image(std::ostream& out, const SerpensImage& img,
                std::uint32_t version)
{
    if (version != 1 && version != kImageFormatVersion)
        throw ImageFormatError("cannot write image version " +
                               std::to_string(version));
    SectionCrc crc;
    crc.enabled = version >= 2;

    out.write(kMagic, sizeof kMagic);
    std::uint32_t v = version;
    out.write(reinterpret_cast<const char*>(&v), sizeof v);

    // Header section: encode parameters + dimensions.
    const EncodeParams& p = img.params();
    put_u32(out, p.ha_channels, crc);
    put_u32(out, p.pes_per_channel, crc);
    put_u32(out, p.urams_per_pe, crc);
    put_u32(out, p.uram_depth, crc);
    put_u32(out, p.window, crc);
    put_u32(out, p.dsp_latency, crc);
    put_u32(out, p.coalescing ? 1 : 0, crc);
    put_u32(out, static_cast<std::uint32_t>(p.policy), crc);

    put_u32(out, img.rows(), crc);
    put_u32(out, img.cols(), crc);
    put_u32(out, img.num_segments(), crc);
    put_u32(out, img.channels(), crc);
    put_section_crc(out, crc);

    // Segment-line table section.
    for (unsigned c = 0; c < img.channels(); ++c)
        for (unsigned s = 0; s < img.num_segments(); ++s)
            put_u32(out, img.segment_lines(c, s), crc);
    put_section_crc(out, crc);

    // One section per channel stream: line count, then the raw lines.
    for (unsigned c = 0; c < img.channels(); ++c) {
        const auto& lines = img.channel(c).lines();
        put_u64(out, lines.size(), crc);
        for (const hbm::Line512& line : lines)
            put_raw(out, line.words.data(), hbm::kLineBytes, crc);
        put_section_crc(out, crc);
    }
}

void save_image_file(const std::string& path, const SerpensImage& img,
                     std::uint32_t version)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw ImageFormatError("cannot open file for writing: " + path);
    save_image(out, img, version);
}

SerpensImage load_image(std::istream& in)
{
    char magic[4] = {};
    in.read(magic, sizeof magic);
    if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        throw ImageFormatError("not a Serpens image (bad magic)");
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char*>(&version), sizeof version);
    if (!in)
        throw ImageFormatError("truncated image file (version)");
    if (version != 1 && version != kImageFormatVersion)
        throw ImageFormatError("unsupported image version " +
                               std::to_string(version));
    SectionCrc crc;
    crc.enabled = version >= 2;

    // Header section. Fields are read raw and the CRC verified BEFORE any
    // of them is interpreted: a corrupted parameter must fail as a
    // checksum mismatch, not as whatever downstream validation it happens
    // to trip.
    std::uint32_t header[12];
    for (std::uint32_t& f : header)
        f = get_u32(in, crc, "header");
    check_section_crc(in, crc, "header");

    EncodeParams p;
    p.ha_channels = header[0];
    p.pes_per_channel = header[1];
    p.urams_per_pe = header[2];
    p.uram_depth = header[3];
    p.window = header[4];
    p.dsp_latency = header[5];
    p.coalescing = header[6] != 0;
    p.policy = static_cast<SchedulePolicy>(header[7]);
    p.validate();

    const std::uint32_t rows = header[8];
    const std::uint32_t cols = header[9];
    const std::uint32_t segments = header[10];
    const std::uint32_t channels = header[11];
    if (channels != p.ha_channels)
        throw ImageFormatError("channel count disagrees with parameters");

    SerpensImage img(p, rows, cols);
    if (img.num_segments() != segments)
        throw ImageFormatError("segment count disagrees with cols/window");

    EncodeStats stats;
    stats.num_segments = segments;
    for (unsigned c = 0; c < channels; ++c)
        for (unsigned s = 0; s < segments; ++s)
            img.set_segment_lines(c, s, get_u32(in, crc, "segment table"));
    check_section_crc(in, crc, "segment table");

    for (unsigned c = 0; c < channels; ++c) {
        const std::uint64_t count = get_u64(in, crc, "line count");
        std::uint64_t expected = 0;
        for (unsigned s = 0; s < segments; ++s)
            expected += img.segment_lines(c, s);
        if (count != expected)
            throw ImageFormatError("stream length disagrees with segments");
        hbm::ChannelStream& stream = img.mutable_channel(c);
        for (std::uint64_t i = 0; i < count; ++i) {
            hbm::Line512 line;
            get_raw(in, line.words.data(), hbm::kLineBytes, crc,
                    "line data");
            stream.push(line);
            stats.total_lines += 1;
            stats.total_slots += hbm::kElemsPerLine;
            for (unsigned lane = 0; lane < hbm::kElemsPerLine; ++lane) {
                const auto e = EncodedElement::from_bits(line.lane64(lane));
                if (e.valid())
                    ++stats.nnz;
            }
        }
        check_section_crc(in, crc, "channel stream");
    }
    // A checksummed image ends exactly at its last section: a file with
    // bytes beyond it is torn or concatenated, not ours. (Version 1 files
    // keep their historical laxness.)
    if (crc.enabled && in.peek() != std::istream::traits_type::eof())
        throw ImageFormatError("trailing bytes after image");

    stats.padding_slots = stats.total_slots - stats.nnz;
    img.set_stats(stats);
    return img;
}

SerpensImage load_image_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ImageFormatError("cannot open file: " + path);
    return load_image(in);
}

} // namespace serpens::encode
