// The paper's evaluation metrics (§4.1.2).
//
//   throughput (GFLOP/s)  = 2 * NNZ / time          (one mul + one add per nnz)
//   throughput (MTEPS)    = NNZ / time              (traversed edges per second)
//   bandwidth efficiency  = MTEPS / (GB/s utilized bandwidth)
//   energy efficiency     = MTEPS / W
#pragma once

#include <cstdint>

namespace serpens::analysis {

struct Metrics {
    double exec_ms = 0.0;
    double gflops = 0.0;
    double mteps = 0.0;
    double bw_eff = 0.0;      // MTEPS / (GB/s)
    double energy_eff = 0.0;  // MTEPS / W

    static Metrics from_run(std::uint64_t nnz, double exec_ms,
                            double bandwidth_gbps, double power_w);
};

} // namespace serpens::analysis
