#include "analysis/table.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace serpens::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SERPENS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells)
{
    SERPENS_CHECK(cells.size() == headers_.size(),
                  "row width must match the header");
    rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
               << row[c];
        }
        os << " |\n";
    };

    print_row(headers_);
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << '|';
    os << '\n';
    for (const auto& row : rows_)
        print_row(row);
}

void TextTable::print_csv(std::ostream& os) const
{
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

std::string fmt(double v, int precision, bool dash_if_nan)
{
    if (std::isnan(v))
        return dash_if_nan ? "-" : "nan";
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string fmt_ratio(double v, int precision)
{
    if (std::isnan(v))
        return "-";
    return fmt(v, precision, false) + "x";
}

} // namespace serpens::analysis
