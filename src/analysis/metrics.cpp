#include "analysis/metrics.h"

#include "util/check.h"

namespace serpens::analysis {

Metrics Metrics::from_run(std::uint64_t nnz, double exec_ms,
                          double bandwidth_gbps, double power_w)
{
    SERPENS_CHECK(exec_ms > 0.0, "execution time must be positive");
    SERPENS_CHECK(bandwidth_gbps > 0.0, "bandwidth must be positive");
    SERPENS_CHECK(power_w > 0.0, "power must be positive");
    Metrics m;
    m.exec_ms = exec_ms;
    const double seconds = exec_ms / 1e3;
    m.gflops = 2.0 * static_cast<double>(nnz) / seconds / 1e9;
    m.mteps = static_cast<double>(nnz) / seconds / 1e6;
    m.bw_eff = m.mteps / bandwidth_gbps;
    m.energy_eff = m.mteps / power_w;
    return m;
}

} // namespace serpens::analysis
