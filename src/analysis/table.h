// Column-aligned text table and CSV writer for the benchmark harnesses.
// Every bench binary prints its paper table through this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace serpens::analysis {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    void print(std::ostream& os) const;
    void print_csv(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("12.34"); `dash_if_nan` renders NaN as
// "-" the way the paper marks unsupported runs.
std::string fmt(double v, int precision = 2, bool dash_if_nan = true);

// Format a ratio as "1.91x"; NaN renders as "-".
std::string fmt_ratio(double v, int precision = 2);

} // namespace serpens::analysis
