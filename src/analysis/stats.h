// Small statistics helpers used across benches and the evaluation tables.
#pragma once

#include <span>
#include <vector>

namespace serpens::analysis {

// Geometric mean; ignores nothing, requires all entries > 0.
double geomean(std::span<const double> values);

// Element-wise ratio a[i] / b[i].
std::vector<double> ratios(std::span<const double> a, std::span<const double> b);

// Arithmetic mean / min / max.
double mean(std::span<const double> values);
double min_of(std::span<const double> values);
double max_of(std::span<const double> values);

} // namespace serpens::analysis
