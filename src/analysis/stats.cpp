#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace serpens::analysis {

double geomean(std::span<const double> values)
{
    SERPENS_CHECK(!values.empty(), "geomean of an empty set");
    double log_sum = 0.0;
    for (double v : values) {
        SERPENS_CHECK(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::vector<double> ratios(std::span<const double> a, std::span<const double> b)
{
    SERPENS_CHECK(a.size() == b.size(), "ratio inputs must align");
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SERPENS_CHECK(b[i] != 0.0, "division by zero in ratios");
        out[i] = a[i] / b[i];
    }
    return out;
}

double mean(std::span<const double> values)
{
    SERPENS_CHECK(!values.empty(), "mean of an empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double min_of(std::span<const double> values)
{
    SERPENS_CHECK(!values.empty(), "min of an empty set");
    return *std::min_element(values.begin(), values.end());
}

double max_of(std::span<const double> values)
{
    SERPENS_CHECK(!values.empty(), "max of an empty set");
    return *std::max_element(values.begin(), values.end());
}

} // namespace serpens::analysis
