// Compressed Sparse Row (CSR) matrix.
//
// CSR is the compute format for the CPU reference SpMV, the semiring SpMV
// (GraphLily substrate), and the Sextans SpMM baseline. Row pointers are
// 64-bit so matrices with >4G non-zeros are representable.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/coo.h"
#include "util/check.h"

namespace serpens::sparse {

class CsrMatrix {
public:
    CsrMatrix() = default;

    // Construct from raw arrays; validates monotone row_ptr and column bounds.
    CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
              std::vector<index_t> col_idx, std::vector<float> values);

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    nnz_t nnz() const { return col_idx_.size(); }

    const std::vector<nnz_t>& row_ptr() const { return row_ptr_; }
    const std::vector<index_t>& col_idx() const { return col_idx_; }
    const std::vector<float>& values() const { return values_; }

    nnz_t row_begin(index_t r) const { return row_ptr_[r]; }
    nnz_t row_end(index_t r) const { return row_ptr_[r + 1]; }
    nnz_t row_nnz(index_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

    // Longest row length; drives the GPU-model row-imbalance penalty.
    nnz_t max_row_nnz() const;

    // Coefficient of variation of row lengths (stddev / mean); 0 for a
    // perfectly balanced matrix. Used by the K80 performance model.
    double row_imbalance() const;

private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<nnz_t> row_ptr_;   // size rows_ + 1
    std::vector<index_t> col_idx_; // size nnz
    std::vector<float> values_;    // size nnz
};

} // namespace serpens::sparse
