// Shared header interpretation for the two Matrix Market parsers.
//
// read_matrix_market (istream reference) and read_matrix_market_fast
// (mmap/chunk path) iterate lines differently, but the *meaning* of the
// banner and size lines — accepted field/symmetry classes and the exact
// exception messages — must never drift between them, so it lives here
// once. Internal to src/sparse/; not part of the public API.
#pragma once

#include <cstdint>
#include <string>

namespace serpens::sparse::detail {

struct BannerInfo {
    bool pattern = false;
    bool symmetric = false;
};

// Interpret the "%%MatrixMarket object format field symmetry" line.
// Throws MatrixMarketError on anything but `matrix coordinate` with a
// real/integer/pattern field and general/symmetric symmetry.
BannerInfo parse_banner_line(const std::string& line);

struct SizeInfo {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t entries = 0;
};

// Interpret the "rows cols entries" size line. Throws MatrixMarketError
// when malformed or when a dimension is zero.
SizeInfo parse_size_line(const std::string& line);

} // namespace serpens::sparse::detail
