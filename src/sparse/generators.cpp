#include "sparse/generators.h"

#include <algorithm>
#include <cmath>

#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens::sparse {

namespace {

float draw_value(Rng& rng, const ValueOptions& opt)
{
    return opt.exact_values ? rng.next_exact_float(8) : rng.next_float(-1.0f, 1.0f);
}

} // namespace

CooMatrix make_uniform_random(index_t rows, index_t cols, nnz_t nnz,
                              std::uint64_t seed, ValueOptions opt)
{
    SERPENS_CHECK(nnz <= static_cast<nnz_t>(rows) * cols,
                  "requested nnz exceeds matrix area");
    Rng rng(seed);
    CooMatrix m(rows, cols);
    m.reserve(nnz);
    for (nnz_t i = 0; i < nnz; ++i) {
        const auto r = static_cast<index_t>(rng.next_below(rows));
        const auto c = static_cast<index_t>(rng.next_below(cols));
        m.add(r, c, draw_value(rng, opt));
    }
    m.coalesce_duplicates();
    return m;
}

CooMatrix make_rmat(unsigned scale, nnz_t edge_factor, std::uint64_t seed,
                    ValueOptions opt, double a, double b, double c)
{
    SERPENS_CHECK(scale >= 1 && scale <= 30, "rmat scale must be in [1, 30]");
    SERPENS_CHECK(a + b + c < 1.0, "rmat probabilities must sum below 1");
    const index_t n = index_t{1} << scale;
    const nnz_t edges = edge_factor * n;
    Rng rng(seed);
    CooMatrix m(n, n);
    m.reserve(edges);
    for (nnz_t e = 0; e < edges; ++e) {
        index_t row = 0;
        index_t col = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double p = rng.next_double();
            // Quadrant choice: a = top-left, b = top-right, c = bottom-left.
            if (p < a) {
                // top-left: neither bit set
            } else if (p < a + b) {
                col |= index_t{1} << bit;
            } else if (p < a + b + c) {
                row |= index_t{1} << bit;
            } else {
                row |= index_t{1} << bit;
                col |= index_t{1} << bit;
            }
        }
        m.add(row, col, draw_value(rng, opt));
    }
    m.coalesce_duplicates();
    return m;
}

CooMatrix make_banded(index_t n, index_t band, std::uint64_t seed, ValueOptions opt)
{
    SERPENS_CHECK(band >= 1 && band <= n, "band must be in [1, n]");
    Rng rng(seed);
    CooMatrix m(n, n);
    m.reserve(static_cast<nnz_t>(n) * band);
    for (index_t r = 0; r < n; ++r) {
        // Window of width 2*band centered on the diagonal, clamped to [0, n).
        const index_t lo = r > band ? r - band : 0;
        const index_t hi = std::min<index_t>(n, r + band + 1);
        const index_t width = hi - lo;
        // `band` distinct columns inside the window via partial shuffle.
        std::vector<index_t> cand(width);
        for (index_t i = 0; i < width; ++i)
            cand[i] = lo + i;
        const index_t take = std::min<index_t>(band, width);
        for (index_t i = 0; i < take; ++i) {
            const auto j = i + static_cast<index_t>(rng.next_below(width - i));
            std::swap(cand[i], cand[j]);
            m.add(r, cand[i], draw_value(rng, opt));
        }
    }
    m.sort_row_major();
    return m;
}

CooMatrix make_diagonal(index_t n, float value)
{
    CooMatrix m(n, n);
    m.reserve(n);
    for (index_t i = 0; i < n; ++i)
        m.add(i, i, value);
    return m;
}

CooMatrix make_tridiagonal_spd(index_t n, float shift)
{
    CooMatrix m(n, n);
    m.reserve(3 * static_cast<nnz_t>(n));
    for (index_t i = 0; i < n; ++i) {
        if (i > 0)
            m.add(i, i - 1, -1.0f);
        m.add(i, i, 2.0f + shift);
        if (i + 1 < n)
            m.add(i, i + 1, -1.0f);
    }
    return m;
}

CooMatrix make_dense_rows(index_t rows, index_t cols, index_t heavy_rows,
                          index_t row_nnz, std::uint64_t seed, ValueOptions opt)
{
    SERPENS_CHECK(heavy_rows <= rows, "heavy_rows exceeds rows");
    SERPENS_CHECK(row_nnz <= cols, "row_nnz exceeds cols");
    Rng rng(seed);
    CooMatrix m(rows, cols);
    m.reserve(static_cast<nnz_t>(heavy_rows) * row_nnz + rows);
    for (index_t r = 0; r < rows; ++r) {
        if (r < heavy_rows) {
            for (index_t k = 0; k < row_nnz; ++k)
                m.add(r, static_cast<index_t>(rng.next_below(cols)),
                      draw_value(rng, opt));
        } else {
            m.add(r, static_cast<index_t>(rng.next_below(cols)),
                  draw_value(rng, opt));
        }
    }
    m.coalesce_duplicates();
    return m;
}

CooMatrix make_block_random(index_t n, index_t block, nnz_t target_nnz,
                            std::uint64_t seed, ValueOptions opt)
{
    SERPENS_CHECK(block >= 1 && block <= n, "block must be in [1, n]");
    Rng rng(seed);
    CooMatrix m(n, n);
    m.reserve(target_nnz);
    const nnz_t per_block = static_cast<nnz_t>(block) * block;
    const nnz_t blocks = ceil_div<nnz_t>(target_nnz, per_block);
    const index_t grid = ceil_div<index_t>(n, block);
    for (nnz_t bidx = 0; bidx < blocks; ++bidx) {
        const auto br = static_cast<index_t>(rng.next_below(grid));
        const auto bc = static_cast<index_t>(rng.next_below(grid));
        for (index_t i = 0; i < block; ++i) {
            for (index_t j = 0; j < block; ++j) {
                const index_t r = br * block + i;
                const index_t c = bc * block + j;
                if (r < n && c < n)
                    m.add(r, c, draw_value(rng, opt));
            }
        }
    }
    m.coalesce_duplicates();
    return m;
}

CooMatrix make_clustered(index_t n, nnz_t target_nnz, index_t clique_min,
                         index_t clique_max, double background_frac,
                         std::uint64_t seed, ValueOptions opt)
{
    SERPENS_CHECK(clique_min >= 2 && clique_min <= clique_max,
                  "clique sizes must satisfy 2 <= min <= max");
    SERPENS_CHECK(clique_max <= n, "clique_max exceeds matrix dimension");
    SERPENS_CHECK(background_frac >= 0.0 && background_frac <= 1.0,
                  "background_frac must lie in [0, 1]");
    Rng rng(seed);
    CooMatrix m(n, n);
    m.reserve(target_nnz);

    const auto background =
        static_cast<nnz_t>(background_frac * static_cast<double>(target_nnz));
    const nnz_t clique_budget = target_nnz - background;

    nnz_t emitted = 0;
    while (emitted < clique_budget) {
        const auto k = static_cast<index_t>(
            clique_min + rng.next_below(clique_max - clique_min + 1));
        const auto start = static_cast<index_t>(rng.next_below(n - k + 1));
        for (index_t i = 0; i < k; ++i)
            for (index_t j = 0; j < k; ++j)
                m.add(start + i, start + j, draw_value(rng, opt));
        emitted += static_cast<nnz_t>(k) * k;
    }
    for (nnz_t i = 0; i < background; ++i)
        m.add(static_cast<index_t>(rng.next_below(n)),
              static_cast<index_t>(rng.next_below(n)), draw_value(rng, opt));

    m.coalesce_duplicates();
    return m;
}

} // namespace serpens::sparse
