// SuiteSparse-scale Matrix Market ingestion.
//
// The reference parser (matrix_market.cpp) builds one std::istringstream
// per entry line — tens of MB/s. Real SuiteSparse downloads run to hundreds
// of MB, so this file provides the production path:
//
//   1. mmap the file (buffered read for streams/pipes/non-POSIX),
//   2. if the buffer carries the gzip magic (SuiteSparse ships .mtx.gz),
//      inflate it via zlib — detection is by content, not file name,
//   3. parse the tiny header sequentially with the reference's exact logic,
//   4. split the entry region into newline-aligned chunks,
//   5. parse chunks in parallel with std::from_chars on the shared
//      util::ThreadPool, each chunk into its own triplet vector,
//   6. concatenate chunk outputs in order.
//
// Chunk concatenation preserves line order, and within a line the symmetric
// mirror is appended immediately after its entry — exactly the reference's
// emission order — so the output is triplet-identical for every thread
// count and chunk size (pinned by tests/test_parse_fast.cpp).
//
// Equivalence with the reference on *irregular* input is by construction,
// not by reimplementation: a chunk flags any line it cannot parse cleanly
// (blank line, malformed token, out-of-range number, index out of bounds),
// and if any chunk flagged — or the clean entry count disagrees with the
// size line — the whole buffer is re-run through read_matrix_market, whose
// result (or exception) is returned verbatim. The fast path therefore only
// ever commits on files where both parsers provably agree.
#include "sparse/matrix_market.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "sparse/matrix_market_detail.h"
#include "util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define SERPENS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#if defined(SERPENS_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace serpens::sparse {

namespace {

bool is_line_space(char c)
{
    // What istream's skipws skips, minus '\n' (a line terminator here).
    return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r';
}

const char* skip_spaces(const char* p, const char* end)
{
    while (p < end && is_line_space(*p))
        ++p;
    return p;
}

// Pull the next line out of [p, end): line = [p, '\n') with a trailing '\r'
// stripped, p advanced past the terminator. False once the region is empty.
bool next_line(const char*& p, const char* end, std::string_view& line)
{
    if (p >= end)
        return false;
    const char* nl =
        static_cast<const char*>(std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
    const char* line_end = nl ? nl : end;
    if (line_end > p && line_end[-1] == '\r')
        --line_end;
    line = std::string_view(p, static_cast<std::size_t>(line_end - p));
    p = nl ? nl + 1 : end;
    return true;
}

struct Header {
    std::uint64_t rows = 0, cols = 0, entries = 0;
    bool pattern = false;
    bool symmetric = false;
};

// Line iteration is this file's; the banner/size-line *interpretation* is
// shared with the reference (matrix_market_detail.h), so accepted classes
// and exception messages cannot drift between the parsers.
Header parse_header(const char*& p, const char* end)
{
    std::string_view line;
    if (!next_line(p, end, line))
        throw MatrixMarketError("empty input");
    const detail::BannerInfo banner = detail::parse_banner_line(std::string(line));

    // Skip comments (and blank lines between them).
    std::string_view size_line;
    while (next_line(p, end, size_line)) {
        if (!size_line.empty() && size_line[0] != '%')
            break;
        size_line = {};
    }
    const detail::SizeInfo size = detail::parse_size_line(std::string(size_line));

    Header h;
    h.rows = size.rows;
    h.cols = size.cols;
    h.entries = size.entries;
    h.pattern = banner.pattern;
    h.symmetric = banner.symmetric;
    return h;
}

struct ChunkResult {
    std::vector<Triplet> triplets;
    std::uint64_t entry_lines = 0;
    // False the moment any line fails to parse cleanly; the caller then
    // discards every chunk and defers to the reference parser.
    bool clean = true;
};

void parse_chunk(const char* p, const char* end, const Header& h,
                 ChunkResult& out)
{
    out.triplets.reserve(
        (static_cast<std::size_t>(end - p) / 8 + 4) * (h.symmetric ? 2 : 1));
    const char* cursor = p;
    std::string_view line;
    while (next_line(cursor, end, line)) {
        const char* q = line.data();
        const char* le = q + line.size();
        q = skip_spaces(q, le);
        if (q == le) { // blank line: the reference decides what it means
            out.clean = false;
            return;
        }
        std::uint64_t r = 0, c = 0;
        auto [qr, ecr] = std::from_chars(q, le, r);
        if (ecr != std::errc{}) {
            out.clean = false;
            return;
        }
        q = skip_spaces(qr, le);
        auto [qc, ecc] = std::from_chars(q, le, c);
        if (ecc != std::errc{}) {
            out.clean = false;
            return;
        }
        double v = 1.0;
        if (!h.pattern) {
            q = skip_spaces(qc, le);
            auto [qv, ecv] = std::from_chars(q, le, v);
            // from_chars accepts "inf"/"nan", which istream extraction does
            // not; route those through the reference too.
            if (ecv != std::errc{} || !std::isfinite(v)) {
                out.clean = false;
                return;
            }
            // from_chars backtracks where istream's greedy num_get fails
            // ("1.5e" -> 1.5 here, failbit there) or diverges in value
            // ("0x10" -> 0 here, 16 there), so a value must end at
            // whitespace or end-of-line to stay on the fast path.
            if (qv != le && !is_line_space(*qv)) {
                out.clean = false;
                return;
            }
        }
        // Anything after the parsed fields is ignored, as in the reference.
        if (r < 1 || r > h.rows || c < 1 || c > h.cols) {
            out.clean = false;
            return;
        }
        const auto ri = static_cast<index_t>(r - 1);
        const auto ci = static_cast<index_t>(c - 1);
        out.triplets.push_back({ri, ci, static_cast<float>(v)});
        if (h.symmetric && ri != ci)
            out.triplets.push_back({ci, ri, static_cast<float>(v)});
        ++out.entry_lines;
    }
}

CooMatrix reference_on_buffer(std::string_view text)
{
    std::istringstream in{std::string(text)};
    return read_matrix_market(in);
}

// gzip magic bytes (RFC 1952 §2.3.1). Detection is by content, never by
// file name, so `.mtx` files that are secretly compressed still work and
// plain files named `.gz` still parse.
bool looks_gzip(std::string_view text)
{
    return text.size() >= 2 && static_cast<unsigned char>(text[0]) == 0x1f &&
           static_cast<unsigned char>(text[1]) == 0x8b;
}

#if defined(SERPENS_HAVE_ZLIB)
// Inflate a whole gzip image into memory. Handles multi-member files (gzip
// streams are concatenable; SuiteSparse mirrors produce them) by restarting
// inflate until the input is consumed.
std::string gunzip(std::string_view in)
{
    std::string out;
    // A text .mtx typically deflates ~3-4x; reserve to limit regrows.
    out.reserve(in.size() * 4);
    std::array<char, 1 << 16> chunk;

    z_stream strm = {};
    // 15 window bits + 16 selects gzip decoding (not raw/zlib).
    if (inflateInit2(&strm, 15 + 16) != Z_OK)
        throw MatrixMarketError("zlib: inflateInit failed");
    struct Guard {
        z_stream* s;
        ~Guard() { inflateEnd(s); }
    } guard{&strm};

    strm.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(in.data()));
    strm.avail_in = static_cast<uInt>(in.size());
    for (;;) {
        strm.next_out = reinterpret_cast<Bytef*>(chunk.data());
        strm.avail_out = static_cast<uInt>(chunk.size());
        const int rc = inflate(&strm, Z_NO_FLUSH);
        if (rc != Z_OK && rc != Z_STREAM_END)
            throw MatrixMarketError(
                std::string("corrupt gzip input: ") +
                (strm.msg ? strm.msg : "inflate failed"));
        out.append(chunk.data(), chunk.size() - strm.avail_out);
        if (rc == Z_STREAM_END) {
            if (strm.avail_in == 0)
                return out;
            // Another gzip member follows; reset and keep going.
            if (inflateReset2(&strm, 15 + 16) != Z_OK)
                throw MatrixMarketError("zlib: inflateReset failed");
            continue;
        }
        if (strm.avail_in == 0 && strm.avail_out != 0)
            throw MatrixMarketError("corrupt gzip input: truncated stream");
    }
}
#endif

CooMatrix parse_fast_text(std::string_view text, const ParseOptions& options);

// Route a possibly-compressed buffer: plain text parses in place;
// gzip-compressed text inflates first (or fails clearly without zlib).
CooMatrix parse_possibly_gzip(std::string_view text,
                              const ParseOptions& options)
{
    if (!looks_gzip(text))
        return parse_fast_text(text, options);
#if defined(SERPENS_HAVE_ZLIB)
    const std::string inflated = gunzip(text);
    return parse_fast_text(std::string_view(inflated), options);
#else
    throw MatrixMarketError(
        "input is gzip-compressed but serpens was built without zlib; "
        "decompress the file first (gunzip) or rebuild with zlib");
#endif
}

#if SERPENS_HAVE_MMAP
struct FileMapping {
    void* data = nullptr;
    std::size_t size = 0;
    ~FileMapping()
    {
        if (data)
            ::munmap(data, size);
    }
};
#endif

CooMatrix parse_fast_text(std::string_view text, const ParseOptions& options)
{
    const char* p = text.data();
    const char* const end = p + text.size();
    const Header h = parse_header(p, end);

    // Trailing whitespace (including blank last lines) can hold no entries
    // and the reference ignores everything past the declared count, so trim
    // it rather than letting a final "\n\n" force the slow path.
    const char* region_end = end;
    while (region_end > p &&
           (is_line_space(region_end[-1]) || region_end[-1] == '\n'))
        --region_end;

    // Newline-aligned chunks: each ends just past a '\n' (or at the end),
    // so no entry straddles two chunks.
    const auto region = static_cast<std::size_t>(region_end - p);
    const unsigned threads = std::max(1u, util::resolve_threads(options.threads));
    std::size_t chunk_bytes = options.chunk_bytes;
    if (chunk_bytes == 0)
        chunk_bytes = std::max<std::size_t>(region / (threads * 4u), 1u << 20);
    std::vector<std::pair<const char*, const char*>> chunks;
    for (const char* q = p; q < region_end;) {
        const char* split = q + std::min<std::size_t>(
                                    chunk_bytes,
                                    static_cast<std::size_t>(region_end - q));
        if (split < region_end) {
            const char* nl = static_cast<const char*>(std::memchr(
                split, '\n', static_cast<std::size_t>(region_end - split)));
            split = nl ? nl + 1 : region_end;
        }
        chunks.emplace_back(q, split);
        q = split;
    }

    std::vector<ChunkResult> results(chunks.size());
    util::shared_parallel_for(threads, chunks.size(), [&](std::size_t i) {
        parse_chunk(chunks[i].first, chunks[i].second, h, results[i]);
    });

    std::uint64_t total_entries = 0;
    std::size_t total_triplets = 0;
    bool clean = true;
    for (const ChunkResult& r : results) {
        total_entries += r.entry_lines;
        total_triplets += r.triplets.size();
        clean = clean && r.clean;
    }
    if (!clean || total_entries != h.entries)
        return reference_on_buffer(text);

    CooMatrix m(static_cast<index_t>(h.rows), static_cast<index_t>(h.cols));
    m.reserve(total_triplets);
    std::vector<Triplet>& elems = m.elements();
    for (ChunkResult& r : results) {
        elems.insert(elems.end(), r.triplets.begin(), r.triplets.end());
        r.triplets.clear();
        r.triplets.shrink_to_fit();
    }
    return m;
}

} // namespace

bool gzip_supported()
{
#if defined(SERPENS_HAVE_ZLIB)
    return true;
#else
    return false;
#endif
}

CooMatrix read_matrix_market_fast(std::string_view text,
                                  const ParseOptions& options)
{
    return parse_possibly_gzip(text, options);
}

CooMatrix read_matrix_market_fast(std::istream& in, const ParseOptions& options)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = std::move(buf).str();
    return parse_possibly_gzip(std::string_view(text), options);
}

CooMatrix read_matrix_market_fast_file(const std::string& path,
                                       const ParseOptions& options)
{
#if SERPENS_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw MatrixMarketError("cannot open file: " + path);
    struct stat st = {};
    const bool mappable =
        ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0;
    if (mappable) {
        FileMapping map;
        map.size = static_cast<std::size_t>(st.st_size);
        void* addr = ::mmap(nullptr, map.size, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd); // the mapping holds its own reference
        if (addr != MAP_FAILED) {
            map.data = addr;
#ifdef MADV_SEQUENTIAL
            ::madvise(addr, map.size, MADV_SEQUENTIAL); // best-effort
#endif
            return read_matrix_market_fast(
                std::string_view(static_cast<const char*>(map.data), map.size),
                options);
        }
    } else {
        ::close(fd);
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw MatrixMarketError("cannot open file: " + path);
    return read_matrix_market_fast(in, options);
}

} // namespace serpens::sparse
