#include "sparse/csr.h"

#include <cmath>

namespace serpens::sparse {

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<float> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values))
{
    SERPENS_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
    SERPENS_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows) + 1,
                  "row_ptr must have rows+1 entries");
    SERPENS_CHECK(row_ptr_.front() == 0, "row_ptr must start at zero");
    SERPENS_CHECK(row_ptr_.back() == col_idx_.size(),
                  "row_ptr must end at nnz");
    SERPENS_CHECK(col_idx_.size() == values_.size(),
                  "col_idx and values must have equal length");
    for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r)
        SERPENS_CHECK(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be monotone");
    for (index_t c : col_idx_)
        SERPENS_CHECK(c < cols, "column index out of bounds");
}

nnz_t CsrMatrix::max_row_nnz() const
{
    nnz_t best = 0;
    for (index_t r = 0; r < rows_; ++r)
        best = std::max(best, row_nnz(r));
    return best;
}

double CsrMatrix::row_imbalance() const
{
    if (rows_ == 0)
        return 0.0;
    const double mean = static_cast<double>(nnz()) / rows_;
    if (mean == 0.0)
        return 0.0;
    double ss = 0.0;
    for (index_t r = 0; r < rows_; ++r) {
        const double d = static_cast<double>(row_nnz(r)) - mean;
        ss += d * d;
    }
    return std::sqrt(ss / rows_) / mean;
}

} // namespace serpens::sparse
