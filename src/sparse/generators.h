// Synthetic sparse-matrix generators.
//
// These stand in for the paper's SNAP/OGB/SuiteSparse inputs (which are not
// available offline). Each generator is deterministic in its seed and
// produces a structure class whose SpMV-relevant properties (row/column
// distribution, locality, density) match the real matrix family it models:
//
//   uniform_random  — homogeneous sparsity (many SuiteSparse matrices)
//   rmat            — power-law graphs (googleplus, soc_pokec, hollywood, OGB)
//   banded          — FEM/stencil matrices (crankseg_2, ML_Laplace, PFlow_742)
//   diagonal        — best-case conflict-free structure (used by tests)
//   tridiagonal     — classic 1-D Poisson stencil (SPD; CG example)
//   dense_rows      — a few very heavy rows (worst case for row hazards)
//   block_random    — dense blocks on a sparse skeleton (TSOPF power-system)
//
// Values are uniform in [-1, 1) unless `exact_values` is set, in which case
// they are small positive integers (sums are then exact in FP32, which lets
// tests compare accelerators bit-for-bit against a double reference).
#pragma once

#include <cstdint>

#include "sparse/coo.h"

namespace serpens::sparse {

struct ValueOptions {
    bool exact_values = false; // integer-valued floats in [1, 8]
};

// ~nnz elements spread uniformly; duplicates are coalesced, so the resulting
// nnz may be slightly below the request (never above).
CooMatrix make_uniform_random(index_t rows, index_t cols, nnz_t nnz,
                              std::uint64_t seed, ValueOptions opt = {});

// Recursive-matrix (R-MAT) power-law graph with 2^scale vertices and
// ~edge_factor * 2^scale edges. Partition probabilities default to the
// Graph500 parameters (0.57, 0.19, 0.19, 0.05).
CooMatrix make_rmat(unsigned scale, nnz_t edge_factor, std::uint64_t seed,
                    ValueOptions opt = {}, double a = 0.57, double b = 0.19,
                    double c = 0.19);

// Square matrix with `band` non-zeros per row clustered around the diagonal.
CooMatrix make_banded(index_t n, index_t band, std::uint64_t seed,
                      ValueOptions opt = {});

// Identity-patterned diagonal matrix with the given value.
CooMatrix make_diagonal(index_t n, float value = 1.0f);

// Symmetric positive-definite 1-D Poisson stencil: 2 on the diagonal,
// -1 on the off-diagonals (plus `shift` added to the diagonal).
CooMatrix make_tridiagonal_spd(index_t n, float shift = 0.0f);

// `heavy_rows` rows each carrying `row_nnz` elements at random columns;
// all other rows carry exactly one element.
CooMatrix make_dense_rows(index_t rows, index_t cols, index_t heavy_rows,
                          index_t row_nnz, std::uint64_t seed,
                          ValueOptions opt = {});

// Dense blocks of size `block` scattered on a sparse block skeleton, as in
// power-system matrices (TSOPF_*).
CooMatrix make_block_random(index_t n, index_t block, nnz_t target_nnz,
                            std::uint64_t seed, ValueOptions opt = {});

// Community-structured graph: dense cliques over *consecutive* vertex ids
// (as in ego-network crawls, collaboration graphs, and clique-expanded
// citation graphs, where ids are assigned per community) plus a uniform
// random background. `background_frac` of the non-zeros are background;
// clique sizes are drawn uniformly from [clique_min, clique_max].
// Consecutive-row cliques are the worst case for index coalescing: the two
// rows of a URAM word carry correlated non-zeros in the same column window.
CooMatrix make_clustered(index_t n, nnz_t target_nnz, index_t clique_min,
                         index_t clique_max, double background_frac,
                         std::uint64_t seed, ValueOptions opt = {});

} // namespace serpens::sparse
