// Conversions between sparse formats.
#pragma once

#include "sparse/coo.h"
#include "sparse/csr.h"

namespace serpens::sparse {

// COO -> CSR. Duplicates are preserved (summed only if the caller coalesced
// beforehand); elements within a row end up sorted by column.
CsrMatrix to_csr(const CooMatrix& coo);

// CSR -> COO, row-major order.
CooMatrix to_coo(const CsrMatrix& csr);

} // namespace serpens::sparse
