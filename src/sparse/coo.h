// Coordinate-format (COO) sparse matrix container.
//
// COO is the interchange format of the library: generators, Matrix Market
// I/O, and the Serpens encoder all speak COO. It deliberately allows
// arbitrary element order and duplicates until the caller normalizes it
// (sort_row_major / coalesce_duplicates), mirroring how assembly pipelines
// produce matrices in practice.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace serpens::sparse {

using index_t = std::uint32_t;
using nnz_t = std::uint64_t;

struct Triplet {
    index_t row = 0;
    index_t col = 0;
    float val = 0.0f;

    friend bool operator==(const Triplet&, const Triplet&) = default;
};

class CooMatrix {
public:
    CooMatrix() = default;

    CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols)
    {
        SERPENS_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
    }

    static CooMatrix from_triplets(index_t rows, index_t cols,
                                   std::vector<Triplet> triplets)
    {
        CooMatrix m(rows, cols);
        for (const Triplet& t : triplets)
            SERPENS_CHECK(t.row < rows && t.col < cols,
                          "triplet index out of bounds");
        m.elems_ = std::move(triplets);
        return m;
    }

    void add(index_t row, index_t col, float val)
    {
        SERPENS_CHECK(row < rows_ && col < cols_, "element index out of bounds");
        elems_.push_back({row, col, val});
    }

    void reserve(nnz_t n) { elems_.reserve(n); }

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    nnz_t nnz() const { return elems_.size(); }
    bool empty() const { return elems_.empty(); }

    const std::vector<Triplet>& elements() const { return elems_; }
    std::vector<Triplet>& elements() { return elems_; }

    // Sort elements by (row, col). Stable so duplicate handling is
    // deterministic.
    void sort_row_major()
    {
        std::stable_sort(elems_.begin(), elems_.end(),
                         [](const Triplet& a, const Triplet& b) {
                             return a.row != b.row ? a.row < b.row : a.col < b.col;
                         });
    }

    // Sort elements by (col, row) — the order the Serpens segment walk
    // naturally consumes.
    void sort_col_major()
    {
        std::stable_sort(elems_.begin(), elems_.end(),
                         [](const Triplet& a, const Triplet& b) {
                             return a.col != b.col ? a.col < b.col : a.row < b.row;
                         });
    }

    // Merge duplicate (row, col) entries by summing their values.
    // Leaves the matrix sorted row-major.
    void coalesce_duplicates()
    {
        sort_row_major();
        std::size_t out = 0;
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            if (out > 0 && elems_[out - 1].row == elems_[i].row &&
                elems_[out - 1].col == elems_[i].col) {
                elems_[out - 1].val += elems_[i].val;
            } else {
                elems_[out++] = elems_[i];
            }
        }
        elems_.resize(out);
    }

    // Remove explicit zeros (values that compare equal to 0.0f).
    void drop_zeros()
    {
        std::erase_if(elems_, [](const Triplet& t) { return t.val == 0.0f; });
    }

    CooMatrix transposed() const
    {
        CooMatrix t(cols_, rows_);
        t.reserve(nnz());
        for (const Triplet& e : elems_)
            t.elems_.push_back({e.col, e.row, e.val});
        return t;
    }

private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<Triplet> elems_;
};

} // namespace serpens::sparse
