// Matrix Market (.mtx) reader/writer.
//
// Supports the `matrix coordinate` class: real / integer / pattern fields,
// general / symmetric symmetry. Symmetric inputs are expanded to full
// storage on read (off-diagonal entries mirrored), matching how SpMV
// consumers use the SuiteSparse collection.
//
// Two readers produce identical triplets (pinned by tests/test_parse_fast):
//
//   read_matrix_market       — line-at-a-time istream parser; the simple
//                              implementation and the differential reference
//   read_matrix_market_fast  — SuiteSparse-scale ingestion: mmap the file
//                              (buffered read for streams/pipes), split the
//                              entry region into newline-aligned chunks, and
//                              parse chunks in parallel with std::from_chars
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "sparse/coo.h"

namespace serpens::sparse {

// Thrown on malformed Matrix Market input.
class MatrixMarketError : public std::runtime_error {
public:
    explicit MatrixMarketError(const std::string& what) : std::runtime_error(what) {}
};

CooMatrix read_matrix_market(std::istream& in);
CooMatrix read_matrix_market_file(const std::string& path);

// Aliases naming the istream implementation as what it now is: the
// differential reference for the fast path (the same pattern as
// encode/schedule_reference.h).
CooMatrix read_matrix_market_reference(std::istream& in);
CooMatrix read_matrix_market_reference_file(const std::string& path);

// Host-side knobs of the fast parser. They never change the parsed result:
// the triplets are identical to read_matrix_market for every setting.
struct ParseOptions {
    // Worker threads for chunk parsing: 1 = serial, 0 = one per hardware
    // thread.
    unsigned threads = 0;
    // Target bytes per parallel chunk before newline alignment; 0 derives a
    // size from the entry-region length and thread count. Exposed so tests
    // can force chunk boundaries to land inside entry lines.
    std::size_t chunk_bytes = 0;
};

// True when the library was built with zlib: gzip-compressed inputs
// (SuiteSparse ships .mtx.gz) are detected by their magic bytes — in any of
// the fast entry points, regardless of file name — and inflated before
// parsing. Without zlib, compressed input throws MatrixMarketError.
bool gzip_supported();

// Parse an in-memory .mtx image. The fast path commits only when every
// entry line parses cleanly and the entry count matches the size line; any
// irregularity (blank line inside the list, malformed token, out-of-range
// number) re-runs the reference parser on the buffer, so error behavior is
// the reference's by construction.
CooMatrix read_matrix_market_fast(std::string_view text,
                                  const ParseOptions& options = {});
// Buffered-read fallback for streams/pipes: slurp, then parse.
CooMatrix read_matrix_market_fast(std::istream& in,
                                  const ParseOptions& options = {});
// mmap the file when possible (regular files on POSIX), else buffered read.
CooMatrix read_matrix_market_fast_file(const std::string& path,
                                       const ParseOptions& options = {});

// Writes `coordinate real general` with 1-based indices. Values are emitted
// with max_digits10 significant digits, so write -> read round-trips
// bit-exactly.
void write_matrix_market(std::ostream& out, const CooMatrix& m);
void write_matrix_market_file(const std::string& path, const CooMatrix& m);

} // namespace serpens::sparse
