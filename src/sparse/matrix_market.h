// Matrix Market (.mtx) reader/writer.
//
// Supports the `matrix coordinate` class: real / integer / pattern fields,
// general / symmetric symmetry. Symmetric inputs are expanded to full
// storage on read (off-diagonal entries mirrored), matching how SpMV
// consumers use the SuiteSparse collection.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.h"

namespace serpens::sparse {

// Thrown on malformed Matrix Market input.
class MatrixMarketError : public std::runtime_error {
public:
    explicit MatrixMarketError(const std::string& what) : std::runtime_error(what) {}
};

CooMatrix read_matrix_market(std::istream& in);
CooMatrix read_matrix_market_file(const std::string& path);

// Writes `coordinate real general` with 1-based indices.
void write_matrix_market(std::ostream& out, const CooMatrix& m);
void write_matrix_market_file(const std::string& path, const CooMatrix& m);

} // namespace serpens::sparse
