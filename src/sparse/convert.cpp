#include "sparse/convert.h"

#include <algorithm>

namespace serpens::sparse {

CsrMatrix to_csr(const CooMatrix& coo)
{
    const index_t rows = coo.rows();
    std::vector<nnz_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
    for (const Triplet& t : coo.elements())
        ++row_ptr[t.row + 1];
    for (index_t r = 0; r < rows; ++r)
        row_ptr[r + 1] += row_ptr[r];

    std::vector<index_t> col_idx(coo.nnz());
    std::vector<float> values(coo.nnz());
    std::vector<nnz_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
    for (const Triplet& t : coo.elements()) {
        const nnz_t at = cursor[t.row]++;
        col_idx[at] = t.col;
        values[at] = t.val;
    }

    // Sort each row segment by column for deterministic downstream behaviour.
    for (index_t r = 0; r < rows; ++r) {
        const nnz_t lo = row_ptr[r];
        const nnz_t hi = row_ptr[r + 1];
        std::vector<std::pair<index_t, float>> row;
        row.reserve(hi - lo);
        for (nnz_t i = lo; i < hi; ++i)
            row.emplace_back(col_idx[i], values[i]);
        std::stable_sort(row.begin(), row.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
        for (nnz_t i = lo; i < hi; ++i) {
            col_idx[i] = row[i - lo].first;
            values[i] = row[i - lo].second;
        }
    }

    return CsrMatrix(rows, coo.cols(), std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

CooMatrix to_coo(const CsrMatrix& csr)
{
    CooMatrix coo(csr.rows(), csr.cols());
    coo.reserve(csr.nnz());
    for (index_t r = 0; r < csr.rows(); ++r)
        for (nnz_t i = csr.row_begin(r); i < csr.row_end(r); ++i)
            coo.add(r, csr.col_idx()[i], csr.values()[i]);
    return coo;
}

} // namespace serpens::sparse
