// Durable registry state: the serving layer's crash-recovery unit.
//
// A RegistryStore owns a --state-dir with this layout:
//
//   <state-dir>/images/<name>.img   one v2 CRC-checksummed SerpensImage
//                                   per resident (encode::save_image),
//                                   published atomically (temp + fsync +
//                                   rename + parent-dir fsync)
//   <state-dir>/manifest.log        append-only write-ahead log of the
//                                   registry's admission history
//
// Every WAL record is CRC32-framed:
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = u8 type | u32 name_len | name bytes
//   type: 1 = ADMIT, 2 = EVICT, 3 = REPLACE (same-name re-admission),
//         4 = CLEAN_SHUTDOWN (empty name; the previous session exited
//             through its shutdown path rather than dying)
//
// Appends are fdatasync'd, and an image file is always published BEFORE
// the ADMIT/REPLACE record that references it, so the log never points at
// a file that might not exist. Opening the store replays the manifest:
// the scan stops at the first record whose CRC (or framing) fails and
// physically truncates that torn tail — a SIGKILL or power loss mid-append
// costs at most the record being written, never the prefix. recover()
// then re-admits each surviving resident through MatrixRegistry::
// admit_image — paying decode but never encode, so a warm restart serves
// bit-identical results — skipping (and counting, `skipped_corrupt`)
// residents whose image file fails its section CRCs.
//
// When the log outgrows `compact_threshold_bytes` it is rewritten as one
// ADMIT per live resident (atomic_write_file) and unreferenced image
// files are removed; the admission ORDER is preserved because replay
// re-applies the registry's own budget/LRU policy to it.
//
// Thread-safe: the daemon journals from many connection threads.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "encode/image.h"
#include "serve/registry.h"

namespace serpens::serve {

struct StoreStats {
    // Replay (filled by the constructor / recover()).
    std::uint64_t wal_records = 0;      // valid records replayed at open
    std::uint64_t wal_torn_bytes = 0;   // torn tail truncated at open
    std::uint64_t recovered = 0;        // residents re-admitted by recover()
    std::uint64_t skipped_corrupt = 0;  // residents whose image failed to
                                        // load (bad CRC, missing, or
                                        // rejected by the registry)
    double recovery_ms = 0.0;           // wall time recover() spent
    bool clean_shutdown = false;        // previous session left the marker
    // Journaling (this session).
    std::uint64_t appends = 0;          // records appended
    std::uint64_t compactions = 0;      // log rewrites
};

class RegistryStore {
public:
    // Opens (creating if needed) `state_dir` and replays manifest.log.
    // A corrupt or torn manifest NEVER throws — the valid prefix wins and
    // the damage is counted in stats(). Throws std::runtime_error only
    // for real I/O failures (state dir not creatable/readable).
    explicit RegistryStore(std::string state_dir,
                           std::uint64_t compact_threshold_bytes = 1u << 20);
    ~RegistryStore();

    RegistryStore(const RegistryStore&) = delete;
    RegistryStore& operator=(const RegistryStore&) = delete;

    // Re-admit every manifest-live resident whose image file loads and
    // passes its section CRCs, through registry.admit_image (decode only,
    // no encode). Failures are skipped and counted; nothing throws for a
    // corrupt image. Returns the number recovered.
    std::uint64_t recover(MatrixRegistry& registry);

    // Journal one wire admission: publish the image durably, then append
    // ADMIT (or REPLACE when `name` is already live). Call AFTER the
    // registry accepted the admission.
    void record_admit(const std::string& name,
                      const encode::SerpensImage& image);

    // Journal one eviction; removes the image file best-effort. True when
    // `name` was live in the manifest.
    bool record_evict(const std::string& name);

    // Append the clean-shutdown marker (the last record of a session that
    // exits through its shutdown path).
    void record_clean_shutdown();

    // Manifest-live residents, admission order (oldest first).
    std::vector<std::string> live_names() const;

    StoreStats stats() const;
    const std::string& state_dir() const { return state_dir_; }
    std::string manifest_path() const;
    std::string image_path(const std::string& name) const;

    // `name` mapped to a filesystem-safe file name: [A-Za-z0-9._-] pass
    // through, everything else percent-encodes — injective, so distinct
    // names never collide on disk.
    static std::string image_filename(const std::string& name);

private:
    void replay_manifest();
    void append_record(std::uint8_t type, const std::string& name);
    void maybe_compact_locked();
    void ensure_log_fd_locked();
    void close_log_fd_locked();
    void live_insert_locked(const std::string& name);
    void live_erase_locked(const std::string& name);

    std::string state_dir_;
    std::uint64_t compact_threshold_bytes_ = 0;

    mutable std::mutex mu_;
    int log_fd_ = -1;
    std::uint64_t log_bytes_ = 0;  // current manifest.log size
    // Live set in admission order (replay re-applies LRU policy to it).
    std::list<std::string> live_;
    std::unordered_map<std::string, std::list<std::string>::iterator>
        live_pos_;
    StoreStats stats_;
};

} // namespace serpens::serve
