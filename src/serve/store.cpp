#include "serve/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "encode/serialize.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/fs.h"

namespace serpens::serve {

namespace {

constexpr std::uint8_t kAdmit = 1;
constexpr std::uint8_t kEvict = 2;
constexpr std::uint8_t kReplace = 3;
constexpr std::uint8_t kCleanShutdown = 4;

// A record's payload is a type byte, a name length, and a name; anything
// claiming more than this is framing damage, not a real record.
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

constexpr std::size_t kHeaderBytes = 8;  // u32 payload_len | u32 crc

void put_u32(std::string& out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p)
{
    const auto* b = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
}

std::string encode_record(std::uint8_t type, const std::string& name)
{
    std::string payload;
    payload.push_back(static_cast<char>(type));
    put_u32(payload, static_cast<std::uint32_t>(name.size()));
    payload += name;

    std::string rec;
    put_u32(rec, static_cast<std::uint32_t>(payload.size()));
    put_u32(rec, util::crc32(payload.data(), payload.size()));
    rec += payload;
    return rec;
}

void make_dir(const std::string& path)
{
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
        throw std::runtime_error("RegistryStore: cannot create " + path +
                                 ": " + std::strerror(errno));
}

bool is_safe_char(char c)
{
    return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

} // namespace

RegistryStore::RegistryStore(std::string state_dir,
                             std::uint64_t compact_threshold_bytes)
    : state_dir_(std::move(state_dir)),
      compact_threshold_bytes_(compact_threshold_bytes)
{
    if (state_dir_.empty())
        throw std::invalid_argument("RegistryStore: empty state dir");
    make_dir(state_dir_);
    make_dir(state_dir_ + "/images");
    replay_manifest();
}

RegistryStore::~RegistryStore()
{
    std::lock_guard<std::mutex> lock(mu_);
    close_log_fd_locked();
}

std::string RegistryStore::manifest_path() const
{
    return state_dir_ + "/manifest.log";
}

std::string RegistryStore::image_filename(const std::string& name)
{
    std::string out;
    out.reserve(name.size() + 4);
    for (const char c : name) {
        if (is_safe_char(c) && c != '%') {
            out.push_back(c);
        } else {
            static const char* hex = "0123456789ABCDEF";
            out.push_back('%');
            const auto b = static_cast<unsigned char>(c);
            out.push_back(hex[b >> 4]);
            out.push_back(hex[b & 0xf]);
        }
    }
    return out + ".img";
}

std::string RegistryStore::image_path(const std::string& name) const
{
    return state_dir_ + "/images/" + image_filename(name);
}

void RegistryStore::live_insert_locked(const std::string& name)
{
    const auto it = live_pos_.find(name);
    if (it != live_pos_.end())
        live_.erase(it->second);
    live_.push_back(name);
    live_pos_[name] = std::prev(live_.end());
}

void RegistryStore::live_erase_locked(const std::string& name)
{
    const auto it = live_pos_.find(name);
    if (it == live_pos_.end())
        return;
    live_.erase(it->second);
    live_pos_.erase(it);
}

void RegistryStore::replay_manifest()
{
    std::lock_guard<std::mutex> lock(mu_);

    std::string raw;
    {
        std::ifstream in(manifest_path(), std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            raw = buf.str();
        }
    }

    // Scan the valid prefix. A bad length, bad CRC, short payload, or
    // unparseable payload ends the scan — everything from there on is the
    // torn tail a crash mid-append (or garbage) left behind.
    std::size_t pos = 0;
    bool clean = false;
    while (raw.size() - pos >= kHeaderBytes) {
        const std::uint32_t len = get_u32(raw.data() + pos);
        const std::uint32_t crc = get_u32(raw.data() + pos + 4);
        if (len < 5 || len > kMaxRecordBytes ||
            raw.size() - pos - kHeaderBytes < len)
            break;
        const char* payload = raw.data() + pos + kHeaderBytes;
        if (util::crc32(payload, len) != crc)
            break;
        const auto type = static_cast<std::uint8_t>(payload[0]);
        const std::uint32_t name_len = get_u32(payload + 1);
        if (name_len != len - 5)
            break;
        if (type != kAdmit && type != kEvict && type != kReplace &&
            type != kCleanShutdown)
            break;
        const std::string name(payload + 5, name_len);

        // The clean marker is only meaningful as the FINAL record; any
        // record after it belongs to a newer session, so it resets.
        clean = false;
        switch (type) {
        case kAdmit:
        case kReplace:
            live_insert_locked(name);
            break;
        case kEvict:
            live_erase_locked(name);
            break;
        case kCleanShutdown:
            clean = true;
            break;
        }
        ++stats_.wal_records;
        pos += kHeaderBytes + len;
    }
    stats_.clean_shutdown = clean;
    stats_.wal_torn_bytes = raw.size() - pos;

    if (stats_.wal_torn_bytes > 0) {
        // Physically drop the torn tail so this session's appends extend
        // the valid prefix instead of burying garbage mid-log.
        if (::truncate(manifest_path().c_str(),
                       static_cast<off_t>(pos)) != 0)
            throw std::runtime_error(
                "RegistryStore: cannot truncate torn manifest tail: " +
                std::string(std::strerror(errno)));
    }
    log_bytes_ = pos;
}

void RegistryStore::ensure_log_fd_locked()
{
    if (log_fd_ >= 0)
        return;
    log_fd_ = ::open(manifest_path().c_str(),
                     O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd_ < 0)
        throw std::runtime_error("RegistryStore: cannot open manifest: " +
                                 std::string(std::strerror(errno)));
}

void RegistryStore::close_log_fd_locked()
{
    if (log_fd_ >= 0) {
        ::close(log_fd_);
        log_fd_ = -1;
    }
}

void RegistryStore::append_record(std::uint8_t type, const std::string& name)
{
    obs::TraceRecorder* const trace = obs::trace_recorder();
    const std::uint64_t start_ns = trace != nullptr ? trace->now_ns() : 0;
    ensure_log_fd_locked();
    const std::string rec = encode_record(type, name);
    const char* data = rec.data();
    std::size_t left = rec.size();
    while (left > 0) {
        const ssize_t n = ::write(log_fd_, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(
                "RegistryStore: manifest append failed: " +
                std::string(std::strerror(errno)));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fdatasync(log_fd_) != 0 && errno != EINVAL && errno != ENOTSUP)
        throw std::runtime_error("RegistryStore: manifest fdatasync: " +
                                 std::string(std::strerror(errno)));
    log_bytes_ += rec.size();
    ++stats_.appends;
    if (trace != nullptr)
        trace->span("store.wal_append", "store", 0, start_ns, trace->now_ns(),
                    "bytes", rec.size());
}

void RegistryStore::maybe_compact_locked()
{
    if (compact_threshold_bytes_ == 0 ||
        log_bytes_ <= compact_threshold_bytes_)
        return;

    // Rewrite the log as one ADMIT per live resident, admission order
    // preserved, published atomically so a crash mid-compaction leaves
    // either the old log or the new one — never half of each.
    std::string fresh;
    for (const std::string& name : live_)
        fresh += encode_record(kAdmit, name);
    close_log_fd_locked();
    util::atomic_write_file(manifest_path(), fresh);
    log_bytes_ = fresh.size();
    ++stats_.compactions;

    // Unreferenced images (evicted or replaced residents) are now garbage.
    std::unordered_map<std::string, bool> keep;
    for (const std::string& name : live_)
        keep[image_filename(name)] = true;
    const std::string dir = state_dir_ + "/images";
    if (DIR* d = ::opendir(dir.c_str())) {
        while (const dirent* e = ::readdir(d)) {
            const std::string fname = e->d_name;
            if (fname == "." || fname == "..")
                continue;
            if (!keep.count(fname))
                std::remove((dir + "/" + fname).c_str());
        }
        ::closedir(d);
    }
}

void RegistryStore::record_admit(const std::string& name,
                                 const encode::SerpensImage& image)
{
    // Publish the image BEFORE the record that references it: if we die
    // between the two, the orphan image is harmless (compaction sweeps
    // it); the reverse order could journal a resident with no bytes.
    std::ostringstream img;
    encode::save_image(img, image);
    util::atomic_write_file(image_path(name), img.str());

    std::lock_guard<std::mutex> lock(mu_);
    const bool replace = live_pos_.count(name) > 0;
    append_record(replace ? kReplace : kAdmit, name);
    live_insert_locked(name);
    maybe_compact_locked();
}

bool RegistryStore::record_evict(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!live_pos_.count(name))
        return false;
    append_record(kEvict, name);
    live_erase_locked(name);
    std::remove(image_path(name).c_str());
    maybe_compact_locked();
    return true;
}

void RegistryStore::record_clean_shutdown()
{
    std::lock_guard<std::mutex> lock(mu_);
    append_record(kCleanShutdown, std::string());
}

std::uint64_t RegistryStore::recover(MatrixRegistry& registry)
{
    obs::TraceRecorder* const trace = obs::trace_recorder();
    const std::uint64_t trace_start_ns =
        trace != nullptr ? trace->now_ns() : 0;
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names.assign(live_.begin(), live_.end());
    }

    std::uint64_t recovered = 0;
    std::vector<std::string> corrupt;
    for (const std::string& name : names) {
        try {
            registry.admit_image(name,
                                 encode::load_image_file(image_path(name)));
            ++recovered;
        } catch (const std::exception&) {
            // Bad section CRC, missing file, or a registry that cannot
            // hold it (budget, architecture mismatch): the resident is
            // lost, the rest of the fleet is not.
            corrupt.push_back(name);
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& name : corrupt) {
        if (live_pos_.count(name)) {
            append_record(kEvict, name);
            live_erase_locked(name);
        }
        std::remove(image_path(name).c_str());
        ++stats_.skipped_corrupt;
    }
    stats_.recovered += recovered;
    stats_.recovery_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (trace != nullptr)
        trace->span("store.replay", "store", 0, trace_start_ns,
                    trace->now_ns(), "recovered", recovered);
    return recovered;
}

std::vector<std::string> RegistryStore::live_names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {live_.begin(), live_.end()};
}

StoreStats RegistryStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace serpens::serve
