#include "serve/snapshot.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace serpens::serve {

namespace {

bool is_json_space(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Locate `"key"` in `json` at or after `from` and parse the number that
// follows its colon. Returns false when the key, the ':' separator, or a
// parseable number is missing — `"wall_s" 12` (no colon) is NOT valid.
bool number_after_key(std::string_view json, std::string_view key,
                      std::size_t from, double* value, std::size_t* at)
{
    const std::string quoted = "\"" + std::string(key) + "\"";
    const std::size_t k = json.find(quoted, from);
    if (k == std::string_view::npos)
        return false;
    std::size_t p = k + quoted.size();
    while (p < json.size() && is_json_space(json[p]))
        ++p;
    if (p >= json.size() || json[p] != ':')
        return false;  // key without its ':' separator
    ++p;
    while (p < json.size() && is_json_space(json[p]))
        ++p;
    if (p >= json.size())
        return false;
    char* end = nullptr;
    const std::string tail(json.substr(p, 64));
    const double v = std::strtod(tail.c_str(), &end);
    if (end == tail.c_str())
        return false;  // no digits at all (e.g. a string value)
    if (value)
        *value = v;
    if (at)
        *at = k;
    return true;
}

// Locate `"key": [n, n, ...]` at or after `from`: every entry must be a
// finite non-negative number and the array must hold at least one entry.
bool array_after_key(std::string_view json, std::string_view key,
                     std::size_t from, std::size_t* at)
{
    const std::string quoted = "\"" + std::string(key) + "\"";
    const std::size_t k = json.find(quoted, from);
    if (k == std::string_view::npos)
        return false;
    std::size_t p = k + quoted.size();
    while (p < json.size() && is_json_space(json[p]))
        ++p;
    if (p >= json.size() || json[p] != ':')
        return false;
    ++p;
    while (p < json.size() && is_json_space(json[p]))
        ++p;
    if (p >= json.size() || json[p] != '[')
        return false;
    ++p;
    std::size_t entries = 0;
    for (;;) {
        while (p < json.size() && is_json_space(json[p]))
            ++p;
        if (p >= json.size())
            return false;
        if (json[p] == ']')
            break;
        char* end = nullptr;
        const std::string tail(json.substr(p, 64));
        const double v = std::strtod(tail.c_str(), &end);
        if (end == tail.c_str() || !std::isfinite(v) || v < 0.0)
            return false;
        p += static_cast<std::size_t>(end - tail.c_str());
        ++entries;
        while (p < json.size() && is_json_space(json[p]))
            ++p;
        if (p < json.size() && json[p] == ',')
            ++p;
    }
    if (entries == 0)
        return false;
    if (at)
        *at = k;
    return true;
}

bool fail(std::string* error, const std::string& what)
{
    if (error)
        *error = what;
    return false;
}

void append_width_hist(std::ostringstream& out,
                       const std::vector<std::uint64_t>& hist)
{
    out << "[";
    if (hist.empty())
        out << "0";  // never an empty array: width 1 saw zero requests
    for (std::size_t i = 0; i < hist.size(); ++i)
        out << (i == 0 ? "" : ", ") << hist[i];
    out << "]";
}

void append_loop(std::ostringstream& out, const char* name,
                 const LoopSnapshot& r, bool last)
{
    out << "    \"" << name << "\": {\n"
        << "      \"wall_s\": " << r.wall_s << ",\n"
        << "      \"nnz_per_s\": " << r.nnz_per_s << ",\n"
        << "      \"mean_queue_ms\": " << r.mean_queue_ms << ",\n"
        << "      \"mean_service_ms\": " << r.mean_service_ms << ",\n"
        << "      \"mean_batch_width\": " << r.mean_batch_width << ",\n"
        << "      \"mean_device_amortized_ms\": "
        << r.mean_device_amortized_ms << ",\n"
        << "      \"p50_queue_ms\": " << r.p50_queue_ms << ",\n"
        << "      \"p99_queue_ms\": " << r.p99_queue_ms << ",\n"
        << "      \"p50_service_ms\": " << r.p50_service_ms << ",\n"
        << "      \"p99_service_ms\": " << r.p99_service_ms << ",\n"
        << "      \"p50_e2e_ms\": " << r.p50_e2e_ms << ",\n"
        << "      \"p99_e2e_ms\": " << r.p99_e2e_ms << ",\n"
        << "      \"batches\": " << r.stats.batches << ",\n"
        << "      \"rounds\": " << r.stats.rounds << ",\n"
        << "      \"coalesced\": " << r.stats.coalesced << ",\n"
        << "      \"max_batch_seen\": " << r.stats.max_batch_seen << ",\n"
        << "      \"rejected\": " << r.stats.rejected << ",\n"
        << "      \"shed\": " << r.stats.shed << ",\n"
        << "      \"retried\": " << r.retried << ",\n"
        << "      \"failovers\": " << r.failovers << ",\n"
        << "      \"batch_shrinks\": " << r.stats.batch_shrinks << ",\n"
        << "      \"batch_grows\": " << r.stats.batch_grows << ",\n"
        << "      \"width_hist\": ";
    append_width_hist(out, r.width_hist);
    out << "\n    }" << (last ? "\n" : ",\n");
}

struct LoopKey {
    const char* name;
    bool strictly_positive;
};

// Every numeric key of a loop object, in the order to_json writes them.
constexpr LoopKey kLoopKeys[] = {
    {"wall_s", true},
    {"nnz_per_s", true},
    {"mean_queue_ms", false},
    {"mean_service_ms", false},
    {"mean_batch_width", true},
    {"mean_device_amortized_ms", true},
    {"p50_queue_ms", false},
    {"p99_queue_ms", false},
    {"p50_service_ms", false},
    {"p99_service_ms", false},
    {"p50_e2e_ms", false},
    {"p99_e2e_ms", false},
    {"batches", true},
    {"rounds", true},
    {"coalesced", false},
    {"max_batch_seen", true},
    {"rejected", false},
    {"shed", false},
    {"retried", false},
    {"failovers", false},
    {"batch_shrinks", false},
    {"batch_grows", false},
};

bool validate_loop(std::string_view json, std::string_view loop,
                   std::size_t* cursor, std::string* error)
{
    const std::string quoted = "\"" + std::string(loop) + "\"";
    const std::size_t start = json.find(quoted, *cursor);
    if (start == std::string_view::npos)
        return fail(error, "missing loop \"" + std::string(loop) + "\"");
    // Scope the key search to this loop's own object — loop values are
    // plain numbers or arrays (no nested objects), so the first '}'
    // closes it. Without the bound, a key missing from one loop would be
    // satisfied by the other loop's copy.
    const std::size_t open = json.find('{', start);
    const std::size_t close = json.find('}', open);
    if (open == std::string_view::npos || close == std::string_view::npos)
        return fail(error, "malformed loop \"" + std::string(loop) + "\"");
    const std::string_view body = json.substr(open, close - open);

    std::size_t at = 0;
    for (const LoopKey& key : kLoopKeys) {
        double v = 0.0;
        if (!number_after_key(body, key.name, at, &v, &at))
            return fail(error, std::string(loop) + ": missing or "
                                   "non-numeric \"" +
                                   key.name + "\"");
        if (!std::isfinite(v))
            return fail(error, std::string(loop) + "." + key.name +
                                   " is not finite");
        if (v < 0.0 || (key.strictly_positive && v <= 0.0))
            return fail(error, std::string(loop) + "." + key.name +
                                   " must be " +
                                   (key.strictly_positive ? "positive"
                                                          : "non-negative"));
    }
    if (!array_after_key(body, "width_hist", at, &at))
        return fail(error, std::string(loop) +
                               ": missing or malformed \"width_hist\"");
    *cursor = close;
    return true;
}

} // namespace

bool find_number_after_key(std::string_view json, std::string_view key,
                           std::size_t* cursor, double* value)
{
    std::size_t at = 0;
    if (!number_after_key(json, key, cursor ? *cursor : 0, value, &at))
        return false;
    if (cursor)
        *cursor = at;
    return true;
}

std::string to_json(const ServeSnapshot& snap)
{
    // Three ablation pairs share the schema: closed-loop coalescing
    // (batched/unbatched), open-loop SLO (adaptive/fixed), and — when a
    // latency budget is set — open-loop shedding (deadline/no_deadline).
    const bool deadline_mode = snap.open_loop && snap.deadline_ms > 0.0;
    const char* primary = snap.open_loop
                              ? (deadline_mode ? "deadline" : "adaptive")
                              : "batched";
    const char* comparison =
        snap.open_loop ? (deadline_mode ? "no_deadline" : "fixed")
                       : "unbatched";

    std::ostringstream out;
    out << "{\n  \"tool\": \"serpens_serve\",\n"
        << "  \"mode\": \""
        << (snap.open_loop ? "open-loop" : "closed-loop") << "\",\n"
        << "  \"config\": {\n"
        << "    \"matrices\": " << snap.matrices << ",\n"
        << "    \"entries\": " << snap.entries << ",\n"
        << "    \"clients\": " << snap.clients << ",\n"
        << "    \"requests_per_client\": " << snap.requests_per_client
        << ",\n"
        << "    \"max_batch\": " << snap.max_batch << ",\n"
        << "    \"serve_threads\": " << snap.serve_threads << ",\n"
        << "    \"arrival_rate_rps\": " << snap.arrival_rate_rps << ",\n"
        << "    \"slo_ms\": " << snap.slo_ms << ",\n"
        << "    \"batch_wait_ms\": " << snap.batch_wait_ms << ",\n"
        << "    \"max_queue_depth\": " << snap.max_queue_depth << ",\n"
        << "    \"deadline_ms\": " << snap.deadline_ms << ",\n"
        << "    \"overload\": " << snap.overload << "\n"
        << "  },\n  \"loops\": {\n";
    append_loop(out, primary, snap.primary, !snap.comparison.has_value());
    if (snap.comparison)
        append_loop(out, comparison, *snap.comparison, true);
    out << "  }";
    if (!snap.open_loop && snap.comparison)
        out << ",\n  \"batched_speedup\": "
            << snap.primary.nnz_per_s / snap.comparison->nnz_per_s << "\n";
    else
        out << "\n";
    out << "}\n";
    return out.str();
}

bool validate_snapshot_json(std::string_view json, std::string* error)
{
    if (json.find("\"tool\": \"serpens_serve\"") == std::string_view::npos)
        return fail(error, "missing tool tag");

    bool open_loop = false;
    if (json.find("\"mode\": \"open-loop\"") != std::string_view::npos)
        open_loop = true;
    else if (json.find("\"mode\": \"closed-loop\"") ==
             std::string_view::npos)
        return fail(error, "missing or unknown mode tag");

    std::size_t at = 0;
    static const char* const config_keys[] = {
        "matrices",          "entries",   "clients",
        "requests_per_client", "max_batch", "serve_threads",
        "arrival_rate_rps",  "slo_ms",    "batch_wait_ms",
        "max_queue_depth",   "deadline_ms", "overload"};
    double deadline_ms = 0.0;
    for (const char* key : config_keys) {
        double v = 0.0;
        if (!number_after_key(json, key, at, &v, &at))
            return fail(error, std::string("config: missing or "
                                           "non-numeric \"") +
                                   key + "\"");
        if (!std::isfinite(v) || v < 0.0)
            return fail(error, std::string("config.") + key + " invalid");
        if (std::string_view(key) == "deadline_ms")
            deadline_ms = v;  // selects the loop-name pair below
    }

    const bool deadline_mode = open_loop && deadline_ms > 0.0;
    const char* primary =
        open_loop ? (deadline_mode ? "deadline" : "adaptive") : "batched";
    const char* comparison =
        open_loop ? (deadline_mode ? "no_deadline" : "fixed") : "unbatched";

    std::size_t cursor = at;
    if (!validate_loop(json, primary, &cursor, error))
        return false;

    const bool has_comparison =
        json.find("\"" + std::string(comparison) + "\"") !=
        std::string_view::npos;
    const bool has_speedup =
        json.find("\"batched_speedup\"") != std::string_view::npos;
    if (open_loop) {
        // Open-loop documents carry the SLO ablation in the loops
        // themselves; a closed-loop speedup figure does not belong here.
        if (has_speedup)
            return fail(error, "open-loop snapshot must not carry "
                               "batched_speedup");
    } else if (has_comparison != has_speedup) {
        // The comparison loop and the speedup travel together: either
        // both present (default run) or both absent (--no-compare).
        return fail(error, "unbatched loop and batched_speedup must appear "
                           "together");
    }
    if (has_comparison) {
        if (!validate_loop(json, comparison, &cursor, error))
            return false;
        if (!open_loop) {
            double speedup = 0.0;
            if (!number_after_key(json, "batched_speedup", cursor, &speedup,
                                  nullptr))
                return fail(error,
                            "missing or non-numeric batched_speedup");
            if (!std::isfinite(speedup) || speedup <= 0.0)
                return fail(error, "batched_speedup must be positive");
        }
    }
    return true;
}

std::string server_stats_to_json(const ServerStats& server,
                                 const RegistryStats& registry,
                                 std::size_t residents,
                                 std::uint64_t bytes_resident,
                                 const StoreStats* store, double uptime_ms)
{
    std::vector<std::uint64_t> widths;
    for (unsigned w = 1; w < kWidthBuckets; ++w)
        widths.push_back(server.width_hist[w]);
    while (widths.size() > 1 && widths.back() == 0)
        widths.pop_back();

    std::ostringstream out;
    out << "{\n  \"tool\": \"serpens_served\",\n"
        << "  \"server\": {\n"
        << "    \"requests\": " << server.requests << ",\n"
        << "    \"batches\": " << server.batches << ",\n"
        << "    \"rounds\": " << server.rounds << ",\n"
        << "    \"coalesced\": " << server.coalesced << ",\n"
        << "    \"max_batch_seen\": " << server.max_batch_seen << ",\n"
        << "    \"rejected\": " << server.rejected << ",\n"
        << "    \"shed\": " << server.shed << ",\n"
        << "    \"batch_shrinks\": " << server.batch_shrinks << ",\n"
        << "    \"batch_grows\": " << server.batch_grows << ",\n"
        << "    \"current_max_batch\": " << server.current_max_batch
        << ",\n"
        << "    \"p99_queue_ewma_ms\": " << server.p99_queue_ewma_ms
        << ",\n"
        << "    \"mean_queue_ms\": " << server.queue_hist.mean_ms() << ",\n"
        << "    \"p50_queue_ms\": " << server.queue_hist.quantile_ms(0.5)
        << ",\n"
        << "    \"p99_queue_ms\": " << server.queue_hist.quantile_ms(0.99)
        << ",\n"
        << "    \"mean_service_ms\": " << server.service_hist.mean_ms()
        << ",\n"
        << "    \"p50_service_ms\": "
        << server.service_hist.quantile_ms(0.5) << ",\n"
        << "    \"p99_service_ms\": "
        << server.service_hist.quantile_ms(0.99) << ",\n"
        << "    \"uptime_ms\": " << uptime_ms << ",\n"
        << "    \"width_hist\": ";
    append_width_hist(out, widths);
    out << "\n  },\n"
        << "  \"registry\": {\n"
        << "    \"residents\": " << residents << ",\n"
        << "    \"bytes_resident\": " << bytes_resident << ",\n"
        << "    \"admissions\": " << registry.admissions << ",\n"
        << "    \"encodes\": " << registry.encodes << ",\n"
        << "    \"evictions\": " << registry.evictions << ",\n"
        << "    \"replacements\": " << registry.replacements << ",\n"
        << "    \"hits\": " << registry.hits << ",\n"
        << "    \"misses\": " << registry.misses << ",\n"
        << "    \"recovered\": " << (store ? store->recovered : 0) << ",\n"
        << "    \"skipped_corrupt\": "
        << (store ? store->skipped_corrupt : 0) << "\n"
        << "  }\n}\n";
    return out.str();
}

bool validate_server_stats_json(std::string_view json, std::string* error)
{
    if (json.find("\"tool\": \"serpens_served\"") == std::string_view::npos)
        return fail(error, "missing tool tag");

    // Keys are unique document-wide and written in this order, so one
    // sequential cursor scan covers both sections.
    static const char* const keys[] = {
        "requests",        "batches",          "rounds",
        "coalesced",       "max_batch_seen",   "rejected",
        "shed",            "batch_shrinks",    "batch_grows",
        "current_max_batch",
        "p99_queue_ewma_ms", "mean_queue_ms",  "p50_queue_ms",
        "p99_queue_ms",    "mean_service_ms",  "p50_service_ms",
        "p99_service_ms",  "uptime_ms"};
    std::size_t at = 0;
    for (const char* key : keys) {
        double v = 0.0;
        if (!number_after_key(json, key, at, &v, &at))
            return fail(error, std::string("stats: missing or non-numeric "
                                           "\"") +
                                   key + "\"");
        if (!std::isfinite(v) || v < 0.0)
            return fail(error, std::string("stats.") + key + " invalid");
    }
    if (!array_after_key(json, "width_hist", at, &at))
        return fail(error, "stats: missing or malformed \"width_hist\"");
    static const char* const registry_keys[] = {
        "residents", "bytes_resident", "admissions",   "encodes",
        "evictions", "replacements",   "hits",         "misses",
        "recovered", "skipped_corrupt"};
    for (const char* key : registry_keys) {
        double v = 0.0;
        if (!number_after_key(json, key, at, &v, &at))
            return fail(error, std::string("registry: missing or "
                                           "non-numeric \"") +
                                   key + "\"");
        if (!std::isfinite(v) || v < 0.0)
            return fail(error, std::string("registry.") + key + " invalid");
    }
    return true;
}

std::string recovery_to_json(const StoreStats& store)
{
    std::ostringstream out;
    out << "{\n  \"tool\": \"serpens_served\",\n"
        << "  \"recovery\": {\n"
        << "    \"wal_records\": " << store.wal_records << ",\n"
        << "    \"wal_torn_bytes\": " << store.wal_torn_bytes << ",\n"
        << "    \"recovered\": " << store.recovered << ",\n"
        << "    \"skipped_corrupt\": " << store.skipped_corrupt << ",\n"
        << "    \"clean_shutdown\": " << (store.clean_shutdown ? 1 : 0)
        << ",\n"
        << "    \"recovery_ms\": " << store.recovery_ms << "\n"
        << "  }\n}\n";
    return out.str();
}

bool validate_recovery_json(std::string_view json, std::string* error)
{
    if (json.find("\"tool\": \"serpens_served\"") == std::string_view::npos)
        return fail(error, "missing tool tag");
    if (json.find("\"recovery\"") == std::string_view::npos)
        return fail(error, "missing recovery section");
    static const char* const keys[] = {
        "wal_records", "wal_torn_bytes", "recovered",
        "skipped_corrupt", "clean_shutdown", "recovery_ms"};
    std::size_t at = 0;
    for (const char* key : keys) {
        double v = 0.0;
        if (!number_after_key(json, key, at, &v, &at))
            return fail(error, std::string("recovery: missing or "
                                           "non-numeric \"") +
                                   key + "\"");
        if (!std::isfinite(v) || v < 0.0)
            return fail(error, std::string("recovery.") + key + " invalid");
    }
    return true;
}

} // namespace serpens::serve
