#include "serve/snapshot.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace serpens::serve {

namespace {

void append_loop(std::ostringstream& out, const char* name,
                 const LoopSnapshot& r, bool last)
{
    out << "    \"" << name << "\": {\n"
        << "      \"wall_s\": " << r.wall_s << ",\n"
        << "      \"nnz_per_s\": " << r.nnz_per_s << ",\n"
        << "      \"mean_queue_ms\": " << r.mean_queue_ms << ",\n"
        << "      \"mean_service_ms\": " << r.mean_service_ms << ",\n"
        << "      \"mean_batch_width\": " << r.mean_batch_width << ",\n"
        << "      \"mean_device_amortized_ms\": "
        << r.mean_device_amortized_ms << ",\n"
        << "      \"batches\": " << r.stats.batches << ",\n"
        << "      \"rounds\": " << r.stats.rounds << ",\n"
        << "      \"coalesced\": " << r.stats.coalesced << ",\n"
        << "      \"max_batch_seen\": " << r.stats.max_batch_seen << "\n"
        << "    }" << (last ? "\n" : ",\n");
}

// Locate `"key"` in `json` at or after `from` and parse the number that
// follows its colon. Returns false when the key or a parseable number is
// missing.
bool number_after_key(std::string_view json, std::string_view key,
                      std::size_t from, double* value, std::size_t* at)
{
    const std::string quoted = "\"" + std::string(key) + "\"";
    const std::size_t k = json.find(quoted, from);
    if (k == std::string_view::npos)
        return false;
    std::size_t p = k + quoted.size();
    while (p < json.size() && (json[p] == ':' || json[p] == ' ' ||
                               json[p] == '\t' || json[p] == '\n'))
        ++p;
    if (p >= json.size())
        return false;
    char* end = nullptr;
    const std::string tail(json.substr(p, 64));
    const double v = std::strtod(tail.c_str(), &end);
    if (end == tail.c_str())
        return false;  // no digits at all (e.g. a string value)
    if (value)
        *value = v;
    if (at)
        *at = k;
    return true;
}

bool fail(std::string* error, const std::string& what)
{
    if (error)
        *error = what;
    return false;
}

struct LoopKey {
    const char* name;
    bool strictly_positive;
};

// Every numeric key of a loop object, in the order to_json writes them.
constexpr LoopKey kLoopKeys[] = {
    {"wall_s", true},
    {"nnz_per_s", true},
    {"mean_queue_ms", false},
    {"mean_service_ms", false},
    {"mean_batch_width", true},
    {"mean_device_amortized_ms", true},
    {"batches", true},
    {"rounds", true},
    {"coalesced", false},
    {"max_batch_seen", true},
};

bool validate_loop(std::string_view json, std::string_view loop,
                   std::size_t* cursor, std::string* error)
{
    const std::string quoted = "\"" + std::string(loop) + "\"";
    const std::size_t start = json.find(quoted, *cursor);
    if (start == std::string_view::npos)
        return fail(error, "missing loop \"" + std::string(loop) + "\"");
    // Scope the key search to this loop's own object — loop values are
    // plain numbers, so the first '}' closes it. Without the bound, a key
    // missing from one loop would be satisfied by the other loop's copy.
    const std::size_t open = json.find('{', start);
    const std::size_t close = json.find('}', open);
    if (open == std::string_view::npos || close == std::string_view::npos)
        return fail(error, "malformed loop \"" + std::string(loop) + "\"");
    const std::string_view body = json.substr(open, close - open);

    std::size_t at = 0;
    for (const LoopKey& key : kLoopKeys) {
        double v = 0.0;
        if (!number_after_key(body, key.name, at, &v, &at))
            return fail(error, std::string(loop) + ": missing or "
                                   "non-numeric \"" +
                                   key.name + "\"");
        if (!std::isfinite(v))
            return fail(error, std::string(loop) + "." + key.name +
                                   " is not finite");
        if (v < 0.0 || (key.strictly_positive && v <= 0.0))
            return fail(error, std::string(loop) + "." + key.name +
                                   " must be " +
                                   (key.strictly_positive ? "positive"
                                                          : "non-negative"));
    }
    *cursor = close;
    return true;
}

} // namespace

std::string to_json(const ServeSnapshot& snap)
{
    std::ostringstream out;
    out << "{\n  \"tool\": \"serpens_serve\",\n"
        << "  \"config\": {\n"
        << "    \"matrices\": " << snap.matrices << ",\n"
        << "    \"entries\": " << snap.entries << ",\n"
        << "    \"clients\": " << snap.clients << ",\n"
        << "    \"requests_per_client\": " << snap.requests_per_client
        << ",\n"
        << "    \"max_batch\": " << snap.max_batch << ",\n"
        << "    \"serve_threads\": " << snap.serve_threads << "\n"
        << "  },\n  \"loops\": {\n";
    append_loop(out, "batched", snap.batched, !snap.unbatched.has_value());
    if (snap.unbatched)
        append_loop(out, "unbatched", *snap.unbatched, true);
    out << "  }";
    if (snap.unbatched)
        out << ",\n  \"batched_speedup\": "
            << snap.batched.nnz_per_s / snap.unbatched->nnz_per_s << "\n";
    else
        out << "\n";
    out << "}\n";
    return out.str();
}

bool validate_snapshot_json(std::string_view json, std::string* error)
{
    if (json.find("\"tool\": \"serpens_serve\"") == std::string_view::npos)
        return fail(error, "missing tool tag");

    std::size_t at = 0;
    static const char* const config_keys[] = {
        "matrices",     "entries",   "clients",
        "requests_per_client", "max_batch", "serve_threads"};
    for (const char* key : config_keys) {
        double v = 0.0;
        if (!number_after_key(json, key, at, &v, &at))
            return fail(error, std::string("config: missing or "
                                           "non-numeric \"") +
                                   key + "\"");
        if (!std::isfinite(v) || v < 0.0)
            return fail(error, std::string("config.") + key + " invalid");
    }

    std::size_t cursor = at;
    if (!validate_loop(json, "batched", &cursor, error))
        return false;

    // The comparison loop and the speedup travel together: either both
    // present (default run) or both absent (--no-compare).
    const bool has_unbatched =
        json.find("\"unbatched\"") != std::string_view::npos;
    const bool has_speedup =
        json.find("\"batched_speedup\"") != std::string_view::npos;
    if (has_unbatched != has_speedup)
        return fail(error, "unbatched loop and batched_speedup must appear "
                           "together");
    if (has_unbatched) {
        if (!validate_loop(json, "unbatched", &cursor, error))
            return false;
        double speedup = 0.0;
        if (!number_after_key(json, "batched_speedup", cursor, &speedup,
                              nullptr))
            return fail(error, "missing or non-numeric batched_speedup");
        if (!std::isfinite(speedup) || speedup <= 0.0)
            return fail(error, "batched_speedup must be positive");
    }
    return true;
}

} // namespace serpens::serve
