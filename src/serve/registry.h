// Resident-matrix registry: the serving layer's device-memory model.
//
// A production Serpens deployment keeps several preprocessed matrices
// resident (their packed HBM images plus the host-side decode-once
// expansion) and serves SpMV requests against them by name. MatrixRegistry
// owns those residents:
//
//   - admit(name, coo)     encode + decode exactly once, up front — a hit
//                          on a resident is O(1) and pays neither again
//   - admit_image(name, img)  the preprocessed-offline path (--load-image):
//                          skips encode, still warms the decode cache
//   - get(name)            shared ownership of the resident; bumps LRU
//
// Every resident is charged PreparedMatrix::memory_footprint_bytes()
// against `resident_budget_bytes` (0 = unlimited); admission evicts
// least-recently-used residents until the newcomer fits, and throws if it
// can never fit. Residents are handed out as shared_ptr, so eviction only
// drops the registry's reference — requests already holding the matrix
// finish correctly and the memory is reclaimed when the last one drains.
//
// Thread-safe: all members may be called concurrently (the serving
// front-end admits and resolves from many client threads).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/accelerator.h"
#include "core/config.h"

namespace serpens::serve {

struct RegistryStats {
    std::uint64_t admissions = 0;  // admit/admit_image calls that succeeded
    std::uint64_t encodes = 0;     // admissions that paid the encode stage
    // Residents dropped to make budget room for a newcomer, plus explicit
    // evict() calls. Same-name replacement is NOT an eviction — the name
    // stays resident — it is counted separately so capacity-pressure
    // dashboards read true.
    std::uint64_t evictions = 0;
    std::uint64_t replacements = 0;  // same-name re-admissions
    std::uint64_t hits = 0;        // get() calls that found the name
    std::uint64_t misses = 0;      // get() calls that did not
};

class MatrixRegistry {
public:
    // The config supplies the architecture (for encode), the thread knobs
    // (encode_threads/sim_threads parallelize admission), and
    // resident_budget_bytes.
    explicit MatrixRegistry(core::SerpensConfig config);

    // Encode + decode `m` and install it under `name`, evicting LRU
    // residents as needed. An existing resident of the same name is
    // replaced (counted as a replacement). Throws std::invalid_argument if
    // the matrix alone exceeds the budget, CapacityError if it exceeds the
    // architecture's row capacity.
    std::shared_ptr<const core::PreparedMatrix>
    admit(const std::string& name, const sparse::CooMatrix& m);

    // Install an already-encoded image (the preprocessed-offline workflow).
    // Pays only the decode; same budget/eviction/replace semantics.
    std::shared_ptr<const core::PreparedMatrix>
    admit_image(const std::string& name, encode::SerpensImage image);

    // Resolve a resident and mark it most-recently used. Null if absent
    // (evicted or never admitted).
    std::shared_ptr<const core::PreparedMatrix> get(const std::string& name);

    // Drop one resident by name (true if it was present).
    bool evict(const std::string& name);

    std::size_t size() const;
    std::uint64_t bytes_resident() const;
    std::uint64_t budget_bytes() const { return budget_bytes_; }
    RegistryStats stats() const;

    // Resident names, most-recently used first (for tests and --json).
    std::vector<std::string> resident_names() const;

    // Residents (name, prepared), most-recently used first, WITHOUT
    // bumping LRU order the way get() would — metrics scrapes must not
    // perturb eviction behavior.
    std::vector<
        std::pair<std::string, std::shared_ptr<const core::PreparedMatrix>>>
    residents_snapshot() const;

    const core::Accelerator& accelerator() const { return accelerator_; }

private:
    struct Resident {
        std::shared_ptr<const core::PreparedMatrix> prepared;
        std::uint64_t bytes = 0;
        std::list<std::string>::iterator lru_pos;
    };

    // Install an already-warmed prepared matrix under `name` (both admit
    // paths funnel here). Caller computed `bytes` outside the lock;
    // `paid_encode` records whether this admission ran the encode stage
    // (counted only once the budget check passes).
    std::shared_ptr<const core::PreparedMatrix>
    install(const std::string& name,
            std::shared_ptr<const core::PreparedMatrix> prepared,
            std::uint64_t bytes, bool paid_encode);
    // Drop `name` if resident; true when something was dropped. Stats-
    // neutral on purpose: each call site charges the counter that names
    // its reason (eviction vs replacement).
    bool erase_locked(const std::string& name);

    core::Accelerator accelerator_;
    std::uint64_t budget_bytes_ = 0;
    unsigned decode_threads_ = 1;

    mutable std::mutex mu_;
    std::unordered_map<std::string, Resident> residents_;
    std::list<std::string> lru_;  // front = most recently used
    std::uint64_t bytes_resident_ = 0;
    RegistryStats stats_;
};

} // namespace serpens::serve
