// Serving-benchmark snapshot: the JSON schemas the serving tools emit
// (BENCH_serve.json / BENCH_net.json and the daemon's stats endpoint),
// factored out of the tools so the schemas are library artifacts the test
// layer can pin.
//
//   ServeSnapshot snap = ...;            // filled by serpens_serve
//   std::string json = to_json(snap);    // the archived BENCH_*.json
//   validate_snapshot_json(json, &err);  // schema check, no JSON library
//
//   std::string stats = server_stats_to_json(server.stats(), ...);
//   validate_server_stats_json(stats, &err);  // the wire `stats` reply
//
// The validators are deliberately lightweight (key scan + strtod): they
// assert every required key is present exactly where the writer puts it,
// separated from its value by a real ':', and that every numeric value is
// finite and non-negative (strictly positive where the quantity cannot be
// zero). tests/test_serve_stats.cpp round-trips snapshots through them and
// also feeds them corrupted documents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/server.h"
#include "serve/store.h"

namespace serpens::serve {

// One measured serving loop (closed- or open-loop) as archived.
struct LoopSnapshot {
    double wall_s = 0.0;
    double nnz_per_s = 0.0;
    double mean_queue_ms = 0.0;
    double mean_service_ms = 0.0;
    double mean_batch_width = 0.0;
    // Batched device model (PR 6): mean over requests of the SpMM-mode
    // amortized per-SpMV time their batch reported (SpmvResult::
    // device_amortized_ms). The device-side counterpart of nnz_per_s.
    double mean_device_amortized_ms = 0.0;
    // Tail latency (PR 7): exact rank quantiles over the measured
    // requests' queue / service / client-observed end-to-end times. The
    // open-loop SLO story lives in p99_queue_ms.
    double p50_queue_ms = 0.0;
    double p99_queue_ms = 0.0;
    double p50_service_ms = 0.0;
    double p99_service_ms = 0.0;
    double p50_e2e_ms = 0.0;
    double p99_e2e_ms = 0.0;
    // width_hist[w - 1] = measured requests whose batch had width w
    // (trailing zero widths trimmed; never empty when requests ran).
    std::vector<std::uint64_t> width_hist;
    // Client-side fault-tolerance accounting (PR 8): attempts beyond each
    // operation's first, summed over the loop's clients. Server-side
    // shedding is in stats.shed.
    std::uint64_t retried = 0;
    // Endpoint switches (PR 9): FailoverClient cursor moves summed over
    // the loop's clients. 0 on single-endpoint runs.
    std::uint64_t failovers = 0;
    ServerStats stats;
};

// The whole serpens_serve run: workload shape + one or two loops. Closed
// mode archives loops "batched" vs "unbatched" (the coalescing ablation);
// open mode archives "adaptive" vs "fixed" (the SLO ablation at a Poisson
// arrival rate).
struct ServeSnapshot {
    bool open_loop = false;
    unsigned matrices = 0;
    std::uint64_t entries = 0;
    unsigned clients = 0;
    unsigned requests_per_client = 0;
    unsigned max_batch = 0;
    unsigned serve_threads = 0;
    // Open-loop shape (0 on closed-loop runs).
    double arrival_rate_rps = 0.0;
    double slo_ms = 0.0;
    double batch_wait_ms = 0.0;
    std::uint64_t max_queue_depth = 0;
    // Fault-tolerance ablation shape (PR 8): a per-request latency budget
    // and the overload factor the arrival rate was calibrated to. When
    // deadline_ms > 0 an open-loop run archives loops "deadline" vs
    // "no_deadline" (the shedding ablation) instead of adaptive/fixed.
    double deadline_ms = 0.0;
    double overload = 0.0;
    LoopSnapshot primary;                    // batched / adaptive / deadline
    std::optional<LoopSnapshot> comparison;  // unbatched / fixed / no_deadline
};

// Serialize exactly the schema serpens_serve archives.
std::string to_json(const ServeSnapshot& snap);

// Schema check for a document produced by to_json: the mode tag, every
// config and loop key present with a ':'-separated finite non-negative
// value (strictly positive where the quantity cannot be zero), the
// width_hist array well formed, and — in closed mode — the comparison
// loop and batched_speedup traveling together. Returns true on success;
// otherwise false with a diagnostic in *error (when non-null).
bool validate_snapshot_json(std::string_view json, std::string* error);

// The daemon's `stats` wire reply: live ServerStats + RegistryStats as
// one JSON document (histogram quantiles come from the embedded
// LatencyHistograms, so they are upper-edge conservative). `store` adds
// the durable-state counters (PR 9); the keys are always present —
// recovered/skipped_corrupt read 0 when the daemon runs stateless — so
// clients need no schema branch. `uptime_ms` is the daemon's age at the
// moment of the scrape (0 when the caller has no daemon, e.g. in-process
// servers under test).
std::string server_stats_to_json(const ServerStats& server,
                                 const RegistryStats& registry,
                                 std::size_t residents,
                                 std::uint64_t bytes_resident,
                                 const StoreStats* store = nullptr,
                                 double uptime_ms = 0.0);

// Schema check for a server_stats_to_json document.
bool validate_server_stats_json(std::string_view json, std::string* error);

// The recovery report serpens_served archives after a warm restart
// (--recovery-json; ci.sh stores it as BENCH_recovery.json).
std::string recovery_to_json(const StoreStats& store);

// Schema check for a recovery_to_json document.
bool validate_recovery_json(std::string_view json, std::string* error);

// Locate `"key"` at or after `*cursor`, require a ':' separator, and parse
// the number that follows. On success stores the value, advances *cursor
// to the key, and returns true. The building block of the validators,
// exposed so tools can read individual figures back out of archived
// snapshots without a JSON library.
bool find_number_after_key(std::string_view json, std::string_view key,
                           std::size_t* cursor, double* value);

} // namespace serpens::serve
