// Serving-benchmark snapshot: the JSON schema serpens_serve emits
// (BENCH_serve.json), factored out of the tool so the schema is a library
// artifact the test layer can pin.
//
//   ServeSnapshot snap = ...;            // filled by the closed-loop tool
//   std::string json = to_json(snap);    // the archived BENCH_serve.json
//   validate_snapshot_json(json, &err);  // schema check, no JSON library
//
// The validator is deliberately lightweight (key scan + strtod): it
// asserts every required key is present exactly where the writer puts it
// and that every numeric value is finite and non-negative (strictly
// positive where the quantity cannot be zero). tests/test_serve_stats.cpp
// round-trips a snapshot through it and also feeds it corrupted documents.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/server.h"

namespace serpens::serve {

// One closed-loop measurement (batched or unbatched) as archived.
struct LoopSnapshot {
    double wall_s = 0.0;
    double nnz_per_s = 0.0;
    double mean_queue_ms = 0.0;
    double mean_service_ms = 0.0;
    double mean_batch_width = 0.0;
    // Batched device model (PR 6): mean over requests of the SpMM-mode
    // amortized per-SpMV time their batch reported (SpmvResult::
    // device_amortized_ms). The device-side counterpart of nnz_per_s.
    double mean_device_amortized_ms = 0.0;
    ServerStats stats;
};

// The whole serpens_serve run: workload shape + one or two loops.
struct ServeSnapshot {
    unsigned matrices = 0;
    std::uint64_t entries = 0;
    unsigned clients = 0;
    unsigned requests_per_client = 0;
    unsigned max_batch = 0;
    unsigned serve_threads = 0;
    LoopSnapshot batched;
    std::optional<LoopSnapshot> unbatched;  // absent with --no-compare
};

// Serialize exactly the schema serpens_serve archives as BENCH_serve.json.
std::string to_json(const ServeSnapshot& snap);

// Schema check for a document produced by to_json: every required key
// present (including the "unbatched" loop and "batched_speedup" when the
// document claims a comparison ran), every numeric value finite and
// non-negative, and the strictly-positive quantities (wall_s, nnz_per_s,
// mean_batch_width, mean_device_amortized_ms, rounds, batches) > 0.
// Returns true on success; otherwise false with a diagnostic in *error
// (when non-null).
bool validate_snapshot_json(std::string_view json, std::string* error);

} // namespace serpens::serve
