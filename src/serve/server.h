// The serving front-end: a shared Serpens behind a request queue.
//
// serve::Server is the first layer that treats the accelerator as a
// service rather than a library call. Clients admit matrices into the
// embedded MatrixRegistry, then issue named SpMV requests from any number
// of threads:
//
//   serve::Server server(cfg);
//   server.registry().admit("web", coo);
//   auto fut = server.submit("web", x, y, alpha, beta);   // future-based
//   auto res = server.spmv("web", x, y, alpha, beta);     // blocking
//
// A single dispatcher thread drains the queue in rounds. Each round takes
// every pending request, groups requests that share (matrix, alpha, beta)
// into batches of up to config.max_batch, and executes the batches on
// util::shared_pool (config.serve_threads wide) through
// Accelerator::run_batch — so concurrent callers amortize the decoded
// stream walk exactly like PR 4's batched apps (Sextans-style multi-vector
// execution). Because run_batch's per-column results are bit-identical to
// run() at every width, the response for each request is bit-identical to
// a direct Accelerator::run for ANY interleaving and grouping — the
// differential serving tests replay recorded request traces sequentially
// and compare bits.
//
// Concurrency contract: when serve_threads > 1 the batches of a round run
// on shared-pool workers, and the pool's parallel_for is not reentrant, so
// the server forces sim_threads = 1 in its execution config — parallelism
// moves across requests instead of within one. With serve_threads == 1
// batches run inline on the dispatcher and the caller's sim_threads is
// honored.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"

namespace serpens::serve {

// Per-request response: the exact RunResult a direct Accelerator::run
// would produce, plus serving telemetry. The device_* fields carry the
// batched device model of the batch this request rode in
// (core::BatchRunResult): every member of a coalesced batch reports the
// same batch/amortized figures, and at width 1 device_amortized_ms equals
// run.time_ms exactly.
struct SpmvResult {
    core::RunResult run;
    double queue_ms = 0.0;    // submit -> dispatch round pickup
    double service_ms = 0.0;  // execution of the request's batch
    double device_batch_ms = 0.0;      // modeled SpMM-mode time, whole batch
    double device_amortized_ms = 0.0;  // device_batch_ms / batch_width
    unsigned batch_width = 1; // requests coalesced into the same batch
    std::uint64_t sequence = 0;  // global submit order (trace replay key)
};

struct ServerStats {
    std::uint64_t requests = 0;   // completed requests
    std::uint64_t batches = 0;    // run_batch calls issued
    std::uint64_t coalesced = 0;  // requests that shared a batch (width > 1)
    std::uint64_t rounds = 0;     // dispatcher drain rounds
    std::uint64_t max_batch_seen = 0;
    double mean_batch_width() const
    {
        return batches == 0 ? 0.0
                            : static_cast<double>(requests) /
                                  static_cast<double>(batches);
    }
};

class Server {
public:
    explicit Server(core::SerpensConfig config);
    ~Server();  // drains every pending request, then stops the dispatcher

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    MatrixRegistry& registry() { return registry_; }

    // Enqueue y = alpha * A[name] * x + beta * y. The resident is resolved
    // (and pinned) now, so a later eviction cannot fail the request.
    // Throws std::invalid_argument for an unknown name or mis-sized
    // vectors.
    std::future<SpmvResult> submit(const std::string& name,
                                   std::vector<float> x, std::vector<float> y,
                                   float alpha = 1.0f, float beta = 0.0f);

    // Blocking convenience: submit and wait.
    SpmvResult spmv(const std::string& name, std::vector<float> x,
                    std::vector<float> y, float alpha = 1.0f,
                    float beta = 0.0f);

    // Hold/release dispatching. While paused, submissions queue up; resume
    // dispatches them in one round — how tests (and burst benchmarks) make
    // coalescing deterministic.
    void pause();
    void resume();

    // Block until every submitted request has completed.
    void drain();

    ServerStats stats() const;
    const core::SerpensConfig& config() const { return exec_config_; }

private:
    struct Pending {
        std::shared_ptr<const core::PreparedMatrix> matrix;
        std::vector<float> x;
        std::vector<float> y;
        float alpha = 1.0f;
        float beta = 0.0f;
        std::uint64_t sequence = 0;
        std::chrono::steady_clock::time_point submitted;
        std::promise<SpmvResult> promise;
    };

    void dispatch_loop();
    void run_round(std::vector<Pending> round);

    MatrixRegistry registry_;
    core::SerpensConfig exec_config_;
    core::Accelerator exec_acc_;
    unsigned serve_width_ = 1;
    unsigned max_batch_ = 8;

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_idle_;
    std::deque<Pending> queue_;
    std::uint64_t next_sequence_ = 0;
    bool paused_ = false;
    bool stop_ = false;
    bool round_active_ = false;
    ServerStats stats_;
    std::thread dispatcher_;
};

} // namespace serpens::serve
