// The serving front-end: a shared Serpens behind a request queue.
//
// serve::Server is the first layer that treats the accelerator as a
// service rather than a library call. Clients admit matrices into the
// embedded MatrixRegistry, then issue named SpMV requests from any number
// of threads:
//
//   serve::Server server(cfg);
//   server.registry().admit("web", coo);
//   auto fut = server.submit("web", x, y, alpha, beta);   // future-based
//   auto res = server.spmv("web", x, y, alpha, beta);     // blocking
//
// A single dispatcher thread drains the queue in rounds. Each round takes
// every pending request, groups requests that share (matrix, alpha, beta)
// into batches of up to config.max_batch, and executes the batches on
// util::shared_pool (config.serve_threads wide) through
// Accelerator::run_batch — so concurrent callers amortize the decoded
// stream walk exactly like PR 4's batched apps (Sextans-style multi-vector
// execution). Because run_batch's per-column results are bit-identical to
// run() at every width, the response for each request is bit-identical to
// a direct Accelerator::run for ANY interleaving and grouping — the
// differential serving tests replay recorded request traces sequentially
// and compare bits.
//
// Concurrency contract: when serve_threads > 1 the batches of a round run
// on shared-pool workers, and the pool's parallel_for is not reentrant, so
// the server forces sim_threads = 1 in its execution config — parallelism
// moves across requests instead of within one. With serve_threads == 1
// batches run inline on the dispatcher and the caller's sim_threads is
// honored.
//
// Batching policy (the network front-end's SLO story):
//   - config.batch_wait_ms > 0 makes the dispatcher hold a forming round
//     until the effective max_batch could fill or the oldest request has
//     waited that long — the throughput-greedy batcher.
//   - config.slo_queue_ms > 0 turns the width adaptive: each round's p99
//     queue time feeds an EWMA; above the target the effective width
//     halves (at width 1 rounds dispatch the moment work arrives), below
//     half the target it doubles back toward max_batch. The batch-forming
//     hold is also capped at slo_queue_ms / 2 — holding longer than the
//     queue-time budget forfeits the SLO regardless of width.
//   - config.max_queue_depth > 0 bounds admission: submit() beyond the
//     bound throws QueueFullError instead of queueing (fast-fail, counted
//     in stats().rejected).
// All three default off, which is exactly the PR-5/6 dispatcher.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "serve/latency.h"
#include "serve/registry.h"

namespace serpens::serve {

// Fast-fail admission refusal: thrown by submit()/spmv() when the queue
// already holds config.max_queue_depth requests. Overload shows up as a
// rejection the caller can retry (the daemon maps it to an OVERLOADED
// response), never as silent drops or an unbounded backlog.
class QueueFullError : public std::runtime_error {
public:
    explicit QueueFullError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

// Load shedding: thrown through the future of a request whose deadline_ms
// budget expired while it was still queued. The dispatcher sheds such
// requests at batch-forming time, before they burn a batch slot — under
// overload the capacity goes to requests that can still make their SLO,
// and the shed ones fail fast instead of completing uselessly late.
// Counted in stats().shed; the daemon maps it to DEADLINE_EXCEEDED. Not
// retryable by contract: the budget is spent.
class DeadlineExceededError : public std::runtime_error {
public:
    explicit DeadlineExceededError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

// Per-request response: the exact RunResult a direct Accelerator::run
// would produce, plus serving telemetry. The device_* fields carry the
// batched device model of the batch this request rode in
// (core::BatchRunResult): every member of a coalesced batch reports the
// same batch/amortized figures, and at width 1 device_amortized_ms equals
// run.time_ms exactly.
struct SpmvResult {
    core::RunResult run;
    double queue_ms = 0.0;    // submit -> this request's batch starting
    double service_ms = 0.0;  // execution of the request's batch
    double device_batch_ms = 0.0;      // modeled SpMM-mode time, whole batch
    double device_amortized_ms = 0.0;  // device_batch_ms / batch_width
    unsigned batch_width = 1; // requests coalesced into the same batch
    std::uint64_t sequence = 0;  // global submit order (trace replay key)
};

struct ServerStats {
    std::uint64_t requests = 0;   // completed requests
    std::uint64_t batches = 0;    // run_batch calls issued
    std::uint64_t coalesced = 0;  // requests that shared a batch (width > 1)
    std::uint64_t rounds = 0;     // dispatcher drain rounds
    std::uint64_t max_batch_seen = 0;
    std::uint64_t rejected = 0;   // submits refused at max_queue_depth
    std::uint64_t shed = 0;       // requests dropped at an expired deadline
    // SLO controller activity (slo_queue_ms > 0): effective-width halvings
    // and doublings, the width in force when this snapshot was taken, and
    // the controller's current p99 queue-time estimate.
    std::uint64_t batch_shrinks = 0;
    std::uint64_t batch_grows = 0;
    std::uint64_t current_max_batch = 0;
    double p99_queue_ewma_ms = 0.0;
    // Distributions over completed requests: queue and service time, and
    // the width of the batch each request rode in.
    LatencyHistogram queue_hist;
    LatencyHistogram service_hist;
    std::array<std::uint64_t, kWidthBuckets> width_hist{};

    double mean_batch_width() const
    {
        return batches == 0 ? 0.0
                            : static_cast<double>(requests) /
                                  static_cast<double>(batches);
    }
};

class Server {
public:
    // `clock` is the time source for queue/service latency sampling and
    // trace spans (nullptr = the process-wide real clock). Tests inject an
    // obs::FakeClock to make latencies — and whole trace files — exactly
    // reproducible. The batch-forming hold still waits on the OS clock
    // (condition variables need real deadlines); with a fake clock the
    // hold is effectively a plain wakeup, which deterministic tests drive
    // via pause()/resume() anyway.
    explicit Server(core::SerpensConfig config, obs::Clock* clock = nullptr);
    ~Server();  // drains every pending request, then stops the dispatcher

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    MatrixRegistry& registry() { return registry_; }

    // Enqueue y = alpha * A[name] * x + beta * y. The resident is resolved
    // (and pinned) now, so a later eviction cannot fail the request.
    // Throws std::invalid_argument for an unknown name or mis-sized
    // vectors. deadline_ms > 0 grants the request that many ms from
    // submission; if its batch has not STARTED by then the dispatcher
    // sheds it (future throws DeadlineExceededError) instead of spending
    // device time on a response nobody is waiting for.
    // trace_id stitches this request's dispatcher spans (queue wait,
    // batch, device pass) into a distributed trace when an
    // obs::TraceRecorder is installed; 0 = untraced.
    std::future<SpmvResult> submit(const std::string& name,
                                   std::vector<float> x, std::vector<float> y,
                                   float alpha = 1.0f, float beta = 0.0f,
                                   double deadline_ms = 0.0,
                                   std::uint64_t trace_id = 0);

    // Blocking convenience: submit and wait.
    SpmvResult spmv(const std::string& name, std::vector<float> x,
                    std::vector<float> y, float alpha = 1.0f,
                    float beta = 0.0f, double deadline_ms = 0.0,
                    std::uint64_t trace_id = 0);

    // Hold/release dispatching. While paused, submissions queue up; resume
    // dispatches them in one round — how tests (and burst benchmarks) make
    // coalescing deterministic.
    void pause();
    void resume();

    // Block until every submitted request has completed.
    void drain();

    // Replace the batching policy at runtime (the daemon's SetBatching
    // request; also how one serpens_serve process measures fixed and
    // adaptive policies against the same server). Resets the adaptive
    // controller: the effective width snaps back to max_batch and the p99
    // estimate restarts from the next round.
    void set_batching(unsigned max_batch, double slo_queue_ms,
                      double batch_wait_ms, std::size_t max_queue_depth);

    // The effective coalescing width right now (== config max_batch unless
    // the SLO controller has shrunk it).
    unsigned current_max_batch() const;

    ServerStats stats() const;
    const core::SerpensConfig& config() const { return exec_config_; }

private:
    struct Pending {
        std::shared_ptr<const core::PreparedMatrix> matrix;
        std::vector<float> x;
        std::vector<float> y;
        float alpha = 1.0f;
        float beta = 0.0f;
        double deadline_ms = 0.0;  // 0 = no deadline
        std::uint64_t sequence = 0;
        std::uint64_t trace_id = 0;  // 0 = untraced
        // Two submission stamps on purpose: the cv batch-forming hold
        // needs an OS-clock deadline, while latency samples and trace
        // spans read the injectable clock (deterministic under a fake).
        std::chrono::steady_clock::time_point submitted;
        std::uint64_t submitted_ns = 0;
        std::promise<SpmvResult> promise;
    };

    void dispatch_loop();
    void run_round(std::vector<Pending> round, unsigned batch_limit);
    void adapt_batching_locked(const std::vector<double>& queue_samples);

    MatrixRegistry registry_;
    core::SerpensConfig exec_config_;
    core::Accelerator exec_acc_;
    unsigned serve_width_ = 1;
    obs::Clock* clock_ = nullptr;  // never null after construction

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_idle_;
    std::deque<Pending> queue_;
    std::uint64_t next_sequence_ = 0;
    bool paused_ = false;
    bool stop_ = false;
    bool round_active_ = false;
    // Batching policy (mutable via set_batching) and the SLO controller's
    // state: the configured ceiling, the effective width in force, and the
    // per-round p99 queue-time EWMA driving shrink/grow decisions.
    unsigned max_batch_ = 8;
    unsigned cur_max_batch_ = 8;
    double batch_wait_ms_ = 0.0;
    double slo_queue_ms_ = 0.0;
    std::size_t max_queue_depth_ = 0;
    double p99_ewma_ms_ = 0.0;
    bool ewma_seeded_ = false;
    ServerStats stats_;
    std::thread dispatcher_;
};

} // namespace serpens::serve
