#include "serve/registry.h"

#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace serpens::serve {

MatrixRegistry::MatrixRegistry(core::SerpensConfig config)
    : accelerator_(config),
      budget_bytes_(config.resident_budget_bytes),
      decode_threads_(config.sim_threads)
{
}

std::shared_ptr<const core::PreparedMatrix>
MatrixRegistry::admit(const std::string& name, const sparse::CooMatrix& m)
{
    // Encode + decode outside the lock: admissions of different matrices
    // proceed concurrently and get() never blocks behind preprocessing.
    auto prepared = std::make_shared<const core::PreparedMatrix>(
        accelerator_.prepare(m));
    prepared->warm_decode(decode_threads_);
    const std::uint64_t bytes = prepared->memory_footprint_bytes();
    return install(name, std::move(prepared), bytes, /*paid_encode=*/true);
}

std::shared_ptr<const core::PreparedMatrix>
MatrixRegistry::admit_image(const std::string& name, encode::SerpensImage image)
{
    SERPENS_CHECK(image.params().ha_channels ==
                      accelerator_.config().arch.ha_channels,
                  "image was encoded for a different channel count");
    auto prepared = std::make_shared<const core::PreparedMatrix>(
        core::PreparedMatrix::from_image(std::move(image)));
    prepared->warm_decode(decode_threads_);
    const std::uint64_t bytes = prepared->memory_footprint_bytes();
    return install(name, std::move(prepared), bytes, /*paid_encode=*/false);
}

std::shared_ptr<const core::PreparedMatrix>
MatrixRegistry::install(const std::string& name,
                        std::shared_ptr<const core::PreparedMatrix> prepared,
                        std::uint64_t bytes, bool paid_encode)
{
    SERPENS_CHECK(budget_bytes_ == 0 || bytes <= budget_bytes_,
                  "matrix footprint exceeds the resident budget");

    const std::lock_guard<std::mutex> lock(mu_);
    // A same-name re-admission replaces in place: the name never leaves
    // the resident set, so it must not inflate the eviction count the
    // budget dashboards watch.
    if (erase_locked(name))
        ++stats_.replacements;

    // LRU eviction until the newcomer fits.
    obs::TraceRecorder* const rec = obs::trace_recorder();
    while (budget_bytes_ != 0 && bytes_resident_ + bytes > budget_bytes_) {
        SERPENS_ASSERT(!lru_.empty(), "budget accounting out of sync");
        if (rec != nullptr)
            rec->instant("registry.evict", "registry", 0, "bytes",
                         residents_.at(lru_.back()).bytes);
        erase_locked(lru_.back());
        ++stats_.evictions;
    }

    lru_.push_front(name);
    residents_[name] = Resident{prepared, bytes, lru_.begin()};
    bytes_resident_ += bytes;
    ++stats_.admissions;
    if (rec != nullptr)
        rec->instant("registry.admit", "registry", 0, "bytes", bytes);
    if (paid_encode)
        ++stats_.encodes;
    return prepared;
}

bool MatrixRegistry::erase_locked(const std::string& name)
{
    const auto it = residents_.find(name);
    if (it == residents_.end())
        return false;
    bytes_resident_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    residents_.erase(it);
    return true;
}

std::shared_ptr<const core::PreparedMatrix>
MatrixRegistry::get(const std::string& name)
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = residents_.find(name);
    if (it == residents_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.prepared;
}

bool MatrixRegistry::evict(const std::string& name)
{
    const std::lock_guard<std::mutex> lock(mu_);
    const bool present = erase_locked(name);
    if (present) {
        ++stats_.evictions;
        if (obs::TraceRecorder* const rec = obs::trace_recorder();
            rec != nullptr)
            rec->instant("registry.evict", "registry", 0);
    }
    return present;
}

std::size_t MatrixRegistry::size() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return residents_.size();
}

std::uint64_t MatrixRegistry::bytes_resident() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return bytes_resident_;
}

RegistryStats MatrixRegistry::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<std::string> MatrixRegistry::resident_names() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return {lru_.begin(), lru_.end()};
}

std::vector<std::pair<std::string, std::shared_ptr<const core::PreparedMatrix>>>
MatrixRegistry::residents_snapshot() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<
        std::pair<std::string, std::shared_ptr<const core::PreparedMatrix>>>
        out;
    out.reserve(residents_.size());
    for (const std::string& name : lru_)
        out.emplace_back(name, residents_.at(name).prepared);
    return out;
}

} // namespace serpens::serve
