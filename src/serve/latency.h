// Fixed-footprint latency telemetry for the serving layer.
//
// The dispatcher records every request's queue and service time, and the
// SLO controller plus the network stats endpoint both need quantiles of
// those distributions without keeping every sample. LatencyHistogram is
// the standard answer: power-of-two bucket edges starting at 1 us, so
// record() is O(#buckets) with no allocation and quantile_ms() returns a
// conservative (upper-edge) estimate whose resolution is one octave —
// exactly enough to compare a p99 against an SLO target that callers pick
// in whole milliseconds.
//
// The struct is trivially copyable on purpose: serve::ServerStats embeds
// two of them plus a batch-width histogram, and Server::stats() snapshots
// the whole thing under the queue mutex.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace serpens::serve {

// Batch widths are tallied per exact width up to this bound; anything
// wider lands in the final (overflow) slot.
constexpr unsigned kWidthBuckets = 33;  // index = min(width, 32)

class LatencyHistogram {
public:
    // Bucket b covers (upper_edge(b - 1), upper_edge(b)] milliseconds,
    // with upper_edge(b) = 2^b us. 44 octaves span 1 us .. ~2.4 hours.
    static constexpr unsigned kBuckets = 44;

    void record(double ms)
    {
        // A non-finite or negative sample (a clock that went backwards, a
        // subtraction across clock domains) still counts — in bucket 0 —
        // but must not poison sum/max: one NaN would make mean_ms() NaN
        // for the rest of the process.
        if (!std::isfinite(ms) || ms < 0.0)
            ms = 0.0;
        ++count_;
        sum_ms_ += ms;
        max_ms_ = std::max(max_ms_, ms);
        ++buckets_[bucket_of(ms)];
    }

    std::uint64_t count() const { return count_; }
    double mean_ms() const
    {
        return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_);
    }
    double max_ms() const { return max_ms_; }

    // Upper bucket edge holding the ceil(q * count)-th smallest sample: the
    // true q-quantile is <= the returned value < 2x the next-lower edge.
    // 0.0 when empty.
    double quantile_ms(double q) const
    {
        if (count_ == 0)
            return 0.0;
        const double clamped = std::clamp(q, 0.0, 1.0);
        std::uint64_t rank = static_cast<std::uint64_t>(
            clamped * static_cast<double>(count_) + 0.999999);
        rank = std::clamp<std::uint64_t>(rank, 1, count_);
        std::uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= rank)
                return upper_edge_ms(b);
        }
        return upper_edge_ms(kBuckets - 1);
    }

    static double upper_edge_ms(unsigned bucket)
    {
        return 0.001 * static_cast<double>(std::uint64_t{1} << bucket);
    }

    const std::array<std::uint64_t, kBuckets>& buckets() const
    {
        return buckets_;
    }

private:
    static unsigned bucket_of(double ms)
    {
        unsigned b = 0;
        double edge = 0.001;
        // NaN and negatives fall into bucket 0 rather than looping forever.
        while (b + 1 < kBuckets && ms > edge) {
            edge *= 2.0;
            ++b;
        }
        return b;
    }

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ms_ = 0.0;
    double max_ms_ = 0.0;
};

} // namespace serpens::serve
