#include "serve/server.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "obs/trace.h"
#include "util/bitpack.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace serpens::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration ms_duration(double ms)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

// Requests coalesce only when run_batch can serve them in one call: same
// resident and the same alpha/beta. Scalars compare by bit pattern so
// -0.0f and 0.0f (different beta semantics in FP32 accumulation) never
// merge by accident.
using GroupKey =
    std::tuple<const core::PreparedMatrix*, std::uint32_t, std::uint32_t>;

// EWMA weight of the newest round's p99 in the SLO controller. High enough
// that a sustained SLO violation shrinks the width within a few rounds,
// low enough that one straggler round does not thrash it.
constexpr double kP99EwmaAlpha = 0.4;

// The q-th quantile of `samples` by rank (ceil(q*n)-th smallest), exact —
// the controller judges each round on its real samples, not a histogram.
double sample_quantile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t rank = std::min<std::size_t>(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[rank];
}

} // namespace

Server::Server(core::SerpensConfig config, obs::Clock* clock)
    : registry_(config),
      exec_config_([&] {
          core::SerpensConfig exec = config;
          // Batches of a round may execute on shared-pool workers, and the
          // pool's parallel_for is not reentrant — with a parallel drain
          // the per-request simulator must stay serial.
          if (util::resolve_threads(config.serve_threads) > 1)
              exec.sim_threads = 1;
          return exec;
      }()),
      exec_acc_(exec_config_),
      serve_width_(util::resolve_threads(config.serve_threads)),
      clock_(clock != nullptr ? clock : &obs::real_clock()),
      max_batch_(std::max(1u, config.max_batch)),
      cur_max_batch_(std::max(1u, config.max_batch)),
      batch_wait_ms_(config.batch_wait_ms),
      slo_queue_ms_(config.slo_queue_ms),
      max_queue_depth_(config.max_queue_depth),
      dispatcher_([this] { dispatch_loop(); })
{
    stats_.current_max_batch = cur_max_batch_;
}

Server::~Server()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    dispatcher_.join();
}

std::future<SpmvResult> Server::submit(const std::string& name,
                                       std::vector<float> x,
                                       std::vector<float> y, float alpha,
                                       float beta, double deadline_ms,
                                       std::uint64_t trace_id)
{
    Pending p;
    p.matrix = registry_.get(name);
    SERPENS_CHECK(p.matrix != nullptr, "serve: no resident matrix named '" +
                                           name + "'");
    SERPENS_CHECK(x.size() == p.matrix->cols(),
                  "serve: x length must equal matrix cols");
    SERPENS_CHECK(y.size() == p.matrix->rows(),
                  "serve: y length must equal matrix rows");
    // Chaos hook: evict the resident out from under this request the
    // instant after it was resolved. The shared_ptr pin above is the whole
    // mid-flight-eviction story — the request must still complete
    // bit-identically (the chaos test re-admits and replays).
    if (util::fault_fires("serve.evict_mid_flight"))
        registry_.evict(name);
    p.x = std::move(x);
    p.y = std::move(y);
    p.alpha = alpha;
    p.beta = beta;
    p.deadline_ms = deadline_ms;
    p.trace_id = trace_id;
    p.submitted = Clock::now();
    p.submitted_ns = clock_->now_ns();
    std::future<SpmvResult> future = p.promise.get_future();
    {
        const std::lock_guard<std::mutex> lock(mu_);
        SERPENS_CHECK(!stop_, "serve: server is shutting down");
        // Admission control: refuse loudly at the depth bound so overload
        // degrades into retryable rejections, not an unbounded backlog
        // whose queue times blow every SLO. The chaos hook forces the same
        // refusal path without needing a real backlog.
        if ((max_queue_depth_ != 0 && queue_.size() >= max_queue_depth_) ||
            util::fault_fires("serve.queue_full")) {
            ++stats_.rejected;
            throw QueueFullError(
                "serve: queue depth " + std::to_string(queue_.size()) +
                " at the admission bound " +
                std::to_string(max_queue_depth_));
        }
        p.sequence = next_sequence_++;
        queue_.push_back(std::move(p));
    }
    cv_work_.notify_all();
    // Also wake drain(): on a paused server its deadlock check must see
    // the newly non-empty queue rather than sleep through it.
    cv_idle_.notify_all();
    return future;
}

SpmvResult Server::spmv(const std::string& name, std::vector<float> x,
                        std::vector<float> y, float alpha, float beta,
                        double deadline_ms, std::uint64_t trace_id)
{
    return submit(name, std::move(x), std::move(y), alpha, beta, deadline_ms,
                  trace_id)
        .get();
}

void Server::pause()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        paused_ = true;
    }
    // Wake any drain() so it can notice the pause instead of waiting on a
    // queue that will never empty, and the dispatcher's batch-forming hold
    // so it re-checks the pause instead of dispatching at its deadline.
    cv_idle_.notify_all();
    cv_work_.notify_all();
}

void Server::resume()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
    }
    cv_work_.notify_all();
}

void Server::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] {
        // Re-checked on every wakeup, not just at entry: a pause() that
        // lands while we are already waiting must fail the drain rather
        // than leave it stuck behind a queue that will never empty.
        SERPENS_CHECK(!paused_ || queue_.empty(),
                      "serve: drain() would deadlock on a paused queue");
        return queue_.empty() && !round_active_;
    });
}

void Server::set_batching(unsigned max_batch, double slo_queue_ms,
                          double batch_wait_ms, std::size_t max_queue_depth)
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        max_batch_ = std::max(1u, max_batch);
        cur_max_batch_ = max_batch_;
        slo_queue_ms_ = slo_queue_ms;
        batch_wait_ms_ = batch_wait_ms;
        max_queue_depth_ = max_queue_depth;
        p99_ewma_ms_ = 0.0;
        ewma_seeded_ = false;
        stats_.current_max_batch = cur_max_batch_;
        stats_.p99_queue_ewma_ms = 0.0;
    }
    // The dispatcher may be mid-hold against the old width/deadline.
    cv_work_.notify_all();
}

unsigned Server::current_max_batch() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return cur_max_batch_;
}

ServerStats Server::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void Server::dispatch_loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_work_.wait(lock, [&] {
            return stop_ || (!paused_ && !queue_.empty());
        });
        // Shutdown semantics, pinned by ServeServer.DestructionDrains
        // PausedQueue: stop overrides pause. The destructor promises every
        // accepted request a response, so the final drain runs even on a
        // paused server — and skips the batch-forming hold below, since
        // nothing new can be admitted after stop.
        const bool draining_on_stop = stop_;
        if (queue_.empty()) {
            if (draining_on_stop)
                return;  // drained; pending submits were refused after stop
            continue;
        }
        // Batch-forming hold: give the round until the oldest request has
        // waited batch_wait_ms for the effective width to fill. Under an
        // SLO the hold is capped at half the target: a dispatcher that
        // waits longer than the queue-time budget has already lost it, no
        // matter what width the controller picked — without the cap, every
        // width grow re-arms the full hold and the recovered SLO collapses
        // again.
        const double hold_ms =
            slo_queue_ms_ > 0.0
                ? std::min(batch_wait_ms_, slo_queue_ms_ * 0.5)
                : batch_wait_ms_;
        if (!draining_on_stop && hold_ms > 0.0) {
            // Re-woken by submits, stop, pause, and set_batching.
            const Clock::time_point deadline =
                queue_.front().submitted + ms_duration(hold_ms);
            cv_work_.wait_until(lock, deadline, [&] {
                return stop_ || paused_ ||
                       queue_.size() >= cur_max_batch_;
            });
            if (paused_ && !stop_)
                continue;  // back to the main wait; the hold restarts
        }
        // Take the whole backlog: everything pending coalesces this round.
        std::vector<Pending> round;
        round.reserve(queue_.size());
        for (Pending& p : queue_)
            round.push_back(std::move(p));
        queue_.clear();
        round_active_ = true;
        const unsigned batch_limit = cur_max_batch_;
        lock.unlock();

        run_round(std::move(round), batch_limit);

        lock.lock();
        round_active_ = false;
        // Unconditionally: a drain() waiting out this round must re-check
        // its predicate even when more work queued meanwhile (it may need
        // to fail on a paused non-empty queue instead of sleeping).
        cv_idle_.notify_all();
    }
}

// The SLO controller (caller holds mu_): fold this round's p99 queue time
// into the EWMA, then resize the effective width — multiplicative decrease
// above the target (so a violated SLO recovers in O(log max_batch)
// rounds), doubling growth once the estimate sits below half the target.
void Server::adapt_batching_locked(const std::vector<double>& queue_samples)
{
    if (slo_queue_ms_ <= 0.0)
        return;
    const double round_p99 = sample_quantile(queue_samples, 0.99);
    p99_ewma_ms_ = ewma_seeded_ ? kP99EwmaAlpha * round_p99 +
                                      (1.0 - kP99EwmaAlpha) * p99_ewma_ms_
                                : round_p99;
    ewma_seeded_ = true;
    if (p99_ewma_ms_ > slo_queue_ms_ && cur_max_batch_ > 1) {
        cur_max_batch_ = std::max(1u, cur_max_batch_ / 2);
        ++stats_.batch_shrinks;
    } else if (p99_ewma_ms_ < 0.5 * slo_queue_ms_ &&
               cur_max_batch_ < max_batch_) {
        cur_max_batch_ = std::min(max_batch_, cur_max_batch_ * 2);
        ++stats_.batch_grows;
    }
    stats_.p99_queue_ewma_ms = p99_ewma_ms_;
}

void Server::run_round(std::vector<Pending> round, unsigned batch_limit)
{
    // Group by (matrix, alpha, beta) preserving arrival order within a
    // group, then chunk to the round's effective width. std::map keeps
    // group discovery deterministic; execution order across groups does
    // not affect results (every batch column is independent and
    // bit-exact).
    std::map<GroupKey, std::vector<std::size_t>> by_key;
    for (std::size_t i = 0; i < round.size(); ++i) {
        const GroupKey key{round[i].matrix.get(), float_bits(round[i].alpha),
                           float_bits(round[i].beta)};
        by_key[key].push_back(i);
    }
    std::vector<std::vector<std::size_t>> groups;
    for (auto& [key, members] : by_key) {
        for (std::size_t at = 0; at < members.size(); at += batch_limit) {
            const std::size_t end =
                std::min(members.size(), at + batch_limit);
            groups.emplace_back(members.begin() +
                                    static_cast<std::ptrdiff_t>(at),
                                members.begin() +
                                    static_cast<std::ptrdiff_t>(end));
        }
    }
    // Earliest-submitted group first: on a serial drain the oldest work
    // never waits behind younger groups (the map above orders groups by
    // resident pointer, which is arbitrary), and queue-time accounting
    // below becomes deterministic for tests.
    std::sort(groups.begin(), groups.end(),
              [&](const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b) {
                  return round[a.front()].sequence <
                         round[b.front()].sequence;
              });

    // Per-request telemetry, collected lock-free (each group writes only
    // its own members' slots) and folded into stats_ after the round. A
    // shed slot stays marked so the fold can exclude it from the completed-
    // request stats AND from the SLO controller's queue samples — a
    // controller fed the queue times of requests it refused to serve would
    // chase a latency it already gave up on.
    std::vector<double> queue_samples(round.size(), 0.0);
    std::vector<double> service_samples(round.size(), 0.0);
    std::vector<std::uint8_t> shed_flags(round.size(), 0);

    // One trace probe per round; with no recorder installed tracing costs
    // exactly this atomic load (the no-op-recorder test pins that).
    obs::TraceRecorder* const rec = obs::trace_recorder();

    // Execute the round's batches on the shared pool — the serving
    // counterpart of the per-channel parallel_for loops downstream.
    util::shared_parallel_for(
        serve_width_, groups.size(), [&](std::size_t g) {
            std::vector<std::size_t>& members = groups[g];
            // Queue time runs until THIS batch starts executing, not until
            // the round was picked up: in a serial drain, groups executed
            // later in the round spent that time queued too.
            const std::uint64_t start_ns = clock_->now_ns();
            // Deadline shedding, decided against the same instant the
            // batch starts: a request whose budget ran out while queued is
            // failed fast here and never occupies a batch column — under
            // overload the device time goes only to requests whose caller
            // is still waiting.
            std::vector<std::size_t> live;
            live.reserve(members.size());
            for (const std::size_t i : members) {
                Pending& p = round[i];
                const double waited =
                    obs::Clock::ms_between(p.submitted_ns, start_ns);
                if (p.deadline_ms > 0.0 && waited > p.deadline_ms) {
                    shed_flags[i] = 1;
                    if (rec != nullptr)
                        rec->instant("serve.shed", "serve", p.trace_id);
                    p.promise.set_exception(std::make_exception_ptr(
                        DeadlineExceededError(
                            "serve: deadline of " +
                            std::to_string(p.deadline_ms) +
                            " ms exceeded after queueing " +
                            std::to_string(waited) + " ms")));
                } else {
                    live.push_back(i);
                }
            }
            members = std::move(live);
            if (members.empty())
                return;  // whole batch expired; skip the device entirely
            try {
                std::vector<std::vector<float>> xs, ys;
                xs.reserve(members.size());
                ys.reserve(members.size());
                for (const std::size_t i : members) {
                    xs.push_back(std::move(round[i].x));
                    ys.push_back(std::move(round[i].y));
                }
                const Pending& head = round[members.front()];
                const std::uint64_t device_start_ns = clock_->now_ns();
                core::BatchRunResult results = exec_acc_.run_batch(
                    *head.matrix, xs, ys, head.alpha, head.beta);
                const std::uint64_t device_end_ns = clock_->now_ns();
                const double service_ms =
                    obs::Clock::ms_between(start_ns, device_end_ns);
                for (std::size_t k = 0; k < members.size(); ++k) {
                    Pending& p = round[members[k]];
                    SpmvResult r;
                    r.run = std::move(results[k]);
                    r.queue_ms =
                        obs::Clock::ms_between(p.submitted_ns, start_ns);
                    r.service_ms = service_ms;
                    queue_samples[members[k]] = r.queue_ms;
                    service_samples[members[k]] = r.service_ms;
                    // Every member of the batch shares one SpMM-mode
                    // invocation, so every member reports the same
                    // device-model figures.
                    r.device_batch_ms = results.batch_time_ms;
                    r.device_amortized_ms = results.amortized_time_ms;
                    r.batch_width = static_cast<unsigned>(members.size());
                    r.sequence = p.sequence;
                    p.promise.set_value(std::move(r));
                }
                if (rec != nullptr) {
                    const std::uint64_t end_ns = clock_->now_ns();
                    const std::uint64_t width = members.size();
                    // Per-request queue wait, then the shared batch: the
                    // device pass and the y-extraction/reply tail, all
                    // stitched to the head request's trace id (every
                    // member's own id rides its serve.queue span).
                    for (const std::size_t i : members)
                        rec->span("serve.queue", "serve", round[i].trace_id,
                                  round[i].submitted_ns, start_ns);
                    rec->span("serve.device", "serve", head.trace_id,
                              device_start_ns, device_end_ns, "width", width);
                    rec->span("serve.extract", "serve", head.trace_id,
                              device_end_ns, end_ns, "width", width);
                    rec->span("serve.batch", "serve", head.trace_id, start_ns,
                              end_ns, "width", width);
                }
            } catch (...) {
                for (const std::size_t i : members)
                    round[i].promise.set_exception(std::current_exception());
            }
        });

    std::uint64_t shed = 0;
    for (const std::uint8_t f : shed_flags)
        shed += f;

    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rounds;
    stats_.requests += round.size() - shed;
    stats_.shed += shed;
    // Groups hold only their live members now; an all-expired group issued
    // no run_batch call and contributes nothing below.
    std::vector<double> live_queue_samples;
    live_queue_samples.reserve(round.size() - shed);
    for (const auto& members : groups) {
        if (members.empty())
            continue;
        ++stats_.batches;
        stats_.max_batch_seen =
            std::max<std::uint64_t>(stats_.max_batch_seen, members.size());
        if (members.size() > 1)
            stats_.coalesced += members.size();
        const unsigned width = static_cast<unsigned>(
            std::min<std::size_t>(members.size(), kWidthBuckets - 1));
        stats_.width_hist[width] += members.size();
    }
    for (std::size_t i = 0; i < round.size(); ++i) {
        if (shed_flags[i])
            continue;
        stats_.queue_hist.record(queue_samples[i]);
        stats_.service_hist.record(service_samples[i]);
        live_queue_samples.push_back(queue_samples[i]);
    }
    adapt_batching_locked(live_queue_samples);
    stats_.current_max_batch = cur_max_batch_;
}

} // namespace serpens::serve
