#include "serve/server.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "util/bitpack.h"
#include "util/thread_pool.h"

namespace serpens::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

// Requests coalesce only when run_batch can serve them in one call: same
// resident and the same alpha/beta. Scalars compare by bit pattern so
// -0.0f and 0.0f (different beta semantics in FP32 accumulation) never
// merge by accident.
using GroupKey =
    std::tuple<const core::PreparedMatrix*, std::uint32_t, std::uint32_t>;

} // namespace

Server::Server(core::SerpensConfig config)
    : registry_(config),
      exec_config_([&] {
          core::SerpensConfig exec = config;
          // Batches of a round may execute on shared-pool workers, and the
          // pool's parallel_for is not reentrant — with a parallel drain
          // the per-request simulator must stay serial.
          if (util::resolve_threads(config.serve_threads) > 1)
              exec.sim_threads = 1;
          return exec;
      }()),
      exec_acc_(exec_config_),
      serve_width_(util::resolve_threads(config.serve_threads)),
      max_batch_(std::max(1u, config.max_batch)),
      dispatcher_([this] { dispatch_loop(); })
{
}

Server::~Server()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    dispatcher_.join();
}

std::future<SpmvResult> Server::submit(const std::string& name,
                                       std::vector<float> x,
                                       std::vector<float> y, float alpha,
                                       float beta)
{
    Pending p;
    p.matrix = registry_.get(name);
    SERPENS_CHECK(p.matrix != nullptr, "serve: no resident matrix named '" +
                                           name + "'");
    SERPENS_CHECK(x.size() == p.matrix->cols(),
                  "serve: x length must equal matrix cols");
    SERPENS_CHECK(y.size() == p.matrix->rows(),
                  "serve: y length must equal matrix rows");
    p.x = std::move(x);
    p.y = std::move(y);
    p.alpha = alpha;
    p.beta = beta;
    p.submitted = Clock::now();
    std::future<SpmvResult> future = p.promise.get_future();
    {
        const std::lock_guard<std::mutex> lock(mu_);
        SERPENS_CHECK(!stop_, "serve: server is shutting down");
        p.sequence = next_sequence_++;
        queue_.push_back(std::move(p));
    }
    cv_work_.notify_all();
    // Also wake drain(): on a paused server its deadlock check must see
    // the newly non-empty queue rather than sleep through it.
    cv_idle_.notify_all();
    return future;
}

SpmvResult Server::spmv(const std::string& name, std::vector<float> x,
                        std::vector<float> y, float alpha, float beta)
{
    return submit(name, std::move(x), std::move(y), alpha, beta).get();
}

void Server::pause()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        paused_ = true;
    }
    // Wake any drain() so it can notice the pause instead of waiting on a
    // queue that will never empty.
    cv_idle_.notify_all();
}

void Server::resume()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
    }
    cv_work_.notify_all();
}

void Server::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] {
        // Re-checked on every wakeup, not just at entry: a pause() that
        // lands while we are already waiting must fail the drain rather
        // than leave it stuck behind a queue that will never empty.
        SERPENS_CHECK(!paused_ || queue_.empty(),
                      "serve: drain() would deadlock on a paused queue");
        return queue_.empty() && !round_active_;
    });
}

ServerStats Server::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void Server::dispatch_loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_work_.wait(lock, [&] {
            return stop_ || (!paused_ && !queue_.empty());
        });
        if (queue_.empty()) {
            if (stop_)
                return;  // drained; pending submits were refused after stop
            continue;
        }
        // Take the whole backlog: everything pending coalesces this round.
        std::vector<Pending> round;
        round.reserve(queue_.size());
        for (Pending& p : queue_)
            round.push_back(std::move(p));
        queue_.clear();
        round_active_ = true;
        lock.unlock();

        run_round(std::move(round));

        lock.lock();
        round_active_ = false;
        // Unconditionally: a drain() waiting out this round must re-check
        // its predicate even when more work queued meanwhile (it may need
        // to fail on a paused non-empty queue instead of sleeping).
        cv_idle_.notify_all();
    }
}

void Server::run_round(std::vector<Pending> round)
{
    const Clock::time_point round_start = Clock::now();

    // Group by (matrix, alpha, beta) preserving arrival order within a
    // group, then chunk to max_batch. std::map keeps group discovery
    // deterministic; execution order across groups does not affect results
    // (every batch column is independent and bit-exact).
    std::map<GroupKey, std::vector<std::size_t>> by_key;
    for (std::size_t i = 0; i < round.size(); ++i) {
        const GroupKey key{round[i].matrix.get(), float_bits(round[i].alpha),
                           float_bits(round[i].beta)};
        by_key[key].push_back(i);
    }
    std::vector<std::vector<std::size_t>> groups;
    for (auto& [key, members] : by_key) {
        for (std::size_t at = 0; at < members.size(); at += max_batch_) {
            const std::size_t end =
                std::min(members.size(), at + max_batch_);
            groups.emplace_back(members.begin() +
                                    static_cast<std::ptrdiff_t>(at),
                                members.begin() +
                                    static_cast<std::ptrdiff_t>(end));
        }
    }

    // Execute the round's batches on the shared pool — the serving
    // counterpart of the per-channel parallel_for loops downstream.
    util::shared_parallel_for(
        serve_width_, groups.size(), [&](std::size_t g) {
            std::vector<std::size_t>& members = groups[g];
            const Clock::time_point start = Clock::now();
            try {
                std::vector<std::vector<float>> xs, ys;
                xs.reserve(members.size());
                ys.reserve(members.size());
                for (const std::size_t i : members) {
                    xs.push_back(std::move(round[i].x));
                    ys.push_back(std::move(round[i].y));
                }
                const Pending& head = round[members.front()];
                core::BatchRunResult results = exec_acc_.run_batch(
                    *head.matrix, xs, ys, head.alpha, head.beta);
                const double service_ms = ms_between(start, Clock::now());
                for (std::size_t k = 0; k < members.size(); ++k) {
                    Pending& p = round[members[k]];
                    SpmvResult r;
                    r.run = std::move(results[k]);
                    r.queue_ms = ms_between(p.submitted, round_start);
                    r.service_ms = service_ms;
                    // Every member of the batch shares one SpMM-mode
                    // invocation, so every member reports the same
                    // device-model figures.
                    r.device_batch_ms = results.batch_time_ms;
                    r.device_amortized_ms = results.amortized_time_ms;
                    r.batch_width = static_cast<unsigned>(members.size());
                    r.sequence = p.sequence;
                    p.promise.set_value(std::move(r));
                }
            } catch (...) {
                for (const std::size_t i : members)
                    round[i].promise.set_exception(std::current_exception());
            }
        });

    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rounds;
    stats_.requests += round.size();
    stats_.batches += groups.size();
    for (const auto& members : groups) {
        stats_.max_batch_seen =
            std::max<std::uint64_t>(stats_.max_batch_seen, members.size());
        if (members.size() > 1)
            stats_.coalesced += members.size();
    }
}

} // namespace serpens::serve
