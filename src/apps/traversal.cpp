#include "apps/traversal.h"

#include <algorithm>

#include "baselines/semiring.h"
#include "util/check.h"

namespace serpens::apps {

using baselines::SemiringKind;
using sparse::CsrMatrix;
using sparse::index_t;

std::vector<int> bfs_levels(const CsrMatrix& a, index_t source)
{
    SERPENS_CHECK(a.rows() == a.cols(), "adjacency must be square");
    SERPENS_CHECK(source < a.rows(), "source vertex out of range");

    std::vector<int> level(a.rows(), kUnreached);
    level[source] = 0;
    std::vector<float> frontier(a.rows(), 0.0f);
    frontier[source] = 1.0f;
    // Complement mask of settled vertices: masked rows stay out of the
    // frontier (GraphBLAS-style BFS).
    std::vector<float> settled(a.rows(), 0.0f);
    settled[source] = 1.0f;

    for (index_t depth = 1; depth < a.rows(); ++depth) {
        std::vector<float> next(a.rows(), 0.0f);
        baselines::spmv_semiring_masked(a, frontier, settled, next,
                                        SemiringKind::or_and);
        bool advanced = false;
        for (index_t v = 0; v < a.rows(); ++v) {
            if (next[v] != 0.0f) {
                level[v] = static_cast<int>(depth);
                settled[v] = 1.0f;
                advanced = true;
            }
        }
        if (!advanced)
            break;
        frontier = std::move(next);
    }
    return level;
}

std::vector<float> sssp_distances(const CsrMatrix& a, index_t source)
{
    SERPENS_CHECK(a.rows() == a.cols(), "adjacency must be square");
    SERPENS_CHECK(source < a.rows(), "source vertex out of range");
    for (float w : a.values())
        SERPENS_CHECK(w >= 0.0f, "sssp requires non-negative edge weights");

    std::vector<float> dist(a.rows(), baselines::kMinPlusInf);
    dist[source] = 0.0f;

    for (index_t round = 0; round < a.rows(); ++round) {
        std::vector<float> relaxed(a.rows());
        baselines::spmv_semiring(a, dist, relaxed, SemiringKind::min_plus);
        bool changed = false;
        for (index_t v = 0; v < a.rows(); ++v) {
            if (relaxed[v] < dist[v]) {
                dist[v] = relaxed[v];
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return dist;
}

} // namespace serpens::apps
