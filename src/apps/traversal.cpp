#include "apps/traversal.h"

#include <algorithm>

#include "baselines/semiring.h"
#include "util/check.h"

namespace serpens::apps {

using baselines::SemiringKind;
using sparse::CsrMatrix;
using sparse::index_t;

std::vector<int> bfs_levels(const CsrMatrix& a, index_t source)
{
    SERPENS_CHECK(a.rows() == a.cols(), "adjacency must be square");
    SERPENS_CHECK(source < a.rows(), "source vertex out of range");

    std::vector<int> level(a.rows(), kUnreached);
    level[source] = 0;
    std::vector<float> frontier(a.rows(), 0.0f);
    frontier[source] = 1.0f;
    // Complement mask of settled vertices: masked rows stay out of the
    // frontier (GraphBLAS-style BFS).
    std::vector<float> settled(a.rows(), 0.0f);
    settled[source] = 1.0f;

    for (index_t depth = 1; depth < a.rows(); ++depth) {
        std::vector<float> next(a.rows(), 0.0f);
        baselines::spmv_semiring_masked(a, frontier, settled, next,
                                        SemiringKind::or_and);
        bool advanced = false;
        for (index_t v = 0; v < a.rows(); ++v) {
            if (next[v] != 0.0f) {
                level[v] = static_cast<int>(depth);
                settled[v] = 1.0f;
                advanced = true;
            }
        }
        if (!advanced)
            break;
        frontier = std::move(next);
    }
    return level;
}

std::vector<std::vector<int>> multi_source_bfs(
    const core::Accelerator& acc, const sparse::CooMatrix& reversed_adjacency,
    std::span<const index_t> sources)
{
    SERPENS_CHECK(reversed_adjacency.rows() == reversed_adjacency.cols(),
                  "adjacency must be square");
    SERPENS_CHECK(!sources.empty(), "need at least one source vertex");
    const index_t n = reversed_adjacency.rows();
    for (const index_t s : sources)
        SERPENS_CHECK(s < n, "source vertex out of range");

    sparse::CooMatrix unit = reversed_adjacency;
    for (sparse::Triplet& e : unit.elements())
        e.val = 1.0f;
    const core::PreparedMatrix prepared = acc.prepare(unit);

    const std::size_t batch = sources.size();
    std::vector<std::vector<int>> levels(batch,
                                         std::vector<int>(n, kUnreached));
    std::vector<std::vector<float>> frontiers(batch,
                                              std::vector<float>(n, 0.0f));
    std::vector<std::vector<char>> settled(batch, std::vector<char>(n, 0));
    const std::vector<std::vector<float>> zeros(batch,
                                                std::vector<float>(n, 0.0f));
    for (std::size_t b = 0; b < batch; ++b) {
        levels[b][sources[b]] = 0;
        frontiers[b][sources[b]] = 1.0f;
        settled[b][sources[b]] = 1;
    }

    // Sources that exhaust their component early keep an all-zero frontier,
    // which costs nothing extra inside the blocked accumulator; the loop
    // ends when no column advances.
    for (index_t depth = 1; depth < n; ++depth) {
        const core::BatchRunResult round =
            acc.run_batch(prepared, frontiers, zeros, 1.0f, 0.0f);
        bool advanced = false;
        for (std::size_t b = 0; b < batch; ++b) {
            std::vector<float>& frontier = frontiers[b];
            std::fill(frontier.begin(), frontier.end(), 0.0f);
            for (index_t v = 0; v < n; ++v) {
                if (round[b].y[v] != 0.0f && !settled[b][v]) {
                    levels[b][v] = static_cast<int>(depth);
                    settled[b][v] = 1;
                    frontier[v] = 1.0f;
                    advanced = true;
                }
            }
        }
        if (!advanced)
            break;
    }
    return levels;
}

std::vector<float> sssp_distances(const CsrMatrix& a, index_t source)
{
    SERPENS_CHECK(a.rows() == a.cols(), "adjacency must be square");
    SERPENS_CHECK(source < a.rows(), "source vertex out of range");
    for (float w : a.values())
        SERPENS_CHECK(w >= 0.0f, "sssp requires non-negative edge weights");

    std::vector<float> dist(a.rows(), baselines::kMinPlusInf);
    dist[source] = 0.0f;

    for (index_t round = 0; round < a.rows(); ++round) {
        std::vector<float> relaxed(a.rows());
        baselines::spmv_semiring(a, dist, relaxed, SemiringKind::min_plus);
        bool changed = false;
        for (index_t v = 0; v < a.rows(); ++v) {
            if (relaxed[v] < dist[v]) {
                dist[v] = relaxed[v];
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return dist;
}

} // namespace serpens::apps
