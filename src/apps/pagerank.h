// PageRank on the Serpens accelerator.
//
// The damped iteration r' = d * P * r + (1-d)/N maps exactly onto the
// accelerator's general SpMV form (alpha = d, beta = 1, y_in = teleport
// vector), which is the paper's "graph analytics processing model" use case.
#pragma once

#include <span>
#include <vector>

#include "core/accelerator.h"
#include "sparse/coo.h"

namespace serpens::apps {

struct PageRankOptions {
    double damping = 0.85;
    int max_iterations = 100;
    double tolerance = 1e-9;  // L1 delta between iterations
};

struct PageRankResult {
    std::vector<float> rank;
    int iterations = 0;
    double delta = 0.0;        // final L1 change
    double modeled_ms = 0.0;   // accelerator time across all iterations
};

// Column-stochastic transition matrix of a directed graph: entry (v, u) =
// 1/outdeg(u) for each edge u -> v; dangling vertices get a self-loop.
sparse::CooMatrix transition_matrix(const sparse::CooMatrix& graph);

// Run PageRank with every SpMV on the accelerator. The transition matrix is
// prepared once and its decoded image is cached, so each iteration streams
// the decode-once expansion instead of re-unpacking the HBM image.
PageRankResult pagerank(const core::Accelerator& acc,
                        const sparse::CooMatrix& graph,
                        const PageRankOptions& options = {});

struct PersonalizedPageRankResult {
    std::vector<std::vector<float>> rank;  // [source][vertex]
    int iterations = 0;
    std::vector<double> delta;     // final L1 change per source
    double modeled_ms = 0.0;       // accelerator time per source (the device
                                   // runs each column as its own SpMV pass)
};

// Personalized PageRank for many personalization vertices at once:
// r_s' = d * P * r_s + (1-d) * e_s, all sources advanced in lockstep with
// one batched SpMV per iteration over the cached decode. Iterates until
// every source's L1 delta is below tolerance (or max_iterations); each
// column's trajectory is bit-identical to iterating that source alone for
// the same number of iterations.
PersonalizedPageRankResult personalized_pagerank(
    const core::Accelerator& acc, const sparse::CooMatrix& graph,
    std::span<const sparse::index_t> sources,
    const PageRankOptions& options = {});

} // namespace serpens::apps
