// PageRank on the Serpens accelerator.
//
// The damped iteration r' = d * P * r + (1-d)/N maps exactly onto the
// accelerator's general SpMV form (alpha = d, beta = 1, y_in = teleport
// vector), which is the paper's "graph analytics processing model" use case.
#pragma once

#include <vector>

#include "core/accelerator.h"
#include "sparse/coo.h"

namespace serpens::apps {

struct PageRankOptions {
    double damping = 0.85;
    int max_iterations = 100;
    double tolerance = 1e-9;  // L1 delta between iterations
};

struct PageRankResult {
    std::vector<float> rank;
    int iterations = 0;
    double delta = 0.0;        // final L1 change
    double modeled_ms = 0.0;   // accelerator time across all iterations
};

// Column-stochastic transition matrix of a directed graph: entry (v, u) =
// 1/outdeg(u) for each edge u -> v; dangling vertices get a self-loop.
sparse::CooMatrix transition_matrix(const sparse::CooMatrix& graph);

// Run PageRank with every SpMV on the accelerator.
PageRankResult pagerank(const core::Accelerator& acc,
                        const sparse::CooMatrix& graph,
                        const PageRankOptions& options = {});

} // namespace serpens::apps
