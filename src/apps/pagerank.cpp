#include "apps/pagerank.h"

#include <cmath>

#include "util/check.h"

namespace serpens::apps {

using sparse::CooMatrix;
using sparse::index_t;
using sparse::Triplet;

CooMatrix transition_matrix(const CooMatrix& graph)
{
    SERPENS_CHECK(graph.rows() == graph.cols(),
                  "transition matrix requires a square adjacency");
    std::vector<std::uint32_t> outdeg(graph.rows(), 0);
    for (const Triplet& e : graph.elements())
        ++outdeg[e.row];

    CooMatrix p(graph.rows(), graph.cols());
    p.reserve(graph.nnz() + graph.rows());
    for (const Triplet& e : graph.elements())
        p.add(e.col, e.row, 1.0f / static_cast<float>(outdeg[e.row]));
    for (index_t v = 0; v < graph.rows(); ++v)
        if (outdeg[v] == 0)
            p.add(v, v, 1.0f);
    return p;
}

PageRankResult pagerank(const core::Accelerator& acc, const CooMatrix& graph,
                        const PageRankOptions& options)
{
    SERPENS_CHECK(options.damping > 0.0 && options.damping < 1.0,
                  "damping must lie in (0, 1)");
    SERPENS_CHECK(options.max_iterations >= 1,
                  "need at least one iteration");

    const CooMatrix p = transition_matrix(graph);
    const core::PreparedMatrix prepared = acc.prepare(p);
    const auto n = static_cast<std::size_t>(p.rows());

    PageRankResult result;
    result.rank.assign(n, 1.0f / static_cast<float>(n));
    const std::vector<float> teleport(
        n, static_cast<float>((1.0 - options.damping) / static_cast<double>(n)));

    for (int it = 0; it < options.max_iterations; ++it) {
        const core::RunResult run =
            acc.run(prepared, result.rank, teleport,
                    static_cast<float>(options.damping), 1.0f);
        result.modeled_ms += run.time_ms;
        result.delta = 0.0;
        for (std::size_t v = 0; v < n; ++v)
            result.delta +=
                std::abs(static_cast<double>(run.y[v]) - result.rank[v]);
        result.rank = run.y;
        result.iterations = it + 1;
        if (result.delta < options.tolerance)
            break;
    }
    return result;
}

} // namespace serpens::apps
