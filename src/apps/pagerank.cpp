#include "apps/pagerank.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace serpens::apps {

using sparse::CooMatrix;
using sparse::index_t;
using sparse::Triplet;

CooMatrix transition_matrix(const CooMatrix& graph)
{
    SERPENS_CHECK(graph.rows() == graph.cols(),
                  "transition matrix requires a square adjacency");
    std::vector<std::uint32_t> outdeg(graph.rows(), 0);
    for (const Triplet& e : graph.elements())
        ++outdeg[e.row];

    CooMatrix p(graph.rows(), graph.cols());
    p.reserve(graph.nnz() + graph.rows());
    for (const Triplet& e : graph.elements())
        p.add(e.col, e.row, 1.0f / static_cast<float>(outdeg[e.row]));
    for (index_t v = 0; v < graph.rows(); ++v)
        if (outdeg[v] == 0)
            p.add(v, v, 1.0f);
    return p;
}

PageRankResult pagerank(const core::Accelerator& acc, const CooMatrix& graph,
                        const PageRankOptions& options)
{
    SERPENS_CHECK(options.damping > 0.0 && options.damping < 1.0,
                  "damping must lie in (0, 1)");
    SERPENS_CHECK(options.max_iterations >= 1,
                  "need at least one iteration");

    const CooMatrix p = transition_matrix(graph);
    const core::PreparedMatrix prepared = acc.prepare(p);
    const auto n = static_cast<std::size_t>(p.rows());

    PageRankResult result;
    result.rank.assign(n, 1.0f / static_cast<float>(n));
    const std::vector<float> teleport(
        n, static_cast<float>((1.0 - options.damping) / static_cast<double>(n)));

    // Every iteration reuses `prepared`'s cached decode: the packed image
    // is expanded once on the first run, then each SpMV streams the SoA
    // arrays (see core::PreparedMatrix::decoded).
    for (int it = 0; it < options.max_iterations; ++it) {
        const core::RunResult run =
            acc.run(prepared, result.rank, teleport,
                    static_cast<float>(options.damping), 1.0f);
        result.modeled_ms += run.time_ms;
        result.delta = 0.0;
        for (std::size_t v = 0; v < n; ++v)
            result.delta +=
                std::abs(static_cast<double>(run.y[v]) - result.rank[v]);
        result.rank = run.y;
        result.iterations = it + 1;
        if (result.delta < options.tolerance)
            break;
    }
    return result;
}

PersonalizedPageRankResult personalized_pagerank(
    const core::Accelerator& acc, const CooMatrix& graph,
    std::span<const index_t> sources, const PageRankOptions& options)
{
    SERPENS_CHECK(options.damping > 0.0 && options.damping < 1.0,
                  "damping must lie in (0, 1)");
    SERPENS_CHECK(options.max_iterations >= 1,
                  "need at least one iteration");
    SERPENS_CHECK(!sources.empty(), "need at least one personalization vertex");
    for (const index_t s : sources)
        SERPENS_CHECK(s < graph.rows(), "personalization vertex out of range");

    const CooMatrix p = transition_matrix(graph);
    const core::PreparedMatrix prepared = acc.prepare(p);
    const auto n = static_cast<std::size_t>(p.rows());
    const std::size_t batch = sources.size();

    PersonalizedPageRankResult result;
    result.rank.assign(batch, std::vector<float>(n, 0.0f));
    result.delta.assign(batch, 0.0);
    // Teleport mass concentrates on each source: y_in[b] = (1-d) * e_b.
    std::vector<std::vector<float>> teleport(batch,
                                             std::vector<float>(n, 0.0f));
    for (std::size_t b = 0; b < batch; ++b) {
        result.rank[b][sources[b]] = 1.0f;
        teleport[b][sources[b]] = static_cast<float>(1.0 - options.damping);
    }

    // All sources advance in lockstep through one batched SpMV per
    // iteration; already-converged columns keep iterating (their ranks only
    // tighten) so the batch stays rectangular.
    for (int it = 0; it < options.max_iterations; ++it) {
        const core::BatchRunResult round =
            acc.run_batch(prepared, result.rank, teleport,
                          static_cast<float>(options.damping), 1.0f);
        result.modeled_ms += round.front().time_ms;
        double worst = 0.0;
        for (std::size_t b = 0; b < batch; ++b) {
            result.delta[b] = 0.0;
            for (std::size_t v = 0; v < n; ++v)
                result.delta[b] += std::abs(
                    static_cast<double>(round[b].y[v]) - result.rank[b][v]);
            result.rank[b] = round[b].y;
            worst = std::max(worst, result.delta[b]);
        }
        result.iterations = it + 1;
        if (worst < options.tolerance)
            break;
    }
    return result;
}

} // namespace serpens::apps
