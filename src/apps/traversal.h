// Graph traversal via generalized-semiring SpMV — the workloads GraphLily's
// overlay supports (paper §2.2), expressed on the GraphBLAS-lite substrate.
//
// Both algorithms take the *reversed* adjacency in CSR (row v holds v's
// in-neighbours) so one SpMV propagates the frontier/distances along edge
// direction.
#pragma once

#include <vector>

#include "sparse/csr.h"

namespace serpens::apps {

inline constexpr int kUnreached = -1;

// BFS levels from `source`; unreachable vertices get kUnreached.
std::vector<int> bfs_levels(const sparse::CsrMatrix& reversed_adjacency,
                            sparse::index_t source);

// Single-source shortest paths (non-negative weights) by Bellman-Ford-style
// min-plus relaxation; unreachable vertices get +infinity.
std::vector<float> sssp_distances(const sparse::CsrMatrix& reversed_adjacency,
                                  sparse::index_t source);

} // namespace serpens::apps
