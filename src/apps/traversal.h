// Graph traversal via generalized-semiring SpMV — the workloads GraphLily's
// overlay supports (paper §2.2), expressed on the GraphBLAS-lite substrate.
//
// Both algorithms take the *reversed* adjacency in CSR (row v holds v's
// in-neighbours) so one SpMV propagates the frontier/distances along edge
// direction.
//
// multi_source_bfs additionally runs on the Serpens accelerator model: the
// adjacency is prepared (encoded) once, its decoded image is cached, and
// every BFS round pushes all sources' frontiers through one batched SpMV
// (core::Accelerator::run_batch) — the repeated-SpMV-on-a-fixed-matrix
// shape the decode-once engine exists for.
#pragma once

#include <span>
#include <vector>

#include "core/accelerator.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace serpens::apps {

inline constexpr int kUnreached = -1;

// BFS levels from `source`; unreachable vertices get kUnreached.
std::vector<int> bfs_levels(const sparse::CsrMatrix& reversed_adjacency,
                            sparse::index_t source);

// Single-source shortest paths (non-negative weights) by Bellman-Ford-style
// min-plus relaxation; unreachable vertices get +infinity.
std::vector<float> sssp_distances(const sparse::CsrMatrix& reversed_adjacency,
                                  sparse::index_t source);

// BFS levels from every source at once, on the accelerator. Edge values are
// forced to 1, so a plus-times SpMV scores each vertex with its number of
// frontier in-neighbours — nonzero iff reached this round (a sum of
// positive FP32 terms cannot round to zero). One batched SpMV per round
// serves all sources; result[b] equals bfs_levels(reversed CSR, sources[b]).
std::vector<std::vector<int>> multi_source_bfs(
    const core::Accelerator& acc, const sparse::CooMatrix& reversed_adjacency,
    std::span<const sparse::index_t> sources);

} // namespace serpens::apps
