#include "baselines/k80.h"

#include <algorithm>

#include "baselines/cpu_spmv.h"
#include "util/check.h"

namespace serpens::baselines {

K80Model::K80Model(K80Config config) : config_(config)
{
    SERPENS_CHECK(config_.eff_max > 0.0 && config_.eff_max <= 1.0,
                  "eff_max must lie in (0, 1]");
    SERPENS_CHECK(config_.half_saturation_nnz > 0.0,
                  "half-saturation NNZ must be positive");
}

std::vector<float> K80Model::spmv(const sparse::CsrMatrix& a,
                                  std::span<const float> x,
                                  std::span<const float> y, float alpha,
                                  float beta) const
{
    std::vector<float> out(y.begin(), y.end());
    spmv_csr(a, x, out, alpha, beta);
    return out;
}

std::uint64_t K80Model::traffic_bytes(std::uint64_t rows, std::uint64_t cols,
                                      std::uint64_t nnz)
{
    // CSR value (4B) + column index (4B) per nnz; row pointers (4B);
    // x once; y read + write.
    return nnz * 8 + (rows + 1) * 4 + cols * 4 + rows * 8;
}

double K80Model::effective_bandwidth_gbps(std::uint64_t nnz,
                                          double row_imbalance_cv) const
{
    const double n = static_cast<double>(nnz);
    const double saturation = n / (n + config_.half_saturation_nnz);
    const double penalty =
        1.0 + config_.imbalance_penalty * std::min(row_imbalance_cv, 3.0);
    return config_.bandwidth_gbps * config_.eff_max * saturation / penalty;
}

double K80Model::estimate_spmv_ms(std::uint64_t rows, std::uint64_t cols,
                                  std::uint64_t nnz,
                                  double row_imbalance_cv) const
{
    const double bytes =
        static_cast<double>(traffic_bytes(rows, cols, nnz));
    const double bw = effective_bandwidth_gbps(nnz, row_imbalance_cv);
    const double transfer_ms = bytes / (bw * 1e9) * 1e3;
    return transfer_ms + config_.launch_overhead_us / 1e3;
}

} // namespace serpens::baselines
