// Dense vector helpers for the iterative-solver examples (CG, PageRank).
#pragma once

#include <span>
#include <vector>

namespace serpens::baselines {

double dot(std::span<const float> a, std::span<const float> b);
double norm2(std::span<const float> a);

// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

// x *= alpha
void scale(std::span<float> x, float alpha);

// out = a - b
std::vector<float> subtract(std::span<const float> a, std::span<const float> b);

} // namespace serpens::baselines
