// Sextans baseline (paper §2.2, Table 5) — an HBM FPGA SpMM accelerator
// (FPGA'22) that runs SpMV as a degenerate SpMM.
//
// Architecture, per its publication and the Serpens paper:
//   - 8 HBM channels stream the sparse matrix (64 elements/cycle),
//     4 channels dense B, 8 channels dense C, 1 instruction channel
//     -> 29 channels, 417 GB/s utilized at 197 MHz, 52 W.
//   - Each sparse element is shared with 8 dense columns, so SpMM(N) takes
//     ceil(N/8) passes over the sparse stream.
//   - Non-zero reordering at *row* granularity (no index coalescing).
//   - The on-chip C buffer bounds the row count (~512K rows); matrices
//     beyond it cannot run (the "-" entries of Table 4: G7, G9-G12).
//   - SpMV = SpMM with N = 8 (the minimum), keeping column 0 only.
//
// The functional model computes real SpMM results; the performance model
// reproduces the published architecture's cycle structure.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sparse/csr.h"

namespace serpens::baselines {

struct SextansConfig {
    double frequency_mhz = 197.0;
    double power_w = 52.0;
    double bandwidth_gbps = 417.0;     // 29 channels x 14.375 GB/s
    unsigned a_channels = 8;           // sparse-matrix channels
    unsigned elems_per_channel = 8;    // 512-bit bus
    unsigned min_n = 8;                // minimum SpMM width; SpMV uses this
    std::uint64_t row_capacity = 512 * 1024;  // on-chip C buffer rows
    double schedule_stretch = 1.12;    // row-granularity reordering padding
    double invocation_overhead_us = 3.0;
};

class SextansModel {
public:
    explicit SextansModel(SextansConfig config = {});

    const SextansConfig& config() const { return config_; }

    bool supports(const sparse::CsrMatrix& a) const
    {
        return a.rows() <= config_.row_capacity;
    }

    // Functional SpMM: C = alpha * A * B + beta * C, where B and C are
    // dense row-major (K x n) and (M x n).
    void spmm(const sparse::CsrMatrix& a, std::span<const float> b,
              std::span<float> c, unsigned n, float alpha = 1.0f,
              float beta = 0.0f) const;

    // Functional SpMV via SpMM(N = min_n), retiring column 0 (paper §2.2).
    std::vector<float> spmv(const sparse::CsrMatrix& a,
                            std::span<const float> x,
                            std::span<const float> y, float alpha = 1.0f,
                            float beta = 0.0f) const;

    // Modeled SpMM(N) execution time; nullopt if the matrix exceeds the
    // on-chip row capacity.
    std::optional<double> estimate_spmm_ms(std::uint64_t rows,
                                           std::uint64_t cols,
                                           std::uint64_t nnz,
                                           unsigned n) const;

    // Modeled SpMV time = SpMM(min_n) time.
    std::optional<double> estimate_spmv_ms(std::uint64_t rows,
                                           std::uint64_t cols,
                                           std::uint64_t nnz) const;

    // Amortized per-vector time of an N-wide SpMM: estimate_spmm_ms(n) / n.
    // The cross-check target for Serpens' batched device mode — both
    // models share one sparse stream per 8-column block, so their
    // amortization curves saturate at the same knee.
    std::optional<double> estimate_amortized_spmv_ms(std::uint64_t rows,
                                                     std::uint64_t cols,
                                                     std::uint64_t nnz,
                                                     unsigned n) const;

private:
    SextansConfig config_;
};

} // namespace serpens::baselines
