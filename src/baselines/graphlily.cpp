#include "baselines/graphlily.h"

#include "util/bitpack.h"
#include "util/check.h"

namespace serpens::baselines {

GraphLilyModel::GraphLilyModel(GraphLilyConfig config) : config_(config)
{
    SERPENS_CHECK(config_.frequency_mhz > 0.0, "frequency must be positive");
    SERPENS_CHECK(config_.pe_utilization > 0.0 && config_.pe_utilization <= 1.0,
                  "utilization must lie in (0, 1]");
    SERPENS_CHECK(config_.cluster_window >= 16, "cluster window too small");
}

std::vector<float> GraphLilyModel::run(const sparse::CsrMatrix& a,
                                       std::span<const float> x,
                                       SemiringKind kind) const
{
    std::vector<float> y(a.rows(), semiring_identity(kind));
    spmv_semiring(a, x, y, kind);
    return y;
}

std::vector<float> GraphLilyModel::spmv(const sparse::CsrMatrix& a,
                                        std::span<const float> x,
                                        std::span<const float> y, float alpha,
                                        float beta) const
{
    SERPENS_CHECK(y.size() == a.rows(), "y length must equal matrix rows");
    std::vector<float> out = run(a, x, SemiringKind::plus_times);
    for (std::size_t r = 0; r < out.size(); ++r)
        out[r] = alpha * out[r] + beta * y[r];
    return out;
}

double GraphLilyModel::estimate_spmv_ms(std::uint64_t rows, std::uint64_t cols,
                                        std::uint64_t nnz) const
{
    const double lanes =
        static_cast<double>(config_.a_channels) * config_.elems_per_channel;
    const double sparse_cycles =
        static_cast<double>(nnz) / (lanes * config_.pe_utilization);
    const double clusters = static_cast<double>(
        ceil_div<std::uint64_t>(cols, config_.cluster_window));
    const double overhead_cycles = clusters * config_.cluster_overhead_cycles;
    const double vector_cycles =
        static_cast<double>(ceil_div<std::uint64_t>(rows, 16) +
                            ceil_div<std::uint64_t>(cols, 16));
    const double cycles = sparse_cycles + overhead_cycles + vector_cycles;
    return cycles / (config_.frequency_mhz * 1e3) +
           config_.invocation_overhead_us / 1e3;
}

} // namespace serpens::baselines
