// Nvidia Tesla K80 / cuSPARSE csrmv baseline (paper §4.1.1, §4.3, Fig. 3).
//
// An analytic roofline model of csrmv on the K80 board (562 MHz boost,
// 480 GB/s aggregate board bandwidth, 130 W), with the three effects that
// shape the paper's Figure 3 curve:
//   1. kernel-launch / driver overhead dominating small matrices
//      (throughput rises linearly with NNZ at the bottom-left);
//   2. NNZ-dependent effective bandwidth saturating toward ~27% of the
//      board peak (csrmv is single-die and irregular; the paper's K80
//      tops out at 29.1 GFLOP/s, i.e. ~120 GB/s effective);
//   3. a row-imbalance penalty (scalar/vector csrmv rows map to warps).
//
// Functional results come from the CPU reference kernel; only the timing is
// modeled.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.h"

namespace serpens::baselines {

struct K80Config {
    double frequency_mhz = 562.0;
    double power_w = 130.0;
    double bandwidth_gbps = 480.0;  // board peak (Table 2)
    double eff_max = 0.27;          // asymptotic fraction of board peak
    double half_saturation_nnz = 2e5;
    double launch_overhead_us = 15.0;
    double imbalance_penalty = 0.4; // per unit of row-length CV
};

class K80Model {
public:
    explicit K80Model(K80Config config = {});

    const K80Config& config() const { return config_; }

    // Functional SpMV (CPU reference semantics).
    std::vector<float> spmv(const sparse::CsrMatrix& a,
                            std::span<const float> x,
                            std::span<const float> y, float alpha = 1.0f,
                            float beta = 0.0f) const;

    // Bytes csrmv moves: CSR values+indices, row pointers, x, y in/out.
    static std::uint64_t traffic_bytes(std::uint64_t rows, std::uint64_t cols,
                                       std::uint64_t nnz);

    // Effective bandwidth at a given NNZ (GB/s).
    double effective_bandwidth_gbps(std::uint64_t nnz,
                                    double row_imbalance_cv) const;

    // Modeled csrmv execution time.
    double estimate_spmv_ms(std::uint64_t rows, std::uint64_t cols,
                            std::uint64_t nnz,
                            double row_imbalance_cv = 0.0) const;

private:
    K80Config config_;
};

} // namespace serpens::baselines
