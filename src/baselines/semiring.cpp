#include "baselines/semiring.h"

#include <algorithm>

#include "util/check.h"

namespace serpens::baselines {

using sparse::index_t;
using sparse::nnz_t;

float semiring_identity(SemiringKind kind)
{
    switch (kind) {
    case SemiringKind::plus_times:
        return 0.0f;
    case SemiringKind::or_and:
        return 0.0f;
    case SemiringKind::min_plus:
        return kMinPlusInf;
    }
    SERPENS_ASSERT(false, "unknown semiring");
    return 0.0f;
}

void spmv_semiring(const sparse::CsrMatrix& a, std::span<const float> x,
                   std::span<float> y, SemiringKind kind)
{
    SERPENS_CHECK(x.size() == a.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y.size() == a.rows(), "y length must equal matrix rows");
    for (index_t r = 0; r < a.rows(); ++r) {
        float accum = semiring_identity(kind);
        for (nnz_t i = a.row_begin(r); i < a.row_end(r); ++i) {
            const float av = a.values()[i];
            const float xv = x[a.col_idx()[i]];
            switch (kind) {
            case SemiringKind::plus_times:
                accum += av * xv;
                break;
            case SemiringKind::or_and:
                accum = (accum != 0.0f) || (av != 0.0f && xv != 0.0f) ? 1.0f : 0.0f;
                break;
            case SemiringKind::min_plus:
                accum = std::min(accum, av + xv);
                break;
            }
        }
        y[r] = accum;
    }
}

void spmv_semiring_masked(const sparse::CsrMatrix& a, std::span<const float> x,
                          std::span<const float> mask, std::span<float> y,
                          SemiringKind kind)
{
    SERPENS_CHECK(mask.size() == a.rows(), "mask length must equal matrix rows");
    spmv_semiring(a, x, y, kind);
    for (index_t r = 0; r < a.rows(); ++r)
        if (mask[r] != 0.0f)
            y[r] = semiring_identity(kind);
}

} // namespace serpens::baselines
