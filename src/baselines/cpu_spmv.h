// CPU reference SpMV kernels.
//
// `spmv_csr` is the FP32 golden model for functional comparison;
// `spmv_csr_ref64` accumulates in double and is the tolerance anchor for
// tests (the accelerators accumulate FP32 in schedule order, so they are
// compared against the double reference with scaled tolerances).
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.h"

namespace serpens::baselines {

// y = alpha * A * x + beta * y   (FP32 accumulation, row-major order)
void spmv_csr(const sparse::CsrMatrix& a, std::span<const float> x,
              std::span<float> y, float alpha = 1.0f, float beta = 0.0f);

// Same computation with double-precision accumulation.
std::vector<double> spmv_csr_ref64(const sparse::CsrMatrix& a,
                                   std::span<const float> x,
                                   std::span<const float> y,
                                   float alpha = 1.0f, float beta = 0.0f);

} // namespace serpens::baselines
