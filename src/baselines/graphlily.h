// GraphLily baseline (paper §2.2) — an HBM FPGA graph-processing overlay
// (ICCAD'21) that executes SpMV through a generalized BLAS model.
//
// Architecture, per its publication and the Serpens paper:
//   - 16 HBM channels stream the sparse matrix; the vectors live on
//     1 HBM + 1 DDR channel -> 285 GB/s utilized, 166 MHz, 43 W.
//   - Overlay generality costs utilization: generalized multiply/reduce
//     units (only one instance active in SpMV) and an arbiter vector unit
//     that serializes vector access. We model this as a PE-utilization
//     factor (0.5) plus a per-vector-cluster overhead.
//
// The functional path runs the configured semiring through the
// GraphBLAS-lite substrate — the same mechanism the real overlay uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/semiring.h"
#include "sparse/csr.h"

namespace serpens::baselines {

struct GraphLilyConfig {
    double frequency_mhz = 166.0;
    double power_w = 43.0;
    double bandwidth_gbps = 285.0;  // 19 HBM channels + 1 DDR4
    unsigned a_channels = 16;
    unsigned elems_per_channel = 8;
    double pe_utilization = 0.5;    // overlay efficiency in SpMV mode
    std::uint64_t cluster_window = 8192;  // vector buffer cluster size
    double cluster_overhead_cycles = 2000.0;
    double invocation_overhead_us = 3.0;
};

class GraphLilyModel {
public:
    explicit GraphLilyModel(GraphLilyConfig config = {});

    const GraphLilyConfig& config() const { return config_; }

    // Functional generalized SpMV with the overlay's configured semiring.
    std::vector<float> run(const sparse::CsrMatrix& a,
                           std::span<const float> x,
                           SemiringKind kind = SemiringKind::plus_times) const;

    // Functional arithmetic SpMV with alpha/beta (SpMV mode).
    std::vector<float> spmv(const sparse::CsrMatrix& a,
                            std::span<const float> x,
                            std::span<const float> y, float alpha = 1.0f,
                            float beta = 0.0f) const;

    // Modeled SpMV execution time.
    double estimate_spmv_ms(std::uint64_t rows, std::uint64_t cols,
                            std::uint64_t nnz) const;

private:
    GraphLilyConfig config_;
};

} // namespace serpens::baselines
