#include "baselines/dense_ops.h"

#include <cmath>

#include "util/check.h"

namespace serpens::baselines {

double dot(std::span<const float> a, std::span<const float> b)
{
    SERPENS_CHECK(a.size() == b.size(), "dot inputs must align");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return sum;
}

double norm2(std::span<const float> a)
{
    return std::sqrt(dot(a, a));
}

void axpy(float alpha, std::span<const float> x, std::span<float> y)
{
    SERPENS_CHECK(x.size() == y.size(), "axpy inputs must align");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha)
{
    for (float& v : x)
        v *= alpha;
}

std::vector<float> subtract(std::span<const float> a, std::span<const float> b)
{
    SERPENS_CHECK(a.size() == b.size(), "subtract inputs must align");
    std::vector<float> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

} // namespace serpens::baselines
