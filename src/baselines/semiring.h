// Generalized (semiring) SpMV — the GraphBLAS-style substrate GraphLily's
// overlay implements (paper §2.2).
//
// A semiring is (multiply, reduce, identity). GraphLily hardwires several
// generalized-multiply/reduce instances and activates one per kernel; we
// provide the three the paper names:
//
//   plus_times : classic SpMV          (reduce = +,   mult = *,   id = 0)
//   or_and     : BFS frontier expansion (reduce = or, mult = and, id = false)
//   min_plus   : SSSP relaxation        (reduce = min, mult = +,  id = +inf)
#pragma once

#include <limits>
#include <span>

#include "sparse/csr.h"

namespace serpens::baselines {

enum class SemiringKind {
    plus_times,
    or_and,
    min_plus,
};

inline constexpr float kMinPlusInf = std::numeric_limits<float>::infinity();

// Identity element of the semiring's reduction.
float semiring_identity(SemiringKind kind);

// y[r] = reduce over nnz(r) of mult(a[r][c], x[c]).
// For or_and, values are interpreted as booleans (non-zero = true).
void spmv_semiring(const sparse::CsrMatrix& a, std::span<const float> x,
                   std::span<float> y, SemiringKind kind);

// Masked variant (GraphBLAS-style complement mask): rows whose mask entry is
// non-zero are *skipped* — y[r] keeps the semiring identity — which is how
// frontier algorithms exclude already-settled vertices without a host-side
// pass. mask.size() == rows.
void spmv_semiring_masked(const sparse::CsrMatrix& a, std::span<const float> x,
                          std::span<const float> mask, std::span<float> y,
                          SemiringKind kind);

} // namespace serpens::baselines
