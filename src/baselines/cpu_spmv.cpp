#include "baselines/cpu_spmv.h"

#include "util/check.h"

namespace serpens::baselines {

using sparse::index_t;
using sparse::nnz_t;

void spmv_csr(const sparse::CsrMatrix& a, std::span<const float> x,
              std::span<float> y, float alpha, float beta)
{
    SERPENS_CHECK(x.size() == a.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y.size() == a.rows(), "y length must equal matrix rows");
    for (index_t r = 0; r < a.rows(); ++r) {
        float sum = 0.0f;
        for (nnz_t i = a.row_begin(r); i < a.row_end(r); ++i)
            sum += a.values()[i] * x[a.col_idx()[i]];
        y[r] = alpha * sum + beta * y[r];
    }
}

std::vector<double> spmv_csr_ref64(const sparse::CsrMatrix& a,
                                   std::span<const float> x,
                                   std::span<const float> y, float alpha,
                                   float beta)
{
    SERPENS_CHECK(x.size() == a.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y.size() == a.rows(), "y length must equal matrix rows");
    std::vector<double> out(a.rows());
    for (index_t r = 0; r < a.rows(); ++r) {
        double sum = 0.0;
        for (nnz_t i = a.row_begin(r); i < a.row_end(r); ++i)
            sum += static_cast<double>(a.values()[i]) *
                   static_cast<double>(x[a.col_idx()[i]]);
        out[r] = static_cast<double>(alpha) * sum +
                 static_cast<double>(beta) * static_cast<double>(y[r]);
    }
    return out;
}

} // namespace serpens::baselines
