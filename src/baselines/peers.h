// Published peer accelerators for the paper's Table 7 comparison.
// These are real-execution SpMV systems; the paper cites their bandwidth
// and peak performance directly, so we carry them as constants.
#pragma once

#include <array>
#include <string_view>

namespace serpens::baselines {

struct PeerAccelerator {
    std::string_view name;
    double bandwidth_gbps;
    double peak_gflops;
};

// [11] Du et al., FPGA'22 (HiSparse); [25] Sadi et al., MICRO'19;
// [13] SparseP, SIGMETRICS'22 (real PIM system).
inline constexpr std::array<PeerAccelerator, 3> kPeerAccelerators{{
    {"Du et al. [11]", 258.0, 25.0},
    {"Sadi et al. [25]", 357.0, 34.0},
    {"SparseP [13]", 1770.0, 4.66},
}};

} // namespace serpens::baselines
