#include "baselines/sextans.h"

#include <algorithm>

#include "util/bitpack.h"
#include "util/check.h"

namespace serpens::baselines {

using sparse::index_t;
using sparse::nnz_t;

SextansModel::SextansModel(SextansConfig config) : config_(config)
{
    SERPENS_CHECK(config_.frequency_mhz > 0.0, "frequency must be positive");
    SERPENS_CHECK(config_.min_n >= 1, "min_n must be positive");
    SERPENS_CHECK(config_.schedule_stretch >= 1.0,
                  "schedule stretch cannot be below 1");
}

void SextansModel::spmm(const sparse::CsrMatrix& a, std::span<const float> b,
                        std::span<float> c, unsigned n, float alpha,
                        float beta) const
{
    SERPENS_CHECK(n >= 1, "SpMM width must be positive");
    SERPENS_CHECK(b.size() == static_cast<std::size_t>(a.cols()) * n,
                  "B must be cols x n");
    SERPENS_CHECK(c.size() == static_cast<std::size_t>(a.rows()) * n,
                  "C must be rows x n");
    for (index_t r = 0; r < a.rows(); ++r) {
        for (unsigned j = 0; j < n; ++j) {
            float sum = 0.0f;
            for (nnz_t i = a.row_begin(r); i < a.row_end(r); ++i)
                sum += a.values()[i] * b[static_cast<std::size_t>(a.col_idx()[i]) * n + j];
            float& out = c[static_cast<std::size_t>(r) * n + j];
            out = alpha * sum + beta * out;
        }
    }
}

std::vector<float> SextansModel::spmv(const sparse::CsrMatrix& a,
                                      std::span<const float> x,
                                      std::span<const float> y, float alpha,
                                      float beta) const
{
    SERPENS_CHECK(x.size() == a.cols(), "x length must equal matrix cols");
    SERPENS_CHECK(y.size() == a.rows(), "y length must equal matrix rows");
    const unsigned n = config_.min_n;

    // B = [x | 0 | ... | 0]: the SpMV vector occupies column 0; the other
    // columns are wasted work, exactly as in the paper's N=8 configuration.
    std::vector<float> b(static_cast<std::size_t>(a.cols()) * n, 0.0f);
    for (index_t k = 0; k < a.cols(); ++k)
        b[static_cast<std::size_t>(k) * n] = x[k];

    std::vector<float> c(static_cast<std::size_t>(a.rows()) * n, 0.0f);
    for (index_t r = 0; r < a.rows(); ++r)
        c[static_cast<std::size_t>(r) * n] = y[r];

    spmm(a, b, c, n, alpha, beta);

    std::vector<float> out(a.rows());
    for (index_t r = 0; r < a.rows(); ++r)
        out[r] = c[static_cast<std::size_t>(r) * n];
    return out;
}

std::optional<double> SextansModel::estimate_spmm_ms(std::uint64_t rows,
                                                     std::uint64_t cols,
                                                     std::uint64_t nnz,
                                                     unsigned n) const
{
    if (rows > config_.row_capacity)
        return std::nullopt;
    SERPENS_CHECK(n >= 1, "SpMM width must be positive");

    const double lanes =
        static_cast<double>(config_.a_channels) * config_.elems_per_channel;
    // ceil(N/8) passes over the sparse stream; each element feeds 8 columns.
    const double passes = static_cast<double>(ceil_div<std::uint64_t>(n, 8));
    const double sparse_cycles =
        static_cast<double>(nnz) / lanes * passes * config_.schedule_stretch;
    // Dense B on 4 channels (16 floats/line each), C read+write on 8.
    const double b_cycles =
        static_cast<double>(cols) * n / (4.0 * 16.0);
    const double c_cycles =
        2.0 * static_cast<double>(rows) * n / (8.0 * 16.0);
    const double cycles = std::max(sparse_cycles, b_cycles) + c_cycles;
    return cycles / (config_.frequency_mhz * 1e3) +
           config_.invocation_overhead_us / 1e3;
}

std::optional<double> SextansModel::estimate_spmv_ms(std::uint64_t rows,
                                                     std::uint64_t cols,
                                                     std::uint64_t nnz) const
{
    return estimate_spmm_ms(rows, cols, nnz, config_.min_n);
}

std::optional<double> SextansModel::estimate_amortized_spmv_ms(
    std::uint64_t rows, std::uint64_t cols, std::uint64_t nnz,
    unsigned n) const
{
    const std::optional<double> total = estimate_spmm_ms(rows, cols, nnz, n);
    if (!total)
        return std::nullopt;
    return *total / static_cast<double>(n);
}

} // namespace serpens::baselines
