// 512-bit HBM bus line.
//
// Every Serpens Rd/Wr module moves one 512-bit line per cycle (paper §3.1.2):
// 16 packed FP32 values for the dense vectors, or 8 encoded 64-bit sparse
// elements for the matrix channels.
#pragma once

#include <array>
#include <cstdint>

namespace serpens::hbm {

inline constexpr unsigned kLineBits = 512;
inline constexpr unsigned kLineBytes = kLineBits / 8;
inline constexpr unsigned kWordsPerLine = kLineBits / 32;   // 16 FP32 slots
inline constexpr unsigned kElemsPerLine = kLineBits / 64;   // 8 sparse elements

struct Line512 {
    std::array<std::uint32_t, kWordsPerLine> words{};

    // 64-bit lane accessors for sparse elements: lane l occupies words
    // [2l] (low = value bits) and [2l+1] (high = index word).
    std::uint64_t lane64(unsigned lane) const
    {
        return static_cast<std::uint64_t>(words[2 * lane]) |
               (static_cast<std::uint64_t>(words[2 * lane + 1]) << 32);
    }

    void set_lane64(unsigned lane, std::uint64_t v)
    {
        words[2 * lane] = static_cast<std::uint32_t>(v);
        words[2 * lane + 1] = static_cast<std::uint32_t>(v >> 32);
    }

    friend bool operator==(const Line512&, const Line512&) = default;
};

} // namespace serpens::hbm
