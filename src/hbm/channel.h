// HBM channel stream: an ordered sequence of 512-bit lines plus traffic
// accounting. The Serpens encoder fills one ChannelStream per sparse-matrix
// channel; the simulator walks them and the analysis layer reads the
// byte counters to reproduce the paper's bandwidth-efficiency metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbm/line.h"

namespace serpens::hbm {

class ChannelStream {
public:
    ChannelStream() = default;
    explicit ChannelStream(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    void push(const Line512& line) { lines_.push_back(line); }
    std::size_t size() const { return lines_.size(); }
    bool empty() const { return lines_.empty(); }
    const Line512& line(std::size_t i) const { return lines_[i]; }
    const std::vector<Line512>& lines() const { return lines_; }

    std::uint64_t bytes() const
    {
        return static_cast<std::uint64_t>(lines_.size()) * kLineBytes;
    }

private:
    std::string name_;
    std::vector<Line512> lines_;
};

// Aggregate read/write traffic across an accelerator run. The paper's
// single-pass property (§3.2: every vector and the matrix is touched exactly
// once) is asserted by tests against these counters.
struct TrafficCounter {
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;

    void add_read(std::uint64_t b) { bytes_read += b; }
    void add_write(std::uint64_t b) { bytes_written += b; }
    std::uint64_t total() const { return bytes_read + bytes_written; }
};

// Human-readable traffic summary ("x.xx GiB read / y.yy MiB written").
std::string format_traffic(const TrafficCounter& t);

} // namespace serpens::hbm
