// HBM device specification and utilized-bandwidth math.
//
// Models the Alveo U280's HBM2 stacks as seen by the paper: 32 pseudo-
// channels, 460 GB/s aggregate peak; the paper's "utilized bandwidth"
// figures divide evenly per channel (273 GB/s over 19 channels and
// 388 GB/s over 27 channels, both = 14.37 GB/s per channel).
#pragma once

namespace serpens::hbm {

struct HbmSpec {
    int total_channels = 32;
    double per_channel_gbps = 14.375;  // 273/19 == 388/27 == 460/32
    // Sequential-burst streaming efficiency of the AXI/HBM path; HBM
    // benchmarking studies ([7], [8] in the paper) measure 0.8-0.95 for
    // long bursts.
    double stream_efficiency = 0.85;

    double peak_gbps() const { return total_channels * per_channel_gbps; }
    double utilized_gbps(int channels) const { return channels * per_channel_gbps; }
};

} // namespace serpens::hbm
