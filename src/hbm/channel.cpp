#include "hbm/channel.h"

#include <sstream>

namespace serpens::hbm {

namespace {

std::string format_bytes(std::uint64_t b)
{
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    if (b >= (1ULL << 30))
        os << static_cast<double>(b) / (1ULL << 30) << " GiB";
    else if (b >= (1ULL << 20))
        os << static_cast<double>(b) / (1ULL << 20) << " MiB";
    else if (b >= (1ULL << 10))
        os << static_cast<double>(b) / (1ULL << 10) << " KiB";
    else
        os << b << " B";
    return os.str();
}

} // namespace

std::string format_traffic(const TrafficCounter& t)
{
    return format_bytes(t.bytes_read) + " read / " + format_bytes(t.bytes_written) +
           " written";
}

} // namespace serpens::hbm
