#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# SERPENS_WERROR=ON (the default, forced here) turns any warning in
# first-party code (src/, tools/) into a build failure.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DSERPENS_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Release-mode ingestion smoke: generate a ~1M-entry .mtx, parse it with
# both the istream reference and the mmap+parallel fast parser, and require
# bit-identical triplets. The default configure above is already Release
# (see CMakeLists.txt), so the same build tree serves.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target ingest_smoke
"${BUILD_DIR}/tools/ingest_smoke" --entries 1000000
