#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# SERPENS_WERROR=ON (the default, forced here) turns any warning in
# first-party code (src/, tools/) into a build failure.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DSERPENS_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Release-mode ingestion smoke: generate a ~1M-entry .mtx, parse it with
# both the istream reference and the mmap+parallel fast parser, and require
# bit-identical triplets. The default configure above is already Release
# (see CMakeLists.txt), so the same build tree serves.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target ingest_smoke
"${BUILD_DIR}/tools/ingest_smoke" --entries 1000000

# Release-mode simulator smoke: a ~1M-entry image through the packed,
# decode-once, and batched engines; y and CycleStats must be bit-identical
# (the same lockdown the DecodedSim/BatchApps test suites pin at unit scale).
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target sim_smoke
"${BUILD_DIR}/tools/sim_smoke" --entries 1000000 --batch 3 --iters 8

# Release-mode serving smoke: concurrent clients through serve::Server
# (registry admission, batch coalescing), every response bit-compared to a
# sequential replay (the same differential the ServeServer suite pins).
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target serpens_serve
"${BUILD_DIR}/tools/serpens_serve" --smoke

# Serving throughput snapshot: 8 closed-loop clients on a 1M-nnz matrix,
# batched (max_batch 8) vs 1-request-at-a-time (max_batch 1) on the same
# serial drain — the coalescing gain the serving layer exists for.
mkdir -p "${BUILD_DIR}/bench-results"
"${BUILD_DIR}/tools/serpens_serve" \
    --matrices 1 --entries 1000000 --rows 4096 --clients 8 --requests 24 \
    --serve-threads 1 --json "${BUILD_DIR}/bench-results/BENCH_serve.json"

# Tail-latency snapshot over the wire: start the serving daemon, drive it
# with open-loop Poisson arrivals through the TCP client, and require the
# SLO gate — adaptive batching must hold p99 queue time under --slo-ms
# while throughput-greedy fixed batching (same batch_wait hold) misses it.
# serpens_serve exits non-zero if either side of that ablation fails, and
# every response is still bit-compared against a sequential replay.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target serpens_served
PORT_FILE="${BUILD_DIR}/served.port"
rm -f "${PORT_FILE}"
"${BUILD_DIR}/tools/serpens_served" --port-file "${PORT_FILE}" \
    --max-batch 8 \
    --trace-json "${BUILD_DIR}/bench-results/BENCH_served_trace.json" &
SERVED_PID=$!
for _ in $(seq 100); do
  [[ -s "${PORT_FILE}" ]] && break
  sleep 0.1
done
[[ -s "${PORT_FILE}" ]] || { echo "serpens_served never published a port"; kill "${SERVED_PID}"; exit 1; }
"${BUILD_DIR}/tools/serpens_serve" \
    --connect "127.0.0.1:$(cat "${PORT_FILE}")" \
    --arrival-rate 100 --slo-ms 20 --batch-wait-ms 80 \
    --matrices 1 --entries 200000 --rows 4096 --clients 6 --requests 50 \
    --json "${BUILD_DIR}/bench-results/BENCH_net.json" \
    --trace-json "${BUILD_DIR}/bench-results/BENCH_trace.json"
# Scrape the daemon's Prometheus exposition over the wire, then stop it;
# the clean shutdown also flushes the daemon-side trace archived above.
"${BUILD_DIR}/tools/serpens_serve" \
    --connect "127.0.0.1:$(cat "${PORT_FILE}")" \
    --dump-metrics "${BUILD_DIR}/bench-results/BENCH_metrics.prom" \
    --shutdown-daemon
wait "${SERVED_PID}"

# Crash-recovery smoke (PR 9): admit over the wire into a durable daemon,
# SIGKILL it (leaving a torn WAL tail, as a real crash would), restart it
# on the same --state-dir, and require the restarted daemon to serve the
# same matrices bit-identically WITHOUT re-encoding: --no-admit skips
# admissions entirely and --expect-recovered 2 asserts the daemon's stats
# report recovered >= 2 with encodes == 0 before any traffic runs. The
# replay report is archived as BENCH_recovery.json and schema-checked with
# the other snapshots below.
STATE_DIR="${BUILD_DIR}/served-state"
rm -rf "${STATE_DIR}"
rm -f "${PORT_FILE}"
"${BUILD_DIR}/tools/serpens_served" --port-file "${PORT_FILE}" \
    --state-dir "${STATE_DIR}" &
SERVED_PID=$!
for _ in $(seq 100); do
  [[ -s "${PORT_FILE}" ]] && break
  sleep 0.1
done
[[ -s "${PORT_FILE}" ]] || { echo "serpens_served never published a port"; kill "${SERVED_PID}"; exit 1; }
"${BUILD_DIR}/tools/serpens_serve" \
    --connect "127.0.0.1:$(cat "${PORT_FILE}")" \
    --matrices 2 --entries 200000 --rows 4096 --clients 4 --requests 12 \
    --seed 5
kill -9 "${SERVED_PID}"
wait "${SERVED_PID}" || true
printf 'TORN_TAIL' >> "${STATE_DIR}/manifest.log"
rm -f "${PORT_FILE}"
"${BUILD_DIR}/tools/serpens_served" --port-file "${PORT_FILE}" \
    --state-dir "${STATE_DIR}" \
    --recovery-json "${BUILD_DIR}/bench-results/BENCH_recovery.json" &
SERVED_PID=$!
for _ in $(seq 100); do
  [[ -s "${PORT_FILE}" ]] && break
  sleep 0.1
done
[[ -s "${PORT_FILE}" ]] || { echo "serpens_served never published a port"; kill "${SERVED_PID}"; exit 1; }
"${BUILD_DIR}/tools/serpens_serve" \
    --connect "127.0.0.1:$(cat "${PORT_FILE}")" \
    --matrices 2 --entries 200000 --rows 4096 --clients 4 --requests 12 \
    --seed 5 --no-admit --expect-recovered 2 \
    --shutdown-daemon
wait "${SERVED_PID}"

# Deadline-shedding ablation (PR 8): drive the server at 2x its calibrated
# serial capacity through open-loop Poisson arrivals from 32 blocking
# clients. With a 10 ms per-request budget the dispatcher sheds expired
# requests at batch-forming time and the SERVED requests' p99 e2e stays
# inside the deadline band; the no-deadline baseline on the same arrival
# schedule queues without bound and lands far outside it. serpens_serve
# exits non-zero if shedding never triggered, if the deadline loop missed
# the band, or if the baseline sat inside it (overload not biting).
"${BUILD_DIR}/tools/serpens_serve" \
    --matrices 2 --entries 1000000 --clients 32 --requests 16 \
    --overload 2 --deadline-ms 10 --warmup 32 --seed 7 \
    --json "${BUILD_DIR}/bench-results/BENCH_fault.json"

# All serving snapshots must satisfy the schema validator (the same one
# the ServeStats suite pins); a malformed archive fails CI here, not in
# whatever downstream tooling reads bench-results/.
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_serve.json"
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_net.json"
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_fault.json"
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_recovery.json"
# Observability artifacts ride the same gate: --check-snapshot dispatches
# on content, so Chrome trace JSON and Prometheus text get their own
# structural validators (tests/test_obs_*.cpp pin what they reject).
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_trace.json"
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_served_trace.json"
"${BUILD_DIR}/tools/serpens_serve" \
    --check-snapshot "${BUILD_DIR}/bench-results/BENCH_metrics.prom"

# Batched device-mode ablation: amortized per-SpMV device time over
# B = 1..32 at 1M nnz (real batched executions + analytic + Sextans
# cross-check). The binary exits non-zero if amortized time fails to
# strictly improve from B=1 to B=8 or is not monotone over the sweep, so
# archiving the snapshot doubles as a model regression gate.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_ablation_batch
"${BUILD_DIR}/bench/bench_ablation_batch" --entries 1000000 \
    --json "${BUILD_DIR}/bench-results/BENCH_batch.json"

# Perf trajectory: machine-readable micro-bench snapshots, archived under
# bench-results/ so regressions show up as diffs in the numbers. Skipped
# when Google Benchmark is not installed (the binaries are not built).
if [[ -x "${BUILD_DIR}/bench/bench_micro_sim" ]]; then
  mkdir -p "${BUILD_DIR}/bench-results"
  "${BUILD_DIR}/bench/bench_micro_sim" \
      --benchmark_filter='bm_sim_(packed_ref|decode|decoded)/1000000|bm_sim_batch' \
      --benchmark_min_time=0.2 \
      --json="${BUILD_DIR}/bench-results/BENCH_sim.json"
  "${BUILD_DIR}/bench/bench_micro_parse" \
      --benchmark_filter='bm_parse_(reference|fast_1t)/1000000$' \
      --benchmark_min_time=0.2 \
      --json="${BUILD_DIR}/bench-results/BENCH_parse.json"
  echo "benchmark snapshots archived in ${BUILD_DIR}/bench-results/"
fi
