#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# SERPENS_WERROR=ON (the default, forced here) turns any warning in
# first-party code (src/, tools/) into a build failure.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DSERPENS_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
