// ingest_smoke — Release-mode ingestion smoke test for CI.
//
// Generates a ~1M-entry matrix, writes it as a real .mtx file, reads it
// back through both parsers (istream reference and mmap+parallel fast
// path), and verifies the triplets are bit-identical. Prints the measured
// throughput of each parser so CI logs double as a coarse perf trend.
//
//   ingest_smoke [--entries N] [--dir PATH]
//
// Exit code 0 on success, 1 on any mismatch or error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "sparse/generators.h"
#include "sparse/matrix_market.h"
#include "util/bitpack.h"

namespace {

using namespace serpens;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const sparse::CooMatrix& a, const sparse::CooMatrix& b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz())
        return false;
    for (std::size_t i = 0; i < a.nnz(); ++i) {
        const sparse::Triplet& ta = a.elements()[i];
        const sparse::Triplet& tb = b.elements()[i];
        if (ta.row != tb.row || ta.col != tb.col ||
            float_bits(ta.val) != float_bits(tb.val))
            return false;
    }
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    std::uint64_t entries = 1'000'000;
    std::string dir = std::filesystem::temp_directory_path().string();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
            entries = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            dir = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: ingest_smoke [--entries N] [--dir PATH]\n");
            return 1;
        }
    }

    try {
        const auto n = static_cast<sparse::index_t>(
            std::max<std::uint64_t>(65'536, entries / 16));
        std::printf("generating %llu-entry uniform matrix (%u x %u)...\n",
                    static_cast<unsigned long long>(entries), n, n);
        const auto m = sparse::make_uniform_random(
            n, n, static_cast<sparse::nnz_t>(entries), 1);

        const std::string path = dir + "/serpens_ingest_smoke.mtx";
        write_matrix_market_file(path, m);
        const auto file_bytes = std::filesystem::file_size(path);
        std::printf("wrote %s (%.1f MB, %llu nnz)\n", path.c_str(),
                    static_cast<double>(file_bytes) / 1e6,
                    static_cast<unsigned long long>(m.nnz()));

        auto t0 = Clock::now();
        const auto ref = sparse::read_matrix_market_reference_file(path);
        const double ref_s = seconds_since(t0);

        t0 = Clock::now();
        const auto fast = sparse::read_matrix_market_fast_file(path, {});
        const double fast_s = seconds_since(t0);

        std::printf("reference: %.3f s (%.1f MB/s)\n", ref_s,
                    static_cast<double>(file_bytes) / 1e6 / ref_s);
        std::printf("fast:      %.3f s (%.1f MB/s, %.1fx)\n", fast_s,
                    static_cast<double>(file_bytes) / 1e6 / fast_s,
                    ref_s / fast_s);

        std::filesystem::remove(path);
        if (!identical(fast, ref)) {
            std::fprintf(stderr, "FAIL: parsers disagree\n");
            return 1;
        }
        if (!identical(ref, m)) {
            std::fprintf(stderr, "FAIL: write -> read round trip drifted\n");
            return 1;
        }
        std::printf("OK: %llu triplets bit-identical across both parsers\n",
                    static_cast<unsigned long long>(ref.nnz()));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: %s\n", e.what());
        return 1;
    }
}
