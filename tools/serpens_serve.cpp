// serpens_serve — closed-loop multi-client benchmark of the serving layer.
//
// Generates several synthetic matrices, admits them into a serve::Server,
// then hammers it with C closed-loop client threads (each issues its next
// blocking request as soon as the previous one returns). Run twice — once
// with batch coalescing (max_batch = B) and once degraded to
// 1-request-at-a-time (max_batch = 1) — and report the aggregate nnz/s of
// both, so the number the serving layer exists for (batched coalescing
// beating serial serving) is measured, not assumed.
//
//   serpens_serve [--matrices M] [--entries N] [--clients C]
//                 [--requests R] [--max-batch B] [--serve-threads T]
//                 [--budget-mb MB] [--seed S] [--json FILE] [--smoke]
//                 [--no-compare] [--a24]
//
// Every response is checked bit-identical against a sequential replay of
// the recorded request trace through direct Accelerator::run — the same
// differential contract the unit suites pin at small scale. --smoke runs
// a small preset suitable for CI (Release and ASan).
//
// Exit code 0 on success, 1 on any mismatch or error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/snapshot.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace {

using namespace serpens;
using Clock = std::chrono::steady_clock;

struct Args {
    unsigned matrices = 3;
    std::uint64_t entries = 1'000'000;
    unsigned rows = 0;            // 0 = entries / 16
    unsigned clients = 8;
    unsigned requests = 24;       // per client
    unsigned max_batch = 8;
    unsigned serve_threads = 0;   // one per hardware thread
    std::uint64_t budget_mb = 0;  // 0 = unlimited
    std::uint64_t seed = 1;
    std::string json_path;
    bool smoke = false;
    bool compare_unbatched = true;
    bool vary_scalars = false;
    bool a24 = false;
};

// One completed request as the clients recorded it: enough to replay the
// whole trace sequentially through a direct Accelerator.
struct TraceEntry {
    unsigned matrix = 0;
    std::uint64_t seed = 0;      // drives matrix/scalar selection
    std::uint64_t vec_seed = 0;  // x/y vectors are regenerated from this
    float alpha = 1.0f;
    float beta = 0.0f;
    std::vector<float> y_out;
    sim::CycleStats cycles;
    double queue_ms = 0.0;
    double service_ms = 0.0;
    double device_amortized_ms = 0.0;  // SpMM-mode per-SpMV device time
    unsigned batch_width = 1;
};

// Distinct (x, y) pairs per matrix, generated before the timed loop so the
// closed-loop wall clock measures serving, not vector synthesis. Requests
// cycle through the pool; the sequential replay regenerates the same
// vectors from vec_seed.
constexpr unsigned kVectorPool = 16;

std::uint64_t pool_seed(std::uint64_t base, unsigned matrix, unsigned k)
{
    return base * 7919 + matrix * 1000003ull + k;
}

struct LoopResult {
    double wall_s = 0.0;
    double nnz_per_s = 0.0;
    double mean_queue_ms = 0.0;
    double mean_service_ms = 0.0;
    double mean_batch_width = 0.0;
    double mean_device_amortized_ms = 0.0;
    serve::ServerStats stats;
    std::vector<TraceEntry> trace;
};

void fill_vectors(std::uint64_t seed, sparse::index_t cols,
                  sparse::index_t rows, std::vector<float>& x,
                  std::vector<float>& y)
{
    Rng rng(seed);
    x.resize(cols);
    y.resize(rows);
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    for (float& v : y)
        v = rng.next_float(-1.0f, 1.0f);
}

// alpha/beta for request `seed`. With --vary-scalars (on in --smoke) a
// small deterministic menu makes distinct scalar groups occur — requests
// coalesce only within a (matrix, alpha, beta) key, so this exercises the
// grouping logic. Off (the perf-measurement default) every request shares
// one key and the batched/unbatched comparison isolates coalescing.
void pick_scalars(bool vary, std::uint64_t seed, float& alpha, float& beta)
{
    if (!vary) {
        alpha = 1.0f;
        beta = 0.0f;
        return;
    }
    static const float alphas[] = {1.0f, 1.0f, 1.0f, 0.85f};
    static const float betas[] = {0.0f, 0.0f, -0.5f, 1.0f};
    alpha = alphas[seed % 4];
    beta = betas[seed % 4];
}

LoopResult run_closed_loop(const core::SerpensConfig& cfg,
                           const std::vector<sparse::CooMatrix>& matrices,
                           const Args& args)
{
    serve::Server server(cfg);
    std::vector<sparse::index_t> rows, cols;
    std::vector<std::uint64_t> nnz;
    for (unsigned m = 0; m < matrices.size(); ++m) {
        server.registry().admit("m" + std::to_string(m), matrices[m]);
        rows.push_back(matrices[m].rows());
        cols.push_back(matrices[m].cols());
        nnz.push_back(matrices[m].nnz());
    }

    const unsigned total = args.clients * args.requests;
    std::vector<TraceEntry> trace(total);
    std::atomic<bool> failed{false};

    // Pre-generate the request vectors (see kVectorPool).
    std::vector<std::vector<std::vector<float>>> pool_x(matrices.size()),
        pool_y(matrices.size());
    for (unsigned m = 0; m < matrices.size(); ++m) {
        pool_x[m].resize(kVectorPool);
        pool_y[m].resize(kVectorPool);
        for (unsigned k = 0; k < kVectorPool; ++k)
            fill_vectors(pool_seed(args.seed, m, k), cols[m], rows[m],
                         pool_x[m][k], pool_y[m][k]);
    }

    const Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(args.clients);
    for (unsigned c = 0; c < args.clients; ++c) {
        clients.emplace_back([&, c] {
            try {
                for (unsigned r = 0; r < args.requests; ++r) {
                    const unsigned slot = c * args.requests + r;
                    TraceEntry& t = trace[slot];
                    t.seed = args.seed * 7919 + slot;
                    t.matrix = static_cast<unsigned>(
                        (t.seed / 3) % matrices.size());
                    const unsigned k =
                        static_cast<unsigned>(t.seed % kVectorPool);
                    t.vec_seed = pool_seed(args.seed, t.matrix, k);
                    pick_scalars(args.vary_scalars, t.seed, t.alpha, t.beta);
                    serve::SpmvResult res = server.spmv(
                        "m" + std::to_string(t.matrix),
                        pool_x[t.matrix][k], pool_y[t.matrix][k], t.alpha,
                        t.beta);
                    t.y_out = std::move(res.run.y);
                    t.cycles = res.run.cycles;
                    t.queue_ms = res.queue_ms;
                    t.service_ms = res.service_ms;
                    t.device_amortized_ms = res.device_amortized_ms;
                    t.batch_width = res.batch_width;
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "client %u failed: %s\n", c, e.what());
                failed.store(true);
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (failed.load())
        throw std::runtime_error("a client thread failed");
    // Promises resolve before the dispatcher's stats bookkeeping; drain()
    // returns only after the round fully retires, so the snapshot is
    // consistent with the trace.
    server.drain();

    LoopResult out;
    out.wall_s = wall_s;
    out.stats = server.stats();
    std::uint64_t nnz_served = 0;
    double width_sum = 0.0;
    for (const TraceEntry& t : trace) {
        nnz_served += nnz[t.matrix];
        out.mean_queue_ms += t.queue_ms;
        out.mean_service_ms += t.service_ms;
        out.mean_device_amortized_ms += t.device_amortized_ms;
        width_sum += t.batch_width;
    }
    out.nnz_per_s = static_cast<double>(nnz_served) / wall_s;
    out.mean_queue_ms /= total;
    out.mean_service_ms /= total;
    out.mean_device_amortized_ms /= total;
    out.mean_batch_width = width_sum / total;
    out.trace = std::move(trace);
    return out;
}

// Sequential replay: the differential lockdown. Every recorded response
// must be bit-identical to a direct Accelerator::run on the same inputs.
bool replay_matches(const core::SerpensConfig& cfg,
                    const std::vector<sparse::CooMatrix>& matrices,
                    const std::vector<TraceEntry>& trace)
{
    const core::Accelerator acc(cfg);
    std::vector<core::PreparedMatrix> prepared;
    prepared.reserve(matrices.size());
    for (const sparse::CooMatrix& m : matrices)
        prepared.push_back(acc.prepare(m));

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry& t = trace[i];
        std::vector<float> x, y;
        fill_vectors(t.vec_seed, prepared[t.matrix].cols(),
                     prepared[t.matrix].rows(), x, y);
        const core::RunResult direct =
            acc.run(prepared[t.matrix], x, y, t.alpha, t.beta);
        bool ok = direct.y.size() == t.y_out.size();
        for (std::size_t j = 0; ok && j < direct.y.size(); ++j)
            ok = float_bits(direct.y[j]) == float_bits(t.y_out[j]);
        ok = ok && direct.cycles.compute_cycles == t.cycles.compute_cycles &&
             direct.cycles.x_load_cycles == t.cycles.x_load_cycles &&
             direct.cycles.y_phase_cycles == t.cycles.y_phase_cycles &&
             direct.cycles.fill_cycles == t.cycles.fill_cycles &&
             direct.cycles.total_slots == t.cycles.total_slots &&
             direct.cycles.padding_slots == t.cycles.padding_slots;
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL: request %zu (matrix m%u, batch width %u) "
                         "diverges from sequential replay\n",
                         i, t.matrix, t.batch_width);
            return false;
        }
    }
    return true;
}

void print_loop(const char* label, const LoopResult& r)
{
    std::printf("%s\n", label);
    std::printf("  wall:      %.3f s, %.1f Mnnz/s aggregate\n", r.wall_s,
                r.nnz_per_s / 1e6);
    std::printf("  latency:   %.3f ms mean queue + %.3f ms mean service\n",
                r.mean_queue_ms, r.mean_service_ms);
    std::printf("  batching:  %.2f mean width (max %" PRIu64
                ", %" PRIu64 " of %" PRIu64 " requests coalesced, "
                "%" PRIu64 " batches, %" PRIu64 " rounds)\n",
                r.mean_batch_width, r.stats.max_batch_seen,
                r.stats.coalesced, r.stats.requests, r.stats.batches,
                r.stats.rounds);
    std::printf("  device:    %.4f ms/SpMV amortized (SpMM mode)\n",
                r.mean_device_amortized_ms);
}

serve::LoopSnapshot loop_snapshot(const LoopResult& r)
{
    serve::LoopSnapshot s;
    s.wall_s = r.wall_s;
    s.nnz_per_s = r.nnz_per_s;
    s.mean_queue_ms = r.mean_queue_ms;
    s.mean_service_ms = r.mean_service_ms;
    s.mean_batch_width = r.mean_batch_width;
    s.mean_device_amortized_ms = r.mean_device_amortized_ms;
    s.stats = r.stats;
    return s;
}

void write_json(const std::string& path, const Args& args,
                const LoopResult& batched, const LoopResult* unbatched)
{
    serve::ServeSnapshot snap;
    snap.matrices = args.matrices;
    snap.entries = args.entries;
    snap.clients = args.clients;
    snap.requests_per_client = args.requests;
    snap.max_batch = args.max_batch;
    snap.serve_threads = args.serve_threads;
    snap.batched = loop_snapshot(batched);
    if (unbatched)
        snap.unbatched = loop_snapshot(*unbatched);

    const std::string json = serve::to_json(snap);
    std::string schema_error;
    if (!serve::validate_snapshot_json(json, &schema_error))
        throw std::runtime_error("snapshot failed its own schema check: " +
                                 schema_error);

    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << json;
}

int usage()
{
    std::fprintf(
        stderr,
        "usage: serpens_serve [--matrices M] [--entries N] [--rows R]\n"
        "                     [--clients C]\n"
        "                     [--requests R] [--max-batch B]\n"
        "                     [--serve-threads T] [--budget-mb MB]\n"
        "                     [--seed S] [--json FILE] [--smoke]\n"
        "                     [--vary-scalars] [--no-compare] [--a24]\n");
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             flag.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (flag == "--matrices")
            args.matrices = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--entries")
            args.entries = std::strtoull(next(), nullptr, 10);
        else if (flag == "--rows")
            args.rows = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--clients")
            args.clients = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--requests")
            args.requests = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--max-batch")
            args.max_batch = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--serve-threads")
            args.serve_threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--budget-mb")
            args.budget_mb = std::strtoull(next(), nullptr, 10);
        else if (flag == "--seed")
            args.seed = std::strtoull(next(), nullptr, 10);
        else if (flag == "--json")
            args.json_path = next();
        else if (flag == "--smoke") {
            args.smoke = true;
            args.vary_scalars = true;
            args.matrices = 2;
            args.entries = 120'000;
            args.clients = 6;
            args.requests = 8;
        } else if (flag == "--vary-scalars")
            args.vary_scalars = true;
        else if (flag == "--no-compare")
            args.compare_unbatched = false;
        else if (flag == "--a24")
            args.a24 = true;
        else
            return usage();
    }
    if (args.matrices == 0 || args.clients == 0 || args.requests == 0)
        return usage();

    try {
        core::SerpensConfig cfg = args.a24 ? core::SerpensConfig::a24()
                                           : core::SerpensConfig::a16();
        cfg.serve_threads = args.serve_threads;
        cfg.max_batch = args.max_batch;
        cfg.resident_budget_bytes = args.budget_mb * (1ull << 20);

        // A mixed fleet: uniform, clustered, banded row structure cycling
        // over the matrix slots so the scheduler sees heterogeneous service
        // times.
        std::vector<sparse::CooMatrix> matrices;
        for (unsigned m = 0; m < args.matrices; ++m) {
            const auto n = static_cast<sparse::index_t>(
                args.rows != 0
                    ? args.rows
                    : std::max<std::uint64_t>(4096, args.entries / 16));
            const auto nnz = static_cast<sparse::nnz_t>(args.entries);
            const auto kind_seed = args.seed + m;
            if (m % 3 == 0)
                matrices.push_back(sparse::make_uniform_random(
                    n, n, nnz, kind_seed));
            else if (m % 3 == 1)
                matrices.push_back(sparse::make_clustered(
                    n, nnz, 8, 64, 0.3, kind_seed));
            else
                matrices.push_back(sparse::make_banded(
                    n, std::max<sparse::index_t>(
                           1, static_cast<sparse::index_t>(nnz / n)),
                    kind_seed));
        }
        std::printf("serving %u matrices (~%" PRIu64
                    " entries each), %u clients x %u requests, "
                    "max batch %u\n",
                    args.matrices, args.entries, args.clients, args.requests,
                    args.max_batch);

        const LoopResult batched = run_closed_loop(cfg, matrices, args);
        print_loop("batched serving:", batched);

        if (!replay_matches(cfg, matrices, batched.trace))
            return 1;
        std::printf("OK: all %u responses bit-identical to sequential "
                    "replay\n",
                    args.clients * args.requests);

        const LoopResult* unbatched_ptr = nullptr;
        LoopResult unbatched;
        if (args.compare_unbatched) {
            core::SerpensConfig serial_cfg = cfg;
            serial_cfg.max_batch = 1;
            unbatched = run_closed_loop(serial_cfg, matrices, args);
            print_loop("unbatched serving (max_batch 1):", unbatched);
            if (!replay_matches(serial_cfg, matrices, unbatched.trace))
                return 1;
            std::printf("batched speedup: %.2fx aggregate nnz/s\n",
                        batched.nnz_per_s / unbatched.nnz_per_s);
            unbatched_ptr = &unbatched;
        }

        if (!args.json_path.empty()) {
            write_json(args.json_path, args, batched, unbatched_ptr);
            std::printf("snapshot written to %s\n", args.json_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: %s\n", e.what());
        return 1;
    }
}
