// serpens_serve — multi-client benchmark of the serving layer, closed- or
// open-loop, in-process or against a running serpens_served daemon.
//
// Closed loop (default): C client threads each issue their next blocking
// request the moment the previous one returns. Run twice — batch
// coalescing on (max_batch = B) vs degraded to 1-request-at-a-time — and
// report the aggregate nnz/s of both, so the number the serving layer
// exists for (batched coalescing beating serial serving) is measured, not
// assumed.
//
// Open loop (--arrival-rate R > 0): requests arrive on a Poisson process
// at R req/s regardless of completions — the serving-under-SLO story. The
// same arrival schedule is driven twice against one server: once with the
// fixed throughput-greedy batcher (width max_batch, hold batch_wait_ms)
// and once with the SLO controller enabled (--slo-ms). The tool reports
// p50/p99 queue / service / end-to-end latency for both and, when an SLO
// is set, gates on the headline claim: adaptive meets the p99 queue-time
// target that fixed max_batch misses.
//
//   serpens_serve [--matrices M] [--entries N] [--rows R] [--clients C]
//                 [--requests R] [--max-batch B] [--serve-threads T]
//                 [--budget-mb MB] [--seed S] [--json FILE] [--smoke]
//                 [--no-compare] [--a24] [--vary-scalars]
//                 [--arrival-rate RPS] [--slo-ms MS] [--batch-wait-ms MS]
//                 [--queue-depth D] [--warmup W]
//                 [--connect HOST:PORT[,HOST:PORT...]]
//                 [--shutdown-daemon] [--no-admit]
//                 [--expect-recovered N] [--check-snapshot FILE]
//                 [--trace-json FILE] [--dump-metrics FILE]
//
// --connect drives the loops over TCP (one net::Client per worker thread)
// against serpens_served instead of an in-process server; the daemon must
// run the same architecture config (--a24 here iff there). Either way
// every response is checked bit-identical against a sequential replay of
// the recorded request trace through direct Accelerator::run — the
// serving layer's differential contract does not weaken across the wire.
//
// A comma-separated --connect list enables client failover: each worker
// wraps its endpoints in net::FailoverClient (per-endpoint circuit
// breaker with half-open ping probes), admin operations target the FIRST
// endpoint, and the loop snapshots carry the observed failover count.
//
// --no-admit skips the wire admissions (the daemon is expected to already
// hold the fleet — e.g. recovered from --state-dir); the replay gate still
// regenerates the matrices locally, so a recovered daemon must serve
// bit-identical bits to pass. --expect-recovered N additionally asserts
// the daemon's stats report at least N recovered residents and zero
// encodes — the warm-restart contract, checked from the client side.
//
// --check-snapshot validates an archived snapshot against its schema and
// exits — how CI re-checks BENCH_serve.json / BENCH_net.json /
// BENCH_recovery.json, and now also Chrome trace JSON and Prometheus
// metric expositions (the document kind is auto-detected).
//
// --trace-json FILE records every issued request's client-side lifecycle
// (request span, retry attempts, backoff sleeps, failover moves) plus —
// in-process mode — the server's queue/batch/device spans, and writes
// Chrome trace-event JSON there. Against a daemon running with its own
// --trace-json, the shared trace ids stitch the two files in Perfetto.
// --dump-metrics FILE (needs --connect) scrapes the daemon's Prometheus
// exposition, self-validates it, writes it, and exits without running any
// loops; combine with --shutdown-daemon to scrape-then-stop.
//
// Exit code 0 on success, 1 on any mismatch, schema failure, missed SLO
// gate, or error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/failover.h"
#include "net/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/fs.h"
#include "util/rng.h"

namespace {

using namespace serpens;
using Clock = std::chrono::steady_clock;

struct Args {
    unsigned matrices = 3;
    std::uint64_t entries = 1'000'000;
    unsigned rows = 0;            // 0 = entries / 16
    unsigned clients = 8;
    unsigned requests = 24;       // per client (measured; warmup on top)
    unsigned max_batch = 8;
    unsigned serve_threads = 0;   // one per hardware thread
    std::uint64_t budget_mb = 0;  // 0 = unlimited
    std::uint64_t seed = 1;
    std::string json_path;
    bool smoke = false;
    bool compare = true;
    bool vary_scalars = false;
    bool a24 = false;
    // Open-loop shape.
    double arrival_rate = 0.0;    // req/s; > 0 switches to open loop
    double slo_ms = 0.0;          // p99 queue-time target for the adaptive loop
    double batch_wait_ms = 0.0;   // batch-forming hold for both loops
    std::uint64_t queue_depth = 0;  // admission bound (0 = unbounded)
    unsigned warmup = 32;         // leading requests excluded from stats
    // Fault tolerance (PR 8).
    double deadline_ms = 0.0;     // per-request budget; > 0 in open loop
                                  // switches to the shedding ablation
    double overload = 0.0;        // calibrate arrival rate to X times the
                                  // measured serial service capacity
    bool retry = false;           // retry/backoff on retryable failures
    // Network mode.
    std::vector<net::Endpoint> endpoints;  // empty = in-process
    bool shutdown_daemon = false;
    bool no_admit = false;           // fleet already resident on the daemon
    std::int64_t expect_recovered = -1;  // >= 0: assert warm-restart stats
    std::string check_snapshot;
    // Observability (PR 10).
    std::string trace_json;    // write client-side Chrome trace JSON here
    std::string dump_metrics;  // scrape the daemon's Prometheus text here
};

// One completed request as the clients recorded it: enough to replay the
// whole trace sequentially through a direct Accelerator.
struct TraceEntry {
    bool ok = false;             // completed (false: rejected or warm-up slot
                                 // of a loop that was cut short)
    bool measured = true;        // false for warmup arrivals
    unsigned matrix = 0;
    std::uint64_t seed = 0;      // drives matrix/scalar selection
    std::uint64_t vec_seed = 0;  // x/y vectors are regenerated from this
    float alpha = 1.0f;
    float beta = 0.0f;
    std::vector<float> y_out;
    sim::CycleStats cycles;
    double queue_ms = 0.0;
    double service_ms = 0.0;
    double e2e_ms = 0.0;         // client-observed, from scheduled arrival
    double device_amortized_ms = 0.0;  // SpMM-mode per-SpMV device time
    unsigned batch_width = 1;
};

// Distinct (x, y) pairs per matrix, generated before the timed loop so the
// loop wall clock measures serving, not vector synthesis. Requests cycle
// through the pool; the sequential replay regenerates the same vectors
// from vec_seed.
constexpr unsigned kVectorPool = 16;

std::uint64_t pool_seed(std::uint64_t base, unsigned matrix, unsigned k)
{
    return base * 7919 + matrix * 1000003ull + k;
}

struct LoopResult {
    serve::LoopSnapshot snap;
    std::vector<TraceEntry> trace;
    std::uint64_t rejected = 0;  // client-observed admission refusals
    std::uint64_t shed = 0;      // client-observed deadline sheds
};

void fill_vectors(std::uint64_t seed, sparse::index_t cols,
                  sparse::index_t rows, std::vector<float>& x,
                  std::vector<float>& y)
{
    Rng rng(seed);
    x.resize(cols);
    y.resize(rows);
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    for (float& v : y)
        v = rng.next_float(-1.0f, 1.0f);
}

// alpha/beta for request `seed`. With --vary-scalars (on in --smoke) a
// small deterministic menu makes distinct scalar groups occur — requests
// coalesce only within a (matrix, alpha, beta) key, so this exercises the
// grouping logic. Off (the perf-measurement default) every request shares
// one key and the batched/unbatched comparison isolates coalescing.
void pick_scalars(bool vary, std::uint64_t seed, float& alpha, float& beta)
{
    if (!vary) {
        alpha = 1.0f;
        beta = 0.0f;
        return;
    }
    static const float alphas[] = {1.0f, 1.0f, 1.0f, 0.85f};
    static const float betas[] = {0.0f, 0.0f, -0.5f, 1.0f};
    alpha = alphas[seed % 4];
    beta = betas[seed % 4];
}

// Exact-rank quantile over the raw samples (the archived figures; the
// server's own histograms are octave-resolution and only feed its
// controller and stats endpoint).
double quantile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(v.size())));
    rank = std::clamp<std::size_t>(rank, 1, v.size());
    return v[rank - 1];
}

// --- shared infrastructure over the two transports ---

// One worker thread's handle on the server: in-process serve::Server or a
// net::Client connection. spmv() blocks until the response. retried()
// reports attempts beyond each request's first (0 without --retry).
class Transport {
public:
    virtual ~Transport() = default;
    // trace_id != 0 stitches server-side spans to the caller's trace (it
    // rides the wire in net mode; the in-process server sees it directly).
    virtual serve::SpmvResult spmv(const std::string& name,
                                   const std::vector<float>& x,
                                   const std::vector<float>& y, float alpha,
                                   float beta, double deadline_ms,
                                   std::uint64_t trace_id) = 0;
    virtual std::uint64_t retried() const { return 0; }
    // Endpoint switches (multi-endpoint --connect only).
    virtual std::uint64_t failovers() const { return 0; }
};

class LocalTransport : public Transport {
public:
    explicit LocalTransport(serve::Server& server) : server_(server) {}
    serve::SpmvResult spmv(const std::string& name,
                           const std::vector<float>& x,
                           const std::vector<float>& y, float alpha,
                           float beta, double deadline_ms,
                           std::uint64_t trace_id) override
    {
        return server_.spmv(name, x, y, alpha, beta, deadline_ms,
                            trace_id);
    }

private:
    serve::Server& server_;
};

// In-process counterpart of net::RetryingClient: the only retryable
// failure without a wire is QueueFullError, backed off the same way.
class RetryLocalTransport : public Transport {
public:
    RetryLocalTransport(serve::Server& server, std::uint64_t seed)
        : server_(server), rng_(seed)
    {
    }
    serve::SpmvResult spmv(const std::string& name,
                           const std::vector<float>& x,
                           const std::vector<float>& y, float alpha,
                           float beta, double deadline_ms,
                           std::uint64_t trace_id) override
    {
        const net::RetryPolicy policy;  // the documented defaults
        double backoff_ms = policy.initial_backoff_ms;
        for (unsigned attempt = 1;; ++attempt) {
            try {
                return server_.spmv(name, x, y, alpha, beta, deadline_ms,
                                    trace_id);
            } catch (const serve::QueueFullError&) {
                if (attempt >= policy.max_attempts)
                    throw;
            }
            ++retried_;
            const double scale = 1.0 - policy.jitter +
                                 policy.jitter * rng_.next_double();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms *
                                                          scale));
            backoff_ms = std::min(policy.max_backoff_ms,
                                  backoff_ms * policy.backoff_multiplier);
        }
    }
    std::uint64_t retried() const override { return retried_; }

private:
    serve::Server& server_;
    Rng rng_;
    std::uint64_t retried_ = 0;
};

serve::SpmvResult reply_to_result(net::SpmvReply reply)
{
    serve::SpmvResult res;
    res.run.y = std::move(reply.y);
    res.run.time_ms = reply.time_ms;
    res.run.cycles.x_load_cycles = reply.x_load_cycles;
    res.run.cycles.compute_cycles = reply.compute_cycles;
    res.run.cycles.y_phase_cycles = reply.y_phase_cycles;
    res.run.cycles.fill_cycles = reply.fill_cycles;
    res.run.cycles.total_slots = reply.total_slots;
    res.run.cycles.padding_slots = reply.padding_slots;
    res.queue_ms = reply.queue_ms;
    res.service_ms = reply.service_ms;
    res.device_batch_ms = reply.device_batch_ms;
    res.device_amortized_ms = reply.device_amortized_ms;
    res.batch_width = reply.batch_width;
    res.sequence = reply.sequence;
    return res;
}

class NetTransport : public Transport {
public:
    NetTransport(const std::string& host, std::uint16_t port)
        : client_(host, port, /*timeout_ms=*/120'000)
    {
    }
    serve::SpmvResult spmv(const std::string& name,
                           const std::vector<float>& x,
                           const std::vector<float>& y, float alpha,
                           float beta, double deadline_ms,
                           std::uint64_t trace_id) override
    {
        return reply_to_result(
            client_.spmv(name, x, y, alpha, beta, deadline_ms, trace_id));
    }

private:
    net::Client client_;
};

class RetryNetTransport : public Transport {
public:
    RetryNetTransport(const std::string& host, std::uint16_t port,
                      std::uint64_t seed)
        : client_(host, port, /*timeout_ms=*/120'000,
                  [&] {
                      net::RetryPolicy policy;
                      policy.seed = seed;
                      return policy;
                  }())
    {
    }
    serve::SpmvResult spmv(const std::string& name,
                           const std::vector<float>& x,
                           const std::vector<float>& y, float alpha,
                           float beta, double deadline_ms,
                           std::uint64_t trace_id) override
    {
        return reply_to_result(
            client_.spmv(name, x, y, alpha, beta, deadline_ms, trace_id));
    }
    std::uint64_t retried() const override
    {
        return client_.stats().retries;
    }

private:
    net::RetryingClient client_;
};

// Multi-endpoint transport: FailoverClient's breaker decides which daemon
// each request goes to. `seed` makes the whole failover sequence (backoff
// AND cooldown jitter) replayable.
class FailoverNetTransport : public Transport {
public:
    FailoverNetTransport(std::vector<net::Endpoint> endpoints,
                         std::uint64_t seed, bool retry)
        : client_(std::move(endpoints), /*timeout_ms=*/120'000,
                  [&] {
                      net::FailoverPolicy policy;
                      policy.seed = seed;
                      policy.retry.seed = seed * 6364136223846793005ull + 1;
                      if (!retry)
                          policy.retry.max_attempts = 1;  // breaker only
                      return policy;
                  }())
    {
    }
    serve::SpmvResult spmv(const std::string& name,
                           const std::vector<float>& x,
                           const std::vector<float>& y, float alpha,
                           float beta, double deadline_ms,
                           std::uint64_t trace_id) override
    {
        return reply_to_result(
            client_.spmv(name, x, y, alpha, beta, deadline_ms, trace_id));
    }
    std::uint64_t retried() const override
    {
        return client_.total_retries();
    }
    std::uint64_t failovers() const override
    {
        return client_.stats().failovers;
    }

private:
    net::FailoverClient client_;
};

// The whole benchmark's view of the server, whichever side of a socket it
// is on.
struct Backend {
    serve::Server* local = nullptr;      // in-process mode
    std::vector<net::Endpoint> endpoints;  // net mode (first = admin)
    std::unique_ptr<net::Client> admin;  // net mode control connection
    bool retry = false;                  // --retry: wrap transports
    std::uint64_t seed = 1;              // retry-jitter seed base

    // `worker` salts the retry-jitter stream so concurrent clients do not
    // back off in lockstep.
    std::unique_ptr<Transport> make_transport(unsigned worker)
    {
        const std::uint64_t jitter_seed = seed * 31337 + worker;
        if (local != nullptr) {
            if (retry)
                return std::make_unique<RetryLocalTransport>(*local,
                                                             jitter_seed);
            return std::make_unique<LocalTransport>(*local);
        }
        if (endpoints.size() > 1)
            return std::make_unique<FailoverNetTransport>(
                endpoints, jitter_seed, retry);
        if (retry)
            return std::make_unique<RetryNetTransport>(
                endpoints[0].host, endpoints[0].port, jitter_seed);
        return std::make_unique<NetTransport>(endpoints[0].host,
                                              endpoints[0].port);
    }

    void set_batching(unsigned max_batch, double slo_ms, double wait_ms,
                      std::uint64_t depth)
    {
        if (local != nullptr) {
            local->set_batching(max_batch, slo_ms, wait_ms,
                                static_cast<std::size_t>(depth));
            return;
        }
        net::SetBatchingRequest req;
        req.max_batch = max_batch;
        req.slo_ms = slo_ms;
        req.batch_wait_ms = wait_ms;
        req.max_queue_depth = depth;
        admin->set_batching(req);
    }

    // Dispatcher-side counters, local or parsed back out of the daemon's
    // stats JSON (per-loop figures are the difference of two snapshots).
    serve::ServerStats counters()
    {
        if (local != nullptr)
            return local->stats();
        const std::string json = admin->stats_json();
        std::string schema_error;
        if (!serve::validate_server_stats_json(json, &schema_error))
            throw std::runtime_error("daemon stats failed schema check: " +
                                     schema_error);
        serve::ServerStats s;
        std::size_t cursor = 0;
        const auto read = [&](const char* key) {
            double v = 0.0;
            if (!serve::find_number_after_key(json, key, &cursor, &v))
                throw std::runtime_error(std::string("daemon stats: no ") +
                                         key);
            return v;
        };
        s.requests = static_cast<std::uint64_t>(read("requests"));
        s.batches = static_cast<std::uint64_t>(read("batches"));
        s.rounds = static_cast<std::uint64_t>(read("rounds"));
        s.coalesced = static_cast<std::uint64_t>(read("coalesced"));
        s.max_batch_seen = static_cast<std::uint64_t>(read("max_batch_seen"));
        s.rejected = static_cast<std::uint64_t>(read("rejected"));
        s.shed = static_cast<std::uint64_t>(read("shed"));
        s.batch_shrinks = static_cast<std::uint64_t>(read("batch_shrinks"));
        s.batch_grows = static_cast<std::uint64_t>(read("batch_grows"));
        s.current_max_batch =
            static_cast<std::uint64_t>(read("current_max_batch"));
        s.p99_queue_ewma_ms = read("p99_queue_ewma_ms");
        return s;
    }
};

// Attach dispatcher-side counters to a finished loop as the difference of
// two stats snapshots (one server carries all loops, so raw counters are
// cumulative). max_batch_seen is a cumulative gauge that cannot be
// diffed; the widest batch this loop actually produced is read off the
// trace's width histogram instead.
void attach_counters(LoopResult& r, const serve::ServerStats& before,
                     const serve::ServerStats& after)
{
    serve::ServerStats d = after;
    d.requests = after.requests - before.requests;
    d.batches = after.batches - before.batches;
    d.rounds = after.rounds - before.rounds;
    d.coalesced = after.coalesced - before.coalesced;
    d.rejected = after.rejected - before.rejected;
    d.shed = after.shed - before.shed;
    d.batch_shrinks = after.batch_shrinks - before.batch_shrinks;
    d.batch_grows = after.batch_grows - before.batch_grows;
    d.max_batch_seen = r.snap.width_hist.size();
    r.snap.stats = d;
}

// Aggregate the per-request trace into the archived loop snapshot.
void summarize(LoopResult& out, const std::vector<std::uint64_t>& nnz,
               double wall_s)
{
    serve::LoopSnapshot& s = out.snap;
    s.wall_s = wall_s;
    std::vector<double> queue, service, e2e;
    std::uint64_t nnz_served = 0, n = 0;
    double width_sum = 0.0;
    for (const TraceEntry& t : out.trace) {
        if (!t.ok || !t.measured)
            continue;
        ++n;
        nnz_served += nnz[t.matrix];
        queue.push_back(t.queue_ms);
        service.push_back(t.service_ms);
        e2e.push_back(t.e2e_ms);
        s.mean_queue_ms += t.queue_ms;
        s.mean_service_ms += t.service_ms;
        s.mean_device_amortized_ms += t.device_amortized_ms;
        width_sum += t.batch_width;
        if (t.batch_width > s.width_hist.size())
            s.width_hist.resize(t.batch_width, 0);
        ++s.width_hist[t.batch_width - 1];
    }
    if (n == 0)
        throw std::runtime_error("no measured requests completed");
    s.nnz_per_s = static_cast<double>(nnz_served) / wall_s;
    s.mean_queue_ms /= static_cast<double>(n);
    s.mean_service_ms /= static_cast<double>(n);
    s.mean_device_amortized_ms /= static_cast<double>(n);
    s.mean_batch_width = width_sum / static_cast<double>(n);
    s.p50_queue_ms = quantile(queue, 0.5);
    s.p99_queue_ms = quantile(queue, 0.99);
    s.p50_service_ms = quantile(service, 0.5);
    s.p99_service_ms = quantile(service, 0.99);
    s.p50_e2e_ms = quantile(e2e, 0.5);
    s.p99_e2e_ms = quantile(e2e, 0.99);
}

// Fill one trace slot's identity (which matrix/vectors/scalars) and issue
// the blocking request through `transport`, timing end-to-end from
// `issued`.
bool issue_request(
    Transport& transport, const Args& args,
    const std::vector<std::vector<std::vector<float>>>& pool_x,
    const std::vector<std::vector<std::vector<float>>>& pool_y,
    std::size_t slot, Clock::time_point issued, TraceEntry& t,
    std::uint64_t& rejected, std::uint64_t& shed)
{
    t.seed = args.seed * 7919 + slot;
    t.matrix = static_cast<unsigned>((t.seed / 3) % pool_x.size());
    const unsigned k = static_cast<unsigned>(t.seed % kVectorPool);
    t.vec_seed = pool_seed(args.seed, t.matrix, k);
    pick_scalars(args.vary_scalars, t.seed, t.alpha, t.beta);
    // Each issued request gets a fresh trace id; every span the transport
    // stack and (via the wire) the server records for it carries this id.
    obs::TraceRecorder* const rec = obs::trace_recorder();
    const std::uint64_t trace_id =
        rec != nullptr ? rec->next_trace_id() : 0;
    const std::uint64_t start_ns = rec != nullptr ? rec->now_ns() : 0;
    try {
        serve::SpmvResult res = transport.spmv(
            "m" + std::to_string(t.matrix), pool_x[t.matrix][k],
            pool_y[t.matrix][k], t.alpha, t.beta, args.deadline_ms,
            trace_id);
        if (rec != nullptr)
            rec->span("client.request", "client", trace_id, start_ns,
                      rec->now_ns(), "matrix", t.matrix);
        t.e2e_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                             issued)
                       .count();
        t.y_out = std::move(res.run.y);
        t.cycles = res.run.cycles;
        t.queue_ms = res.queue_ms;
        t.service_ms = res.service_ms;
        t.device_amortized_ms = res.device_amortized_ms;
        t.batch_width = res.batch_width;
        t.ok = true;
        return true;
    } catch (const serve::QueueFullError&) {
        ++rejected;  // open-loop overload is data, not failure
        if (rec != nullptr)
            rec->instant("client.rejected", "client", trace_id);
        return true;
    } catch (const net::OverloadedError&) {
        ++rejected;
        if (rec != nullptr)
            rec->instant("client.rejected", "client", trace_id);
        return true;
    } catch (const serve::DeadlineExceededError&) {
        ++shed;  // deadline shedding is likewise data, not failure
        if (rec != nullptr)
            rec->instant("client.shed", "client", trace_id);
        return true;
    } catch (const net::DeadlineExceededError&) {
        ++shed;
        if (rec != nullptr)
            rec->instant("client.shed", "client", trace_id);
        return true;
    }
}

LoopResult run_closed_loop(Backend& backend,
                           const std::vector<std::uint64_t>& nnz,
                           const std::vector<sparse::index_t>& rows,
                           const std::vector<sparse::index_t>& cols,
                           const Args& args)
{
    const unsigned total = args.clients * args.requests;
    LoopResult out;
    out.trace.resize(total);
    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> rejected{0};

    // Pre-generate the request vectors (see kVectorPool).
    std::vector<std::vector<std::vector<float>>> pool_x(nnz.size()),
        pool_y(nnz.size());
    for (unsigned m = 0; m < nnz.size(); ++m) {
        pool_x[m].resize(kVectorPool);
        pool_y[m].resize(kVectorPool);
        for (unsigned k = 0; k < kVectorPool; ++k)
            fill_vectors(pool_seed(args.seed, m, k), cols[m], rows[m],
                         pool_x[m][k], pool_y[m][k]);
    }

    const Clock::time_point start = Clock::now();
    std::atomic<std::uint64_t> shed{0}, retried{0}, failovers{0};
    std::vector<std::thread> clients;
    clients.reserve(args.clients);
    for (unsigned c = 0; c < args.clients; ++c) {
        clients.emplace_back([&, c] {
            try {
                const std::unique_ptr<Transport> transport =
                    backend.make_transport(c);
                std::uint64_t my_rejected = 0, my_shed = 0;
                for (unsigned r = 0; r < args.requests; ++r) {
                    const std::size_t slot = c * args.requests + r;
                    issue_request(*transport, args, pool_x, pool_y, slot,
                                  Clock::now(), out.trace[slot],
                                  my_rejected, my_shed);
                }
                rejected.fetch_add(my_rejected);
                shed.fetch_add(my_shed);
                retried.fetch_add(transport->retried());
                failovers.fetch_add(transport->failovers());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "client %u failed: %s\n", c, e.what());
                failed.store(true);
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (failed.load())
        throw std::runtime_error("a client thread failed");
    // Promises resolve before the dispatcher's stats bookkeeping; drain()
    // returns only after the round fully retires, so the snapshot is
    // consistent with the trace.
    if (backend.local != nullptr)
        backend.local->drain();

    out.rejected = rejected.load();
    out.shed = shed.load();
    out.snap.retried = retried.load();
    out.snap.failovers = failovers.load();
    summarize(out, nnz, wall_s);
    return out;
}

// Open loop: a shared Poisson arrival schedule (seconds from loop start,
// the same for the fixed and adaptive runs) dealt round-robin to worker
// threads. Workers sleep until each arrival's scheduled instant and then
// issue the blocking request — completions never gate arrivals, which is
// what makes queue time an SLO subject rather than a self-limiting
// artifact of closed-loop clients.
std::vector<double> arrival_schedule(const Args& args, std::size_t total)
{
    Rng rng(args.seed * 104729 + 7);
    std::vector<double> at(total);
    double t = 0.0;
    for (std::size_t i = 0; i < total; ++i) {
        const double u = std::max(1e-12, 1.0 - rng.next_double());
        t += -std::log(u) / args.arrival_rate;
        at[i] = t;
    }
    return at;
}

LoopResult run_open_loop(Backend& backend,
                         const std::vector<std::uint64_t>& nnz,
                         const std::vector<sparse::index_t>& rows,
                         const std::vector<sparse::index_t>& cols,
                         const Args& args,
                         const std::vector<double>& arrivals)
{
    const std::size_t total = arrivals.size();
    LoopResult out;
    out.trace.resize(total);
    for (std::size_t i = 0; i < args.warmup && i < total; ++i)
        out.trace[i].measured = false;

    std::vector<std::vector<std::vector<float>>> pool_x(nnz.size()),
        pool_y(nnz.size());
    for (unsigned m = 0; m < nnz.size(); ++m) {
        pool_x[m].resize(kVectorPool);
        pool_y[m].resize(kVectorPool);
        for (unsigned k = 0; k < kVectorPool; ++k)
            fill_vectors(pool_seed(args.seed, m, k), cols[m], rows[m],
                         pool_x[m][k], pool_y[m][k]);
    }

    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> rejected{0}, shed{0}, retried{0},
        failovers{0};
    const Clock::time_point epoch = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(args.clients);
    for (unsigned c = 0; c < args.clients; ++c) {
        workers.emplace_back([&, c] {
            try {
                const std::unique_ptr<Transport> transport =
                    backend.make_transport(c);
                std::uint64_t my_rejected = 0, my_shed = 0;
                for (std::size_t slot = c; slot < total;
                     slot += args.clients) {
                    const Clock::time_point scheduled =
                        epoch + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        arrivals[slot]));
                    std::this_thread::sleep_until(scheduled);
                    // e2e runs from the scheduled arrival: client-side lag
                    // behind schedule counts against the server's tail the
                    // way a real load generator would charge it.
                    issue_request(*transport, args, pool_x, pool_y, slot,
                                  scheduled, out.trace[slot], my_rejected,
                                  my_shed);
                }
                rejected.fetch_add(my_rejected);
                shed.fetch_add(my_shed);
                retried.fetch_add(transport->retried());
                failovers.fetch_add(transport->failovers());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "worker %u failed: %s\n", c, e.what());
                failed.store(true);
            }
        });
    }
    for (std::thread& t : workers)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - epoch).count();
    if (failed.load())
        throw std::runtime_error("a worker thread failed");
    if (backend.local != nullptr)
        backend.local->drain();

    out.rejected = rejected.load();
    out.shed = shed.load();
    out.snap.retried = retried.load();
    out.snap.failovers = failovers.load();
    summarize(out, nnz, wall_s);
    return out;
}

// Sequential replay: the differential lockdown. Every recorded response
// must be bit-identical to a direct Accelerator::run on the same inputs.
bool replay_matches(const core::SerpensConfig& cfg,
                    const std::vector<sparse::CooMatrix>& matrices,
                    const std::vector<TraceEntry>& trace)
{
    const core::Accelerator acc(cfg);
    std::vector<core::PreparedMatrix> prepared;
    prepared.reserve(matrices.size());
    for (const sparse::CooMatrix& m : matrices)
        prepared.push_back(acc.prepare(m));

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry& t = trace[i];
        if (!t.ok)
            continue;  // rejected at admission: nothing to compare
        std::vector<float> x, y;
        fill_vectors(t.vec_seed, prepared[t.matrix].cols(),
                     prepared[t.matrix].rows(), x, y);
        const core::RunResult direct =
            acc.run(prepared[t.matrix], x, y, t.alpha, t.beta);
        bool ok = direct.y.size() == t.y_out.size();
        for (std::size_t j = 0; ok && j < direct.y.size(); ++j)
            ok = float_bits(direct.y[j]) == float_bits(t.y_out[j]);
        ok = ok && direct.cycles.compute_cycles == t.cycles.compute_cycles &&
             direct.cycles.x_load_cycles == t.cycles.x_load_cycles &&
             direct.cycles.y_phase_cycles == t.cycles.y_phase_cycles &&
             direct.cycles.fill_cycles == t.cycles.fill_cycles &&
             direct.cycles.total_slots == t.cycles.total_slots &&
             direct.cycles.padding_slots == t.cycles.padding_slots;
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL: request %zu (matrix m%u, batch width %u) "
                         "diverges from sequential replay\n",
                         i, t.matrix, t.batch_width);
            return false;
        }
    }
    return true;
}

void print_loop(const char* label, const LoopResult& r)
{
    const serve::LoopSnapshot& s = r.snap;
    std::printf("%s\n", label);
    std::printf("  wall:      %.3f s, %.1f Mnnz/s aggregate\n", s.wall_s,
                s.nnz_per_s / 1e6);
    std::printf("  queue:     %.3f ms mean, %.3f ms p50, %.3f ms p99\n",
                s.mean_queue_ms, s.p50_queue_ms, s.p99_queue_ms);
    std::printf("  service:   %.3f ms mean, %.3f ms p50, %.3f ms p99\n",
                s.mean_service_ms, s.p50_service_ms, s.p99_service_ms);
    std::printf("  e2e:       %.3f ms p50, %.3f ms p99\n", s.p50_e2e_ms,
                s.p99_e2e_ms);
    std::printf("  batching:  %.2f mean width (max %" PRIu64 ", %" PRIu64
                " of %" PRIu64 " requests coalesced, %" PRIu64
                " batches, %" PRIu64 " rounds, %" PRIu64 " shrinks, %" PRIu64
                " grows)\n",
                s.mean_batch_width, s.stats.max_batch_seen,
                s.stats.coalesced, s.stats.requests, s.stats.batches,
                s.stats.rounds, s.stats.batch_shrinks, s.stats.batch_grows);
    std::printf("  device:    %.4f ms/SpMV amortized (SpMM mode)\n",
                s.mean_device_amortized_ms);
    if (r.rejected != 0)
        std::printf("  rejected:  %" PRIu64 " requests at admission\n",
                    r.rejected);
    if (r.shed != 0 || s.stats.shed != 0)
        std::printf("  shed:      %" PRIu64 " requests at an expired "
                    "deadline (server counted %" PRIu64 ")\n",
                    r.shed, s.stats.shed);
    if (s.retried != 0)
        std::printf("  retried:   %" PRIu64 " attempts beyond the first\n",
                    s.retried);
    if (s.failovers != 0)
        std::printf("  failovers: %" PRIu64 " endpoint switches\n",
                    s.failovers);
}

// --overload X: calibrate the Poisson arrival rate to X times the serial
// service capacity, measured by timing a short sequential run at width 1
// on the live backend (cycling the matrix fleet like the loops do). The
// shedding ablation needs "2x overload" to mean 2x THIS machine's
// capacity, not a hardcoded rate that saturates one host and idles
// another.
double calibrate_arrival_rate(
    Backend& backend, const Args& args,
    const std::vector<std::vector<std::vector<float>>>& pool_x,
    const std::vector<std::vector<std::vector<float>>>& pool_y)
{
    const std::unique_ptr<Transport> transport = backend.make_transport(0);
    constexpr unsigned kWarm = 2, kMeasured = 8;
    double total_s = 0.0;
    for (unsigned i = 0; i < kWarm + kMeasured; ++i) {
        const unsigned m = i % static_cast<unsigned>(pool_x.size());
        const unsigned k = i % kVectorPool;
        const Clock::time_point begin = Clock::now();
        transport->spmv("m" + std::to_string(m), pool_x[m][k], pool_y[m][k],
                        1.0f, 0.0f, /*deadline_ms=*/0.0, /*trace_id=*/0);
        if (i >= kWarm)
            total_s +=
                std::chrono::duration<double>(Clock::now() - begin).count();
    }
    const double mean_s = total_s / kMeasured;
    const double rate = args.overload / std::max(mean_s, 1e-6);
    std::printf("calibration: %.3f ms mean serial service -> %.1f req/s "
                "(%.1fx overload)\n",
                mean_s * 1e3, rate, args.overload);
    return rate;
}

void write_json(const std::string& path, const Args& args, bool open_loop,
                const LoopResult& primary, const LoopResult* comparison)
{
    serve::ServeSnapshot snap;
    snap.open_loop = open_loop;
    snap.matrices = args.matrices;
    snap.entries = args.entries;
    snap.clients = args.clients;
    snap.requests_per_client = args.requests;
    snap.max_batch = args.max_batch;
    snap.serve_threads = args.serve_threads;
    snap.arrival_rate_rps = args.arrival_rate;
    snap.slo_ms = args.slo_ms;
    snap.batch_wait_ms = args.batch_wait_ms;
    snap.max_queue_depth = args.queue_depth;
    snap.deadline_ms = args.deadline_ms;
    snap.overload = args.overload;
    snap.primary = primary.snap;
    if (comparison != nullptr)
        snap.comparison = comparison->snap;

    const std::string json = serve::to_json(snap);
    std::string schema_error;
    if (!serve::validate_snapshot_json(json, &schema_error))
        throw std::runtime_error("snapshot failed its own schema check: " +
                                 schema_error);

    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << json;
}

int check_snapshot_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "FAIL: cannot read %s\n", path.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();
    // Five archived document kinds share this gate; dispatch on the
    // structure, not the filename, so CI can validate any of them.
    std::string error;
    const char* kind = "snapshot";
    bool ok = false;
    if (json.find("\"traceEvents\"") != std::string::npos) {
        kind = "Chrome trace";
        ok = obs::validate_trace_json(json, &error);
    } else if (json.rfind("# HELP", 0) == 0 ||
               json.find("# TYPE") != std::string::npos) {
        kind = "Prometheus exposition";
        ok = obs::validate_prometheus_text(json, &error);
    } else if (json.find("\"recovery\"") != std::string::npos) {
        kind = "recovery report";
        ok = serve::validate_recovery_json(json, &error);
    } else if (json.find("\"tool\": \"serpens_served\"") !=
               std::string::npos) {
        kind = "server stats";
        ok = serve::validate_server_stats_json(json, &error);
    } else {
        ok = serve::validate_snapshot_json(json, &error);
    }
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s: %s\n", path.c_str(), error.c_str());
        return 1;
    }
    std::printf("OK: %s matches the %s schema\n", path.c_str(), kind);
    return 0;
}

int usage()
{
    std::fprintf(
        stderr,
        "usage: serpens_serve [--matrices M] [--entries N] [--rows R]\n"
        "                     [--clients C] [--requests R] [--max-batch B]\n"
        "                     [--serve-threads T] [--budget-mb MB]\n"
        "                     [--seed S] [--json FILE] [--smoke]\n"
        "                     [--vary-scalars] [--no-compare] [--a24]\n"
        "                     [--arrival-rate RPS] [--slo-ms MS]\n"
        "                     [--batch-wait-ms MS] [--queue-depth D]\n"
        "                     [--warmup W] [--deadline-ms MS]\n"
        "                     [--overload X] [--retry]\n"
        "                     [--connect HOST:PORT[,HOST:PORT...]]\n"
        "                     [--shutdown-daemon] [--no-admit]\n"
        "                     [--expect-recovered N]\n"
        "                     [--check-snapshot FILE]\n"
        "                     [--trace-json FILE] [--dump-metrics FILE]\n");
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             flag.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (flag == "--matrices")
            args.matrices = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--entries")
            args.entries = std::strtoull(next(), nullptr, 10);
        else if (flag == "--rows")
            args.rows = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--clients")
            args.clients = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--requests")
            args.requests = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--max-batch")
            args.max_batch = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--serve-threads")
            args.serve_threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--budget-mb")
            args.budget_mb = std::strtoull(next(), nullptr, 10);
        else if (flag == "--seed")
            args.seed = std::strtoull(next(), nullptr, 10);
        else if (flag == "--json")
            args.json_path = next();
        else if (flag == "--arrival-rate")
            args.arrival_rate = std::strtod(next(), nullptr);
        else if (flag == "--slo-ms")
            args.slo_ms = std::strtod(next(), nullptr);
        else if (flag == "--batch-wait-ms")
            args.batch_wait_ms = std::strtod(next(), nullptr);
        else if (flag == "--queue-depth")
            args.queue_depth = std::strtoull(next(), nullptr, 10);
        else if (flag == "--warmup")
            args.warmup = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--deadline-ms")
            args.deadline_ms = std::strtod(next(), nullptr);
        else if (flag == "--overload")
            args.overload = std::strtod(next(), nullptr);
        else if (flag == "--retry")
            args.retry = true;
        else if (flag == "--connect") {
            try {
                args.endpoints = net::parse_endpoints(next());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: --connect: %s\n", e.what());
                return 1;
            }
        } else if (flag == "--shutdown-daemon")
            args.shutdown_daemon = true;
        else if (flag == "--no-admit")
            args.no_admit = true;
        else if (flag == "--expect-recovered")
            args.expect_recovered = std::strtoll(next(), nullptr, 10);
        else if (flag == "--check-snapshot")
            args.check_snapshot = next();
        else if (flag == "--trace-json")
            args.trace_json = next();
        else if (flag == "--dump-metrics")
            args.dump_metrics = next();
        else if (flag == "--smoke") {
            args.smoke = true;
            args.vary_scalars = true;
            args.matrices = 2;
            args.entries = 120'000;
            args.clients = 6;
            args.requests = 8;
        } else if (flag == "--vary-scalars")
            args.vary_scalars = true;
        else if (flag == "--no-compare")
            args.compare = false;
        else if (flag == "--a24")
            args.a24 = true;
        else
            return usage();
    }
    if (!args.check_snapshot.empty())
        return check_snapshot_file(args.check_snapshot);
    if (!args.dump_metrics.empty()) {
        // Admin-only action: scrape a live daemon's metrics, self-validate
        // the exposition, archive it, and (optionally) shut the daemon
        // down — no benchmark loops run.
        if (args.endpoints.empty()) {
            std::fprintf(stderr, "error: --dump-metrics needs --connect\n");
            return 1;
        }
        try {
            net::Client admin(args.endpoints[0].host, args.endpoints[0].port,
                              /*timeout_ms=*/120'000);
            const std::string text = admin.metrics_text();
            std::string error;
            if (!obs::validate_prometheus_text(text, &error)) {
                std::fprintf(stderr,
                             "FAIL: daemon metrics failed the exposition "
                             "check: %s\n",
                             error.c_str());
                return 1;
            }
            util::atomic_write_file(args.dump_metrics, text);
            std::printf("metrics written to %s (%zu bytes)\n",
                        args.dump_metrics.c_str(), text.size());
            if (args.shutdown_daemon) {
                admin.shutdown_daemon();
                std::printf("daemon shutdown requested\n");
            }
            return 0;
        } catch (const std::exception& e) {
            std::fprintf(stderr, "FAIL: %s\n", e.what());
            return 1;
        }
    }
    if (args.matrices == 0 || args.clients == 0 || args.requests == 0)
        return usage();
    const bool open_loop = args.arrival_rate > 0.0 || args.overload > 0.0;
    const bool deadline_mode = open_loop && args.deadline_ms > 0.0;
    if (args.overload > 0.0 && !open_loop)
        return usage();
    const bool net_mode = !args.endpoints.empty();
    if ((args.no_admit || args.expect_recovered >= 0) && !net_mode) {
        std::fprintf(stderr, "error: --no-admit/--expect-recovered need "
                             "--connect\n");
        return 1;
    }

    try {
        core::SerpensConfig cfg = args.a24 ? core::SerpensConfig::a24()
                                           : core::SerpensConfig::a16();
        cfg.serve_threads = args.serve_threads;
        cfg.max_batch = args.max_batch;
        cfg.resident_budget_bytes = args.budget_mb * (1ull << 20);
        // The shedding ablation runs both loops at width 1 against the
        // serial capacity the calibration measured — a multi-threaded
        // drain would quietly raise capacity above what "2x overload"
        // was computed from. (In net mode the daemon's width is its own;
        // run it with --serve-threads 1 for a faithful ablation.)
        if (deadline_mode)
            cfg.serve_threads = 1;

        // Declared before the server/backend so every recording thread is
        // gone before the recorder is. The snapshot is taken after the
        // loops drain, when nothing records anymore.
        std::unique_ptr<obs::TraceRecorder> recorder;
        if (!args.trace_json.empty()) {
            recorder = std::make_unique<obs::TraceRecorder>();
            obs::set_trace_recorder(recorder.get());
        }

        // A mixed fleet: uniform, clustered, banded row structure cycling
        // over the matrix slots so the scheduler sees heterogeneous service
        // times.
        std::vector<sparse::CooMatrix> matrices;
        for (unsigned m = 0; m < args.matrices; ++m) {
            const auto n = static_cast<sparse::index_t>(
                args.rows != 0
                    ? args.rows
                    : std::max<std::uint64_t>(4096, args.entries / 16));
            const auto nnz = static_cast<sparse::nnz_t>(args.entries);
            const auto kind_seed = args.seed + m;
            if (m % 3 == 0)
                matrices.push_back(sparse::make_uniform_random(
                    n, n, nnz, kind_seed));
            else if (m % 3 == 1)
                matrices.push_back(sparse::make_clustered(
                    n, nnz, 8, 64, 0.3, kind_seed));
            else
                matrices.push_back(sparse::make_banded(
                    n, std::max<sparse::index_t>(
                           1, static_cast<sparse::index_t>(nnz / n)),
                    kind_seed));
        }
        std::vector<sparse::index_t> rows, cols;
        std::vector<std::uint64_t> nnz;
        for (const sparse::CooMatrix& m : matrices) {
            rows.push_back(m.rows());
            cols.push_back(m.cols());
            nnz.push_back(m.nnz());
        }

        // Stand up the backend and admit the fleet.
        std::optional<serve::Server> local_server;
        Backend backend;
        backend.retry = args.retry;
        backend.seed = args.seed;
        if (net_mode) {
            backend.endpoints = args.endpoints;
            backend.admin = std::make_unique<net::Client>(
                backend.endpoints[0].host, backend.endpoints[0].port,
                /*timeout_ms=*/120'000);
            backend.admin->ping();
            if (args.expect_recovered >= 0) {
                // The warm-restart contract, asserted from the client
                // side BEFORE any admissions muddy the counters: the
                // daemon recovered at least N residents and re-encoded
                // nothing.
                const std::string stats = backend.admin->stats_json();
                std::size_t cursor = 0;
                double recovered = 0.0, encodes = 0.0;
                if (!serve::find_number_after_key(stats, "encodes", &cursor,
                                                  &encodes) ||
                    !serve::find_number_after_key(stats, "recovered",
                                                  &cursor, &recovered)) {
                    std::fprintf(stderr, "FAIL: daemon stats carry no "
                                         "recovery counters\n");
                    return 1;
                }
                if (recovered <
                        static_cast<double>(args.expect_recovered) ||
                    encodes != 0.0) {
                    std::fprintf(stderr,
                                 "FAIL: expected >= %lld recovered "
                                 "residents and 0 encodes, daemon reports "
                                 "%.0f recovered / %.0f encodes\n",
                                 static_cast<long long>(
                                     args.expect_recovered),
                                 recovered, encodes);
                    return 1;
                }
                std::printf("recovery check: %.0f resident(s) recovered, "
                            "0 encodes\n",
                            recovered);
            }
            if (!args.no_admit)
                for (unsigned m = 0; m < matrices.size(); ++m)
                    backend.admin->admit("m" + std::to_string(m),
                                         matrices[m]);
        } else {
            local_server.emplace(cfg);
            backend.local = &*local_server;
            for (unsigned m = 0; m < matrices.size(); ++m)
                backend.local->registry().admit("m" + std::to_string(m),
                                                matrices[m]);
        }

        std::printf("serving %u matrices (~%" PRIu64
                    " entries each), %u clients x %u requests, "
                    "max batch %u%s%s\n",
                    args.matrices, args.entries, args.clients, args.requests,
                    args.max_batch, open_loop ? ", open loop" : "",
                    net_mode ? ", over TCP" : "");

        int exit_code = 0;
        if (!open_loop) {
            // Closed loop: batched vs max_batch=1, the coalescing ablation.
            backend.set_batching(args.max_batch, 0.0, args.batch_wait_ms,
                                 args.queue_depth);
            serve::ServerStats before = backend.counters();
            LoopResult batched =
                run_closed_loop(backend, nnz, rows, cols, args);
            attach_counters(batched, before, backend.counters());
            print_loop("batched serving:", batched);
            if (!replay_matches(cfg, matrices, batched.trace))
                return 1;
            std::printf("OK: all %u responses bit-identical to sequential "
                        "replay\n",
                        args.clients * args.requests);

            LoopResult unbatched;
            const LoopResult* unbatched_ptr = nullptr;
            if (args.compare) {
                backend.set_batching(1, 0.0, 0.0, args.queue_depth);
                before = backend.counters();
                unbatched = run_closed_loop(backend, nnz, rows, cols, args);
                attach_counters(unbatched, before, backend.counters());
                print_loop("unbatched serving (max_batch 1):", unbatched);
                if (!replay_matches(cfg, matrices, unbatched.trace))
                    return 1;
                std::printf("batched speedup: %.2fx aggregate nnz/s\n",
                            batched.snap.nnz_per_s /
                                unbatched.snap.nnz_per_s);
                unbatched_ptr = &unbatched;
            }
            if (!args.json_path.empty()) {
                write_json(args.json_path, args, false, batched,
                           unbatched_ptr);
                std::printf("snapshot written to %s\n",
                            args.json_path.c_str());
            }
        } else if (deadline_mode) {
            // Shedding ablation: the same overloaded Poisson schedule with
            // and without a per-request deadline, both at width 1 (no
            // coalescing headroom to hide behind). The claim under test:
            // deadlines keep the SERVED requests' tail inside the budget
            // band while the no-deadline baseline's tail grows with the
            // backlog.
            Args run_args = args;
            if (args.overload > 0.0) {
                backend.set_batching(1, 0.0, 0.0, args.queue_depth);
                std::vector<std::vector<std::vector<float>>> cal_x(
                    nnz.size()),
                    cal_y(nnz.size());
                for (unsigned m = 0; m < nnz.size(); ++m) {
                    cal_x[m].resize(kVectorPool);
                    cal_y[m].resize(kVectorPool);
                    for (unsigned k = 0; k < kVectorPool; ++k)
                        fill_vectors(pool_seed(args.seed, m, k), cols[m],
                                     rows[m], cal_x[m][k], cal_y[m][k]);
                }
                run_args.arrival_rate =
                    calibrate_arrival_rate(backend, args, cal_x, cal_y);
            }
            const std::size_t total =
                static_cast<std::size_t>(args.clients) * args.requests +
                args.warmup;
            const std::vector<double> arrivals =
                arrival_schedule(run_args, total);

            Args base_args = run_args;
            base_args.deadline_ms = 0.0;
            backend.set_batching(1, 0.0, 0.0, args.queue_depth);
            serve::ServerStats before = backend.counters();
            LoopResult no_deadline =
                run_open_loop(backend, nnz, rows, cols, base_args, arrivals);
            attach_counters(no_deadline, before, backend.counters());
            print_loop("no deadline (baseline):", no_deadline);
            if (!replay_matches(cfg, matrices, no_deadline.trace))
                return 1;

            backend.set_batching(1, 0.0, 0.0, args.queue_depth);
            before = backend.counters();
            LoopResult deadline =
                run_open_loop(backend, nnz, rows, cols, run_args, arrivals);
            attach_counters(deadline, before, backend.counters());
            print_loop("deadline shedding:", deadline);
            if (!replay_matches(cfg, matrices, deadline.trace))
                return 1;
            std::printf("OK: all completed responses bit-identical to "
                        "sequential replay\n");

            // Gates. The band bounds a SERVED request's end-to-end time:
            // its queue time was under the deadline when its batch
            // started, plus its service time, with 2x slack for
            // scheduling noise on a loaded host.
            const double band_ms = 2.0 * args.deadline_ms +
                                   2.0 * deadline.snap.p99_service_ms;
            if (deadline.snap.stats.shed == 0) {
                std::fprintf(stderr,
                             "FAIL: the deadline loop shed nothing — the "
                             "ablation is vacuous (raise --overload or "
                             "lower --deadline-ms)\n");
                exit_code = 1;
            }
            if (deadline.snap.p99_e2e_ms > band_ms) {
                std::fprintf(stderr,
                             "FAIL: served p99 e2e %.3f ms escapes the "
                             "%.3f ms deadline band\n",
                             deadline.snap.p99_e2e_ms, band_ms);
                exit_code = 1;
            }
            if (no_deadline.snap.p99_e2e_ms <= band_ms) {
                std::fprintf(stderr,
                             "FAIL: baseline p99 e2e %.3f ms already sits "
                             "inside the %.3f ms band — the overload is "
                             "not biting (raise --overload or --requests)"
                             "\n",
                             no_deadline.snap.p99_e2e_ms, band_ms);
                exit_code = 1;
            }
            if (exit_code == 0)
                std::printf("DEADLINE: served p99 e2e %.3f ms inside the "
                            "%.3f ms band; baseline %.3f ms outside "
                            "(%" PRIu64 " shed)\n",
                            deadline.snap.p99_e2e_ms, band_ms,
                            no_deadline.snap.p99_e2e_ms,
                            deadline.snap.stats.shed);

            if (!args.json_path.empty()) {
                write_json(args.json_path, run_args, true, deadline,
                           &no_deadline);
                std::printf("snapshot written to %s\n",
                            args.json_path.c_str());
            }
        } else {
            // Open loop: fixed-width batcher vs the SLO controller on one
            // shared Poisson arrival schedule.
            const std::size_t total =
                static_cast<std::size_t>(args.clients) * args.requests +
                args.warmup;
            const std::vector<double> arrivals =
                arrival_schedule(args, total);

            LoopResult fixed;
            const LoopResult* fixed_ptr = nullptr;
            if (args.compare) {
                backend.set_batching(args.max_batch, 0.0,
                                     args.batch_wait_ms, args.queue_depth);
                const serve::ServerStats before = backend.counters();
                fixed = run_open_loop(backend, nnz, rows, cols, args,
                                      arrivals);
                attach_counters(fixed, before, backend.counters());
                print_loop("fixed batching (throughput-greedy):", fixed);
                if (!replay_matches(cfg, matrices, fixed.trace))
                    return 1;
                fixed_ptr = &fixed;
            }

            backend.set_batching(args.max_batch, args.slo_ms,
                                 args.batch_wait_ms, args.queue_depth);
            const serve::ServerStats before = backend.counters();
            LoopResult adaptive =
                run_open_loop(backend, nnz, rows, cols, args, arrivals);
            attach_counters(adaptive, before, backend.counters());
            print_loop("adaptive batching (SLO controller):", adaptive);
            if (!replay_matches(cfg, matrices, adaptive.trace))
                return 1;
            std::printf("OK: all completed responses bit-identical to "
                        "sequential replay\n");

            // The headline SLO gate: the adaptive policy meets the p99
            // queue-time target the fixed-width batcher misses.
            if (args.slo_ms > 0.0) {
                if (adaptive.snap.p99_queue_ms > args.slo_ms) {
                    std::fprintf(stderr,
                                 "FAIL: adaptive p99 queue %.3f ms misses "
                                 "the %.1f ms SLO\n",
                                 adaptive.snap.p99_queue_ms, args.slo_ms);
                    exit_code = 1;
                }
                if (fixed_ptr != nullptr &&
                    fixed_ptr->snap.p99_queue_ms <= args.slo_ms) {
                    std::fprintf(stderr,
                                 "FAIL: fixed batching p99 queue %.3f ms "
                                 "already meets the %.1f ms SLO — the "
                                 "ablation is vacuous (raise --batch-wait-"
                                 "ms or the arrival rate)\n",
                                 fixed_ptr->snap.p99_queue_ms, args.slo_ms);
                    exit_code = 1;
                }
                if (exit_code == 0)
                    std::printf("SLO: adaptive p99 queue %.3f ms <= %.1f ms"
                                " target%s\n",
                                adaptive.snap.p99_queue_ms, args.slo_ms,
                                fixed_ptr != nullptr
                                    ? " (fixed batching misses it)"
                                    : "");
            }

            if (!args.json_path.empty()) {
                write_json(args.json_path, args, true, adaptive, fixed_ptr);
                std::printf("snapshot written to %s\n",
                            args.json_path.c_str());
            }
        }

        if (recorder) {
            obs::set_trace_recorder(nullptr);
            const std::string trace = recorder->to_chrome_json();
            std::string trace_error;
            if (!obs::validate_trace_json(trace, &trace_error))
                throw std::runtime_error(
                    "trace failed its own schema check: " + trace_error);
            util::atomic_write_file(args.trace_json, trace);
            std::printf("trace written to %s (%zu spans, %" PRIu64
                        " dropped)\n",
                        args.trace_json.c_str(), recorder->recorded(),
                        recorder->dropped());
        }
        if (net_mode && args.shutdown_daemon) {
            backend.admin->shutdown_daemon();
            std::printf("daemon shutdown requested\n");
        }
        return exit_code;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: %s\n", e.what());
        return 1;
    }
}
