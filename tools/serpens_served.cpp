// serpens_served — the serving daemon: serve::Server behind a TCP
// front-end on 127.0.0.1.
//
//   serpens_served [--port P] [--port-file FILE] [--max-batch B]
//                  [--serve-threads T] [--budget-mb MB] [--slo-ms MS]
//                  [--batch-wait-ms MS] [--queue-depth D] [--a24]
//                  [--state-dir DIR] [--recovery-json FILE]
//                  [--trace-json FILE]
//
// --port 0 (the default) binds an ephemeral port; the daemon prints
// "listening on PORT" and, with --port-file, writes the bare port number
// there — how CI starts a daemon and a client without racing on a fixed
// port. Runs until a client sends the Shutdown request or the process
// receives SIGINT/SIGTERM, then drains and exits 0.
//
// --state-dir DIR makes the daemon durable: every wire admission and
// eviction is journaled to DIR (CRC-framed manifest.log + one image file
// per resident), and on start the manifest is replayed — torn tails
// truncated, corrupt images skipped and counted — so a SIGKILLed daemon
// restarted on the same directory serves its residents bit-identically
// without re-encoding. --recovery-json archives the replay report
// (BENCH_recovery.json in CI). A clean shutdown leaves a marker record
// the next start reports in that JSON.
//
// --trace-json FILE records the daemon-side request lifecycle (wire read,
// queue wait, batch formation, device pass, y-extraction, WAL appends)
// and writes Chrome trace-event JSON there on clean shutdown — load it in
// Perfetto alongside the client's --trace-json to see one request's spans
// stitched by trace id across both processes.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/daemon.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "util/fs.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int)
{
    g_signal = 1;
}

int usage()
{
    std::fprintf(
        stderr,
        "usage: serpens_served [--port P] [--port-file FILE]\n"
        "                      [--max-batch B] [--serve-threads T]\n"
        "                      [--budget-mb MB] [--slo-ms MS]\n"
        "                      [--batch-wait-ms MS] [--queue-depth D]\n"
        "                      [--a24] [--state-dir DIR]\n"
        "                      [--recovery-json FILE]\n"
        "                      [--trace-json FILE]\n");
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    unsigned port = 0;
    std::string port_file;
    unsigned max_batch = 8;
    unsigned serve_threads = 0;
    std::uint64_t budget_mb = 0;
    double slo_ms = 0.0;
    double batch_wait_ms = 0.0;
    std::uint64_t queue_depth = 0;
    bool a24 = false;
    std::string state_dir;
    std::string recovery_json;
    std::string trace_json;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             flag.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (flag == "--port")
            port = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (flag == "--port-file")
            port_file = next();
        else if (flag == "--max-batch")
            max_batch = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        else if (flag == "--serve-threads")
            serve_threads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        else if (flag == "--budget-mb")
            budget_mb = std::strtoull(next(), nullptr, 10);
        else if (flag == "--slo-ms")
            slo_ms = std::strtod(next(), nullptr);
        else if (flag == "--batch-wait-ms")
            batch_wait_ms = std::strtod(next(), nullptr);
        else if (flag == "--queue-depth")
            queue_depth = std::strtoull(next(), nullptr, 10);
        else if (flag == "--a24")
            a24 = true;
        else if (flag == "--state-dir")
            state_dir = next();
        else if (flag == "--recovery-json")
            recovery_json = next();
        else if (flag == "--trace-json")
            trace_json = next();
        else
            return usage();
    }
    if (port > 65535)
        return usage();

    try {
        serpens::core::SerpensConfig cfg =
            a24 ? serpens::core::SerpensConfig::a24()
                : serpens::core::SerpensConfig::a16();
        cfg.serve_threads = serve_threads;
        cfg.max_batch = max_batch;
        cfg.resident_budget_bytes = budget_mb * (1ull << 20);
        cfg.slo_queue_ms = slo_ms;
        cfg.batch_wait_ms = batch_wait_ms;
        cfg.max_queue_depth = static_cast<std::size_t>(queue_depth);

        // The recorder must outlive every daemon/server thread, and those
        // threads only stop inside this scope — install it first, detach
        // it (below) before it goes out of scope.
        std::unique_ptr<serpens::obs::TraceRecorder> recorder;
        if (!trace_json.empty()) {
            recorder = std::make_unique<serpens::obs::TraceRecorder>();
            serpens::obs::set_trace_recorder(recorder.get());
        }

        serpens::serve::Server server(cfg);

        // Durable state: replay the manifest BEFORE accepting traffic so
        // the first client request already sees the recovered residents.
        std::unique_ptr<serpens::serve::RegistryStore> store;
        if (!state_dir.empty()) {
            store =
                std::make_unique<serpens::serve::RegistryStore>(state_dir);
            store->recover(server.registry());
            const serpens::serve::StoreStats rs = store->stats();
            std::printf(
                "recovered %llu resident(s) from %s "
                "(%llu WAL records, %llu torn bytes, %llu corrupt, "
                "clean_shutdown=%d)\n",
                static_cast<unsigned long long>(rs.recovered),
                state_dir.c_str(),
                static_cast<unsigned long long>(rs.wal_records),
                static_cast<unsigned long long>(rs.wal_torn_bytes),
                static_cast<unsigned long long>(rs.skipped_corrupt),
                rs.clean_shutdown ? 1 : 0);
            if (!recovery_json.empty())
                serpens::util::atomic_write_file(
                    recovery_json, serpens::serve::recovery_to_json(rs));
        }

        serpens::net::Daemon daemon(server,
                                    static_cast<std::uint16_t>(port),
                                    store.get());

        if (!port_file.empty()) {
            // Atomic (temp + rename): a launcher polling the file can
            // never read a partially-written port number.
            try {
                serpens::util::atomic_write_file(
                    port_file, std::to_string(daemon.port()) + "\n");
            } catch (const std::exception& e) {
                std::fprintf(stderr, "FAIL: cannot write %s: %s\n",
                             port_file.c_str(), e.what());
                return 1;
            }
        }
        std::printf("listening on %u\n", daemon.port());
        std::fflush(stdout);

        std::signal(SIGINT, on_signal);
        std::signal(SIGTERM, on_signal);
        // Poll both stop sources: a signal handler cannot safely take the
        // daemon's mutex to wake wait(), so the owner watches the flag and
        // the wire-shutdown state together.
        while (g_signal == 0 && !daemon.shutdown_requested())
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const double uptime = daemon.uptime_ms();
        daemon.stop();
        server.drain();
        if (store)
            store->record_clean_shutdown();
        if (recorder) {
            // Every recording thread is joined; the snapshot is final.
            serpens::obs::set_trace_recorder(nullptr);
            serpens::util::atomic_write_file(trace_json,
                                             recorder->to_chrome_json());
            std::printf("wrote %zu trace span(s) to %s (%llu dropped)\n",
                        recorder->recorded(), trace_json.c_str(),
                        static_cast<unsigned long long>(
                            recorder->dropped()));
        }
        const serpens::serve::ServerStats stats = server.stats();
        const serpens::serve::RegistryStats reg =
            server.registry().stats();
        std::printf("metrics: uptime_ms=%.0f requests=%llu batches=%llu "
                    "shed=%llu rejected=%llu admissions=%llu "
                    "evictions=%llu residents=%zu\n",
                    uptime,
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.batches),
                    static_cast<unsigned long long>(stats.shed),
                    static_cast<unsigned long long>(stats.rejected),
                    static_cast<unsigned long long>(reg.admissions),
                    static_cast<unsigned long long>(reg.evictions),
                    server.registry().size());
        std::printf("shut down after %llu requests\n",
                    static_cast<unsigned long long>(stats.requests));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: %s\n", e.what());
        return 1;
    }
}
