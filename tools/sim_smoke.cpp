// sim_smoke — Release/ASan-mode simulator smoke test for CI.
//
// Generates a ~1M-entry matrix, encodes it, then runs the same SpMV through
// every engine: the packed reference walk, the decode-once engine (serial
// and threaded), and the batched engine at several widths. y and every
// CycleStats term must be bit-identical across all of them. Prints per-
// engine timings so CI logs double as a coarse perf trend (the decoded
// engine's per-iteration advantage over the packed walk is the number the
// decode-once PR exists for).
//
//   sim_smoke [--entries N] [--batch B] [--iters K]
//
// Exit code 0 on success, 1 on any mismatch or error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "encode/image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace {

using namespace serpens;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const sim::SimResult& a, const sim::SimResult& b,
               const char* label)
{
    bool ok = a.y.size() == b.y.size();
    for (std::size_t i = 0; ok && i < a.y.size(); ++i)
        ok = float_bits(a.y[i]) == float_bits(b.y[i]);
    ok = ok && a.cycles.x_load_cycles == b.cycles.x_load_cycles &&
         a.cycles.compute_cycles == b.cycles.compute_cycles &&
         a.cycles.y_phase_cycles == b.cycles.y_phase_cycles &&
         a.cycles.fill_cycles == b.cycles.fill_cycles &&
         a.cycles.total_slots == b.cycles.total_slots &&
         a.cycles.padding_slots == b.cycles.padding_slots &&
         a.cycles.traffic.bytes_read == b.cycles.traffic.bytes_read &&
         a.cycles.traffic.bytes_written == b.cycles.traffic.bytes_written;
    if (!ok)
        std::fprintf(stderr, "FAIL: %s diverges from the packed reference\n",
                     label);
    return ok;
}

} // namespace

int main(int argc, char** argv)
{
    std::uint64_t entries = 1'000'000;
    unsigned batch = 3;
    int iters = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
            entries = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc)
            batch = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc)
            iters = std::atoi(argv[++i]);
        else {
            std::fprintf(
                stderr,
                "usage: sim_smoke [--entries N] [--batch B] [--iters K]\n");
            return 1;
        }
    }

    try {
        const auto n = static_cast<sparse::index_t>(
            std::max<std::uint64_t>(65'536, entries / 16));
        std::printf("encoding %llu-entry uniform matrix (%u x %u)...\n",
                    static_cast<unsigned long long>(entries), n, n);
        const auto m = sparse::make_uniform_random(
            n, n, static_cast<sparse::nnz_t>(entries), 1);
        const auto img = encode::encode_matrix(m, {}, {.threads = 0});

        Rng rng(11);
        std::vector<std::vector<float>> xs(batch, std::vector<float>(n));
        std::vector<std::vector<float>> ys(batch, std::vector<float>(n));
        for (auto& x : xs)
            for (float& v : x)
                v = rng.next_float(-1.0f, 1.0f);
        for (auto& y : ys)
            for (float& v : y)
                v = rng.next_float(-1.0f, 1.0f);

        sim::SimOptions options;
        options.verify_hazards = false;
        const float alpha = 1.25f, beta = -0.5f;

        // Packed reference: once per column.
        auto t0 = Clock::now();
        std::vector<sim::SimResult> packed;
        for (unsigned b = 0; b < batch; ++b)
            packed.push_back(
                sim::simulate_spmv(img, xs[b], ys[b], alpha, beta, options));
        const double packed_s = seconds_since(t0) / batch;

        t0 = Clock::now();
        const auto decoded = sim::DecodedImage::decode(img, {.threads = 0});
        const double decode_s = seconds_since(t0);

        // Decode-once engine: `iters` repetitions to show the amortized
        // per-iteration cost next to the packed walk's.
        t0 = Clock::now();
        sim::SimResult dec;
        for (int it = 0; it < std::max(1, iters); ++it)
            dec = sim::simulate_spmv_decoded(decoded, xs[0], ys[0], alpha,
                                             beta, options);
        const double decoded_s = seconds_since(t0) / std::max(1, iters);

        std::printf("packed:  %.4f s/SpMV\n", packed_s);
        std::printf("decode:  %.4f s once\n", decode_s);
        std::printf("decoded: %.4f s/SpMV (%.1fx vs packed, %d iterations)\n",
                    decoded_s, packed_s / decoded_s, std::max(1, iters));

        bool ok = identical(dec, packed[0], "decoded engine");

        // Threaded decoded run and per-column batch, all against packed.
        sim::SimOptions threaded = options;
        threaded.threads = 0;
        ok = ok && identical(sim::simulate_spmv_decoded(
                                 decoded, xs[0], ys[0], alpha, beta, threaded),
                             packed[0], "decoded engine (threads=auto)");

        t0 = Clock::now();
        const auto batched =
            sim::simulate_spmv_batch(decoded, xs, ys, alpha, beta, options);
        const double batch_s = seconds_since(t0) / batch;
        std::printf("batch:   %.4f s/SpMV at B=%u (%.1fx vs packed)\n",
                    batch_s, batch, packed_s / batch_s);
        for (unsigned b = 0; ok && b < batch; ++b) {
            sim::SimResult col;
            col.y = batched.y[b];
            col.cycles = batched.cycles;
            ok = identical(col, packed[b], "batched engine column");
        }

        if (!ok)
            return 1;
        std::printf("OK: y + CycleStats bit-identical across packed, "
                    "decoded, and batched engines (B=%u)\n",
                    batch);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: %s\n", e.what());
        return 1;
    }
}
