// serpens_cli — command-line driver for the Serpens toolchain.
//
//   serpens_cli info [--a24]
//       print the configuration, bandwidth, capacity, and resource model
//   serpens_cli encode --mtx FILE --out IMG [--a24]
//       preprocess a Matrix Market file into an accelerator image
//   serpens_cli run (--mtx FILE | --img IMG | --gen KIND,N,NNZ) [--a24]
//                   [--alpha A] [--beta B] [--iters N]
//       run SpMV on the simulated accelerator and report cycles + metrics
//
// Generator kinds for --gen: uniform, rmat, banded, clustered.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/cpu_spmv.h"
#include "core/accelerator.h"
#include "core/analytic.h"
#include "core/resource_model.h"
#include "encode/serialize.h"
#include "serve/server.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace {

using namespace serpens;

struct CliArgs {
    std::string command;
    std::string mtx_path;
    std::string img_path;
    std::string out_path;
    std::string save_image_path;
    std::string gen_spec;
    bool a24 = false;
    float alpha = 1.0f;
    float beta = 0.0f;
    int iters = 1;
    unsigned batch = 0;  // 0 = unset: run treats it as 1, serve-bench
                         // keeps the config default max_batch
    bool decode_cache = true;
    unsigned threads = 1;
    unsigned parse_threads = 0;  // fast parser: one worker per core
    unsigned sim_threads = 1;
    unsigned clients = 4;        // serve-bench client threads
    unsigned requests = 8;       // serve-bench requests per client
    unsigned serve_threads = 1;
};

core::SerpensConfig make_config(const CliArgs& args)
{
    auto cfg = args.a24 ? core::SerpensConfig::a24()
                        : core::SerpensConfig::a16();
    cfg.encode_threads = args.threads;
    cfg.sim_threads = args.sim_threads;
    cfg.decode_cache = args.decode_cache;
    cfg.serve_threads = args.serve_threads;
    if (args.batch != 0)
        cfg.max_batch = args.batch;  // --batch 1 disables coalescing
    return cfg;
}

sparse::CooMatrix load_mtx(const CliArgs& args)
{
    sparse::ParseOptions opt;
    opt.threads = args.parse_threads;
    return sparse::read_matrix_market_fast_file(args.mtx_path, opt);
}

CliArgs parse(int argc, char** argv)
{
    CliArgs args;
    if (argc >= 2)
        args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--mtx")
            args.mtx_path = next();
        else if (flag == "--img" || flag == "--load-image")
            args.img_path = next();
        else if (flag == "--out")
            args.out_path = next();
        else if (flag == "--save-image")
            args.save_image_path = next();
        else if (flag == "--gen")
            args.gen_spec = next();
        else if (flag == "--a24")
            args.a24 = true;
        else if (flag == "--alpha")
            args.alpha = std::stof(next());
        else if (flag == "--beta")
            args.beta = std::stof(next());
        else if (flag == "--iters")
            args.iters = std::stoi(next());
        else if (flag == "--batch")
            args.batch = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--no-decode-cache")
            args.decode_cache = false;
        else if (flag == "--threads")
            args.threads = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--parse-threads")
            args.parse_threads = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--sim-threads")
            args.sim_threads = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--clients")
            args.clients = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--requests")
            args.requests = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--serve-threads")
            args.serve_threads = static_cast<unsigned>(std::stoul(next()));
        else if (flag == "--help" || flag == "-h")
            args.command = "help";
        else {
            std::fprintf(stderr, "error: unknown flag: %s\n", flag.c_str());
            std::exit(2);
        }
    }
    return args;
}

sparse::CooMatrix generate(const std::string& spec)
{
    // KIND,N,NNZ
    const auto c1 = spec.find(',');
    const auto c2 = spec.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos)
        throw std::invalid_argument("--gen expects KIND,N,NNZ");
    const std::string kind = spec.substr(0, c1);
    const auto n = static_cast<sparse::index_t>(std::stoul(spec.substr(c1 + 1)));
    const auto nnz = static_cast<sparse::nnz_t>(std::stoull(spec.substr(c2 + 1)));
    if (kind == "uniform")
        return sparse::make_uniform_random(n, n, nnz, 1);
    if (kind == "rmat") {
        unsigned scale = 1;
        while ((sparse::index_t{1} << scale) < n)
            ++scale;
        return sparse::make_rmat(scale, std::max<sparse::nnz_t>(1, nnz >> scale), 1);
    }
    if (kind == "banded")
        return sparse::make_banded(n, std::max<sparse::index_t>(1, nnz / n), 1);
    if (kind == "clustered")
        return sparse::make_clustered(n, nnz, 8, 64, 0.3, 1);
    throw std::invalid_argument("unknown generator kind: " + kind);
}

int cmd_info(const CliArgs& args)
{
    const auto cfg = make_config(args);
    std::printf("Serpens-%s\n", args.a24 ? "A24" : "A16");
    std::printf("  HBM channels: %u sparse + %u vector = %u total\n",
                cfg.arch.ha_channels, cfg.vector_channels,
                cfg.total_hbm_channels());
    std::printf("  bandwidth:    %.0f GB/s utilized\n",
                cfg.utilized_bandwidth_gbps());
    std::printf("  frequency:    %.0f MHz, power %.0f W\n", cfg.frequency_mhz,
                cfg.power_w);
    std::printf("  PEs:          %u (8 per channel)\n", cfg.arch.total_pes());
    std::printf("  row capacity: %llu (coalescing %s)\n",
                static_cast<unsigned long long>(cfg.arch.row_capacity()),
                cfg.arch.coalescing ? "on" : "off");
    const auto r = core::estimate_resources(cfg);
    std::printf("  resources:    LUT %lluK (%.0f%%), FF %lluK (%.0f%%), "
                "DSP %llu (%.0f%%), BRAM %llu (%.0f%%), URAM %llu (%.0f%%)\n",
                static_cast<unsigned long long>(r.luts / 1000), r.lut_pct,
                static_cast<unsigned long long>(r.ffs / 1000), r.ff_pct,
                static_cast<unsigned long long>(r.dsps), r.dsp_pct,
                static_cast<unsigned long long>(r.brams), r.bram_pct,
                static_cast<unsigned long long>(r.urams), r.uram_pct);
    return 0;
}

int cmd_encode(const CliArgs& args)
{
    if (args.mtx_path.empty() || args.out_path.empty()) {
        std::fprintf(stderr, "encode requires --mtx FILE and --out IMG\n");
        return 2;
    }
    const auto cfg = make_config(args);
    const auto m = load_mtx(args);
    encode::EncodeOptions encode_options;
    encode_options.threads = cfg.encode_threads;
    const auto img = encode::encode_matrix(m, cfg.arch, encode_options);
    encode::save_image_file(args.out_path, img);
    std::printf("encoded %u x %u, %llu nnz -> %s (%llu lines, padding %.4f)\n",
                m.rows(), m.cols(), static_cast<unsigned long long>(m.nnz()),
                args.out_path.c_str(),
                static_cast<unsigned long long>(img.stats().total_lines),
                img.stats().padding_ratio());
    return 0;
}

int cmd_run(const CliArgs& args)
{
    const auto cfg = make_config(args);
    const core::Accelerator acc(cfg);

    std::unique_ptr<core::PreparedMatrix> prepared;
    sparse::CooMatrix matrix_for_check(1, 1);
    bool have_matrix = false;

    if (!args.img_path.empty()) {
        auto img = encode::load_image_file(args.img_path);
        SERPENS_CHECK(img.params().ha_channels == cfg.arch.ha_channels,
                      "image was encoded for a different channel count");
        prepared = std::make_unique<core::PreparedMatrix>(
            core::PreparedMatrix::from_image(std::move(img)));
        // Populate the decode cache at load, like the encode path's first
        // run (and the serving registry's admission) — repeat runs off a
        // loaded image start from the same warmed state.
        if (cfg.decode_cache)
            prepared->warm_decode(cfg.sim_threads);
    } else {
        sparse::CooMatrix m =
            !args.mtx_path.empty()
                ? load_mtx(args)
                : generate(args.gen_spec.empty() ? "uniform,10000,200000"
                                                 : args.gen_spec);
        matrix_for_check = m;
        have_matrix = true;
        prepared = std::make_unique<core::PreparedMatrix>(acc.prepare(m));
    }

    if (!args.save_image_path.empty()) {
        encode::save_image_file(args.save_image_path, prepared->image());
        std::printf("image:   saved to %s (reuse with --load-image)\n",
                    args.save_image_path.c_str());
    }

    const auto rows = prepared->rows();
    const auto cols = prepared->cols();
    const unsigned batch = std::max(1u, args.batch);
    Rng rng(7);
    std::vector<std::vector<float>> xs(batch, std::vector<float>(cols));
    const std::vector<std::vector<float>> ys(batch,
                                             std::vector<float>(rows, 0.0f));
    for (auto& x : xs)
        for (float& v : x)
            v = rng.next_float(-1.0f, 1.0f);

    std::vector<core::RunResult> results;
    sim::BatchCycleStats batch_cycles;
    double device_batch_ms = 0.0;
    double device_amortized_ms = 0.0;
    double total_ms = 0.0;
    const auto host_start = std::chrono::steady_clock::now();
    for (int it = 0; it < std::max(1, args.iters); ++it) {
        if (batch == 1) {
            results.assign(
                1, acc.run(*prepared, xs[0], ys[0], args.alpha, args.beta));
        } else {
            core::BatchRunResult round =
                acc.run_batch(*prepared, xs, ys, args.alpha, args.beta);
            batch_cycles = round.batch_cycles;
            device_batch_ms = round.batch_time_ms;
            device_amortized_ms = round.amortized_time_ms;
            results = std::move(round.per_vector);
        }
        total_ms += results[0].time_ms;
    }
    const double host_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - host_start)
            .count();
    const core::RunResult& result = results[0];

    std::printf("matrix:  %u x %u, %llu nnz (padding %.4f)\n", rows, cols,
                static_cast<unsigned long long>(prepared->nnz()),
                prepared->encode_stats().padding_ratio());
    std::printf("memory:  %.2f MiB resident (packed image %.2f MiB%s)\n",
                static_cast<double>(prepared->memory_footprint_bytes()) /
                    (1 << 20),
                static_cast<double>(prepared->image().memory_bytes()) /
                    (1 << 20),
                prepared->decode_cached() ? " + decode cache" : "");
    std::printf("cycles:  %llu total = %llu compute + %llu x-load + "
                "%llu y-phase + %llu fill\n",
                static_cast<unsigned long long>(result.cycles.total_cycles()),
                static_cast<unsigned long long>(result.cycles.compute_cycles),
                static_cast<unsigned long long>(result.cycles.x_load_cycles),
                static_cast<unsigned long long>(result.cycles.y_phase_cycles),
                static_cast<unsigned long long>(result.cycles.fill_cycles));
    std::printf("time:    %.4f ms/run (%d run%s)\n", total_ms / args.iters,
                args.iters, args.iters == 1 ? "" : "s");
    if (batch > 1) {
        // SpMM device mode: one invocation streams A once per
        // batch_columns-wide column block instead of once per vector.
        std::printf("device:  %.4f ms/batch SpMM mode (%u pass%s over the "
                    "A stream), %.4f ms/SpMV amortized\n",
                    device_batch_ms, batch_cycles.passes,
                    batch_cycles.passes == 1 ? "" : "es",
                    device_amortized_ms);
    }
    std::printf("host:    %.3f ms/SpMV (%u vector%s x %d iteration%s, "
                "decode cache %s)\n",
                host_ms / (static_cast<double>(batch) *
                           std::max(1, args.iters)),
                batch, batch == 1 ? "" : "s", std::max(1, args.iters),
                args.iters == 1 ? "" : "s",
                args.decode_cache ? "on" : "off");
    std::printf("metrics: %.2f GFLOP/s, %.0f MTEPS, %.1f MTEPS/(GB/s), "
                "%.0f MTEPS/W\n",
                result.metrics.gflops, result.metrics.mteps,
                result.metrics.bw_eff, result.metrics.energy_eff);

    if (have_matrix) {
        const sparse::CsrMatrix csr = sparse::to_csr(matrix_for_check);
        double max_err = 0.0;
        for (unsigned b = 0; b < batch; ++b) {
            std::vector<float> expect(ys[b]);
            baselines::spmv_csr(csr, xs[b], expect, args.alpha, args.beta);
            for (std::size_t i = 0; i < expect.size(); ++i)
                max_err = std::max(max_err,
                                   static_cast<double>(std::abs(
                                       results[b].y[i] - expect[i])));
        }
        std::printf("check:   max |serpens - cpu| = %.3g over %u vector%s %s\n",
                    max_err, batch, batch == 1 ? "" : "s",
                    max_err < 1e-2 ? "(OK)" : "(MISMATCH)");
        return max_err < 1e-2 ? 0 : 1;
    }
    return 0;
}

int cmd_serve_bench(const CliArgs& args)
{
    // Smoke path for the serving layer: admit two matrices into a
    // serve::Server, hammer it from --clients closed-loop threads, then
    // verify every response bit-identical to a direct Accelerator::run on
    // the same inputs (the full differential suite lives in
    // tools/serpens_serve and tests/test_serve_*).
    const auto cfg = make_config(args);
    const sparse::CooMatrix primary = !args.mtx_path.empty()
                                          ? load_mtx(args)
                                          : generate(args.gen_spec.empty()
                                                         ? "uniform,10000,200000"
                                                         : args.gen_spec);
    const sparse::CooMatrix companion = sparse::make_banded(4096, 9, 5);

    serve::Server server(cfg);
    server.registry().admit("primary", primary);
    server.registry().admit("companion", companion);
    std::printf("registry: %zu residents, %.2f MiB\n",
                server.registry().size(),
                static_cast<double>(server.registry().bytes_resident()) /
                    (1 << 20));

    struct Record {
        const sparse::CooMatrix* m;
        const char* name;
        std::uint64_t seed;
        float alpha, beta;
        std::vector<float> y_out;
    };
    const unsigned total = args.clients * args.requests;
    std::vector<Record> records(total);

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    std::atomic<bool> failed{false};
    for (unsigned c = 0; c < args.clients; ++c) {
        clients.emplace_back([&, c] {
            try {
                for (unsigned r = 0; r < args.requests; ++r) {
                    Record& rec = records[c * args.requests + r];
                    rec.seed = 101 + c * args.requests + r;
                    const bool use_primary = rec.seed % 3 != 0;
                    rec.m = use_primary ? &primary : &companion;
                    rec.name = use_primary ? "primary" : "companion";
                    rec.alpha = rec.seed % 2 ? 1.0f : 1.5f;
                    rec.beta = rec.seed % 4 == 0 ? 0.5f : 0.0f;
                    Rng rng(rec.seed);
                    std::vector<float> x(rec.m->cols()), y(rec.m->rows());
                    for (float& v : x)
                        v = rng.next_float(-1.0f, 1.0f);
                    for (float& v : y)
                        v = rng.next_float(-1.0f, 1.0f);
                    rec.y_out = server
                                    .spmv(rec.name, std::move(x), std::move(y),
                                          rec.alpha, rec.beta)
                                    .run.y;
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "client %u failed: %s\n", c, e.what());
                failed.store(true);
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    if (failed.load())
        return 1;
    server.drain();  // let the dispatcher retire its stats bookkeeping

    const auto stats = server.stats();
    std::printf("served:  %u requests from %u clients in %.3f s "
                "(%.1f req/s)\n",
                total, args.clients, wall_s, total / wall_s);
    std::printf("batched: %.2f mean width, %llu of %llu coalesced, "
                "%llu batches in %llu rounds\n",
                stats.mean_batch_width(),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.rounds));

    // Sequential differential replay through a direct Accelerator.
    const core::Accelerator acc(cfg);
    const auto prep_primary = acc.prepare(primary);
    const auto prep_companion = acc.prepare(companion);
    for (const Record& rec : records) {
        Rng rng(rec.seed);
        std::vector<float> x(rec.m->cols()), y(rec.m->rows());
        for (float& v : x)
            v = rng.next_float(-1.0f, 1.0f);
        for (float& v : y)
            v = rng.next_float(-1.0f, 1.0f);
        const auto direct =
            acc.run(rec.m == &primary ? prep_primary : prep_companion, x, y,
                    rec.alpha, rec.beta);
        bool ok = direct.y.size() == rec.y_out.size();
        for (std::size_t i = 0; ok && i < direct.y.size(); ++i)
            ok = float_bits(direct.y[i]) == float_bits(rec.y_out[i]);
        if (!ok) {
            std::fprintf(stderr,
                         "check:   FAIL — a served response diverges from "
                         "the sequential replay\n");
            return 1;
        }
    }
    std::printf("check:   all %u responses bit-identical to sequential "
                "replay (OK)\n",
                total);
    return 0;
}

int cmd_help(std::FILE* out)
{
    std::fprintf(
        out,
        "serpens_cli — drive the Serpens (DAC'22) SpMV accelerator model\n"
        "\n"
        "usage: serpens_cli <command> [flags]\n"
        "\n"
        "commands:\n"
        "  info    print the configuration: HBM channel split, utilized\n"
        "          bandwidth, frequency/power, PE count, on-chip row capacity\n"
        "          (paper Eq. 3), and the analytic FPGA resource estimate\n"
        "  encode  preprocess a Matrix Market file into an accelerator image\n"
        "          (segmentation, PE distribution, index coalescing,\n"
        "          hazard-aware reordering) and save it to disk\n"
        "  run     execute y = alpha*A*x + beta*y on the cycle-level\n"
        "          simulator and report cycles, modeled time, and the\n"
        "          paper's Table 4 metrics; results are checked against the\n"
        "          CPU reference when the matrix is available\n"
        "  serve-bench\n"
        "          smoke the serving layer: admit two matrices into a\n"
        "          serve::Server, issue --clients x --requests concurrent\n"
        "          SpMV requests (coalesced into batches of --batch), and\n"
        "          verify every response bit-identical to a sequential\n"
        "          replay; tools/serpens_serve is the full benchmark\n"
        "  help    print this message\n"
        "\n"
        "flags:\n"
        "  --a24            use the Serpens-A24 preset (24 sparse channels,\n"
        "                   270 MHz) instead of the default A16\n"
        "  --mtx FILE       input matrix in Matrix Market (.mtx) format,\n"
        "                   read through the fast mmap + parallel parser\n"
        "  --img IMG        input: a previously encoded image (run only)\n"
        "  --load-image IMG alias for --img\n"
        "  --save-image IMG also save the encoded image (run only); repeat\n"
        "                   runs with --load-image skip parse+encode entirely\n"
        "  --out IMG        output path for the encoded image (encode only)\n"
        "  --gen KIND,N,NNZ generate an N x N synthetic matrix with ~NNZ\n"
        "                   non-zeros; KIND is uniform, rmat, banded, or\n"
        "                   clustered (run only; default uniform,10000,200000)\n"
        "  --alpha A        scalar alpha (default 1.0)\n"
        "  --beta B         scalar beta  (default 0.0)\n"
        "  --iters N        repeat the run N times, report mean time\n"
        "  --batch B        run B right-hand-side vectors through one\n"
        "                   decoded pass per iteration (Sextans-style SpMM\n"
        "                   amortization; per-vector results are bit-\n"
        "                   identical to B separate runs)\n"
        "  --no-decode-cache  re-unpack the packed HBM image on every run\n"
        "                   (the differential reference engine) instead of\n"
        "                   running off the cached decode-once expansion\n"
        "  --threads N      worker threads for the encode stage (encode/run;\n"
        "                   default 1, 0 = one per hardware thread; the\n"
        "                   produced image is identical for every N)\n"
        "  --parse-threads N worker threads for .mtx parsing (default 0 =\n"
        "                   one per hardware thread; identical triplets for\n"
        "                   every N)\n"
        "  --sim-threads N  worker threads for the simulator's per-channel\n"
        "                   loop (run; default 1, 0 = one per hardware\n"
        "                   thread; bit-identical results for every N)\n"
        "  --clients N      serve-bench: concurrent client threads\n"
        "                   (default 4)\n"
        "  --requests N     serve-bench: requests per client (default 8)\n"
        "  --serve-threads N serve-bench: concurrent batches per dispatch\n"
        "                   round (default 1, 0 = one per hardware thread)\n"
        "\n"
        "examples:\n"
        "  serpens_cli info --a24\n"
        "  serpens_cli run --gen rmat,16384,500000 --iters 3\n"
        "  serpens_cli encode --mtx m.mtx --out m.img\n"
        "  serpens_cli run --mtx m.mtx --save-image m.img\n"
        "  serpens_cli run --load-image m.img --alpha 2 --beta 0.5\n"
        "  serpens_cli serve-bench --gen uniform,20000,400000 --clients 8\n");
    return out == stdout ? 0 : 2;
}

} // namespace

int main(int argc, char** argv)
{
    try {
        // Inside the try block: flag-value parsing (std::stof/stoul) throws
        // on malformed input and must hit the error path, not std::terminate.
        const CliArgs args = parse(argc, argv);
        if (args.command == "info")
            return cmd_info(args);
        if (args.command == "encode")
            return cmd_encode(args);
        if (args.command == "run")
            return cmd_run(args);
        if (args.command == "serve-bench")
            return cmd_serve_bench(args);
        if (args.command == "help" || args.command == "--help" ||
            args.command == "-h")
            return cmd_help(stdout);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return cmd_help(stderr);
}
