// Micro-benchmark — Matrix Market ingestion throughput (MB/s and entries/s).
//
// The paper evaluates on 2,757 SuiteSparse matrices up to hundreds of MB;
// the bm_parse_* pairs measure how fast the host can turn those files into
// COO. `reference` is the istream line-at-a-time parser
// (read_matrix_market_reference), `fast` the mmap/chunk + std::from_chars
// path (read_matrix_market_fast) at 1 thread and at one-per-core. Inputs
// are generated in memory (write_matrix_market), so the numbers isolate
// parsing from disk.
#include <benchmark/benchmark.h>

#include <map>
#include <sstream>

#include "bench_json.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"

namespace {

using namespace serpens;

// One shared text image per entry count: generating 50M entries is far more
// expensive than parsing them, so benchmarks reuse the realized string.
const std::string& mtx_text(std::int64_t entries)
{
    static std::map<std::int64_t, std::string> cache;
    auto it = cache.find(entries);
    if (it == cache.end()) {
        const auto n = static_cast<sparse::index_t>(
            std::max<std::int64_t>(65'536, entries / 16));
        const auto m = sparse::make_uniform_random(
            n, n, static_cast<sparse::nnz_t>(entries), 1);
        std::ostringstream out;
        write_matrix_market(out, m);
        it = cache.emplace(entries, std::move(out).str()).first;
    }
    return it->second;
}

void set_counters(benchmark::State& state, const std::string& text,
                  sparse::nnz_t nnz)
{
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(nnz));
}

void bm_parse_reference(benchmark::State& state)
{
    const std::string& text = mtx_text(state.range(0));
    sparse::nnz_t nnz = 0;
    for (auto _ : state) {
        std::istringstream in(text);
        const auto m = sparse::read_matrix_market_reference(in);
        nnz = m.nnz();
        benchmark::DoNotOptimize(m.elements().data());
    }
    set_counters(state, text, nnz);
}

void bm_parse_fast_1t(benchmark::State& state)
{
    const std::string& text = mtx_text(state.range(0));
    sparse::ParseOptions opt;
    opt.threads = 1;
    sparse::nnz_t nnz = 0;
    for (auto _ : state) {
        const auto m = sparse::read_matrix_market_fast(text, opt);
        nnz = m.nnz();
        benchmark::DoNotOptimize(m.elements().data());
    }
    set_counters(state, text, nnz);
}

void bm_parse_fast_auto(benchmark::State& state)
{
    const std::string& text = mtx_text(state.range(0));
    sparse::ParseOptions opt;
    opt.threads = 0; // one worker per hardware thread
    sparse::nnz_t nnz = 0;
    for (auto _ : state) {
        const auto m = sparse::read_matrix_market_fast(text, opt);
        nnz = m.nnz();
        benchmark::DoNotOptimize(m.elements().data());
    }
    set_counters(state, text, nnz);
}

// The three paper-scale points: 1M entries (~25 MB), 10M (~250 MB), 50M
// (~1.3 GB). The reference is capped at 10M to keep a full sweep tolerable;
// the fast pair runs all three.
BENCHMARK(bm_parse_reference)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_parse_fast_1t)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Arg(50'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_parse_fast_auto)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Arg(50'000'000)
    ->Unit(benchmark::kMillisecond);

} // namespace

SERPENS_BENCHMARK_JSON_MAIN();
