// Table 2 — specification of the evaluated accelerators.
// All four operating points come from the baseline model configs; this is
// the single source the other benches draw frequencies/powers from.
#include "bench_common.h"

#include "baselines/graphlily.h"
#include "baselines/k80.h"
#include "baselines/sextans.h"
#include "core/config.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 2: specification of the evaluated accelerators");

    const baselines::SextansConfig sextans;
    const baselines::GraphLilyConfig graphlily;
    const core::SerpensConfig serpens = core::SerpensConfig::a16();
    const baselines::K80Config k80;

    analysis::TextTable t({"", "Sextans", "GraphLily", "Serpens", "Tesla K80"});
    t.add_row({"frequency (MHz)", analysis::fmt(sextans.frequency_mhz, 0),
               analysis::fmt(graphlily.frequency_mhz, 0),
               analysis::fmt(serpens.frequency_mhz, 0),
               analysis::fmt(k80.frequency_mhz, 0)});
    t.add_row({"bandwidth (GB/s)", analysis::fmt(sextans.bandwidth_gbps, 0) + " &",
               analysis::fmt(graphlily.bandwidth_gbps, 0) + " &",
               analysis::fmt(serpens.utilized_bandwidth_gbps(), 0) + " &",
               analysis::fmt(k80.bandwidth_gbps, 0) + " #"});
    t.add_row({"power (W)", analysis::fmt(sextans.power_w, 0),
               analysis::fmt(graphlily.power_w, 0),
               analysis::fmt(serpens.power_w, 0),
               analysis::fmt(k80.power_w, 0)});
    bench::print_table(t, args.csv);
    std::printf("\n& utilized bandwidth, # maximum bandwidth (paper notation)\n");
    std::printf("paper values:      197 / 166 / 223 / 562 MHz,"
                " 417 / 285 / 273 / 480 GB/s, 52 / 43 / 48 / 130 W\n");
    return 0;
}
