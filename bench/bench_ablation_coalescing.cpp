// Ablation — index coalescing (paper §3.4).
//
// Quantifies both sides of the trade the paper describes:
//   + capacity: coalescing doubles the on-chip row capacity (Eq. 3), which
//     is what lets Serpens-A16 hold ogbn_products (2.45M rows) at all;
//   - padding: the coarser conflict granularity inserts more null elements,
//     costing cycles on matrices whose consecutive rows carry correlated
//     non-zeros.
#include "bench_common.h"

#include "core/accelerator.h"
#include "core/analytic.h"
#include "datasets/table3.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Ablation: index coalescing on/off");

    // --- Capacity side ---
    core::SerpensConfig on = core::SerpensConfig::a16();
    core::SerpensConfig off = on;
    off.arch.coalescing = false;
    std::printf("row capacity: coalescing ON %llu rows, OFF %llu rows\n",
                static_cast<unsigned long long>(on.arch.row_capacity()),
                static_cast<unsigned long long>(off.arch.row_capacity()));
    std::printf("-> ogbn_products (2.45M rows) %s without coalescing on A16\n\n",
                2'450'000 <= off.arch.row_capacity() ? "still fits"
                                                     : "DOES NOT FIT");

    // --- Cycle side across the Table 3 stand-ins ---
    analysis::TextTable t({"matrix", "pad ON", "pad OFF", "cycles ON",
                           "cycles OFF", "ON/OFF"});
    const core::Accelerator acc_on(on);
    const core::Accelerator acc_off(off);

    for (const auto& spec : datasets::twelve_large()) {
        const auto m = datasets::realize(spec, args.scale * 2);
        if (m.rows() > off.arch.row_capacity())
            continue;
        const auto prep_on = acc_on.prepare(m);
        const auto prep_off = acc_off.prepare(m);
        std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
        const auto run_on = acc_on.run(prep_on, x, y);
        const auto run_off = acc_off.run(prep_off, x, y);
        t.add_row({spec.id + " " + spec.name,
                   analysis::fmt(prep_on.encode_stats().padding_ratio(), 3),
                   analysis::fmt(prep_off.encode_stats().padding_ratio(), 3),
                   std::to_string(run_on.cycles.compute_cycles),
                   std::to_string(run_off.cycles.compute_cycles),
                   analysis::fmt_ratio(
                       static_cast<double>(run_on.cycles.compute_cycles) /
                       static_cast<double>(run_off.cycles.compute_cycles))});
    }
    bench::print_table(t, args.csv);

    std::printf("\ntakeaway: coalescing costs a few percent extra compute "
                "cycles on most structures but doubles the reachable problem "
                "size — the paper's trade (§3.4).\n");
    return 0;
}
