// Table 1 — the design parameters of the Serpens accelerator.
// Regenerates the paper's parameter table from the live configuration
// structs, so any drift between code and paper is visible here.
#include "bench_common.h"
#include "core/config.h"
#include "hbm/line.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 1: design parameters of the Serpens accelerator");

    const core::SerpensConfig a16 = core::SerpensConfig::a16();
    const core::SerpensConfig a24 = core::SerpensConfig::a24();

    analysis::TextTable arch({"parameter", "paper", "this repo (A16)",
                              "this repo (A24)"});
    arch.add_row({"HBM channels (HA)", "16/24",
                  std::to_string(a16.arch.ha_channels),
                  std::to_string(a24.arch.ha_channels)});
    arch.add_row({"PEs / channel", "8", std::to_string(a16.arch.pes_per_channel),
                  std::to_string(a24.arch.pes_per_channel)});
    arch.add_row({"BRAM18Ks / PE", "128", "128 (Eq. 1: 64 BRAM36/ch)",
                  "128"});
    arch.add_row({"URAMs / PE (U)", "3", std::to_string(a16.arch.urams_per_pe),
                  std::to_string(a24.arch.urams_per_pe)});
    bench::print_table(arch, args.csv);

    std::printf("\n");
    analysis::TextTable bits({"bit-width", "paper", "this repo"});
    bits.add_row({"memory bus", "512", std::to_string(hbm::kLineBits)});
    bits.add_row({"data (float)", "32", "32"});
    bits.add_row({"index (row+col)", "32",
                  "32 (1 valid + 15 addr + 1 half + 1 rsvd + 14 col)"});
    bits.add_row({"instruction", "32", "32 (modeled in stream headers)"});
    bench::print_table(bits, args.csv);

    std::printf("\nderived: total PEs A16 = %u, A24 = %u; "
                "x-segment W = %u; row capacity A16 = %llu rows\n",
                a16.arch.total_pes(), a24.arch.total_pes(), a16.arch.window,
                static_cast<unsigned long long>(a16.arch.row_capacity()));
    return 0;
}
