// Table 8 — scaling the sparse-matrix channels to 24 (Serpens-A24 @270 MHz):
// throughput on the twelve matrices and improvement over GraphLily.
#include <cmath>

#include "bench_common.h"

#include "analysis/stats.h"
#include "baselines/graphlily.h"
#include "core/accelerator.h"
#include "datasets/table3.h"
#include "util/rng.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 8: Serpens-A24 (24 HBM channels, 270 MHz)");
    std::printf("stand-ins at 1/%u scale; full-size projection from measured "
                "padding\n\n", args.scale);

    const core::Accelerator a24(core::SerpensConfig::a24());
    const baselines::GraphLilyModel graphlily;

    std::vector<std::string> headers = {"metric / matrix"};
    std::vector<double> ours_gflops, paper_gflops, ours_impr, paper_impr;
    std::vector<std::string> row_gflops = {"A24 GFLOP/s (ours)"};
    std::vector<std::string> row_paper = {"A24 GFLOP/s (paper)"};
    std::vector<std::string> row_impr = {"vs GraphLily (ours)"};
    std::vector<std::string> row_impr_paper = {"vs GraphLily (paper)"};

    double max_gflops = 0.0;
    for (const auto& spec : datasets::twelve_large()) {
        headers.push_back(spec.id);

        const auto m = datasets::realize(spec, args.scale);
        const auto prepared = a24.prepare(m);
        Rng rng(7);
        std::vector<float> x(m.cols()), y(m.rows(), 0.0f);
        for (float& v : x)
            v = rng.next_float(-1.0f, 1.0f);
        const auto run = a24.run(prepared, x, y);

        const double ideal_compute =
            std::ceil(static_cast<double>(m.nnz()) /
                      (8.0 * a24.config().arch.ha_channels));
        const double stretch = std::max(
            1.0, static_cast<double>(run.cycles.compute_cycles) / ideal_compute);
        const double padding = 1.0 - 1.0 / stretch;
        const double ms =
            a24.estimate_time_ms(spec.rows, spec.rows, spec.nnz, padding);
        const double gflops = 2.0 * static_cast<double>(spec.nnz) / ms / 1e6;
        const double gl_ms =
            graphlily.estimate_spmv_ms(spec.rows, spec.rows, spec.nnz);
        const double impr = gl_ms / ms;
        const double paper_gl_mteps =
            static_cast<double>(spec.nnz) / spec.paper.graphlily_ms / 1e3;
        const double paper_impr_v =
            spec.paper.serpens_a24_gflops / 2.0 * 1e3 / paper_gl_mteps;

        max_gflops = std::max(max_gflops, gflops);
        ours_gflops.push_back(gflops);
        paper_gflops.push_back(spec.paper.serpens_a24_gflops);
        ours_impr.push_back(impr);
        paper_impr.push_back(paper_impr_v);
        row_gflops.push_back(analysis::fmt(gflops, 2));
        row_paper.push_back(analysis::fmt(spec.paper.serpens_a24_gflops, 2));
        row_impr.push_back(analysis::fmt_ratio(impr));
        row_impr_paper.push_back(analysis::fmt_ratio(paper_impr_v));
    }
    headers.push_back("GMN");
    row_gflops.push_back(analysis::fmt(analysis::geomean(ours_gflops), 2));
    row_paper.push_back(analysis::fmt(analysis::geomean(paper_gflops), 2));
    row_impr.push_back(analysis::fmt_ratio(analysis::geomean(ours_impr)));
    row_impr_paper.push_back(analysis::fmt_ratio(analysis::geomean(paper_impr)));

    analysis::TextTable t(headers);
    t.add_row(row_gflops);
    t.add_row(row_paper);
    t.add_row(row_impr);
    t.add_row(row_impr_paper);
    bench::print_table(t, args.csv);

    std::printf("\nmax throughput: %.2f GFLOP/s (%.0f MTEPS); paper: up to "
                "60.55 GFLOP/s (30,204 MTEPS), up to 3.79x over GraphLily\n",
                max_gflops, max_gflops / 2.0 * 1e3);
    return 0;
}
