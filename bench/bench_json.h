// Machine-readable benchmark output for the perf trajectory.
//
// Replaces BENCHMARK_MAIN() in the bench_micro_* binaries with a main that
// understands one extra flag:
//
//   --json=FILE    shorthand for --benchmark_out=FILE
//                  --benchmark_out_format=json
//
// ci.sh uses it to emit BENCH_sim.json / BENCH_parse.json per run and
// archives them, so a perf regression shows up as a diff in the archived
// numbers instead of a vague "feels slower". Everything else is passed to
// Google Benchmark untouched (filters, repetitions, min_time...).
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace serpens::bench {

inline int json_main(int argc, char** argv)
{
    std::vector<std::string> storage;
    storage.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--json=", 7) == 0) {
            storage.emplace_back(std::string("--benchmark_out=") + (arg + 7));
            storage.emplace_back("--benchmark_out_format=json");
        } else {
            storage.emplace_back(arg);
        }
    }
    std::vector<char*> args;
    args.reserve(storage.size());
    for (std::string& s : storage)
        args.push_back(s.data());
    int args_count = static_cast<int>(args.size());

    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace serpens::bench

#define SERPENS_BENCHMARK_JSON_MAIN()                                          \
    int main(int argc, char** argv)                                            \
    {                                                                          \
        return ::serpens::bench::json_main(argc, argv);                        \
    }
