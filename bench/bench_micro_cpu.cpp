// Micro-benchmark — CPU reference SpMV throughput (the golden-model cost,
// and an informal "what would a naive CPU do" yardstick next to the
// accelerator's modeled GFLOP/s).
#include <benchmark/benchmark.h>

#include "baselines/cpu_spmv.h"
#include "baselines/semiring.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace {

using namespace serpens;

void bm_cpu_spmv(benchmark::State& state)
{
    const auto nnz = static_cast<sparse::nnz_t>(state.range(0));
    const auto a =
        sparse::to_csr(sparse::make_uniform_random(65'536, 65'536, nnz, 1));
    const std::vector<float> x(a.cols(), 1.0f);
    std::vector<float> y(a.rows(), 0.0f);
    for (auto _ : state) {
        baselines::spmv_csr(a, x, y, 1.0f, 0.5f);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}

void bm_cpu_spmv_banded(benchmark::State& state)
{
    const auto a = sparse::to_csr(sparse::make_banded(262'144, 16, 2));
    const std::vector<float> x(a.cols(), 1.0f);
    std::vector<float> y(a.rows(), 0.0f);
    for (auto _ : state) {
        baselines::spmv_csr(a, x, y, 1.0f, 0.0f);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}

void bm_cpu_semiring(benchmark::State& state)
{
    const auto a =
        sparse::to_csr(sparse::make_uniform_random(65'536, 65'536, 1'000'000, 3));
    const std::vector<float> x(a.cols(), 1.0f);
    std::vector<float> y(a.rows(), 0.0f);
    const auto kind = static_cast<baselines::SemiringKind>(state.range(0));
    for (auto _ : state) {
        baselines::spmv_semiring(a, x, y, kind);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(a.nnz()));
}

BENCHMARK(bm_cpu_spmv)->Arg(100'000)->Arg(1'000'000)->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_cpu_spmv_banded)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_cpu_semiring)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
