// Table 5 — design comparison and the SpMV/SpMM specialization cross-over.
//
// Reproduces the paper's two points:
//   1. The configuration/feature comparison (channel allocation, reordering,
//      sharing, coalescing).
//   2. The TSOPF_RS_b2383_c1 experiment: an SpMV accelerator loses at SpMM
//      and vice versa (Serpens SpMV 0.535 ms vs Sextans 1.44 ms; Sextans
//      SpMM(16) 2.87 ms vs Serpens-as-16-SpMVs 8.56 ms).
#include <cmath>

#include "bench_common.h"

#include "baselines/sextans.h"
#include "core/accelerator.h"
#include "datasets/table3.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 5: Serpens vs Sextans vs GraphLily design comparison");

    analysis::TextTable cfg_table({"accelerator", "kernel", "#ch sparse A",
                                   "#ch dense B/C (x/y)", "#ch instr."});
    cfg_table.add_row({"Serpens", "SpMV", "16/24", "1/1", "1"});
    cfg_table.add_row({"Sextans", "SpMM", "8", "4/8", "1"});
    cfg_table.add_row({"GraphLily", "Graph", "16", "1/1", "-"});
    bench::print_table(cfg_table, args.csv);

    std::printf("\n");
    analysis::TextTable feat_table({"accelerator", "OoO NZ scheduling",
                                    "sparse sharing", "index coalescing",
                                    "perf SpMV/SpMM"});
    feat_table.add_row({"Serpens", "yes", "no", "yes", "high/low"});
    feat_table.add_row({"Sextans", "yes", "yes", "no", "low/high"});
    feat_table.add_row({"GraphLily", "no", "no", "no", "-/-"});
    bench::print_table(feat_table, args.csv);

    // --- Kernel cross-over on a TSOPF_RS_b2383_c1-like matrix ---
    // (block power-system matrix, ~38.1K rows, ~12.1M nnz)
    const sparse::index_t rows_full = 38'120;
    const sparse::nnz_t nnz_full = 12'100'000;

    const auto m = sparse::make_block_random(
        std::max<sparse::index_t>(rows_full / args.scale, 256), 16,
        std::max<sparse::nnz_t>(nnz_full / args.scale, 4096), 21);

    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(m);
    std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    const auto run = acc.run(prepared, x, y);
    const double ideal_compute =
        std::ceil(static_cast<double>(m.nnz()) /
                  (8.0 * acc.config().arch.ha_channels));
    const double padding =
        1.0 - 1.0 / std::max(1.0, static_cast<double>(run.cycles.compute_cycles) /
                                      ideal_compute);

    const double serpens_spmv_ms =
        acc.estimate_time_ms(rows_full, rows_full, nnz_full, padding);
    const double serpens_spmm16_ms = 16.0 * serpens_spmv_ms;  // 16 SpMV runs

    const baselines::SextansModel sextans;
    const double sextans_spmv_ms =
        *sextans.estimate_spmv_ms(rows_full, rows_full, nnz_full);
    const double sextans_spmm16_ms =
        *sextans.estimate_spmm_ms(rows_full, rows_full, nnz_full, 16);

    std::printf("\nkernel cross-over on TSOPF_RS_b2383_c1-like (%u rows, "
                "%.1fM nnz; measured at 1/%u scale, padding %.3f):\n\n",
                rows_full, nnz_full / 1e6, args.scale, padding);
    analysis::TextTable kernels({"kernel", "Serpens ms", "Sextans ms",
                                 "paper Serpens", "paper Sextans", "winner"});
    kernels.add_row({"SpMV", analysis::fmt(serpens_spmv_ms, 3),
                     analysis::fmt(sextans_spmv_ms, 3), "0.535", "1.44",
                     serpens_spmv_ms < sextans_spmv_ms ? "Serpens" : "Sextans"});
    kernels.add_row({"SpMM (N=16)", analysis::fmt(serpens_spmm16_ms, 2),
                     analysis::fmt(sextans_spmm16_ms, 2), "8.56", "2.87",
                     serpens_spmm16_ms < sextans_spmm16_ms ? "Serpens"
                                                           : "Sextans"});
    bench::print_table(kernels, args.csv);

    const bool shape_ok = serpens_spmv_ms < sextans_spmv_ms &&
                          sextans_spmm16_ms < serpens_spmm16_ms;
    std::printf("\ncross-over %s: each accelerator wins its own kernel — "
                "customization, not raw bandwidth, decides.\n",
                shape_ok ? "reproduced" : "NOT reproduced");
    std::printf("(scaled Serpens sim: %.4f ms, %.2f GFLOP/s at 1/%u size)\n",
                run.time_ms, run.metrics.gflops, args.scale);
    return shape_ok ? 0 : 1;
}
