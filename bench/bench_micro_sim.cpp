// Micro-benchmark — cycle-level simulator throughput (simulated non-zeros
// per second of host time). Determines how large a matrix the bench suite
// can afford to simulate.
#include <benchmark/benchmark.h>

#include "encode/image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"

namespace {

using namespace serpens;

void bm_simulate(benchmark::State& state)
{
    const auto nnz = static_cast<sparse::nnz_t>(state.range(0));
    const auto m = sparse::make_uniform_random(65'536, 65'536, nnz, 1);
    encode::EncodeParams params;
    const auto img = encode::encode_matrix(m, params);
    const std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    sim::SimOptions options;
    options.verify_hazards = false;  // measured separately below
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_simulate_with_verification(benchmark::State& state)
{
    const auto m = sparse::make_uniform_random(65'536, 65'536, 1'000'000, 1);
    encode::EncodeParams params;
    const auto img = encode::encode_matrix(m, params);
    const std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, {});
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

// Sequential-vs-parallel pair for the per-channel lane-decode loop
// (SimOptions::threads). Results are bit-identical across thread counts
// (tests/test_parallel_sim.cpp); these isolate the wall-clock gap.
void bm_sim_run(benchmark::State& state, unsigned threads)
{
    const auto m = sparse::make_uniform_random(65'536, 65'536, 4'000'000, 1);
    encode::EncodeParams params;
    const auto img = encode::encode_matrix(m, params, {.threads = 0});
    const std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    sim::SimOptions options;
    options.verify_hazards = false;
    options.threads = threads;
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_sim_sequential(benchmark::State& state) { bm_sim_run(state, 1); }

void bm_sim_parallel(benchmark::State& state)
{
    bm_sim_run(state, static_cast<unsigned>(state.range(0)));
}

BENCHMARK(bm_simulate)->Arg(100'000)->Arg(1'000'000)->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_simulate_with_verification)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_sequential)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_parallel)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
