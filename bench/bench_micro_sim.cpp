// Micro-benchmark — cycle-level simulator throughput (simulated non-zeros
// per second of host time). Determines how large a matrix the bench suite
// can afford to simulate, and tracks the decode-once / batched engines
// against the kept bit-packed reference walk.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_json.h"
#include "encode/image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"

namespace {

using namespace serpens;

// One shared encoded image per nnz count: encoding dominates simulation at
// these sizes, so benchmarks reuse the realized image.
const encode::SerpensImage& shared_image(std::int64_t nnz)
{
    static std::map<std::int64_t, encode::SerpensImage> cache;
    auto it = cache.find(nnz);
    if (it == cache.end()) {
        const auto m = sparse::make_uniform_random(
            65'536, 65'536, static_cast<sparse::nnz_t>(nnz), 1);
        encode::EncodeParams params;
        it = cache.emplace(nnz, encode::encode_matrix(m, params, {.threads = 0}))
                 .first;
    }
    return it->second;
}

void bm_simulate(benchmark::State& state)
{
    const auto nnz = static_cast<sparse::nnz_t>(state.range(0));
    const auto m = sparse::make_uniform_random(65'536, 65'536, nnz, 1);
    encode::EncodeParams params;
    const auto img = encode::encode_matrix(m, params);
    const std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    sim::SimOptions options;
    options.verify_hazards = false;  // measured separately below
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_simulate_with_verification(benchmark::State& state)
{
    const auto m = sparse::make_uniform_random(65'536, 65'536, 1'000'000, 1);
    encode::EncodeParams params;
    const auto img = encode::encode_matrix(m, params);
    const std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, {});
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

// Sequential-vs-parallel pair for the per-channel lane-decode loop
// (SimOptions::threads). Results are bit-identical across thread counts
// (tests/test_parallel_sim.cpp); these isolate the wall-clock gap.
void bm_sim_run(benchmark::State& state, unsigned threads)
{
    const auto m = sparse::make_uniform_random(65'536, 65'536, 4'000'000, 1);
    encode::EncodeParams params;
    const auto img = encode::encode_matrix(m, params, {.threads = 0});
    const std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    sim::SimOptions options;
    options.verify_hazards = false;
    options.threads = threads;
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_sim_sequential(benchmark::State& state) { bm_sim_run(state, 1); }

void bm_sim_parallel(benchmark::State& state)
{
    bm_sim_run(state, static_cast<unsigned>(state.range(0)));
}

// --- Decode-once pairs: the packed reference walk vs the DecodedImage
// engines, same image, verification off in both (measured separately
// above), serial in both so the gap is the decode amortization alone.
// Results are bit-identical across all three (tests/test_decoded_sim.cpp).

void bm_sim_packed_ref(benchmark::State& state)
{
    const encode::SerpensImage& img = shared_image(state.range(0));
    const std::vector<float> x(img.cols(), 1.0f), y(img.rows(), 0.0f);
    sim::SimOptions options;
    options.verify_hazards = false;
    for (auto _ : state) {
        auto result = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(img.stats().nnz));
}

// The one-time cost the decoded path pays up front.
void bm_sim_decode(benchmark::State& state)
{
    const encode::SerpensImage& img = shared_image(state.range(0));
    for (auto _ : state) {
        auto decoded =
            sim::DecodedImage::decode(img, {.verify_hazards = false});
        benchmark::DoNotOptimize(decoded.nnz());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(img.stats().nnz));
}

// Repeated SpMV on the cached decode — the iterative-workload shape
// (PageRank, BFS rounds, batched serving).
void bm_sim_decoded(benchmark::State& state)
{
    const encode::SerpensImage& img = shared_image(state.range(0));
    const auto decoded =
        sim::DecodedImage::decode(img, {.verify_hazards = false});
    const std::vector<float> x(img.cols(), 1.0f), y(img.rows(), 0.0f);
    sim::SimOptions options;
    options.verify_hazards = false;
    for (auto _ : state) {
        auto result =
            sim::simulate_spmv_decoded(decoded, x, y, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(img.stats().nnz));
}

// One decoded pass over B right-hand sides; items = nnz * B, so
// items_per_second directly shows the per-vector amortization vs
// bm_sim_decoded.
void bm_sim_batch(benchmark::State& state)
{
    const encode::SerpensImage& img = shared_image(1'000'000);
    const auto decoded =
        sim::DecodedImage::decode(img, {.verify_hazards = false});
    const auto batch = static_cast<std::size_t>(state.range(0));
    const std::vector<std::vector<float>> xs(
        batch, std::vector<float>(img.cols(), 1.0f));
    const std::vector<std::vector<float>> ys(
        batch, std::vector<float>(img.rows(), 0.0f));
    sim::SimOptions options;
    options.verify_hazards = false;
    for (auto _ : state) {
        auto result =
            sim::simulate_spmv_batch(decoded, xs, ys, 1.0f, 0.0f, options);
        benchmark::DoNotOptimize(result.y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(img.stats().nnz) *
        static_cast<std::int64_t>(batch));
}

BENCHMARK(bm_simulate)->Arg(100'000)->Arg(1'000'000)->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_simulate_with_verification)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_sequential)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_parallel)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_packed_ref)->Arg(1'000'000)->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_decode)->Arg(1'000'000)->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_decoded)->Arg(1'000'000)->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_sim_batch)->Arg(1)->Arg(3)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

SERPENS_BENCHMARK_JSON_MAIN();
