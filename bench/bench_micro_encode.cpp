// Micro-benchmark — encoder (preprocessing) throughput.
//
// The paper's preprocessing is an offline step ("similar to prior works we
// preprocess the sparse elements into accelerator-efficient storage");
// these numbers establish how expensive that step is per non-zero.
#include <benchmark/benchmark.h>

#include "encode/image.h"
#include "sparse/generators.h"

namespace {

using namespace serpens;

void bm_encode_uniform(benchmark::State& state)
{
    const auto nnz = static_cast<sparse::nnz_t>(state.range(0));
    const auto m = sparse::make_uniform_random(65'536, 65'536, nnz, 1);
    encode::EncodeParams params;
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_encode_banded(benchmark::State& state)
{
    const auto m = sparse::make_banded(65'536, 16, 2);
    encode::EncodeParams params;
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_encode_clustered(benchmark::State& state)
{
    const auto m = sparse::make_clustered(65'536, 1'048'576, 8, 64, 0.3, 3);
    encode::EncodeParams params;
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

BENCHMARK(bm_encode_uniform)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_encode_banded)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_encode_clustered)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
