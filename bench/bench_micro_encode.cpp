// Micro-benchmark — encoder (preprocessing) throughput.
//
// The paper's preprocessing is an offline step ("similar to prior works we
// preprocess the sparse elements into accelerator-efficient storage");
// these numbers establish how expensive that step is per non-zero. The
// bm_schedule_* pairs isolate the scheduler hot path: the calendar-queue
// production scheduler vs. the heap-based reference on the same streams.
#include <benchmark/benchmark.h>

#include "encode/image.h"
#include "encode/schedule.h"
#include "encode/schedule_reference.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace {

using namespace serpens;

// A skewed conflict-address stream: group sizes follow a heavy-tailed
// power law over a 15-bit URAM-like address space, the regime where the
// reference's eligible heap is deepest.
std::vector<std::uint32_t> skewed_stream(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> addrs;
    addrs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const double u = rng.next_double();
        addrs.push_back(static_cast<std::uint32_t>(32'768.0 * u * u * u));
    }
    return addrs;
}

template <encode::ScheduleResult (*Schedule)(std::span<const std::uint32_t>,
                                             unsigned, encode::SchedulePolicy)>
void bm_schedule(benchmark::State& state, encode::SchedulePolicy policy)
{
    const auto addrs =
        skewed_stream(static_cast<std::size_t>(state.range(0)), 42);
    for (auto _ : state) {
        const auto r = Schedule(addrs, 8, policy);
        benchmark::DoNotOptimize(r.padding_count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void bm_schedule_calendar_lbf(benchmark::State& state)
{
    bm_schedule<encode::schedule_hazard_aware>(
        state, encode::SchedulePolicy::largest_bucket_first);
}

void bm_schedule_reference_lbf(benchmark::State& state)
{
    bm_schedule<encode::schedule_hazard_aware_reference>(
        state, encode::SchedulePolicy::largest_bucket_first);
}

void bm_schedule_calendar_fifo(benchmark::State& state)
{
    bm_schedule<encode::schedule_hazard_aware>(state,
                                               encode::SchedulePolicy::fifo);
}

void bm_schedule_reference_fifo(benchmark::State& state)
{
    bm_schedule<encode::schedule_hazard_aware_reference>(
        state, encode::SchedulePolicy::fifo);
}

void bm_encode_uniform(benchmark::State& state)
{
    const auto nnz = static_cast<sparse::nnz_t>(state.range(0));
    const auto m = sparse::make_uniform_random(65'536, 65'536, nnz, 1);
    encode::EncodeParams params;
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_encode_banded(benchmark::State& state)
{
    const auto m = sparse::make_banded(65'536, 16, 2);
    encode::EncodeParams params;
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_encode_clustered(benchmark::State& state)
{
    const auto m = sparse::make_clustered(65'536, 1'048'576, 8, 64, 0.3, 3);
    encode::EncodeParams params;
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

void bm_encode_clustered_threads(benchmark::State& state)
{
    const auto m = sparse::make_clustered(65'536, 1'048'576, 8, 64, 0.3, 3);
    encode::EncodeParams params;
    encode::EncodeOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto img = encode::encode_matrix(m, params, options);
        benchmark::DoNotOptimize(img.stats().total_slots);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m.nnz()));
}

BENCHMARK(bm_encode_uniform)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_encode_banded)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_encode_clustered)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_encode_clustered_threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_schedule_calendar_lbf)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_schedule_reference_lbf)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_schedule_calendar_fifo)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_schedule_reference_fifo)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
