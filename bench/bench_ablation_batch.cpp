// Ablation — SpMM batch width B (the batched device mode of §6.6).
//
// One batched invocation streams the sparse image once per
// batch_columns-wide column block, so the dominant A-stream term is paid
// ceil(B / batch_columns) times instead of B times. This sweep runs real
// batched executions (not just the closed form) across B = 1..32 and
// reports the amortized per-SpMV device time next to the analytic model
// and the Sextans SpMM baseline — the knee must sit at batch_columns.
//
// Extra flags on top of bench_common.h (unknown flags are ignored there):
//   --entries N   nnz of the generated matrix (default 1,000,000)
//   --json FILE   archive the sweep (ci.sh -> BENCH_batch.json)
//
// Exits non-zero when the sweep violates the model's own invariants
// (amortized time not strictly better at B = 8 than B = 1, or not
// monotone non-increasing over the power-of-two widths), so archiving the
// JSON in CI doubles as a regression gate.
#include "bench_common.h"

#include <fstream>
#include <vector>

#include "baselines/sextans.h"
#include "core/accelerator.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace {

struct SweepPoint {
    unsigned batch = 1;
    unsigned passes = 1;
    double batch_ms = 0.0;
    double amortized_ms = 0.0;
    double speedup_vs_b1 = 0.0;
    double analytic_amortized_ms = 0.0;
    double sextans_amortized_ms = 0.0;
};

} // namespace

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    std::uint64_t entries = 1'000'000;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
            entries = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    bench::banner("Ablation: SpMM batch width B (batched device mode)");

    const auto n = static_cast<sparse::index_t>(
        std::max<std::uint64_t>(4096, entries / 16));
    const auto m = sparse::make_uniform_random(
        n, n, static_cast<sparse::nnz_t>(entries), 42);

    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    const core::Accelerator acc(cfg);
    const auto prepared = acc.prepare(m);
    std::printf("matrix: uniform %u x %u, %llu nnz; batch_columns = %u\n\n",
                m.rows(), m.cols(),
                static_cast<unsigned long long>(m.nnz()),
                cfg.batch_columns);

    const baselines::SextansModel sextans;
    const double padding = prepared.encode_stats().padding_ratio();

    Rng rng(7);
    std::vector<SweepPoint> sweep;
    analysis::TextTable t({"B", "passes", "batch ms", "amortized ms",
                           "speedup", "analytic ms", "sextans ms"});
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::vector<std::vector<float>> xs(b,
                                           std::vector<float>(m.cols()));
        const std::vector<std::vector<float>> ys(
            b, std::vector<float>(m.rows(), 0.0f));
        for (auto& x : xs)
            for (float& v : x)
                v = rng.next_float(-1.0f, 1.0f);

        const core::BatchRunResult run = acc.run_batch(prepared, xs, ys);

        SweepPoint p;
        p.batch = b;
        p.passes = run.batch_cycles.passes;
        p.batch_ms = run.batch_time_ms;
        p.amortized_ms = run.amortized_time_ms;
        p.analytic_amortized_ms =
            acc.estimate_batch_time_ms(m.rows(), m.cols(), m.nnz(), b,
                                       padding) /
            b;
        if (const auto sx = sextans.estimate_amortized_spmv_ms(
                m.rows(), m.cols(), m.nnz(), b))
            p.sextans_amortized_ms = *sx;
        p.speedup_vs_b1 =
            sweep.empty() ? 1.0 : sweep.front().amortized_ms / p.amortized_ms;
        sweep.push_back(p);

        t.add_row({std::to_string(b), std::to_string(p.passes),
                   analysis::fmt(p.batch_ms, 4),
                   analysis::fmt(p.amortized_ms, 4),
                   analysis::fmt(p.speedup_vs_b1, 2),
                   analysis::fmt(p.analytic_amortized_ms, 4),
                   analysis::fmt(p.sextans_amortized_ms, 4)});
    }
    bench::print_table(t, args.csv);
    std::printf("\nthe knee sits at batch_columns = %u: past one full "
                "column block only the kickoff overhead keeps "
                "amortizing.\n",
                cfg.batch_columns);

    // Self-check the invariants the JSON is archived to witness.
    bool ok = true;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].amortized_ms > sweep[i - 1].amortized_ms) {
            std::fprintf(stderr,
                         "FAIL: amortized ms increased from B=%u to B=%u\n",
                         sweep[i - 1].batch, sweep[i].batch);
            ok = false;
        }
    }
    const SweepPoint& b1 = sweep[0];
    const SweepPoint& b8 = sweep[3];
    if (!(b8.amortized_ms < b1.amortized_ms)) {
        std::fprintf(stderr,
                     "FAIL: B=8 amortized ms not strictly below B=1\n");
        ok = false;
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "FAIL: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        out << "{\n  \"tool\": \"bench_ablation_batch\",\n"
            << "  \"matrix\": {\"rows\": " << m.rows()
            << ", \"cols\": " << m.cols() << ", \"nnz\": " << m.nnz()
            << "},\n"
            << "  \"batch_columns\": " << cfg.batch_columns << ",\n"
            << "  \"sweep\": [\n";
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const SweepPoint& p = sweep[i];
            out << "    {\"batch\": " << p.batch
                << ", \"passes\": " << p.passes
                << ", \"batch_ms\": " << p.batch_ms
                << ", \"amortized_ms\": " << p.amortized_ms
                << ", \"speedup_vs_b1\": " << p.speedup_vs_b1
                << ", \"analytic_amortized_ms\": " << p.analytic_amortized_ms
                << ", \"sextans_amortized_ms\": " << p.sextans_amortized_ms
                << "}" << (i + 1 < sweep.size() ? ",\n" : "\n");
        }
        out << "  ],\n  \"amortized_improves_b1_to_b8\": "
            << (ok ? "true" : "false") << "\n}\n";
        std::printf("sweep written to %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
