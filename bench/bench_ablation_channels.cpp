// Ablation — HBM channel scaling HA = 2..28 (extends paper §4.4).
//
// The memory-centric PE design means adding channels adds PEs with no
// cross-channel wiring; throughput scales until the serial vector phases
// and fills dominate (Amdahl) or lateral HBM congestion cuts per-channel
// efficiency (the A24 effect).
#include "bench_common.h"

#include "core/accelerator.h"
#include "core/resource_model.h"
#include "datasets/table3.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Ablation: sparse-matrix HBM channel count");

    const auto spec = datasets::twelve_large()[5];  // G6 mouse_gene (dense-ish)
    const auto m = datasets::realize(spec, args.scale);
    std::printf("matrix: %s stand-in at 1/%u (%u rows, %llu nnz)\n\n",
                spec.name.c_str(), args.scale, m.rows(),
                static_cast<unsigned long long>(m.nnz()));

    analysis::TextTable t({"HA", "PEs", "BW GB/s", "GFLOP/s", "scaling",
                           "ideal", "URAM%", "DSP%"});
    std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    double base_gflops = 0.0;
    unsigned base_ha = 0;
    for (unsigned ha : {2u, 4u, 8u, 12u, 16u, 20u, 24u, 28u}) {
        core::SerpensConfig cfg = core::SerpensConfig::a16();
        cfg.arch.ha_channels = ha;
        if (ha >= 24) {
            // Lateral congestion beyond ~24 channels (paper §4.4).
            cfg.hbm.stream_efficiency = 0.62;
            cfg.frequency_mhz = 270.0;
        }
        const core::Accelerator acc(cfg);
        const auto prepared = acc.prepare(m);
        const auto run = acc.run(prepared, x, y);
        if (base_gflops == 0.0) {
            base_gflops = run.metrics.gflops;
            base_ha = ha;
        }
        const auto res = core::estimate_resources(cfg);
        t.add_row({std::to_string(ha), std::to_string(cfg.arch.total_pes()),
                   analysis::fmt(cfg.utilized_bandwidth_gbps(), 0),
                   analysis::fmt(run.metrics.gflops, 2),
                   analysis::fmt_ratio(run.metrics.gflops / base_gflops),
                   analysis::fmt_ratio(static_cast<double>(ha) / base_ha),
                   analysis::fmt(res.uram_pct, 0),
                   analysis::fmt(res.dsp_pct, 0)});
    }
    bench::print_table(t, args.csv);

    std::printf("\npaper data point: A24/A16 speedup ~1.36x on G4 "
                "(60.55 / 44.39 GFLOP/s) despite 1.5x channels x 1.21x clock "
                "— congestion is the ceiling.\n");
    return 0;
}
