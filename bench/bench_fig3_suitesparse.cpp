// Figure 3 — SpMV throughput of the K80 GPU and Serpens-A16 across the
// SuiteSparse-like collection, plotted against NNZ.
//
// Every matrix is realized, encoded, and run through the cycle-level
// simulator (Serpens) and the csrmv roofline model (K80). The bench prints
// the scatter as an ASCII plot plus CSV series, and reports the geomean
// ratios the paper headlines (§4.3: 2.10x throughput, 4.06x bandwidth
// efficiency, 6.25x energy efficiency).
#include <cmath>

#include "bench_common.h"

#include "analysis/stats.h"
#include "baselines/k80.h"
#include "core/accelerator.h"
#include "datasets/suite.h"
#include "sparse/convert.h"

namespace {

struct Point {
    double nnz;
    double serpens_gflops;
    double k80_gflops;
};

void ascii_scatter(const std::vector<Point>& pts)
{
    // log-x: NNZ in [1e3, 1e7]; log-y: GFLOP/s in [1e-2, 60].
    constexpr int kW = 72, kH = 22;
    const double x_lo = std::log10(1e3), x_hi = std::log10(1e7);
    const double y_lo = std::log10(1e-2), y_hi = std::log10(60.0);
    std::vector<std::string> grid(kH, std::string(kW, ' '));

    const auto plot = [&](double nnz, double gflops, char mark) {
        const double fx = (std::log10(nnz) - x_lo) / (x_hi - x_lo);
        const double fy = (std::log10(std::max(gflops, 1e-2)) - y_lo) / (y_hi - y_lo);
        const int cx = std::clamp(static_cast<int>(fx * (kW - 1)), 0, kW - 1);
        const int cy = std::clamp(static_cast<int>((1.0 - fy) * (kH - 1)), 0, kH - 1);
        char& cell = grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)];
        cell = (cell == ' ' || cell == mark) ? mark : '#';
    };
    for (const Point& p : pts) {
        plot(p.nnz, p.serpens_gflops, 'S');
        plot(p.nnz, p.k80_gflops, 'K');
    }

    std::printf("  GFLOP/s (log)   S = Serpens-A16, K = K80, # = overlap\n");
    std::printf("  60 +%s+\n", std::string(kW, '-').c_str());
    for (int r = 0; r < kH; ++r)
        std::printf("     |%s|\n", grid[static_cast<std::size_t>(r)].c_str());
    std::printf("0.01 +%s+\n", std::string(kW, '-').c_str());
    std::printf("     1e3 %*s 1e7   NNZ (log)\n", kW - 6, "");
}

} // namespace

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Figure 3: K80 vs Serpens-A16 across the collection");

    datasets::SuiteSpec spec;
    spec.count = args.count;
    const auto recipes = datasets::sample_suite(spec);
    std::printf("collection: %zu matrices (--count to change), NNZ %llu..%llu\n\n",
                recipes.size(),
                static_cast<unsigned long long>(spec.min_nnz),
                static_cast<unsigned long long>(spec.max_nnz));

    const core::Accelerator acc(core::SerpensConfig::a16());
    const baselines::K80Model k80;
    const double serpens_bw = acc.config().utilized_bandwidth_gbps();
    const double serpens_w = acc.config().power_w;
    const double k80_bw = k80.config().bandwidth_gbps;
    const double k80_w = k80.config().power_w;

    std::vector<Point> pts;
    std::vector<double> ratio_tput, serpens_bw_eff, k80_bw_eff, serpens_ee, k80_ee;
    double serpens_max = 0.0, k80_max = 0.0;

    for (const auto& r : recipes) {
        const auto m = datasets::realize(r);
        if (m.nnz() == 0)
            continue;
        const auto csr = sparse::to_csr(m);

        const auto prepared = acc.prepare(m);
        std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
        const auto run = acc.run(prepared, x, y);
        const double s_ms = run.time_ms;
        const double k_ms = k80.estimate_spmv_ms(m.rows(), m.cols(), m.nnz(),
                                                 csr.row_imbalance());

        const double nnz = static_cast<double>(m.nnz());
        const double s_gflops = 2.0 * nnz / s_ms / 1e6;
        const double k_gflops = 2.0 * nnz / k_ms / 1e6;
        const double s_mteps = nnz / s_ms / 1e3;
        const double k_mteps = nnz / k_ms / 1e3;

        pts.push_back({nnz, s_gflops, k_gflops});
        ratio_tput.push_back(s_gflops / k_gflops);
        serpens_bw_eff.push_back(s_mteps / serpens_bw);
        k80_bw_eff.push_back(k_mteps / k80_bw);
        serpens_ee.push_back(s_mteps / serpens_w);
        k80_ee.push_back(k_mteps / k80_w);
        serpens_max = std::max(serpens_max, s_gflops);
        k80_max = std::max(k80_max, k_gflops);
    }

    ascii_scatter(pts);

    std::printf("\n");
    analysis::TextTable t({"metric", "Serpens-A16", "K80", "ratio", "paper"});
    t.add_row({"geomean throughput ratio", "-", "-",
               analysis::fmt_ratio(analysis::geomean(ratio_tput)),
               "2.10x - 2.31x"});
    t.add_row({"max throughput GFLOP/s", analysis::fmt(serpens_max, 2),
               analysis::fmt(k80_max, 2), "-", "46.43 / 29.12"});
    t.add_row({"geomean BW eff MTEPS/(GB/s)",
               analysis::fmt(analysis::geomean(serpens_bw_eff), 2),
               analysis::fmt(analysis::geomean(k80_bw_eff), 2),
               analysis::fmt_ratio(analysis::geomean(serpens_bw_eff) /
                                   analysis::geomean(k80_bw_eff)),
               "8.52 / 2.10 = 4.06x"});
    t.add_row({"geomean energy eff MTEPS/W",
               analysis::fmt(analysis::geomean(serpens_ee), 2),
               analysis::fmt(analysis::geomean(k80_ee), 2),
               analysis::fmt_ratio(analysis::geomean(serpens_ee) /
                                   analysis::geomean(k80_ee)),
               "48.4 / 7.75 = 6.25x"});
    bench::print_table(t, args.csv);

    if (args.csv) {
        std::printf("\nCSV: nnz,serpens_gflops,k80_gflops\n");
        for (const Point& p : pts)
            std::printf("%.0f,%.4f,%.4f\n", p.nnz, p.serpens_gflops,
                        p.k80_gflops);
    }

    const double geo = analysis::geomean(ratio_tput);
    std::printf("\nshape check: Serpens wins the geomean (%s) and nearly every "
                "matrix; K80 closes the gap only at the largest NNZ.\n",
                analysis::fmt_ratio(geo).c_str());
    return geo > 1.0 ? 0 : 1;
}
