// Table 4 — the paper's headline evaluation: execution time, throughput
// (GFLOP/s and MTEPS), bandwidth efficiency, and energy efficiency of
// Sextans, GraphLily, and Serpens-A16 on the twelve large matrices.
//
// Method (see DESIGN.md §5):
//   * Each matrix is realized as a synthetic stand-in at --scale (default
//     1/16) and run through the full encode + cycle-level simulation;
//     functional output is verified against the CPU reference.
//   * The full-size execution time for Serpens is the closed-form model fed
//     with the *measured* padding ratio from the scaled run; Sextans and
//     GraphLily use their architecture models (Sextans returns "-" where its
//     on-chip capacity is exceeded, matching the paper).
//   * Paper-published numbers are printed alongside, with geomean ratios.
#include <cmath>
#include <functional>
#include <limits>

#include "bench_common.h"

#include "analysis/stats.h"
#include "baselines/cpu_spmv.h"
#include "baselines/graphlily.h"
#include "baselines/sextans.h"
#include "core/accelerator.h"
#include "datasets/table3.h"
#include "sparse/convert.h"
#include "util/rng.h"

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

struct Row {
    std::string id;
    double sextans_ms = kNaN;
    double graphlily_ms = kNaN;
    double serpens_ms = kNaN;
    double paper_sextans_ms = kNaN;
    double paper_graphlily_ms = kNaN;
    double paper_serpens_ms = kNaN;
    double nnz_full = 0.0;
    bool functional_ok = false;
};

using MetricFn = std::function<double(const Row&)>;

void add_metric_row(serpens::analysis::TextTable& t, const std::string& name,
                    const std::vector<Row>& rows, const MetricFn& metric,
                    int precision)
{
    std::vector<std::string> line = {name};
    std::vector<double> vals;
    for (const Row& r : rows) {
        const double v = metric(r);
        line.push_back(serpens::analysis::fmt(v, precision));
        if (!std::isnan(v))
            vals.push_back(v);
    }
    line.push_back(serpens::analysis::fmt(serpens::analysis::geomean(vals),
                                          precision));
    t.add_row(std::move(line));
}

void add_ratio_row(serpens::analysis::TextTable& t, const std::string& name,
                   const std::vector<Row>& rows, const MetricFn& num,
                   const MetricFn& den)
{
    std::vector<std::string> line = {name};
    std::vector<double> vals;
    for (const Row& r : rows) {
        const double v = num(r) / den(r);
        line.push_back(serpens::analysis::fmt_ratio(v));
        if (!std::isnan(v))
            vals.push_back(v);
    }
    line.push_back(serpens::analysis::fmt_ratio(serpens::analysis::geomean(vals)));
    t.add_row(std::move(line));
}

double mteps_of(double nnz, double ms)
{
    return std::isnan(ms) ? kNaN : nnz / ms / 1e3;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 4: Sextans / GraphLily / Serpens-A16 on 12 matrices");
    std::printf("stand-ins at 1/%u scale; full-size times from the calibrated "
                "models (Serpens fed the measured padding ratio)\n\n",
                args.scale);

    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    const core::Accelerator acc(cfg);
    const baselines::SextansModel sextans;
    const baselines::GraphLilyModel graphlily;

    std::vector<Row> rows;
    int functional_ok_count = 0;
    for (const auto& spec : datasets::twelve_large()) {
        Row row;
        row.id = spec.id;
        row.nnz_full = static_cast<double>(spec.nnz);
        row.paper_sextans_ms = spec.paper.sextans_ms;
        row.paper_graphlily_ms = spec.paper.graphlily_ms;
        row.paper_serpens_ms = spec.paper.serpens_a16_ms;

        const auto m = datasets::realize(spec, args.scale);
        const auto prepared = acc.prepare(m);

        Rng rng(99);
        std::vector<float> x(m.cols()), y(m.rows(), 0.0f);
        for (float& v : x)
            v = rng.next_float(-1.0f, 1.0f);
        const auto run = acc.run(prepared, x, y);

        const auto ref =
            baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, 1.0f, 0.0f);
        double max_rel = 0.0;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const double denom = std::max(1.0, std::abs(ref[i]));
            max_rel = std::max(max_rel, std::abs(run.y[i] - ref[i]) / denom);
        }
        row.functional_ok = max_rel < 1e-3;
        functional_ok_count += row.functional_ok;

        // Full-size projection from the measured *cycle stretch* (compute
        // cycles / ideal Eq.4 compute cycles), which is scale-invariant.
        // The raw padding ratio would understate matrices whose padding
        // concentrates in one channel while the others idle-wait.
        const double ideal_compute = std::ceil(
            static_cast<double>(m.nnz()) / (8.0 * cfg.arch.ha_channels));
        const double stretch = std::max(
            1.0, static_cast<double>(run.cycles.compute_cycles) / ideal_compute);
        const double padding = 1.0 - 1.0 / stretch;
        row.serpens_ms =
            acc.estimate_time_ms(spec.rows, spec.rows, spec.nnz, padding);
        row.graphlily_ms =
            graphlily.estimate_spmv_ms(spec.rows, spec.rows, spec.nnz);
        if (const auto ms =
                sextans.estimate_spmv_ms(spec.rows, spec.rows, spec.nnz))
            row.sextans_ms = *ms;

        rows.push_back(row);
    }

    std::vector<std::string> headers = {"metric / matrix"};
    for (const Row& r : rows)
        headers.push_back(r.id);
    headers.push_back("GMN");

    // --- Execution time (ms) ---
    analysis::TextTable time_table(headers);
    add_metric_row(time_table, "Sextans ms (model)", rows,
                   [](const Row& r) { return r.sextans_ms; }, 2);
    add_metric_row(time_table, "Sextans ms (paper)", rows,
                   [](const Row& r) { return r.paper_sextans_ms; }, 2);
    add_metric_row(time_table, "GraphLily ms (model)", rows,
                   [](const Row& r) { return r.graphlily_ms; }, 2);
    add_metric_row(time_table, "GraphLily ms (paper)", rows,
                   [](const Row& r) { return r.paper_graphlily_ms; }, 2);
    add_metric_row(time_table, "Serpens ms (ours)", rows,
                   [](const Row& r) { return r.serpens_ms; }, 2);
    add_metric_row(time_table, "Serpens ms (paper)", rows,
                   [](const Row& r) { return r.paper_serpens_ms; }, 2);
    bench::print_table(time_table, args.csv);

    // --- Throughput (GFLOP/s) ---
    std::printf("\n");
    analysis::TextTable gflops_table(headers);
    add_metric_row(gflops_table, "Sextans GFLOP/s", rows,
                   [](const Row& r) {
                       return 2e-3 * mteps_of(r.nnz_full, r.sextans_ms);
                   }, 2);
    add_metric_row(gflops_table, "GraphLily GFLOP/s", rows,
                   [](const Row& r) {
                       return 2e-3 * mteps_of(r.nnz_full, r.graphlily_ms);
                   }, 2);
    add_metric_row(gflops_table, "Serpens GFLOP/s", rows,
                   [](const Row& r) {
                       return 2e-3 * mteps_of(r.nnz_full, r.serpens_ms);
                   }, 2);
    bench::print_table(gflops_table, args.csv);

    // --- Throughput (MTEPS) + improvement ---
    std::printf("\n");
    analysis::TextTable mteps_table(headers);
    add_metric_row(mteps_table, "Sextans MTEPS", rows,
                   [](const Row& r) { return mteps_of(r.nnz_full, r.sextans_ms); },
                   0);
    add_metric_row(mteps_table, "GraphLily MTEPS", rows,
                   [](const Row& r) {
                       return mteps_of(r.nnz_full, r.graphlily_ms);
                   }, 0);
    add_metric_row(mteps_table, "Serpens MTEPS", rows,
                   [](const Row& r) { return mteps_of(r.nnz_full, r.serpens_ms); },
                   0);
    add_ratio_row(mteps_table, "improvement (ours)", rows,
                  [](const Row& r) { return mteps_of(r.nnz_full, r.serpens_ms); },
                  [](const Row& r) {
                      return mteps_of(r.nnz_full, r.graphlily_ms);
                  });
    add_ratio_row(mteps_table, "improvement (paper)", rows,
                  [](const Row& r) {
                      return mteps_of(r.nnz_full, r.paper_serpens_ms);
                  },
                  [](const Row& r) {
                      return mteps_of(r.nnz_full, r.paper_graphlily_ms);
                  });
    bench::print_table(mteps_table, args.csv);

    // --- Bandwidth efficiency (MTEPS / (GB/s)) ---
    const double serpens_bw = cfg.utilized_bandwidth_gbps();
    const double gl_bw = graphlily.config().bandwidth_gbps;
    const double sx_bw = sextans.config().bandwidth_gbps;
    std::printf("\n");
    analysis::TextTable bw_table(headers);
    add_metric_row(bw_table, "Sextans MTEPS/(GB/s)", rows,
                   [&](const Row& r) {
                       return mteps_of(r.nnz_full, r.sextans_ms) / sx_bw;
                   }, 1);
    add_metric_row(bw_table, "GraphLily MTEPS/(GB/s)", rows,
                   [&](const Row& r) {
                       return mteps_of(r.nnz_full, r.graphlily_ms) / gl_bw;
                   }, 1);
    add_metric_row(bw_table, "Serpens MTEPS/(GB/s)", rows,
                   [&](const Row& r) {
                       return mteps_of(r.nnz_full, r.serpens_ms) / serpens_bw;
                   }, 1);
    add_ratio_row(bw_table, "improvement (ours)", rows,
                  [&](const Row& r) {
                      return mteps_of(r.nnz_full, r.serpens_ms) / serpens_bw;
                  },
                  [&](const Row& r) {
                      return mteps_of(r.nnz_full, r.graphlily_ms) / gl_bw;
                  });
    bench::print_table(bw_table, args.csv);

    // --- Energy efficiency (MTEPS / W) ---
    const double serpens_w = cfg.power_w;
    const double gl_w = graphlily.config().power_w;
    const double sx_w = sextans.config().power_w;
    std::printf("\n");
    analysis::TextTable energy_table(headers);
    add_metric_row(energy_table, "Sextans MTEPS/W", rows,
                   [&](const Row& r) {
                       return mteps_of(r.nnz_full, r.sextans_ms) / sx_w;
                   }, 0);
    add_metric_row(energy_table, "GraphLily MTEPS/W", rows,
                   [&](const Row& r) {
                       return mteps_of(r.nnz_full, r.graphlily_ms) / gl_w;
                   }, 0);
    add_metric_row(energy_table, "Serpens MTEPS/W", rows,
                   [&](const Row& r) {
                       return mteps_of(r.nnz_full, r.serpens_ms) / serpens_w;
                   }, 0);
    add_ratio_row(energy_table, "improvement (ours)", rows,
                  [&](const Row& r) {
                      return mteps_of(r.nnz_full, r.serpens_ms) / serpens_w;
                  },
                  [&](const Row& r) {
                      return mteps_of(r.nnz_full, r.graphlily_ms) / gl_w;
                  });
    bench::print_table(energy_table, args.csv);

    std::printf("\nfunctional verification at scale: %d/12 matrices match the "
                "CPU reference\n", functional_ok_count);
    std::printf("paper headline: Serpens vs GraphLily 1.91x MTEPS, 1.99x "
                "bandwidth eff, 1.71x energy eff; vs Sextans 1.76x MTEPS\n");
    return functional_ok_count == 12 ? 0 : 1;
}
