// Ablation — x-segment window size W (paper §3.2 fixes W = 8192).
//
// Small windows amortize badly (more segment turnarounds, fewer distinct
// URAM addresses per PE for the scheduler to interleave); large windows
// need more BRAM copies. This sweep shows why 8192 is the sweet spot for
// the paper's BRAM budget.
#include "bench_common.h"

#include "core/accelerator.h"
#include "datasets/table3.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Ablation: x-segment window size W");

    // A graph stand-in stresses the scheduler (power-law conflicts).
    const auto spec = datasets::twelve_large()[6];  // G7 soc_pokec
    const auto m = datasets::realize(spec, args.scale);
    std::printf("matrix: %s stand-in at 1/%u (%u rows, %llu nnz)\n\n",
                spec.name.c_str(), args.scale, m.rows(),
                static_cast<unsigned long long>(m.nnz()));

    analysis::TextTable t({"W", "segments", "x-load cyc", "compute cyc",
                           "fill cyc", "padding", "total cyc", "time ms"});
    std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    for (sparse::index_t w : {1024u, 2048u, 4096u, 8192u, 16384u}) {
        core::SerpensConfig cfg = core::SerpensConfig::a16();
        cfg.arch.window = w;
        const core::Accelerator acc(cfg);
        const auto prepared = acc.prepare(m);
        const auto run = acc.run(prepared, x, y);
        t.add_row({std::to_string(w),
                   std::to_string(prepared.image().num_segments()),
                   std::to_string(run.cycles.x_load_cycles),
                   std::to_string(run.cycles.compute_cycles),
                   std::to_string(run.cycles.fill_cycles),
                   analysis::fmt(run.cycles.padding_ratio(), 3),
                   std::to_string(run.cycles.total_cycles()),
                   analysis::fmt(run.time_ms, 4)});
    }
    bench::print_table(t, args.csv);

    std::printf("\nBRAM cost grows with W (16 FP32/line x W copies): the "
                "paper's W = 8192 uses the 128 BRAM18K/PE budget of Table 1.\n");
    return 0;
}
