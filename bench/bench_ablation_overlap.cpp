// Ablation — double-buffered x-segment loading (extension experiment).
//
// The published design serializes RdX with compute, which is where the K/16
// term of Eq. 4 comes from. Double buffering the x BRAMs hides the loads
// behind compute at the cost of a second set of x-buffer BRAMs. The win is
// largest for wide matrices with few non-zeros per column window.
#include "bench_common.h"

#include "core/accelerator.h"
#include "core/resource_model.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Ablation: double-buffered x-segment loading");

    analysis::TextTable t({"matrix", "x-load off", "x-load on", "total off",
                           "total on", "speedup", "BRAM off", "BRAM on"});

    struct Case {
        const char* name;
        sparse::CooMatrix m;
    };
    const std::vector<Case> cases = {
        // Wide and hyper-sparse: x streaming dominates.
        {"hypersparse wide", sparse::make_uniform_random(4096, 2'000'000,
                                                         500'000, 1)},
        // Square, moderately dense: compute dominates, overlap ~free.
        {"square dense-ish", sparse::make_uniform_random(65'536, 65'536,
                                                         2'000'000, 2)},
        // Banded FEM: every segment busy.
        {"banded", sparse::make_banded(131'072, 16, 3)},
    };

    for (const auto& c : cases) {
        core::SerpensConfig off = core::SerpensConfig::a16();
        core::SerpensConfig on = off;
        on.double_buffer_x = true;

        const core::Accelerator acc_off(off);
        const core::Accelerator acc_on(on);
        const auto prep_off = acc_off.prepare(c.m);
        const auto prep_on = acc_on.prepare(c.m);
        std::vector<float> x(c.m.cols(), 1.0f), y(c.m.rows(), 0.0f);
        const auto run_off = acc_off.run(prep_off, x, y);
        const auto run_on = acc_on.run(prep_on, x, y);
        const auto res_off = core::estimate_resources(off);
        const auto res_on = core::estimate_resources(on);

        t.add_row({c.name, std::to_string(run_off.cycles.x_load_cycles),
                   std::to_string(run_on.cycles.x_load_cycles),
                   std::to_string(run_off.cycles.total_cycles()),
                   std::to_string(run_on.cycles.total_cycles()),
                   analysis::fmt_ratio(
                       static_cast<double>(run_off.cycles.total_cycles()) /
                       static_cast<double>(run_on.cycles.total_cycles())),
                   std::to_string(res_off.brams),
                   std::to_string(res_on.brams)});

        // Functional results must be identical — overlap is timing-only.
        if (run_off.y != run_on.y) {
            std::printf("FUNCTIONAL MISMATCH on %s\n", c.name);
            return 1;
        }
    }
    bench::print_table(t, args.csv);

    std::printf("\ntakeaway: overlap hides the K/16 x-load term only when each "
                "segment has compute to hide it behind (banded/dense). On "
                "hyper-sparse wide matrices the loads have nothing to overlap "
                "with, and the BRAM cost doubles — consistent with the paper "
                "leaving this out of the published design.\n");
    return 0;
}
