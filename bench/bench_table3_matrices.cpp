// Table 3 — the evaluated matrices: the twelve large stand-ins (realized at
// the requested scale) plus the SuiteSparse-like collection statistics.
#include "bench_common.h"

#include "datasets/suite.h"
#include "datasets/table3.h"
#include "sparse/convert.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 3: the evaluated matrices (synthetic stand-ins)");
    std::printf("scale divisor: %u (use --scale 1 for full size)\n\n",
                args.scale);

    analysis::TextTable t({"ID", "matrix", "paper vertices", "paper edges",
                           "realized rows", "realized nnz", "row-CV"});
    for (const auto& spec : datasets::twelve_large()) {
        const auto m = datasets::realize(spec, args.scale);
        const auto csr = sparse::to_csr(m);
        t.add_row({spec.id, spec.name, std::to_string(spec.rows),
                   std::to_string(spec.nnz), std::to_string(m.rows()),
                   std::to_string(m.nnz()),
                   analysis::fmt(csr.row_imbalance(), 2)});
    }
    bench::print_table(t, args.csv);

    // Collection summary (recipes only — cheap at any count).
    datasets::SuiteSpec spec;
    spec.count = args.count;
    const auto recipes = datasets::sample_suite(spec);
    sparse::nnz_t min_nnz = ~0ull, max_nnz = 0;
    sparse::index_t min_n = ~0u, max_n = 0;
    for (const auto& r : recipes) {
        min_nnz = std::min(min_nnz, r.nnz);
        max_nnz = std::max(max_nnz, r.nnz);
        min_n = std::min(min_n, r.n);
        max_n = std::max(max_n, r.n);
    }
    std::printf("\nSuiteSparse-like collection: %zu matrices, NNZ %llu - %llu,"
                " rows/cols %u - %u\n",
                recipes.size(), static_cast<unsigned long long>(min_nnz),
                static_cast<unsigned long long>(max_nnz), min_n, max_n);
    std::printf("paper collection:            2,519 matrices, NNZ 1,000 -"
                " 89,306,020, rows/cols 24 - 2,999,349\n");
    return 0;
}
