// Shared plumbing for the table/figure benchmark binaries.
//
// Every bench binary accepts:
//   --scale N   scale divisor for the Table 3 stand-ins (default 16;
//               1 = full paper size, slower and memory-hungry)
//   --csv       also emit the table as CSV (for plotting)
//   --count N   collection size where applicable (Figure 3)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/table.h"

namespace serpens::bench {

struct BenchArgs {
    unsigned scale = 16;
    bool csv = false;
    std::size_t count = 160;

    static BenchArgs parse(int argc, char** argv)
    {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
                args.scale = static_cast<unsigned>(std::atoi(argv[++i]));
            else if (std::strcmp(argv[i], "--csv") == 0)
                args.csv = true;
            else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc)
                args.count = static_cast<std::size_t>(std::atoll(argv[++i]));
            else if (std::strcmp(argv[i], "--help") == 0 ||
                     std::strcmp(argv[i], "-h") == 0) {
                std::printf(
                    "usage: %s [--scale N] [--csv] [--count N]\n"
                    "  --scale N  scale divisor for the Table 3 stand-ins\n"
                    "             (default 16; 1 = full paper size)\n"
                    "  --csv      also emit each table as CSV\n"
                    "  --count N  collection size where applicable "
                    "(default 160)\n"
                    "see docs/BENCHMARKS.md for what this binary reproduces\n",
                    argv[0]);
                std::exit(0);
            }
        }
        return args;
    }
};

inline void print_table(const analysis::TextTable& t, bool csv)
{
    std::ostringstream os;
    t.print(os);
    if (csv) {
        os << "\nCSV:\n";
        t.print_csv(os);
    }
    std::fputs(os.str().c_str(), stdout);
}

inline void banner(const std::string& title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace serpens::bench
