// Ablation — reordering policy and DSP latency T.
//
// The paper assumes T = 2 in its Figure 2 illustration; real FP32
// accumulators are deeper. This sweep shows (a) padding vs T for both
// service policies, and (b) that largest-bucket-first tracks the
// theoretical lower bound while FIFO drifts.
#include "bench_common.h"

#include "encode/image.h"
#include "encode/schedule.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Ablation: scheduler policy and DSP latency T");

    const auto m = sparse::make_clustered(32'768, 1'048'576, 8, 64, 0.3, 5);
    std::printf("matrix: community cliques, %u rows, %llu nnz\n\n", m.rows(),
                static_cast<unsigned long long>(m.nnz()));

    analysis::TextTable t({"T", "policy", "padding", "compute cycles",
                           "vs T=1"});
    std::uint64_t base_cycles = 0;
    for (unsigned latency : {1u, 2u, 4u, 8u, 12u, 16u}) {
        for (const auto policy : {encode::SchedulePolicy::largest_bucket_first,
                                  encode::SchedulePolicy::fifo}) {
            encode::EncodeParams params;
            params.dsp_latency = latency;
            params.policy = policy;
            const auto img = encode::encode_matrix(m, params);
            std::uint64_t cycles = 0;
            for (unsigned seg = 0; seg < img.num_segments(); ++seg)
                cycles += img.segment_depth(seg);
            if (base_cycles == 0)
                base_cycles = cycles;
            t.add_row({std::to_string(latency),
                       policy == encode::SchedulePolicy::largest_bucket_first
                           ? "largest-bucket"
                           : "fifo",
                       analysis::fmt(img.stats().padding_ratio(), 4),
                       std::to_string(cycles),
                       analysis::fmt_ratio(static_cast<double>(cycles) /
                                           static_cast<double>(base_cycles))});
        }
    }
    bench::print_table(t, args.csv);

    std::printf("\ntakeaway: the off-line reorderer keeps padding tolerable "
                "up to realistic FP32 latencies; the policy choice matters "
                "most at large T.\n");
    return 0;
}
