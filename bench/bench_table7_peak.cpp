// Table 7 — peak-performance comparison with other real-execution SpMV
// accelerators. As in the paper, the Serpens peaks are the best throughput
// observed across the twelve evaluation matrices (A16 peaks on the dense-ish
// G4/G6 class; A24 peaks at 60.55 GFLOP/s in the paper); peers are published
// constants.
#include <cmath>

#include "bench_common.h"

#include "baselines/peers.h"
#include "core/accelerator.h"
#include "datasets/table3.h"

namespace {

// Best full-size-projected throughput across the twelve stand-ins.
double peak_gflops(const serpens::core::SerpensConfig& cfg, unsigned scale)
{
    using namespace serpens;
    const core::Accelerator acc(cfg);
    double best = 0.0;
    for (const auto& spec : datasets::twelve_large()) {
        const auto m = datasets::realize(spec, scale);
        const auto prepared = acc.prepare(m);
        std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
        const auto run = acc.run(prepared, x, y);
        const double ideal_compute = std::ceil(
            static_cast<double>(m.nnz()) / (8.0 * cfg.arch.ha_channels));
        const double stretch = std::max(
            1.0, static_cast<double>(run.cycles.compute_cycles) / ideal_compute);
        const double ms = acc.estimate_time_ms(spec.rows, spec.rows, spec.nnz,
                                               1.0 - 1.0 / stretch);
        best = std::max(best, 2.0 * static_cast<double>(spec.nnz) / ms / 1e6);
    }
    return best;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 7: comparison with other SpMV accelerators");

    const double a16 = peak_gflops(core::SerpensConfig::a16(), args.scale);
    const double a24 = peak_gflops(core::SerpensConfig::a24(), args.scale);

    analysis::TextTable t(
        {"accelerator", "bandwidth GB/s", "peak GFLOP/s", "paper GFLOP/s"});
    t.add_row({"Serpens-A16 (measured)",
               analysis::fmt(core::SerpensConfig::a16().utilized_bandwidth_gbps(), 0),
               analysis::fmt(a16, 1), "44.2"});
    t.add_row({"Serpens-A24 (measured)",
               analysis::fmt(core::SerpensConfig::a24().utilized_bandwidth_gbps(), 0),
               analysis::fmt(a24, 1), "60.4"});
    for (const auto& peer : baselines::kPeerAccelerators)
        t.add_row({std::string(peer.name), analysis::fmt(peer.bandwidth_gbps, 0),
                   analysis::fmt(peer.peak_gflops, 2),
                   analysis::fmt(peer.peak_gflops, 2)});
    bench::print_table(t, args.csv);

    const bool shape_ok = a16 > 25.0 && a24 > a16;
    std::printf("\nshape %s: Serpens-A16 beats both FPGA peers at lower "
                "bandwidth; SparseP's 1.77 TB/s PIM system peaks 10x lower.\n",
                shape_ok ? "reproduced" : "NOT reproduced");
    return shape_ok ? 0 : 1;
}
