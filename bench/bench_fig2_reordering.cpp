// Figure 2 — "coloring" and non-zero reordering in Sextans vs Serpens.
//
// Part 1 replays the paper's 4x4 / 9-non-zero example with DSP latency T=2:
//   Sextans colors by *row* (each row its own conflict group);
//   Serpens colors by *row pair* (index coalescing makes two consecutive
//   rows share a URAM address), then both reorder so no group repeats
//   within T slots.
// Part 2 quantifies what the coarser coloring costs across matrix families
// and T values (padding ratio of pair- vs row-granularity scheduling).
#include "bench_common.h"

#include "encode/image.h"
#include "encode/schedule.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace {

using serpens::encode::SchedulePolicy;
using serpens::encode::ScheduleResult;
using serpens::sparse::CooMatrix;
using serpens::sparse::Triplet;

// The nine non-zeros of the paper's Figure 2 (row, col):
// (0,0) (0,2) (0,3) (1,0) (1,2) (2,1) (2,3) (3,0) (3,2)
std::vector<Triplet> figure2_elements()
{
    return {{0, 0, 1}, {0, 2, 1}, {0, 3, 1}, {1, 0, 1}, {1, 2, 1},
            {2, 1, 1}, {2, 3, 1}, {3, 0, 1}, {3, 2, 1}};
}

void print_schedule(const char* label, const ScheduleResult& sched,
                    const std::vector<Triplet>& elems)
{
    std::printf("%-28s", label);
    for (std::int64_t s : sched.slots) {
        if (s == ScheduleResult::kPaddingSlot)
            std::printf("  *  ");
        else
            std::printf(" %u,%u ", elems[static_cast<std::size_t>(s)].row,
                        elems[static_cast<std::size_t>(s)].col);
    }
    std::printf("  (%zu slots, %zu padding)\n", sched.slots.size(),
                sched.padding_count);
}

} // namespace

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Figure 2: non-zero coloring & reordering, T = 2");

    const auto elems = figure2_elements();
    std::vector<std::uint32_t> row_colors, pair_colors;
    for (const Triplet& e : elems) {
        row_colors.push_back(e.row);       // Sextans: color = row
        pair_colors.push_back(e.row >> 1); // Serpens: color = row pair
    }

    const auto sextans_sched =
        encode::schedule_hazard_aware(row_colors, 2, SchedulePolicy::largest_bucket_first);
    const auto serpens_sched =
        encode::schedule_hazard_aware(pair_colors, 2, SchedulePolicy::largest_bucket_first);

    std::printf("slot:                        ");
    for (std::size_t i = 0; i < 9; ++i)
        std::printf("  %zu  ", i);
    std::printf("\n");
    print_schedule("Sextans (row coloring):", sextans_sched, elems);
    print_schedule("Serpens (pair coloring):", serpens_sched, elems);
    std::printf("\nboth fit the paper's 9 slots (Figure 2c/2d): the coalesced "
                "constraint is stricter but free here.\n");

    // --- Part 2: padding cost of pair-granularity across families / T ---
    // Real per-PE streams: encode each matrix with the production encoder
    // (128 PEs, segmented windows) with index coalescing on (pair coloring)
    // and off (row coloring), and compare the inserted padding and the
    // compute-cycle stretch over the Eq. 4 ideal.
    std::printf("\npadding: full encoder, coalescing on (pair) vs off (row), "
                "HA=16, W=1024\n\n");
    analysis::TextTable t({"matrix family", "T", "row-color padding",
                           "pair-color padding", "pair/row cycle stretch"});

    struct Family {
        const char* name;
        CooMatrix m;
    };
    const std::vector<Family> families = {
        {"banded (FEM)", sparse::make_banded(16384, 16, 1)},
        {"uniform random", sparse::make_uniform_random(16384, 16384, 262'144, 2)},
        {"community cliques", sparse::make_clustered(16384, 262'144, 8, 64, 0.3, 3)},
        {"diagonal", sparse::make_diagonal(16384)},
    };

    for (const auto& fam : families) {
        for (unsigned latency : {2u, 8u}) {
            encode::EncodeParams params;
            params.window = 1024;
            params.dsp_latency = latency;

            params.coalescing = false;
            const auto by_row = encode::encode_matrix(fam.m, params);
            params.coalescing = true;
            const auto by_pair = encode::encode_matrix(fam.m, params);

            std::uint64_t row_cycles = 0, pair_cycles = 0;
            for (unsigned seg = 0; seg < by_row.num_segments(); ++seg)
                row_cycles += by_row.segment_depth(seg);
            for (unsigned seg = 0; seg < by_pair.num_segments(); ++seg)
                pair_cycles += by_pair.segment_depth(seg);

            t.add_row({fam.name, std::to_string(latency),
                       analysis::fmt(100.0 * by_row.stats().padding_ratio(), 2) + "%",
                       analysis::fmt(100.0 * by_pair.stats().padding_ratio(), 2) + "%",
                       analysis::fmt_ratio(static_cast<double>(pair_cycles) /
                                           static_cast<double>(row_cycles))});
        }
    }
    bench::print_table(t, args.csv);

    std::printf("\ntakeaway: pair coloring costs little extra padding on real "
                "sparsity but doubles URAM row capacity (paper §3.4).\n");
    return 0;
}
