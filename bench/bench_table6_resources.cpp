// Table 6 — FPGA resource utilization on the U280.
// Serpens rows come from the analytic resource model (Eq. 1/2 + calibrated
// per-PE coefficients); Sextans/GraphLily rows are the published counts.
#include "bench_common.h"

#include "core/resource_model.h"

int main(int argc, char** argv)
{
    using namespace serpens;
    const auto args = bench::BenchArgs::parse(argc, argv);

    bench::banner("Table 6: resource utilization on a Xilinx U280");

    const auto fmt_cell = [](std::uint64_t v, double pct) {
        std::string num = v >= 10'000 ? analysis::fmt(v / 1000.0, 0) + "K"
                                      : std::to_string(v);
        return num + " (" + analysis::fmt(pct, 0) + "%)";
    };

    analysis::TextTable t({"", "LUT", "FF", "DSP", "BRAM", "URAM"});
    // Published baselines (paper Table 6).
    t.add_row({"Sextans (paper)", "331K (29%)", "594K (25%)", "3233 (36%)",
               "1238 (68%)", "768 (80%)"});
    t.add_row({"GraphLily (paper)", "390K (35%)", "493K (21%)", "723 (8%)",
               "417 (24%)", "512 (53%)"});
    t.add_row({"Serpens (paper)", "173K (15%)", "327K (14%)", "720 (8%)",
               "655 (36%)", "384 (40%)"});

    const auto a16 = core::estimate_resources(core::SerpensConfig::a16());
    t.add_row({"Serpens-A16 (model)", fmt_cell(a16.luts, a16.lut_pct),
               fmt_cell(a16.ffs, a16.ff_pct), fmt_cell(a16.dsps, a16.dsp_pct),
               fmt_cell(a16.brams, a16.bram_pct),
               fmt_cell(a16.urams, a16.uram_pct)});
    const auto a24 = core::estimate_resources(core::SerpensConfig::a24());
    t.add_row({"Serpens-A24 (model)", fmt_cell(a24.luts, a24.lut_pct),
               fmt_cell(a24.ffs, a24.ff_pct), fmt_cell(a24.dsps, a24.dsp_pct),
               fmt_cell(a24.brams, a24.bram_pct),
               fmt_cell(a24.urams, a24.uram_pct)});
    bench::print_table(t, args.csv);

    std::printf("\nEq. 1 check: #BRAM36 = 32*HA = %llu (A16) + %llu infra\n",
                32ull * 16, a16.brams - 32ull * 16);
    std::printf("Eq. 2 check: #URAM  = 8*HA*U = %llu (A16), %llu (A24)\n",
                8ull * 16 * 3, 8ull * 24 * 3);
    return 0;
}
