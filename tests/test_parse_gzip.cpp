// gzip (.mtx.gz) ingestion through the fast parser.
//
// SuiteSparse distributes matrices gzip-compressed; the fast entry points
// detect the gzip magic bytes in any buffer (mmap, slurped stream, or
// in-memory view), inflate via zlib, and hand the plain text to the usual
// chunked parser. The contract pinned here: a golden file parses to the
// same triplets compressed and uncompressed, multi-member streams inflate
// completely, corrupt streams raise MatrixMarketError, and builds without
// zlib fail compressed input loudly instead of misparsing it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sparse/matrix_market.h"
#include "util/bitpack.h"

namespace serpens::sparse {
namespace {

std::string data_path(const std::string& name)
{
    return std::string(SERPENS_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

void expect_identical(const CooMatrix& a, const CooMatrix& b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t i = 0; i < a.nnz(); ++i) {
        const Triplet& ta = a.elements()[i];
        const Triplet& tb = b.elements()[i];
        ASSERT_EQ(ta.row, tb.row) << "triplet " << i;
        ASSERT_EQ(ta.col, tb.col) << "triplet " << i;
        ASSERT_EQ(float_bits(ta.val), float_bits(tb.val)) << "triplet " << i;
    }
}

class GzipParse : public ::testing::Test {
protected:
    void SetUp() override
    {
        if (!gzip_supported())
            GTEST_SKIP() << "built without zlib";
    }
};

TEST_F(GzipParse, GoldenFilesMatchUncompressed)
{
    for (const char* name :
         {"symmetric", "pattern_symmetric", "one_based", "crlf"}) {
        SCOPED_TRACE(name);
        const auto plain =
            read_matrix_market_fast_file(data_path(std::string(name) + ".mtx"));
        const auto gz = read_matrix_market_fast_file(
            data_path(std::string(name) + ".mtx.gz"));
        expect_identical(gz, plain);
    }
}

TEST_F(GzipParse, MultiMemberStreamInflatesCompletely)
{
    // comments_run.mtx.gz holds two concatenated gzip members (RFC 1952
    // allows this and SuiteSparse mirrors produce it).
    const auto plain =
        read_matrix_market_fast_file(data_path("comments_run.mtx"));
    const auto gz =
        read_matrix_market_fast_file(data_path("comments_run.mtx.gz"));
    expect_identical(gz, plain);
}

TEST_F(GzipParse, StreamAndBufferEntryPointsDetectGzip)
{
    const std::string bytes = slurp(data_path("symmetric.mtx.gz"));
    const auto plain =
        read_matrix_market_fast_file(data_path("symmetric.mtx"));

    const auto from_view = read_matrix_market_fast(std::string_view(bytes));
    expect_identical(from_view, plain);

    std::istringstream in(bytes);
    const auto from_stream = read_matrix_market_fast(in);
    expect_identical(from_stream, plain);
}

TEST_F(GzipParse, TruncatedStreamThrows)
{
    EXPECT_THROW(read_matrix_market_fast_file(data_path("corrupt.mtx.gz")),
                 MatrixMarketError);
}

TEST_F(GzipParse, GarbageAfterMagicThrows)
{
    std::string bytes = "\x1f\x8b not actually gzip at all";
    EXPECT_THROW(read_matrix_market_fast(std::string_view(bytes)),
                 MatrixMarketError);
}

TEST(GzipParseAnyBuild, PlainFilesUnaffectedByDetection)
{
    // The magic check must not reroute ordinary text (which starts with
    // "%%MatrixMarket", nowhere near 0x1f 0x8b).
    const auto plain =
        read_matrix_market_fast_file(data_path("symmetric.mtx"));
    EXPECT_GT(plain.nnz(), 0u);
}

TEST(GzipParseAnyBuild, WithoutZlibCompressedInputFailsLoudly)
{
    if (gzip_supported())
        GTEST_SKIP() << "built with zlib; the error path is unreachable";
    EXPECT_THROW(read_matrix_market_fast_file(data_path("symmetric.mtx.gz")),
                 MatrixMarketError);
}

} // namespace
} // namespace serpens::sparse
