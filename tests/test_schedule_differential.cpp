// Differential tests: the calendar-queue scheduler vs. the reference
// three-heap implementation.
//
// The contract locked down here is what lets the fast path replace the
// reference everywhere:
//   - both emit valid schedules (shared checker) on every input;
//   - padding counts are identical for both policies — greedy
//     largest-remaining-first is makespan-optimal regardless of tie-break,
//     and fifo is fully determined by service order;
//   - fifo slot sequences are byte-identical, slot for slot.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "encode/schedule.h"
#include "encode/schedule_reference.h"
#include "schedule_checker.h"
#include "util/rng.h"

namespace serpens::encode {
namespace {

// Address-stream generators with different skews. Each returns `count`
// conflict addresses; the skew controls how unbalanced the conflict groups
// are, which is what stresses the schedulers differently.
std::vector<std::uint32_t> make_stream(const std::string& skew,
                                       unsigned count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> addrs;
    addrs.reserve(count);
    if (skew == "uniform") {
        for (unsigned i = 0; i < count; ++i)
            addrs.push_back(static_cast<std::uint32_t>(rng.next_below(64)));
    } else if (skew == "power") {
        // Heavy head: a few groups receive most of the elements.
        for (unsigned i = 0; i < count; ++i) {
            const double u = rng.next_double();
            addrs.push_back(static_cast<std::uint32_t>(256.0 * u * u * u * u));
        }
    } else if (skew == "dominant") {
        // One group holds half the stream — maximal spacing pressure.
        for (unsigned i = 0; i < count; ++i)
            addrs.push_back(rng.next_below(2) == 0
                                ? 7u
                                : static_cast<std::uint32_t>(rng.next_below(32)));
    } else if (skew == "distinct") {
        for (unsigned i = 0; i < count; ++i)
            addrs.push_back(i);
    } else if (skew == "single") {
        addrs.assign(count, 3u);
    } else if (skew == "runs") {
        // Long same-address runs: worst case for fifo service.
        std::uint32_t a = 0;
        for (unsigned i = 0; i < count; ++i) {
            if (rng.next_below(8) == 0)
                a = static_cast<std::uint32_t>(rng.next_below(16));
            addrs.push_back(a);
        }
    } else if (skew == "sparse_addrs") {
        // Large, scattered address values: exercises the hash-map grouping
        // path rather than the dense direct map.
        for (unsigned i = 0; i < count; ++i)
            addrs.push_back(static_cast<std::uint32_t>(rng.next_u64() >> 32) |
                            0x4000'0000u);
    } else {
        ADD_FAILURE() << "unknown skew " << skew;
    }
    return addrs;
}

struct DiffCase {
    std::string skew;
    unsigned window;
    unsigned count;
    SchedulePolicy policy;
    std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<DiffCase>& info)
{
    const DiffCase& c = info.param;
    return c.skew + "_w" + std::to_string(c.window) + "_n" +
           std::to_string(c.count) +
           (c.policy == SchedulePolicy::fifo ? "_fifo" : "_lbf") + "_s" +
           std::to_string(info.index);
}

class ScheduleDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ScheduleDifferential, MatchesReference)
{
    const DiffCase c = GetParam();
    const auto addrs = make_stream(c.skew, c.count, c.seed);

    const ScheduleResult fast =
        schedule_hazard_aware(addrs, c.window, c.policy);
    const ScheduleResult ref =
        schedule_hazard_aware_reference(addrs, c.window, c.policy);

    expect_valid_schedule(fast, addrs, c.window);
    if (::testing::Test::HasFatalFailure())
        return;
    expect_valid_schedule(ref, addrs, c.window);

    // Identical schedule quality: same padding, hence same length. (The
    // satellite requirement is padding <= reference; both schedulers are
    // greedy with the same service policy, so equality is the actual
    // invariant and the stronger thing to pin.)
    EXPECT_EQ(fast.padding_count, ref.padding_count)
        << "calendar queue and reference disagree on padding";
    EXPECT_LE(fast.padding_count, ref.padding_count);
    EXPECT_EQ(fast.slots.size(), ref.slots.size());

    // fifo is fully determined by (ready_slot, addr) service order, which
    // the calendar queue reproduces exactly: byte-identical slot streams.
    if (c.policy == SchedulePolicy::fifo) {
        EXPECT_EQ(fast.slots, ref.slots);
    }
}

std::vector<DiffCase> differential_cases()
{
    std::vector<DiffCase> cases;
    std::uint64_t seed = 1000;
    for (const char* skew : {"uniform", "power", "dominant", "distinct",
                             "single", "runs", "sparse_addrs"}) {
        for (unsigned window : {1u, 2u, 3u, 5u, 8u, 13u, 16u}) {
            for (SchedulePolicy policy :
                 {SchedulePolicy::fifo, SchedulePolicy::largest_bucket_first}) {
                cases.push_back({skew, window, 700, policy, seed++});
            }
        }
    }
    // A few larger instances of the nastiest skews.
    for (const char* skew : {"power", "dominant", "runs"}) {
        for (SchedulePolicy policy :
             {SchedulePolicy::fifo, SchedulePolicy::largest_bucket_first}) {
            cases.push_back({skew, 8, 20'000, policy, seed++});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleDifferential,
                         ::testing::ValuesIn(differential_cases()), case_name);

// Tiny deterministic edge cases, spelled out rather than generated.
TEST(ScheduleDifferentialEdge, EmptyAndSingleton)
{
    for (const SchedulePolicy policy :
         {SchedulePolicy::fifo, SchedulePolicy::largest_bucket_first}) {
        const ScheduleResult fast = schedule_hazard_aware({}, 4, policy);
        const ScheduleResult ref = schedule_hazard_aware_reference({}, 4, policy);
        EXPECT_TRUE(fast.slots.empty());
        EXPECT_EQ(fast.slots, ref.slots);

        const std::vector<std::uint32_t> one = {42};
        const ScheduleResult f1 = schedule_hazard_aware(one, 8, policy);
        const ScheduleResult r1 = schedule_hazard_aware_reference(one, 8, policy);
        EXPECT_EQ(f1.slots, r1.slots);
        EXPECT_EQ(f1.padding_count, 0u);
    }
}

TEST(ScheduleDifferentialEdge, WindowLargerThanStream)
{
    // window far beyond the stream length: every repeat costs a full window.
    const std::vector<std::uint32_t> addrs = {5, 9, 5, 9, 5};
    for (const SchedulePolicy policy :
         {SchedulePolicy::fifo, SchedulePolicy::largest_bucket_first}) {
        const ScheduleResult fast = schedule_hazard_aware(addrs, 100, policy);
        const ScheduleResult ref =
            schedule_hazard_aware_reference(addrs, 100, policy);
        expect_valid_schedule(fast, addrs, 100);
        EXPECT_EQ(fast.padding_count, ref.padding_count);
        if (policy == SchedulePolicy::fifo) {
            EXPECT_EQ(fast.slots, ref.slots);
        }
    }
}

TEST(ScheduleDifferentialEdge, RejectsZeroWindowLikeReference)
{
    EXPECT_THROW(schedule_hazard_aware({}, 0, SchedulePolicy::fifo),
                 std::invalid_argument);
    EXPECT_THROW(schedule_hazard_aware_reference({}, 0, SchedulePolicy::fifo),
                 std::invalid_argument);
}

} // namespace
} // namespace serpens::encode
