// Unit and property tests for the synthetic matrix generators.
#include <gtest/gtest.h>

#include <map>

#include "sparse/convert.h"
#include "sparse/generators.h"

namespace serpens::sparse {
namespace {

void expect_in_bounds(const CooMatrix& m)
{
    for (const Triplet& t : m.elements()) {
        ASSERT_LT(t.row, m.rows());
        ASSERT_LT(t.col, m.cols());
    }
}

void expect_no_duplicates(const CooMatrix& m)
{
    std::map<std::pair<index_t, index_t>, int> seen;
    for (const Triplet& t : m.elements()) {
        const int count = ++seen[std::make_pair(t.row, t.col)];
        ASSERT_EQ(count, 1) << "duplicate at (" << t.row << ", " << t.col << ")";
    }
}

TEST(UniformRandom, DimensionsAndApproxNnz)
{
    const CooMatrix m = make_uniform_random(100, 200, 1000, 1);
    EXPECT_EQ(m.rows(), 100u);
    EXPECT_EQ(m.cols(), 200u);
    EXPECT_LE(m.nnz(), 1000u);
    EXPECT_GE(m.nnz(), 950u);  // few collisions at 5% fill
    expect_in_bounds(m);
    expect_no_duplicates(m);
}

TEST(UniformRandom, Deterministic)
{
    const CooMatrix a = make_uniform_random(50, 50, 500, 7);
    const CooMatrix b = make_uniform_random(50, 50, 500, 7);
    EXPECT_EQ(a.elements(), b.elements());
}

TEST(UniformRandom, SeedChangesResult)
{
    const CooMatrix a = make_uniform_random(50, 50, 500, 7);
    const CooMatrix b = make_uniform_random(50, 50, 500, 8);
    EXPECT_NE(a.elements(), b.elements());
}

TEST(UniformRandom, RejectsOverfull)
{
    EXPECT_THROW(make_uniform_random(4, 4, 17, 1), std::invalid_argument);
}

TEST(UniformRandom, ExactValuesAreIntegers)
{
    // Duplicates are summed during coalescing, so values can exceed the
    // per-draw bound of 8 — but they must stay integer-valued (the property
    // exactness tests depend on).
    const CooMatrix m =
        make_uniform_random(32, 32, 200, 3, ValueOptions{.exact_values = true});
    for (const Triplet& t : m.elements()) {
        EXPECT_GE(t.val, 1.0f);
        EXPECT_EQ(t.val, static_cast<float>(static_cast<int>(t.val)));
    }
}

TEST(Rmat, DimensionsArePowerOfTwo)
{
    const CooMatrix m = make_rmat(8, 4, 1);
    EXPECT_EQ(m.rows(), 256u);
    EXPECT_EQ(m.cols(), 256u);
    EXPECT_LE(m.nnz(), 4u * 256u);
    expect_in_bounds(m);
    expect_no_duplicates(m);
}

TEST(Rmat, Deterministic)
{
    const CooMatrix a = make_rmat(7, 8, 99);
    const CooMatrix b = make_rmat(7, 8, 99);
    EXPECT_EQ(a.elements(), b.elements());
}

TEST(Rmat, PowerLawSkew)
{
    // With Graph500 parameters the max out-degree should far exceed the mean.
    const CooMatrix m = make_rmat(10, 8, 5);
    const CsrMatrix csr = to_csr(m);
    const double mean =
        static_cast<double>(csr.nnz()) / static_cast<double>(csr.rows());
    EXPECT_GT(static_cast<double>(csr.max_row_nnz()), 4.0 * mean);
}

TEST(Rmat, UniformParametersGiveLowSkew)
{
    // a=b=c=0.25 degenerates to uniform; skew should be mild.
    const CooMatrix m = make_rmat(10, 8, 5, {}, 0.25, 0.25, 0.25);
    const CsrMatrix csr = to_csr(m);
    const double mean =
        static_cast<double>(csr.nnz()) / static_cast<double>(csr.rows());
    EXPECT_LT(static_cast<double>(csr.max_row_nnz()), 4.0 * mean);
}

TEST(Rmat, RejectsBadParameters)
{
    EXPECT_THROW(make_rmat(0, 4, 1), std::invalid_argument);
    EXPECT_THROW(make_rmat(31, 4, 1), std::invalid_argument);
    EXPECT_THROW(make_rmat(8, 4, 1, {}, 0.5, 0.3, 0.3), std::invalid_argument);
}

TEST(Banded, StructureWithinBand)
{
    const index_t n = 128;
    const index_t band = 8;
    const CooMatrix m = make_banded(n, band, 3);
    expect_in_bounds(m);
    for (const Triplet& t : m.elements()) {
        const auto r = static_cast<std::int64_t>(t.row);
        const auto c = static_cast<std::int64_t>(t.col);
        EXPECT_LE(std::abs(r - c), static_cast<std::int64_t>(band) + 1);
    }
}

TEST(Banded, ExactRowCounts)
{
    const CooMatrix m = make_banded(64, 4, 9);
    const CsrMatrix csr = to_csr(m);
    for (index_t r = 0; r < csr.rows(); ++r)
        EXPECT_EQ(csr.row_nnz(r), 4u);
}

TEST(Banded, NoDuplicateColumns)
{
    expect_no_duplicates(make_banded(64, 8, 11));
}

TEST(Banded, RejectsBadBand)
{
    EXPECT_THROW(make_banded(8, 0, 1), std::invalid_argument);
    EXPECT_THROW(make_banded(8, 9, 1), std::invalid_argument);
}

TEST(Diagonal, IdentityStructure)
{
    const CooMatrix m = make_diagonal(10, 2.5f);
    EXPECT_EQ(m.nnz(), 10u);
    for (const Triplet& t : m.elements()) {
        EXPECT_EQ(t.row, t.col);
        EXPECT_FLOAT_EQ(t.val, 2.5f);
    }
}

TEST(Tridiagonal, PoissonStencil)
{
    const CooMatrix m = make_tridiagonal_spd(5);
    EXPECT_EQ(m.nnz(), 13u);  // 3n - 2
    const CsrMatrix csr = to_csr(m);
    // Row 2: [-1, 2, -1] at columns 1, 2, 3.
    EXPECT_EQ(csr.row_nnz(2), 3u);
    EXPECT_FLOAT_EQ(csr.values()[csr.row_begin(2) + 1], 2.0f);
}

TEST(Tridiagonal, ShiftAddsToDiagonal)
{
    const CooMatrix m = make_tridiagonal_spd(3, 1.5f);
    for (const Triplet& t : m.elements()) {
        if (t.row == t.col) {
            EXPECT_FLOAT_EQ(t.val, 3.5f);
        }
    }
}

TEST(DenseRows, HeavyRowsPresent)
{
    // 500 draws over 1000 columns keep ~ 1000 * (1 - (1 - 1/1000)^500) ≈ 393
    // distinct entries after coalescing.
    const CooMatrix m = make_dense_rows(100, 1000, 2, 500, 13);
    const CsrMatrix csr = to_csr(m);
    EXPECT_GT(csr.row_nnz(0), 330u);
    EXPECT_GT(csr.row_nnz(1), 330u);
    for (index_t r = 2; r < 100; ++r)
        EXPECT_LE(csr.row_nnz(r), 1u);
}

TEST(DenseRows, RejectsBadArgs)
{
    EXPECT_THROW(make_dense_rows(4, 4, 5, 1, 1), std::invalid_argument);
    EXPECT_THROW(make_dense_rows(4, 4, 1, 5, 1), std::invalid_argument);
}

TEST(BlockRandom, ReachesTargetNnz)
{
    const CooMatrix m = make_block_random(256, 16, 5000, 17);
    EXPECT_GE(m.nnz(), 3500u);  // block overlap tolerated
    EXPECT_LE(m.nnz(), 6000u);
    expect_in_bounds(m);
    expect_no_duplicates(m);
}

TEST(BlockRandom, RejectsBadBlock)
{
    EXPECT_THROW(make_block_random(8, 0, 10, 1), std::invalid_argument);
    EXPECT_THROW(make_block_random(8, 9, 10, 1), std::invalid_argument);
}

// Determinism sweep across all generators (property-style).
class GeneratorDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorDeterminism, AllGeneratorsAreSeedDeterministic)
{
    const std::uint64_t seed = GetParam();
    EXPECT_EQ(make_uniform_random(64, 64, 300, seed).elements(),
              make_uniform_random(64, 64, 300, seed).elements());
    EXPECT_EQ(make_rmat(6, 4, seed).elements(), make_rmat(6, 4, seed).elements());
    EXPECT_EQ(make_banded(64, 4, seed).elements(),
              make_banded(64, 4, seed).elements());
    EXPECT_EQ(make_block_random(64, 8, 500, seed).elements(),
              make_block_random(64, 8, 500, seed).elements());
    EXPECT_EQ(make_dense_rows(64, 64, 2, 32, seed).elements(),
              make_dense_rows(64, 64, 2, 32, seed).elements());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1, 2, 3, 42, 1000, 99999));

} // namespace
} // namespace serpens::sparse
