// Unit tests for the COO/CSR containers and conversions.
#include <gtest/gtest.h>

#include "sparse/convert.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace serpens::sparse {
namespace {

CooMatrix small_example()
{
    // 3x4:
    //   [ 1 0 2 0 ]
    //   [ 0 0 0 3 ]
    //   [ 4 5 0 0 ]
    CooMatrix m(3, 4);
    m.add(0, 0, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(1, 3, 3.0f);
    m.add(2, 0, 4.0f);
    m.add(2, 1, 5.0f);
    return m;
}

TEST(Coo, DimensionsAndNnz)
{
    const CooMatrix m = small_example();
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 5u);
    EXPECT_FALSE(m.empty());
}

TEST(Coo, RejectsZeroDimensions)
{
    EXPECT_THROW(CooMatrix(0, 4), std::invalid_argument);
    EXPECT_THROW(CooMatrix(4, 0), std::invalid_argument);
}

TEST(Coo, RejectsOutOfBoundsAdd)
{
    CooMatrix m(2, 2);
    EXPECT_THROW(m.add(2, 0, 1.0f), std::invalid_argument);
    EXPECT_THROW(m.add(0, 2, 1.0f), std::invalid_argument);
}

TEST(Coo, FromTripletsValidates)
{
    std::vector<Triplet> ts = {{0, 0, 1.0f}, {5, 0, 2.0f}};
    EXPECT_THROW(CooMatrix::from_triplets(2, 2, ts), std::invalid_argument);
}

TEST(Coo, FromTripletsKeepsData)
{
    std::vector<Triplet> ts = {{1, 1, 2.0f}, {0, 0, 1.0f}};
    const CooMatrix m = CooMatrix::from_triplets(2, 2, ts);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.elements()[0], (Triplet{1, 1, 2.0f}));
}

TEST(Coo, SortRowMajor)
{
    CooMatrix m(3, 3);
    m.add(2, 1, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(0, 1, 3.0f);
    m.sort_row_major();
    EXPECT_EQ(m.elements()[0], (Triplet{0, 1, 3.0f}));
    EXPECT_EQ(m.elements()[1], (Triplet{0, 2, 2.0f}));
    EXPECT_EQ(m.elements()[2], (Triplet{2, 1, 1.0f}));
}

TEST(Coo, SortColMajor)
{
    CooMatrix m(3, 3);
    m.add(2, 1, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(1, 0, 3.0f);
    m.sort_col_major();
    EXPECT_EQ(m.elements()[0].col, 0u);
    EXPECT_EQ(m.elements()[1].col, 1u);
    EXPECT_EQ(m.elements()[2].col, 2u);
}

TEST(Coo, CoalesceSumsDuplicates)
{
    CooMatrix m(2, 2);
    m.add(0, 0, 1.0f);
    m.add(0, 0, 2.5f);
    m.add(1, 1, 1.0f);
    m.add(0, 0, 0.5f);
    m.coalesce_duplicates();
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.elements()[0].val, 4.0f);
}

TEST(Coo, DropZeros)
{
    CooMatrix m(2, 2);
    m.add(0, 0, 0.0f);
    m.add(1, 1, 2.0f);
    m.drop_zeros();
    EXPECT_EQ(m.nnz(), 1u);
    EXPECT_EQ(m.elements()[0].row, 1u);
}

TEST(Coo, TransposeSwapsIndices)
{
    const CooMatrix t = small_example().transposed();
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.nnz(), 5u);
    bool found = false;
    for (const Triplet& e : t.elements())
        found |= e == Triplet{3, 1, 3.0f};
    EXPECT_TRUE(found);
}

TEST(Coo, DoubleTransposeIsIdentity)
{
    CooMatrix m = small_example();
    m.sort_row_major();
    CooMatrix tt = m.transposed().transposed();
    tt.sort_row_major();
    EXPECT_EQ(m.elements(), tt.elements());
}

// --- CSR ---

TEST(Csr, FromCooStructure)
{
    const CsrMatrix csr = to_csr(small_example());
    EXPECT_EQ(csr.rows(), 3u);
    EXPECT_EQ(csr.cols(), 4u);
    EXPECT_EQ(csr.nnz(), 5u);
    EXPECT_EQ(csr.row_ptr(), (std::vector<nnz_t>{0, 2, 3, 5}));
    EXPECT_EQ(csr.col_idx(), (std::vector<index_t>{0, 2, 3, 0, 1}));
    EXPECT_EQ(csr.values(), (std::vector<float>{1, 2, 3, 4, 5}));
}

TEST(Csr, RowAccessors)
{
    const CsrMatrix csr = to_csr(small_example());
    EXPECT_EQ(csr.row_nnz(0), 2u);
    EXPECT_EQ(csr.row_nnz(1), 1u);
    EXPECT_EQ(csr.row_nnz(2), 2u);
    EXPECT_EQ(csr.max_row_nnz(), 2u);
}

TEST(Csr, UnsortedCooRowsGetSortedColumns)
{
    CooMatrix m(1, 5);
    m.add(0, 4, 4.0f);
    m.add(0, 1, 1.0f);
    m.add(0, 3, 3.0f);
    const CsrMatrix csr = to_csr(m);
    EXPECT_EQ(csr.col_idx(), (std::vector<index_t>{1, 3, 4}));
    EXPECT_EQ(csr.values(), (std::vector<float>{1, 3, 4}));
}

TEST(Csr, ValidatesRowPtr)
{
    EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0f}), std::invalid_argument);
    EXPECT_THROW(CsrMatrix(2, 2, {1, 1, 1}, {}, {}), std::invalid_argument);
    EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0}, {1.0f}), std::invalid_argument);
}

TEST(Csr, ValidatesColumnBounds)
{
    EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {2}, {1.0f}), std::invalid_argument);
}

TEST(Csr, RoundTripThroughCoo)
{
    CooMatrix m = small_example();
    m.sort_row_major();
    CooMatrix back = to_coo(to_csr(m));
    back.sort_row_major();
    EXPECT_EQ(m.elements(), back.elements());
}

TEST(Csr, EmptyRowsHandled)
{
    CooMatrix m(4, 4);
    m.add(3, 0, 7.0f);
    const CsrMatrix csr = to_csr(m);
    EXPECT_EQ(csr.row_nnz(0), 0u);
    EXPECT_EQ(csr.row_nnz(1), 0u);
    EXPECT_EQ(csr.row_nnz(2), 0u);
    EXPECT_EQ(csr.row_nnz(3), 1u);
}

TEST(Csr, RowImbalanceZeroForUniform)
{
    CooMatrix m(3, 3);
    for (index_t r = 0; r < 3; ++r)
        for (index_t c = 0; c < 3; ++c)
            m.add(r, c, 1.0f);
    EXPECT_DOUBLE_EQ(to_csr(m).row_imbalance(), 0.0);
}

TEST(Csr, RowImbalancePositiveForSkewed)
{
    CooMatrix m(4, 8);
    for (index_t c = 0; c < 8; ++c)
        m.add(0, c, 1.0f);
    m.add(1, 0, 1.0f);
    m.add(2, 0, 1.0f);
    m.add(3, 0, 1.0f);
    EXPECT_GT(to_csr(m).row_imbalance(), 1.0);
}

} // namespace
} // namespace serpens::sparse
