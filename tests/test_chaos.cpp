// Deterministic chaos harness: a real daemon on localhost hammered by
// concurrent retrying clients while every fault site in the stack fires
// from one seeded injector.
//
// The fault-tolerance acceptance gate (PR 8):
//   - 1000+ requests complete with RetryPolicy despite injected frame
//     drops, corrupted frames, delays, forced admission refusals, and
//     mid-flight evictions — zero client-visible failures.
//   - Every served response stays BIT-IDENTICAL to a direct
//     Accelerator::run: faults can delay or kill transport, never bend
//     the arithmetic.
//   - Failures map onto the documented taxonomy — nothing escapes as a
//     crash, a hang, or an exception type the contract does not name.
//   - The daemon survives and drains: it serves after the storm and holds
//     zero open connections once the clients are gone.
//   - The same seed replays the same fault pattern (single-threaded
//     probe order is deterministic by construction).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "net/daemon.h"
#include "net/retry.h"
#include "serve/server.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/fault.h"
#include "util/rng.h"

namespace serpens {
namespace {

constexpr unsigned kWorkers = 4;
constexpr unsigned kRequestsPerWorker = 300;  // 1200 total, gate is 1000+
constexpr unsigned kMatrices = 2;
constexpr unsigned kVectorPairs = 8;
constexpr float kAlpha = 1.25f;
constexpr float kBeta = -0.5f;
constexpr int kClientTimeoutMs = 30'000;

struct Vectors {
    std::vector<float> x, y;
};

Vectors random_vectors(sparse::index_t cols, sparse::index_t rows,
                       std::uint64_t seed)
{
    Rng rng(seed);
    Vectors v;
    v.x.resize(cols);
    v.y.resize(rows);
    for (float& f : v.x)
        f = rng.next_float(-1.0f, 1.0f);
    for (float& f : v.y)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

struct Workload {
    std::vector<sparse::CooMatrix> matrices;
    std::vector<std::string> names;
    // reference[m][v] = bit-exact expected y for matrix m, vector pair v.
    std::vector<std::vector<Vectors>> vectors;
    std::vector<std::vector<std::vector<float>>> reference;

    explicit Workload(const core::SerpensConfig& cfg)
    {
        const core::Accelerator acc(cfg);
        for (unsigned m = 0; m < kMatrices; ++m) {
            matrices.push_back(
                sparse::make_uniform_random(200, 200, 2000, 500 + m));
            names.push_back("chaos" + std::to_string(m));
            const auto prepared = acc.prepare(matrices.back());
            vectors.emplace_back();
            reference.emplace_back();
            for (unsigned v = 0; v < kVectorPairs; ++v) {
                vectors.back().push_back(
                    random_vectors(200, 200, 1000 + m * kVectorPairs + v));
                const Vectors& vec = vectors.back().back();
                reference.back().push_back(
                    acc.run(prepared, vec.x, vec.y, kAlpha, kBeta).y);
            }
        }
    }
};

net::RetryPolicy chaos_policy(std::uint64_t worker)
{
    net::RetryPolicy p;
    p.max_attempts = 8;
    p.initial_backoff_ms = 0.2;
    p.max_backoff_ms = 5.0;
    p.seed = 100 + worker;
    return p;
}

TEST(Chaos, ThousandFaultedRequestsStayBitIdenticalAndLeakNothing)
{
    util::FaultInjector chaos(42);
    chaos.arm("net.frame.delay", 0.02, /*value=*/1.0);
    chaos.arm("net.frame.drop", 0.01);
    chaos.arm("net.frame.corrupt", 0.005);
    chaos.arm("serve.queue_full", 0.02);
    chaos.arm("serve.evict_mid_flight", 0.005);

    core::SerpensConfig cfg = core::SerpensConfig::a16();
    const Workload work(cfg);
    serve::Server server(cfg);
    net::Daemon daemon(server, /*port=*/0);
    for (unsigned m = 0; m < kMatrices; ++m)
        server.registry().admit(work.names[m], work.matrices[m]);

    util::set_fault_injector(&chaos);

    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> evict_misses{0};
    std::atomic<std::uint64_t> unexpected{0};
    std::atomic<std::uint64_t> retries{0};

    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            net::RetryingClient client("127.0.0.1", daemon.port(),
                                       kClientTimeoutMs, chaos_policy(w));
            for (unsigned i = 0; i < kRequestsPerWorker; ++i) {
                const unsigned m = (w * 7 + i) % kMatrices;
                const unsigned vi = (w + i) % kVectorPairs;
                const Vectors& v = work.vectors[m][vi];
                try {
                    net::SpmvReply reply;
                    for (int attempt = 0;; ++attempt) {
                        try {
                            reply = client.spmv(work.names[m], v.x, v.y,
                                                kAlpha, kBeta);
                            break;
                        } catch (const net::RemoteError&) {
                            // The injector evicted the matrix mid-storm:
                            // a documented, recoverable failure. Reinstall
                            // and go again (admit is idempotent).
                            ++evict_misses;
                            if (attempt >= 20)
                                throw;
                            client.admit(work.names[m], work.matrices[m]);
                        }
                    }
                    const auto& expect = work.reference[m][vi];
                    bool equal = reply.y.size() == expect.size();
                    for (std::size_t r = 0; equal && r < expect.size(); ++r)
                        equal = float_bits(reply.y[r]) ==
                                float_bits(expect[r]);
                    if (!equal)
                        ++mismatches;
                    ++served;
                } catch (...) {
                    // Anything reaching here escaped both the retry policy
                    // and the documented taxonomy handling above.
                    ++unexpected;
                }
            }
            retries += client.stats().retries;
        });
    }
    for (auto& t : workers)
        t.join();
    util::set_fault_injector(nullptr);

    // Zero client-visible failures, all responses bit-identical.
    EXPECT_EQ(served.load(), kWorkers * kRequestsPerWorker);
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(unexpected.load(), 0u);
    EXPECT_GE(served.load(), 1000u);

    // The storm actually happened: every armed site fired, and the
    // clients visibly worked for their successes.
    EXPECT_GT(chaos.fired("net.frame.delay"), 0u);
    EXPECT_GT(chaos.fired("net.frame.drop"), 0u);
    EXPECT_GT(chaos.fired("net.frame.corrupt"), 0u);
    EXPECT_GT(chaos.fired("serve.queue_full"), 0u);
    EXPECT_GT(chaos.fired("serve.evict_mid_flight"), 0u);
    EXPECT_GT(retries.load(), 0u);
    EXPECT_GT(evict_misses.load(), 0u);
    EXPECT_EQ(server.stats().rejected, chaos.fired("serve.queue_full"));

    // The daemon survives the storm: a fresh client gets served, and once
    // every client is gone the connection table drains to zero — faults
    // may kill individual connections but never leak them.
    {
        net::RetryingClient after("127.0.0.1", daemon.port(),
                                  kClientTimeoutMs, chaos_policy(99));
        const Vectors& v = work.vectors[0][0];
        const net::SpmvReply reply =
            after.spmv(work.names[0], v.x, v.y, kAlpha, kBeta);
        ASSERT_EQ(reply.y.size(), work.reference[0][0].size());
        for (std::size_t r = 0; r < reply.y.size(); ++r)
            ASSERT_EQ(float_bits(reply.y[r]),
                      float_bits(work.reference[0][0][r]));
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (daemon.open_connections() != 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(daemon.open_connections(), 0u);

    daemon.stop();
    server.drain();
}

TEST(Chaos, SameSeedReplaysTheSameFaultSequence)
{
    // Single worker, so probe order — and therefore the whole fault
    // pattern — is a pure function of the injector seed. Two runs against
    // fresh daemons must agree on every counter and on every outcome.
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    const Workload work(cfg);

    struct Outcome {
        std::vector<int> results;  // per request: 0 ok, 1 evict-miss path
        std::uint64_t fired_delay = 0, fired_drop = 0, fired_corrupt = 0;
        std::uint64_t fired_full = 0, fired_evict = 0;
        std::uint64_t retries = 0, reconnects = 0;
    };

    const auto run_once = [&]() {
        util::FaultInjector chaos(7);
        chaos.arm("net.frame.delay", 0.05, 0.5);
        chaos.arm("net.frame.drop", 0.03);
        chaos.arm("net.frame.corrupt", 0.02);
        chaos.arm("serve.queue_full", 0.05);
        chaos.arm("serve.evict_mid_flight", 0.02);

        serve::Server server(cfg);
        net::Daemon daemon(server, /*port=*/0);
        for (unsigned m = 0; m < kMatrices; ++m)
            server.registry().admit(work.names[m], work.matrices[m]);
        util::set_fault_injector(&chaos);

        Outcome out;
        {
            net::RetryingClient client("127.0.0.1", daemon.port(),
                                       kClientTimeoutMs, chaos_policy(0));
            for (unsigned i = 0; i < 150; ++i) {
                const unsigned m = i % kMatrices;
                const Vectors& v = work.vectors[m][i % kVectorPairs];
                int result = 0;
                for (;;) {
                    try {
                        (void)client.spmv(work.names[m], v.x, v.y, kAlpha,
                                          kBeta);
                        break;
                    } catch (const net::RemoteError&) {
                        result = 1;
                        client.admit(work.names[m], work.matrices[m]);
                    }
                }
                out.results.push_back(result);
            }
            out.retries = client.stats().retries;
            out.reconnects = client.stats().reconnects;
        }
        util::set_fault_injector(nullptr);
        out.fired_delay = chaos.fired("net.frame.delay");
        out.fired_drop = chaos.fired("net.frame.drop");
        out.fired_corrupt = chaos.fired("net.frame.corrupt");
        out.fired_full = chaos.fired("serve.queue_full");
        out.fired_evict = chaos.fired("serve.evict_mid_flight");
        daemon.stop();
        server.drain();
        return out;
    };

    const Outcome first = run_once();
    const Outcome second = run_once();
    EXPECT_EQ(first.results, second.results);
    EXPECT_EQ(first.fired_delay, second.fired_delay);
    EXPECT_EQ(first.fired_drop, second.fired_drop);
    EXPECT_EQ(first.fired_corrupt, second.fired_corrupt);
    EXPECT_EQ(first.fired_full, second.fired_full);
    EXPECT_EQ(first.fired_evict, second.fired_evict);
    EXPECT_EQ(first.retries, second.retries);
    EXPECT_EQ(first.reconnects, second.reconnects);
}

} // namespace
} // namespace serpens
