// Deterministic chaos harness: a real daemon on localhost hammered by
// concurrent retrying clients while every fault site in the stack fires
// from one seeded injector.
//
// The fault-tolerance acceptance gate (PR 8):
//   - 1000+ requests complete with RetryPolicy despite injected frame
//     drops, corrupted frames, delays, forced admission refusals, and
//     mid-flight evictions — zero client-visible failures.
//   - Every served response stays BIT-IDENTICAL to a direct
//     Accelerator::run: faults can delay or kill transport, never bend
//     the arithmetic.
//   - Failures map onto the documented taxonomy — nothing escapes as a
//     crash, a hang, or an exception type the contract does not name.
//   - The daemon survives and drains: it serves after the storm and holds
//     zero open connections once the clients are gone.
//   - The same seed replays the same fault pattern (single-threaded
//     probe order is deterministic by construction).
//
// The crash-recovery acceptance gate (PR 9) forks the REAL serpens_served
// binary: a daemon SIGKILLed mid-stream (torn WAL tail and all) warm-
// restarts from its --state-dir and serves bit-identically without
// re-encoding, while a FailoverClient rides the outage to a replica and
// back — with the endpoint-per-request sequence a deterministic function
// of the (seeded) policy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "net/daemon.h"
#include "net/failover.h"
#include "net/retry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/fault.h"
#include "util/rng.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace serpens {
namespace {

constexpr unsigned kWorkers = 4;
constexpr unsigned kRequestsPerWorker = 300;  // 1200 total, gate is 1000+
constexpr unsigned kMatrices = 2;
constexpr unsigned kVectorPairs = 8;
constexpr float kAlpha = 1.25f;
constexpr float kBeta = -0.5f;
constexpr int kClientTimeoutMs = 30'000;

struct Vectors {
    std::vector<float> x, y;
};

Vectors random_vectors(sparse::index_t cols, sparse::index_t rows,
                       std::uint64_t seed)
{
    Rng rng(seed);
    Vectors v;
    v.x.resize(cols);
    v.y.resize(rows);
    for (float& f : v.x)
        f = rng.next_float(-1.0f, 1.0f);
    for (float& f : v.y)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

struct Workload {
    std::vector<sparse::CooMatrix> matrices;
    std::vector<std::string> names;
    // reference[m][v] = bit-exact expected y for matrix m, vector pair v.
    std::vector<std::vector<Vectors>> vectors;
    std::vector<std::vector<std::vector<float>>> reference;

    explicit Workload(const core::SerpensConfig& cfg)
    {
        const core::Accelerator acc(cfg);
        for (unsigned m = 0; m < kMatrices; ++m) {
            matrices.push_back(
                sparse::make_uniform_random(200, 200, 2000, 500 + m));
            names.push_back("chaos" + std::to_string(m));
            const auto prepared = acc.prepare(matrices.back());
            vectors.emplace_back();
            reference.emplace_back();
            for (unsigned v = 0; v < kVectorPairs; ++v) {
                vectors.back().push_back(
                    random_vectors(200, 200, 1000 + m * kVectorPairs + v));
                const Vectors& vec = vectors.back().back();
                reference.back().push_back(
                    acc.run(prepared, vec.x, vec.y, kAlpha, kBeta).y);
            }
        }
    }
};

net::RetryPolicy chaos_policy(std::uint64_t worker)
{
    net::RetryPolicy p;
    p.max_attempts = 8;
    p.initial_backoff_ms = 0.2;
    p.max_backoff_ms = 5.0;
    p.seed = 100 + worker;
    return p;
}

TEST(Chaos, ThousandFaultedRequestsStayBitIdenticalAndLeakNothing)
{
    util::FaultInjector chaos(42);
    chaos.arm("net.frame.delay", 0.02, /*value=*/1.0);
    chaos.arm("net.frame.drop", 0.01);
    chaos.arm("net.frame.corrupt", 0.005);
    chaos.arm("serve.queue_full", 0.02);
    chaos.arm("serve.evict_mid_flight", 0.005);

    core::SerpensConfig cfg = core::SerpensConfig::a16();
    const Workload work(cfg);
    serve::Server server(cfg);
    net::Daemon daemon(server, /*port=*/0);
    for (unsigned m = 0; m < kMatrices; ++m)
        server.registry().admit(work.names[m], work.matrices[m]);

    util::set_fault_injector(&chaos);

    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> evict_misses{0};
    std::atomic<std::uint64_t> unexpected{0};
    std::atomic<std::uint64_t> retries{0};

    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            net::RetryingClient client("127.0.0.1", daemon.port(),
                                       kClientTimeoutMs, chaos_policy(w));
            for (unsigned i = 0; i < kRequestsPerWorker; ++i) {
                const unsigned m = (w * 7 + i) % kMatrices;
                const unsigned vi = (w + i) % kVectorPairs;
                const Vectors& v = work.vectors[m][vi];
                try {
                    net::SpmvReply reply;
                    for (int attempt = 0;; ++attempt) {
                        try {
                            reply = client.spmv(work.names[m], v.x, v.y,
                                                kAlpha, kBeta);
                            break;
                        } catch (const net::RemoteError&) {
                            // The injector evicted the matrix mid-storm:
                            // a documented, recoverable failure. Reinstall
                            // and go again (admit is idempotent).
                            ++evict_misses;
                            if (attempt >= 20)
                                throw;
                            client.admit(work.names[m], work.matrices[m]);
                        }
                    }
                    const auto& expect = work.reference[m][vi];
                    bool equal = reply.y.size() == expect.size();
                    for (std::size_t r = 0; equal && r < expect.size(); ++r)
                        equal = float_bits(reply.y[r]) ==
                                float_bits(expect[r]);
                    if (!equal)
                        ++mismatches;
                    ++served;
                } catch (...) {
                    // Anything reaching here escaped both the retry policy
                    // and the documented taxonomy handling above.
                    ++unexpected;
                }
            }
            retries += client.stats().retries;
        });
    }
    for (auto& t : workers)
        t.join();
    util::set_fault_injector(nullptr);

    // Zero client-visible failures, all responses bit-identical.
    EXPECT_EQ(served.load(), kWorkers * kRequestsPerWorker);
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(unexpected.load(), 0u);
    EXPECT_GE(served.load(), 1000u);

    // The storm actually happened: every armed site fired, and the
    // clients visibly worked for their successes.
    EXPECT_GT(chaos.fired("net.frame.delay"), 0u);
    EXPECT_GT(chaos.fired("net.frame.drop"), 0u);
    EXPECT_GT(chaos.fired("net.frame.corrupt"), 0u);
    EXPECT_GT(chaos.fired("serve.queue_full"), 0u);
    EXPECT_GT(chaos.fired("serve.evict_mid_flight"), 0u);
    EXPECT_GT(retries.load(), 0u);
    EXPECT_GT(evict_misses.load(), 0u);
    EXPECT_EQ(server.stats().rejected, chaos.fired("serve.queue_full"));

    // The daemon survives the storm: a fresh client gets served, and once
    // every client is gone the connection table drains to zero — faults
    // may kill individual connections but never leak them.
    {
        net::RetryingClient after("127.0.0.1", daemon.port(),
                                  kClientTimeoutMs, chaos_policy(99));
        const Vectors& v = work.vectors[0][0];
        const net::SpmvReply reply =
            after.spmv(work.names[0], v.x, v.y, kAlpha, kBeta);
        ASSERT_EQ(reply.y.size(), work.reference[0][0].size());
        for (std::size_t r = 0; r < reply.y.size(); ++r)
            ASSERT_EQ(float_bits(reply.y[r]),
                      float_bits(work.reference[0][0][r]));
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (daemon.open_connections() != 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(daemon.open_connections(), 0u);

    daemon.stop();
    server.drain();
}

TEST(Chaos, SameSeedReplaysTheSameFaultSequence)
{
    // Single worker, so probe order — and therefore the whole fault
    // pattern — is a pure function of the injector seed. Two runs against
    // fresh daemons must agree on every counter and on every outcome.
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    const Workload work(cfg);

    struct Outcome {
        std::vector<int> results;  // per request: 0 ok, 1 evict-miss path
        std::uint64_t fired_delay = 0, fired_drop = 0, fired_corrupt = 0;
        std::uint64_t fired_full = 0, fired_evict = 0;
        std::uint64_t retries = 0, reconnects = 0;
    };

    const auto run_once = [&]() {
        util::FaultInjector chaos(7);
        chaos.arm("net.frame.delay", 0.05, 0.5);
        chaos.arm("net.frame.drop", 0.03);
        chaos.arm("net.frame.corrupt", 0.02);
        chaos.arm("serve.queue_full", 0.05);
        chaos.arm("serve.evict_mid_flight", 0.02);

        serve::Server server(cfg);
        net::Daemon daemon(server, /*port=*/0);
        for (unsigned m = 0; m < kMatrices; ++m)
            server.registry().admit(work.names[m], work.matrices[m]);
        util::set_fault_injector(&chaos);

        Outcome out;
        {
            net::RetryingClient client("127.0.0.1", daemon.port(),
                                       kClientTimeoutMs, chaos_policy(0));
            for (unsigned i = 0; i < 150; ++i) {
                const unsigned m = i % kMatrices;
                const Vectors& v = work.vectors[m][i % kVectorPairs];
                int result = 0;
                for (;;) {
                    try {
                        (void)client.spmv(work.names[m], v.x, v.y, kAlpha,
                                          kBeta);
                        break;
                    } catch (const net::RemoteError&) {
                        result = 1;
                        client.admit(work.names[m], work.matrices[m]);
                    }
                }
                out.results.push_back(result);
            }
            out.retries = client.stats().retries;
            out.reconnects = client.stats().reconnects;
        }
        util::set_fault_injector(nullptr);
        out.fired_delay = chaos.fired("net.frame.delay");
        out.fired_drop = chaos.fired("net.frame.drop");
        out.fired_corrupt = chaos.fired("net.frame.corrupt");
        out.fired_full = chaos.fired("serve.queue_full");
        out.fired_evict = chaos.fired("serve.evict_mid_flight");
        daemon.stop();
        server.drain();
        return out;
    };

    const Outcome first = run_once();
    const Outcome second = run_once();
    EXPECT_EQ(first.results, second.results);
    EXPECT_EQ(first.fired_delay, second.fired_delay);
    EXPECT_EQ(first.fired_drop, second.fired_drop);
    EXPECT_EQ(first.fired_corrupt, second.fired_corrupt);
    EXPECT_EQ(first.fired_full, second.fired_full);
    EXPECT_EQ(first.fired_evict, second.fired_evict);
    EXPECT_EQ(first.retries, second.retries);
    EXPECT_EQ(first.reconnects, second.reconnects);
}

// --- Crash recovery against the real daemon binary (PR 9) ---

#ifdef SERPENS_SERVED_BIN

// A state directory under the test's CWD (the build tree), removed
// recursively on scope exit.
struct TempDir {
    std::string path;

    explicit TempDir(const std::string& tag)
        : path(tag + "." + std::to_string(static_cast<long>(::getpid())))
    {
        remove_tree(path);
    }
    ~TempDir() { remove_tree(path); }

    static void remove_tree(const std::string& dir)
    {
        if (DIR* d = ::opendir(dir.c_str())) {
            while (const dirent* e = ::readdir(d)) {
                const std::string name = e->d_name;
                if (name == "." || name == "..")
                    continue;
                const std::string child = dir + "/" + name;
                remove_tree(child);  // no-op for regular files
                std::remove(child.c_str());
            }
            ::closedir(d);
            ::rmdir(dir.c_str());
        }
    }
};

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

struct DaemonProc {
    pid_t pid = -1;
    std::uint16_t port = 0;
};

// fork+exec the real daemon, then poll its --port-file (written atomically
// by the daemon) until the bound port appears. The child's stdio goes to
// /dev/null so the test log stays readable.
DaemonProc spawn_served(std::vector<std::string> args,
                        const std::string& port_file)
{
    ::unlink(port_file.c_str());
    args.insert(args.begin(), {std::string(SERPENS_SERVED_BIN),
                               "--port-file", port_file});
    const pid_t pid = ::fork();
    if (pid == 0) {
        const int null_fd = ::open("/dev/null", O_WRONLY);
        if (null_fd >= 0) {
            ::dup2(null_fd, STDOUT_FILENO);
            ::dup2(null_fd, STDERR_FILENO);
            ::close(null_fd);
        }
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    DaemonProc proc;
    proc.pid = pid;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
        const std::string text = slurp(port_file);
        if (!text.empty()) {
            proc.port = static_cast<std::uint16_t>(std::stoul(text));
            return proc;
        }
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
            ADD_FAILURE() << "daemon died before binding (status "
                          << status << ")";
            proc.pid = -1;
            return proc;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "daemon never wrote " << port_file;
    return proc;
}

void sigkill_and_reap(DaemonProc& proc)
{
    ASSERT_GT(proc.pid, 0);
    ASSERT_EQ(::kill(proc.pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(proc.pid, &status, 0), proc.pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    proc.pid = -1;
}

TEST(Chaos, SigkilledDaemonWarmRestartsAndClientsFailOverDeterministically)
{
    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    const Workload work(cfg);
    TempDir td("chaos_crash");
    ASSERT_EQ(::mkdir(td.path.c_str(), 0777), 0);
    const std::string state_dir = td.path + "/state";
    const std::string recovery_json = td.path + "/recovery.json";

    // Primary A journals to state_dir; replica B is stateless. Both hold
    // the workload (each admission is journaled only by A).
    DaemonProc a = spawn_served({"--state-dir", state_dir},
                                td.path + "/port_a");
    DaemonProc b = spawn_served({}, td.path + "/port_b");
    ASSERT_GT(a.pid, 0);
    ASSERT_GT(b.pid, 0);
    for (const std::uint16_t port : {a.port, b.port}) {
        net::Client direct("127.0.0.1", port, kClientTimeoutMs);
        for (unsigned m = 0; m < kMatrices; ++m)
            direct.admit(work.names[m], work.matrices[m]);
    }

    // threshold 1: the first dead-endpoint operation opens the breaker, so
    // the post-restart phase exercises the half-open probe path.
    net::FailoverPolicy policy;
    policy.retry = chaos_policy(0);
    policy.retry.max_attempts = 2;
    policy.failure_threshold = 1;
    policy.cooldown_ms = 25.0;
    policy.max_cooldown_ms = 200.0;
    policy.seed = 11;
    net::FailoverClient fc({{"127.0.0.1", a.port}, {"127.0.0.1", b.port}},
                           kClientTimeoutMs, policy);

    constexpr unsigned kPhaseRequests = 6;
    std::vector<std::uint16_t> served_by;
    std::uint64_t mismatches = 0;
    const auto run_phase = [&] {
        for (unsigned i = 0; i < kPhaseRequests; ++i) {
            const unsigned m = i % kMatrices;
            const unsigned vi = i % kVectorPairs;
            const Vectors& v = work.vectors[m][vi];
            const net::SpmvReply reply =
                fc.spmv(work.names[m], v.x, v.y, kAlpha, kBeta);
            const auto& expect = work.reference[m][vi];
            bool equal = reply.y.size() == expect.size();
            for (std::size_t r = 0; equal && r < expect.size(); ++r)
                equal = float_bits(reply.y[r]) == float_bits(expect[r]);
            if (!equal)
                ++mismatches;
            served_by.push_back(fc.current_endpoint().port);
        }
    };

    // Phase 1: healthy primary.
    run_phase();
    EXPECT_EQ(fc.stats().failovers, 0u);

    // SIGKILL the primary mid-stream and tear its WAL tail the way a real
    // crash would: garbage after the last complete record.
    sigkill_and_reap(a);
    {
        std::ofstream torn(state_dir + "/manifest.log",
                           std::ios::binary | std::ios::app);
        torn << "TORN_TAIL_FROM_A_CRASH";
    }

    // Phase 2: clients ride the outage to the replica.
    run_phase();
    EXPECT_GE(fc.stats().failovers, 1u);
    EXPECT_GE(fc.stats().breaker_opens, 1u);

    // Warm restart A on the same port and state dir (SO_REUSEADDR makes
    // the re-bind race-free), then kill the replica too: the only way
    // phase 3 can pass is recovery actually serving A's journaled state.
    DaemonProc a2 = spawn_served({"--state-dir", state_dir, "--port",
                                  std::to_string(a.port), "--recovery-json",
                                  recovery_json},
                                 td.path + "/port_a2");
    ASSERT_GT(a2.pid, 0);
    ASSERT_EQ(a2.port, a.port);
    sigkill_and_reap(b);

    // Phase 3: fail over back through A's half-open probe.
    run_phase();
    EXPECT_EQ(mismatches, 0u);
    EXPECT_GE(fc.stats().failovers, 2u);
    EXPECT_GE(fc.stats().probes, 1u);
    EXPECT_EQ(fc.stats().giveups, 0u);

    // The failover sequence is deterministic under the fixed seed: every
    // phase-1 request on A, every phase-2 request on B, every phase-3
    // request on the restarted A.
    std::vector<std::uint16_t> expected;
    for (const std::uint16_t port : {a.port, b.port, a.port})
        expected.insert(expected.end(), kPhaseRequests, port);
    EXPECT_EQ(served_by, expected);

    // The restart was a warm one: both residents replayed from the WAL,
    // zero encode stages paid, and the torn tail was truncated + counted.
    const std::string stats = fc.stats_json();
    std::size_t cursor = 0;
    double encodes = -1.0, recovered = -1.0;
    EXPECT_TRUE(
        serve::find_number_after_key(stats, "encodes", &cursor, &encodes));
    EXPECT_TRUE(serve::find_number_after_key(stats, "recovered", &cursor,
                                             &recovered));
    EXPECT_DOUBLE_EQ(encodes, 0.0);
    EXPECT_DOUBLE_EQ(recovered, static_cast<double>(kMatrices));

    const std::string report = slurp(recovery_json);
    std::string error;
    EXPECT_TRUE(serve::validate_recovery_json(report, &error)) << error;
    cursor = 0;
    double torn_bytes = -1.0;
    EXPECT_TRUE(serve::find_number_after_key(report, "wal_torn_bytes",
                                             &cursor, &torn_bytes));
    EXPECT_GT(torn_bytes, 0.0);

    // Clean shutdown over the wire; the daemon must exit 0.
    fc.shutdown_daemon();
    int status = 0;
    ASSERT_EQ(::waitpid(a2.pid, &status, 0), a2.pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

#endif  // SERPENS_SERVED_BIN

} // namespace
} // namespace serpens
