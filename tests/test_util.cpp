// Unit tests for the util substrate: checks, RNG, bit packing.
#include <gtest/gtest.h>

#include <set>

#include "util/bitpack.h"
#include "util/check.h"
#include "util/rng.h"

namespace serpens {
namespace {

// --- check.h ---

TEST(Check, ArgumentCheckThrowsInvalidArgument)
{
    EXPECT_THROW(SERPENS_CHECK(false, "boom"), std::invalid_argument);
}

TEST(Check, ArgumentCheckPassesSilently)
{
    EXPECT_NO_THROW(SERPENS_CHECK(true, "fine"));
}

TEST(Check, AssertThrowsCheckError)
{
    EXPECT_THROW(SERPENS_ASSERT(false, "bug"), CheckError);
}

TEST(Check, MessageContainsExpressionAndText)
{
    try {
        SERPENS_CHECK(1 == 2, "custom context");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("custom context"), std::string::npos);
    }
}

TEST(Check, CapacityErrorIsInvalidArgument)
{
    // CapacityError must be catchable as invalid_argument so callers can
    // treat all contract violations uniformly.
    EXPECT_THROW(throw CapacityError("full"), std::invalid_argument);
}

// --- rng.h ---

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowRejectsZeroBound)
{
    Rng rng(1);
    EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, FloatRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const float f = rng.next_float(-2.5f, 3.5f);
        EXPECT_GE(f, -2.5f);
        EXPECT_LT(f, 3.5f);
    }
}

TEST(Rng, ExactFloatIsSmallInteger)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const float f = rng.next_exact_float(8);
        EXPECT_GE(f, 1.0f);
        EXPECT_LE(f, 8.0f);
        EXPECT_EQ(f, static_cast<float>(static_cast<int>(f)));
    }
}

TEST(Rng, ApproximatelyUniformMean)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// --- bitpack.h ---

TEST(Bitpack, ExtractInsertRoundTrip)
{
    std::uint32_t word = 0;
    word = insert_bits(word, 4, 8, 0xAB);
    EXPECT_EQ(extract_bits(word, 4, 8), 0xABu);
    word = insert_bits(word, 20, 12, 0xFFF);
    EXPECT_EQ(extract_bits(word, 20, 12), 0xFFFu);
    EXPECT_EQ(extract_bits(word, 4, 8), 0xABu);  // unchanged
}

TEST(Bitpack, InsertMasksOverflowingValue)
{
    const std::uint32_t word = insert_bits(0, 0, 4, 0x1F);
    EXPECT_EQ(word, 0xFu);
}

TEST(Bitpack, FullWidthFields)
{
    EXPECT_EQ(extract_bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);
    EXPECT_EQ(insert_bits(0, 0, 32, 0xDEADBEEF), 0xDEADBEEFu);
}

TEST(Bitpack, FitsBits)
{
    EXPECT_TRUE(fits_bits(0, 1));
    EXPECT_TRUE(fits_bits(1, 1));
    EXPECT_FALSE(fits_bits(2, 1));
    EXPECT_TRUE(fits_bits(16383, 14));
    EXPECT_FALSE(fits_bits(16384, 14));
    EXPECT_TRUE(fits_bits(~0ULL, 64));
}

TEST(Bitpack, FloatBitsRoundTrip)
{
    for (float f : {0.0f, -0.0f, 1.0f, -1.5f, 3.14159f, 1e-30f, 1e30f}) {
        EXPECT_EQ(bits_float(float_bits(f)), f);
    }
}

TEST(Bitpack, FloatBitsPreservesNanPayload)
{
    const std::uint32_t nan_bits = 0x7FC00001u;
    EXPECT_EQ(float_bits(bits_float(nan_bits)), nan_bits);
}

TEST(Bitpack, CeilDiv)
{
    EXPECT_EQ(ceil_div(0u, 16u), 0u);
    EXPECT_EQ(ceil_div(1u, 16u), 1u);
    EXPECT_EQ(ceil_div(16u, 16u), 1u);
    EXPECT_EQ(ceil_div(17u, 16u), 2u);
    EXPECT_EQ(ceil_div<std::uint64_t>(1'000'000'007ULL, 128ULL), 7'812'501ULL);
}

} // namespace
} // namespace serpens
