// Tests for the GraphLily overlay baseline model.
#include <gtest/gtest.h>

#include "baselines/cpu_spmv.h"
#include "baselines/graphlily.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace serpens::baselines {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;

std::vector<float> random_vector(std::size_t n, std::uint64_t seed)
{
    serpens::Rng rng(seed);
    std::vector<float> v(n);
    for (float& x : v)
        x = rng.next_float(-1.0f, 1.0f);
    return v;
}

TEST(GraphLily, SpmvModeMatchesReference)
{
    const GraphLilyModel gl;
    const CsrMatrix a =
        sparse::to_csr(sparse::make_uniform_random(120, 150, 2000, 1));
    const auto x = random_vector(150, 2);
    const auto y = random_vector(120, 3);
    const std::vector<float> got = gl.spmv(a, x, y, 0.85f, 1.0f);
    const auto ref = spmv_csr_ref64(a, x, y, 0.85f, 1.0f);
    for (std::size_t r = 0; r < ref.size(); ++r)
        ASSERT_NEAR(got[r], ref[r], 1e-4 * std::max(1.0, std::abs(ref[r])));
}

TEST(GraphLily, RunWithPlusTimesSemiring)
{
    const GraphLilyModel gl;
    const CsrMatrix a = sparse::to_csr(sparse::make_diagonal(16, 3.0f));
    const std::vector<float> x(16, 2.0f);
    const std::vector<float> y = gl.run(a, x);
    for (float v : y)
        EXPECT_FLOAT_EQ(v, 6.0f);
}

TEST(GraphLily, RunWithBooleanSemiring)
{
    // BFS-style frontier expansion on a 3-node path graph 0 -> 1 -> 2,
    // walking backward edges (y = A^T-ish handled by the caller).
    CooMatrix g(3, 3);
    g.add(1, 0, 1.0f);  // edge 0 -> 1 stored as row 1 reading col 0
    g.add(2, 1, 1.0f);
    const CsrMatrix a = sparse::to_csr(g);
    const GraphLilyModel gl;
    std::vector<float> frontier = {1.0f, 0.0f, 0.0f};
    frontier = gl.run(a, frontier, SemiringKind::or_and);
    EXPECT_EQ(frontier, (std::vector<float>{0.0f, 1.0f, 0.0f}));
    frontier = gl.run(a, frontier, SemiringKind::or_and);
    EXPECT_EQ(frontier, (std::vector<float>{0.0f, 0.0f, 1.0f}));
}

TEST(GraphLily, RunWithTropicalSemiring)
{
    // SSSP relaxation: dist' = min over edges (weight + dist).
    CooMatrix g(2, 2);
    g.add(1, 0, 5.0f);
    const CsrMatrix a = sparse::to_csr(g);
    const GraphLilyModel gl;
    const std::vector<float> dist = {0.0f, kMinPlusInf};
    const std::vector<float> next = gl.run(a, dist, SemiringKind::min_plus);
    EXPECT_FLOAT_EQ(next[1], 5.0f);
    EXPECT_EQ(next[0], kMinPlusInf);  // no incoming edge
}

TEST(GraphLily, TimeNearPaperOnG2)
{
    // G2 crankseg_2: paper measures 1.47 ms.
    const GraphLilyModel gl;
    const double ms = gl.estimate_spmv_ms(63'800, 63'800, 14'100'000);
    EXPECT_GT(ms, 1.47 * 0.7);
    EXPECT_LT(ms, 1.47 * 1.3);
}

TEST(GraphLily, TimeNearPaperOnG12)
{
    // G12 ogbn_products: paper measures 18.6 ms; the cluster overhead term
    // dominates the deviation from the plain roofline here.
    const GraphLilyModel gl;
    const double ms = gl.estimate_spmv_ms(2'450'000, 2'450'000, 124'000'000);
    EXPECT_GT(ms, 18.6 * 0.7);
    EXPECT_LT(ms, 18.6 * 1.3);
}

TEST(GraphLily, OverlayIsSlowerThanFullCustomization)
{
    // The architectural claim: at equal NNZ the overlay's effective
    // element rate (128 * util @ 166 MHz) is well below Serpens' 128 @ 223.
    const GraphLilyModel gl;
    const double gl_ms = gl.estimate_spmv_ms(100'000, 100'000, 20'000'000);
    // Serpens ideal: 20M/128 cycles at 223 MHz.
    const double serpens_ideal_ms = 20e6 / 128.0 / 223e3;
    EXPECT_GT(gl_ms, 1.5 * serpens_ideal_ms);
}

TEST(GraphLily, ConfigValidation)
{
    GraphLilyConfig c;
    c.pe_utilization = 0.0;
    EXPECT_THROW(GraphLilyModel{c}, std::invalid_argument);
    c = {};
    c.cluster_window = 4;
    EXPECT_THROW(GraphLilyModel{c}, std::invalid_argument);
}

} // namespace
} // namespace serpens::baselines
