// Tests for the application-layer library (PageRank, BFS, SSSP).
#include <gtest/gtest.h>

#include <numeric>

#include "apps/pagerank.h"
#include "baselines/semiring.h"
#include "apps/traversal.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace serpens::apps {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::index_t;

core::Accelerator small_accelerator()
{
    core::SerpensConfig c = core::SerpensConfig::a16();
    c.arch.ha_channels = 2;
    c.arch.window = 128;
    return core::Accelerator(c);
}

// --- transition_matrix ---

TEST(TransitionMatrix, ColumnStochastic)
{
    CooMatrix g(3, 3);
    g.add(0, 1, 1.0f);  // 0 -> 1
    g.add(0, 2, 1.0f);  // 0 -> 2
    g.add(1, 2, 1.0f);  // 1 -> 2
    const CooMatrix p = transition_matrix(g);

    // Column u sums to 1 for every vertex with out-edges.
    std::vector<double> col_sum(3, 0.0);
    for (const auto& t : p.elements())
        col_sum[t.col] += t.val;
    EXPECT_DOUBLE_EQ(col_sum[0], 1.0);
    EXPECT_DOUBLE_EQ(col_sum[1], 1.0);
    EXPECT_DOUBLE_EQ(col_sum[2], 1.0);  // dangling vertex 2: self-loop
}

TEST(TransitionMatrix, EdgeWeightsAreInverseOutdegree)
{
    CooMatrix g(2, 2);
    g.add(0, 0, 1.0f);
    g.add(0, 1, 1.0f);
    CooMatrix p = transition_matrix(g);
    p.sort_row_major();
    for (const auto& t : p.elements()) {
        if (t.col == 0) {
            EXPECT_FLOAT_EQ(t.val, 0.5f);
        }
    }
}

TEST(TransitionMatrix, RejectsNonSquare)
{
    EXPECT_THROW(transition_matrix(CooMatrix(2, 3)), std::invalid_argument);
}

// --- pagerank ---

TEST(PageRank, MassConservedAndConverges)
{
    const CooMatrix g = sparse::make_rmat(9, 8, 11);
    const auto acc = small_accelerator();
    PageRankOptions opt;
    opt.max_iterations = 60;
    opt.tolerance = 1e-7;
    const PageRankResult r = pagerank(acc, g, opt);

    const double mass = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
    EXPECT_NEAR(mass, 1.0, 1e-3);
    EXPECT_LT(r.delta, 1e-6);
    EXPECT_GT(r.iterations, 3);
    EXPECT_GT(r.modeled_ms, 0.0);
}

TEST(PageRank, UniformOnSymmetricRing)
{
    // A directed ring: every vertex has in/out degree 1 -> uniform rank.
    const index_t n = 64;
    CooMatrix ring(n, n);
    for (index_t v = 0; v < n; ++v)
        ring.add(v, (v + 1) % n, 1.0f);
    const PageRankResult r = pagerank(small_accelerator(), ring);
    for (float v : r.rank)
        EXPECT_NEAR(v, 1.0f / n, 1e-4f);
}

TEST(PageRank, SinkAttractsRank)
{
    // Star into vertex 0: vertex 0 must outrank the leaves.
    const index_t n = 32;
    CooMatrix star(n, n);
    for (index_t v = 1; v < n; ++v)
        star.add(v, 0, 1.0f);
    const PageRankResult r = pagerank(small_accelerator(), star);
    for (index_t v = 1; v < n; ++v)
        EXPECT_GT(r.rank[0], r.rank[v]);
}

TEST(PageRank, RejectsBadOptions)
{
    const CooMatrix g = sparse::make_diagonal(8);
    PageRankOptions opt;
    opt.damping = 1.5;
    EXPECT_THROW(pagerank(small_accelerator(), g, opt), std::invalid_argument);
    opt = {};
    opt.max_iterations = 0;
    EXPECT_THROW(pagerank(small_accelerator(), g, opt), std::invalid_argument);
}

// --- bfs / sssp ---

CsrMatrix reversed(const CooMatrix& g)
{
    return sparse::to_csr(g.transposed());
}

TEST(Bfs, PathGraphLevels)
{
    CooMatrix g(5, 5);
    for (index_t v = 0; v + 1 < 5; ++v)
        g.add(v, v + 1, 1.0f);
    const auto levels = bfs_levels(reversed(g), 0);
    EXPECT_EQ(levels, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bfs, DisconnectedComponent)
{
    CooMatrix g(4, 4);
    g.add(0, 1, 1.0f);
    g.add(2, 3, 1.0f);
    const auto levels = bfs_levels(reversed(g), 0);
    EXPECT_EQ(levels[1], 1);
    EXPECT_EQ(levels[2], kUnreached);
    EXPECT_EQ(levels[3], kUnreached);
}

TEST(Bfs, RejectsBadSource)
{
    const CooMatrix g = sparse::make_diagonal(4);
    EXPECT_THROW(bfs_levels(reversed(g), 9), std::invalid_argument);
}

TEST(Sssp, ShortcutBeatsDirectEdge)
{
    CooMatrix g(3, 3);
    g.add(0, 2, 10.0f);
    g.add(0, 1, 1.0f);
    g.add(1, 2, 2.0f);
    const auto dist = sssp_distances(reversed(g), 0);
    EXPECT_FLOAT_EQ(dist[2], 3.0f);  // via vertex 1, not the 10.0 edge
}

TEST(Sssp, UnreachableIsInfinite)
{
    CooMatrix g(3, 3);
    g.add(0, 1, 1.0f);
    const auto dist = sssp_distances(reversed(g), 0);
    EXPECT_EQ(dist[2], serpens::baselines::kMinPlusInf);
}

TEST(Sssp, RejectsNegativeWeights)
{
    CooMatrix g(2, 2);
    g.add(0, 1, -1.0f);
    EXPECT_THROW(sssp_distances(reversed(g), 0), std::invalid_argument);
}

TEST(Sssp, AgreesWithBfsOnUnitWeights)
{
    const CooMatrix g = sparse::make_rmat(7, 4, 3,
                                          sparse::ValueOptions{.exact_values = true});
    // Unit weights: SSSP distance == BFS level wherever reachable.
    CooMatrix unit = g;
    for (auto& e : unit.elements())
        e.val = 1.0f;
    const auto rev = reversed(unit);
    const auto levels = bfs_levels(rev, 0);
    const auto dist = sssp_distances(rev, 0);
    for (index_t v = 0; v < unit.rows(); ++v) {
        if (levels[v] == kUnreached) {
            EXPECT_EQ(dist[v], serpens::baselines::kMinPlusInf) << "vertex " << v;
        } else {
            EXPECT_FLOAT_EQ(dist[v], static_cast<float>(levels[v]))
                << "vertex " << v;
        }
    }
}

} // namespace
} // namespace serpens::apps
