// Lockdown of the batched device model (sim::BatchCycleStats).
//
// Three contracts pin SpMM mode to the established engines:
//   1. B = 1 degenerates bit-identically to the single-SpMV CycleStats —
//      same ceils, same double-buffer overlap arithmetic, same traffic.
//   2. Functional results never depend on the device model: the batched
//      engine's y columns stay bit-identical to the packed reference for
//      every batch width and thread count.
//   3. Amortized per-SpMV time is monotone non-increasing in B over the
//      power-of-two widths and saturates at batch_columns — the same
//      shape as the Sextans SpMM model it mirrors.
#include <gtest/gtest.h>

#include "baselines/sextans.h"
#include "core/accelerator.h"
#include "core/analytic.h"
#include "sim/decoded_image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens {
namespace {

// The generator suite: one matrix per structural family the encoder
// handles differently (uniform scatter, power-law clusters, diagonal
// band, heavy rows, block structure).
std::vector<std::pair<std::string, sparse::CooMatrix>> generator_suite()
{
    std::vector<std::pair<std::string, sparse::CooMatrix>> suite;
    suite.emplace_back("uniform",
                       sparse::make_uniform_random(2048, 3000, 50'000, 11));
    suite.emplace_back("clustered",
                       sparse::make_clustered(1500, 40'000, 8, 64, 0.3, 13));
    suite.emplace_back("banded", sparse::make_banded(2000, 9, 17));
    suite.emplace_back("dense_rows",
                       sparse::make_dense_rows(1024, 2048, 12, 1500, 19));
    suite.emplace_back("block",
                       sparse::make_block_random(1536, 64, 35'000, 23));
    return suite;
}

std::vector<float> random_vector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (float& f : v)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

void expect_batch_equals_single(const sim::BatchCycleStats& b,
                                const sim::CycleStats& s,
                                const std::string& label)
{
    EXPECT_EQ(b.batch, 1u) << label;
    EXPECT_EQ(b.passes, 1u) << label;
    EXPECT_EQ(b.x_load_cycles, s.x_load_cycles) << label;
    EXPECT_EQ(b.compute_cycles, s.compute_cycles) << label;
    EXPECT_EQ(b.y_phase_cycles, s.y_phase_cycles) << label;
    EXPECT_EQ(b.fill_cycles, s.fill_cycles) << label;
    EXPECT_EQ(b.total_slots, s.total_slots) << label;
    EXPECT_EQ(b.padding_slots, s.padding_slots) << label;
    EXPECT_EQ(b.total_cycles(), s.total_cycles()) << label;
    EXPECT_EQ(b.traffic.bytes_read, s.traffic.bytes_read) << label;
    EXPECT_EQ(b.traffic.bytes_written, s.traffic.bytes_written) << label;
}

// --- Contract 1: B = 1 identity, packed and decoded, both buffer modes ---

TEST(BatchModel, BatchOfOneIsFieldForFieldIdenticalToCycleStats)
{
    for (const auto& [name, m] : generator_suite()) {
        encode::EncodeParams params;
        params.window = 1024;
        const auto img = encode::encode_matrix(m, params);
        const auto decoded = sim::DecodedImage::decode(img);

        for (const bool double_buffer : {false, true}) {
            sim::SimOptions options;
            options.double_buffer_x = double_buffer;
            const std::string label =
                name + (double_buffer ? " (double-buffered x)" : "");

            const std::vector<float> x = random_vector(m.cols(), 101);
            const std::vector<float> y = random_vector(m.rows(), 102);
            const sim::SimResult single =
                sim::simulate_spmv(img, x, y, 1.0f, 0.5f, options);

            expect_batch_equals_single(
                sim::batch_cycle_stats(img, 1, options), single.cycles,
                label + " packed");
            expect_batch_equals_single(
                sim::batch_cycle_stats(decoded, 1, options), single.cycles,
                label + " decoded");
        }
    }
}

TEST(BatchModel, PackedAndDecodedOverloadsAgreeAtEveryWidth)
{
    for (const auto& [name, m] : generator_suite()) {
        encode::EncodeParams params;
        params.window = 512;
        const auto img = encode::encode_matrix(m, params);
        const auto decoded = sim::DecodedImage::decode(img);
        for (const unsigned b : {1u, 2u, 3u, 8u, 11u, 16u, 33u}) {
            const sim::SimOptions options;
            const auto packed = sim::batch_cycle_stats(img, b, options);
            const auto cached = sim::batch_cycle_stats(decoded, b, options);
            const std::string label = name + " B=" + std::to_string(b);
            EXPECT_EQ(packed.batch, b) << label;
            EXPECT_EQ(packed.passes,
                      (b + options.batch_columns - 1) / options.batch_columns)
                << label;
            EXPECT_EQ(packed.passes, cached.passes) << label;
            EXPECT_EQ(packed.x_load_cycles, cached.x_load_cycles) << label;
            EXPECT_EQ(packed.compute_cycles, cached.compute_cycles) << label;
            EXPECT_EQ(packed.y_phase_cycles, cached.y_phase_cycles) << label;
            EXPECT_EQ(packed.fill_cycles, cached.fill_cycles) << label;
            EXPECT_EQ(packed.traffic.bytes_read, cached.traffic.bytes_read)
                << label;
            EXPECT_EQ(packed.traffic.bytes_written,
                      cached.traffic.bytes_written)
                << label;
        }
    }
}

TEST(BatchModel, RunBatchOfOneReportsSingleRunTime)
{
    const auto m = sparse::make_uniform_random(1200, 1400, 30'000, 29);
    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(m);
    const std::vector<std::vector<float>> xs{random_vector(m.cols(), 1)};
    const std::vector<std::vector<float>> ys{random_vector(m.rows(), 2)};

    const core::BatchRunResult batch = acc.run_batch(prepared, xs, ys);
    const core::RunResult single = acc.run(prepared, xs[0], ys[0]);
    EXPECT_EQ(batch.batch_time_ms, single.time_ms);
    EXPECT_EQ(batch.amortized_time_ms, single.time_ms);
    EXPECT_EQ(batch.batch_time_ms, batch.front().time_ms);
}

// --- Contract 2: y bits never depend on the batch width or threads ---

TEST(BatchModel, BatchYBitIdenticalToPackedReferencePerColumn)
{
    const auto suite = generator_suite();
    for (const auto& [name, m] : suite) {
        encode::EncodeParams params;
        params.window = 1024;
        const auto img = encode::encode_matrix(m, params);
        const auto decoded = sim::DecodedImage::decode(img);

        for (const unsigned b : {1u, 3u, 8u, 11u}) {
            std::vector<std::vector<float>> xs, ys;
            for (unsigned k = 0; k < b; ++k) {
                xs.push_back(random_vector(m.cols(), 500 + k));
                ys.push_back(random_vector(m.rows(), 900 + k));
            }
            for (const unsigned threads : {1u, 2u, 8u, 0u}) {
                sim::SimOptions options;
                options.threads = threads;
                const sim::SimBatchResult batch = sim::simulate_spmv_batch(
                    decoded, xs, ys, 1.25f, -0.75f, options);
                ASSERT_EQ(batch.y.size(), b);
                EXPECT_EQ(batch.batch_cycles.batch, b);
                for (unsigned k = 0; k < b; ++k) {
                    const sim::SimResult ref = sim::simulate_spmv(
                        img, xs[k], ys[k], 1.25f, -0.75f, options);
                    ASSERT_EQ(batch.y[k].size(), ref.y.size());
                    for (std::size_t r = 0; r < ref.y.size(); ++r)
                        ASSERT_EQ(float_bits(batch.y[k][r]),
                                  float_bits(ref.y[r]))
                            << name << " B=" << b << " threads=" << threads
                            << " column " << k << " row " << r;
                }
            }
        }
    }
}

// --- Contract 3: amortization shape ---

TEST(BatchModel, AmortizedTimeMonotoneNonIncreasingOverPowerOfTwoWidths)
{
    for (const auto& [name, m] : generator_suite()) {
        const core::Accelerator acc(core::SerpensConfig::a16());
        const auto prepared = acc.prepare(m);
        double prev = 0.0;
        for (const unsigned b : {1u, 2u, 4u, 8u, 16u}) {
            std::vector<std::vector<float>> xs, ys;
            for (unsigned k = 0; k < b; ++k) {
                xs.push_back(random_vector(m.cols(), 40 + k));
                ys.push_back(random_vector(m.rows(), 70 + k));
            }
            const core::BatchRunResult run = acc.run_batch(prepared, xs, ys);
            EXPECT_GT(run.amortized_time_ms, 0.0) << name;
            if (b > 1) {
                EXPECT_LE(run.amortized_time_ms, prev)
                    << name << " B=" << b;
            }
            prev = run.amortized_time_ms;
        }
    }
}

TEST(BatchModel, AnalyticBatchEstimateDegeneratesToSingleEstimate)
{
    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    for (const double padding : {0.0, 0.15}) {
        const double single =
            core::estimate_time_ms(cfg, 100'000, 80'000, 2'000'000, padding);
        const double batch1 = core::estimate_batch_time_ms(
            cfg, 100'000, 80'000, 2'000'000, 1, padding);
        EXPECT_DOUBLE_EQ(single, batch1);
    }
}

TEST(BatchModel, AnalyticAmortizationSharesTheSextansKnee)
{
    // Closed-form cross-check at 1M nnz: both SpMM models stream the
    // sparse image once per 8-column block, so (a) B=8 amortizes strictly
    // better than B=1, and (b) past the knee a doubling of B buys almost
    // nothing (< 10% in both models) — only kickoff overhead and schedule
    // rounding keep amortizing.
    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    const std::uint64_t rows = 65'536, cols = 65'536, nnz = 1'000'000;
    const baselines::SextansModel sextans;

    const auto serpens_amortized = [&](unsigned b) {
        return core::estimate_batch_time_ms(cfg, rows, cols, nnz, b) / b;
    };
    const auto sextans_amortized = [&](unsigned b) {
        const auto ms =
            sextans.estimate_amortized_spmv_ms(rows, cols, nnz, b);
        return ms.value();
    };

    EXPECT_LT(serpens_amortized(8), serpens_amortized(1));
    EXPECT_LT(sextans_amortized(8), sextans_amortized(1));

    const double serpens_sat =
        serpens_amortized(8) / serpens_amortized(16);
    const double sextans_sat =
        sextans_amortized(8) / sextans_amortized(16);
    EXPECT_GE(serpens_sat, 1.0);
    EXPECT_LT(serpens_sat, 1.10);
    EXPECT_GE(sextans_sat, 1.0);
    EXPECT_LT(sextans_sat, 1.10);

    // The pre-knee gains land in a common band: one pass for 8 columns
    // cannot buy more than 8x in either model.
    const double serpens_gain = serpens_amortized(1) / serpens_amortized(8);
    const double sextans_gain = sextans_amortized(1) / sextans_amortized(8);
    EXPECT_GT(serpens_gain, 1.5);
    EXPECT_LE(serpens_gain, 8.0);
    EXPECT_GT(sextans_gain, 1.0);
    EXPECT_LE(sextans_gain, 8.0);
}

TEST(BatchModel, RunBatchLeavesFootprintUnchanged)
{
    // The B-wide accumulator banks of SpMM mode are per-call transients:
    // they must never leak into the bytes the serving registry charges
    // against its resident budget.
    const auto m = sparse::make_uniform_random(1500, 1500, 40'000, 31);
    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(m);
    prepared.warm_decode();
    const std::uint64_t before = prepared.memory_footprint_bytes();

    std::vector<std::vector<float>> xs, ys;
    for (unsigned k = 0; k < 8; ++k) {
        xs.push_back(random_vector(m.cols(), 60 + k));
        ys.push_back(random_vector(m.rows(), 80 + k));
    }
    const core::BatchRunResult run = acc.run_batch(prepared, xs, ys);
    ASSERT_EQ(run.size(), 8u);
    EXPECT_EQ(prepared.memory_footprint_bytes(), before);
}

} // namespace
} // namespace serpens
