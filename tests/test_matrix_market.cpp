// Unit tests for Matrix Market I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/generators.h"
#include "sparse/matrix_market.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens::sparse {
namespace {

TEST(MatrixMarket, ReadGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 4 2\n"
        "1 1 1.5\n"
        "3 4 -2.0\n");
    const CooMatrix m = read_matrix_market(in);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.elements()[0], (Triplet{0, 0, 1.5f}));
    EXPECT_EQ(m.elements()[1], (Triplet{2, 3, -2.0f}));
}

TEST(MatrixMarket, ReadPattern)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const CooMatrix m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.elements()[0].val, 1.0f);
}

TEST(MatrixMarket, ReadInteger)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "2 2 7\n");
    const CooMatrix m = read_matrix_market(in);
    EXPECT_FLOAT_EQ(m.elements()[0].val, 7.0f);
}

TEST(MatrixMarket, SymmetricExpansion)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 1.0\n"
        "2 1 2.0\n"
        "3 2 3.0\n");
    CooMatrix m = read_matrix_market(in);
    // Diagonal entry stays single; off-diagonals mirror.
    EXPECT_EQ(m.nnz(), 5u);
    m.sort_row_major();
    EXPECT_EQ(m.elements()[1], (Triplet{0, 1, 2.0f}));  // mirrored (2,1)
}

TEST(MatrixMarket, CaseInsensitiveBanner)
{
    std::istringstream in(
        "%%MatrixMarket MATRIX Coordinate REAL General\n"
        "1 1 1\n"
        "1 1 4.0\n");
    EXPECT_EQ(read_matrix_market(in).nnz(), 1u);
}

TEST(MatrixMarket, RejectsMissingBanner)
{
    std::istringstream in("3 3 0\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsArrayFormat)
{
    std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsComplexField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsTruncatedEntries)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsMissingValue)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsEmptyInput)
{
    std::istringstream in("");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsZeroDimensions)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n0 2 0\n");
    EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, WriteReadRoundTrip)
{
    CooMatrix m = make_uniform_random(40, 60, 300, 21);
    m.sort_row_major();
    std::stringstream buf;
    write_matrix_market(buf, m);
    CooMatrix back = read_matrix_market(buf);
    back.sort_row_major();
    ASSERT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(back.rows(), m.rows());
    EXPECT_EQ(back.cols(), m.cols());
    for (std::size_t i = 0; i < m.nnz(); ++i) {
        EXPECT_EQ(back.elements()[i].row, m.elements()[i].row);
        EXPECT_EQ(back.elements()[i].col, m.elements()[i].col);
        EXPECT_NEAR(back.elements()[i].val, m.elements()[i].val, 1e-5f);
    }
}

TEST(MatrixMarket, WriteReadRoundTripIsBitExact)
{
    // Values are written with max_digits10 significant digits, so the
    // write -> read cycle must reproduce every FP32 value bit-for-bit —
    // including awkward ones that default ostream precision (6 digits)
    // used to truncate.
    CooMatrix m(64, 64);
    m.add(0, 0, 0.1f);                       // not representable, 9 digits
    m.add(1, 1, 1.0f / 3.0f);                // 0.333333343...
    m.add(2, 2, 1.1754944e-38f);             // FLT_MIN neighborhood
    m.add(3, 3, 3.4028235e38f);              // FLT_MAX
    const CooMatrix r = make_uniform_random(64, 64, 500, 55);
    for (const Triplet& t : r.elements())
        m.elements().push_back(t);

    std::stringstream buf;
    write_matrix_market(buf, m);
    const CooMatrix back = read_matrix_market(buf);
    ASSERT_EQ(back.nnz(), m.nnz());
    for (std::size_t i = 0; i < m.nnz(); ++i) {
        EXPECT_EQ(back.elements()[i].row, m.elements()[i].row);
        EXPECT_EQ(back.elements()[i].col, m.elements()[i].col);
        EXPECT_EQ(float_bits(back.elements()[i].val),
                  float_bits(m.elements()[i].val))
            << "value " << m.elements()[i].val << " did not round-trip";
    }
}

TEST(MatrixMarket, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/serpens_mm_test.mtx";
    CooMatrix m = make_banded(32, 3, 5);
    m.sort_row_major();
    write_matrix_market_file(path, m);
    CooMatrix back = read_matrix_market_file(path);
    back.sort_row_major();
    EXPECT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(back.rows(), m.rows());
}

TEST(MatrixMarket, MissingFileThrows)
{
    EXPECT_THROW(read_matrix_market_file("/nonexistent/dir/x.mtx"),
                 MatrixMarketError);
}

// Golden-file tests: small .mtx fixtures under tests/data/ covering the
// format corners real SuiteSparse downloads hit — comment runs, symmetric
// and pattern headers, 1-based indexing, CRLF line endings, truncation.
std::string golden(const std::string& name)
{
    return std::string(SERPENS_TEST_DATA_DIR) + "/" + name;
}

TEST(MatrixMarketGolden, CommentRuns)
{
    const CooMatrix m = read_matrix_market_file(golden("comments_run.mtx"));
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_EQ(m.cols(), 5u);
    ASSERT_EQ(m.nnz(), 3u);
    EXPECT_EQ(m.elements()[0], (Triplet{0, 0, 1.25f}));
    EXPECT_EQ(m.elements()[1], (Triplet{1, 2, -4.5f}));
    EXPECT_EQ(m.elements()[2], (Triplet{3, 4, 200.0f}));
}

TEST(MatrixMarketGolden, SymmetricExpands)
{
    CooMatrix m = read_matrix_market_file(golden("symmetric.mtx"));
    // 2 diagonal entries stay single, 2 off-diagonal entries mirror.
    ASSERT_EQ(m.nnz(), 6u);
    m.sort_row_major();
    EXPECT_EQ(m.elements()[0], (Triplet{0, 0, 1.0f}));
    EXPECT_EQ(m.elements()[1], (Triplet{0, 1, 2.0f})); // mirror of (2,1)
    EXPECT_EQ(m.elements()[2], (Triplet{0, 2, 3.0f})); // mirror of (3,1)
    EXPECT_EQ(m.elements()[3], (Triplet{1, 0, 2.0f}));
    EXPECT_EQ(m.elements()[4], (Triplet{2, 0, 3.0f}));
    EXPECT_EQ(m.elements()[5], (Triplet{2, 2, 4.0f}));
}

TEST(MatrixMarketGolden, PatternSymmetric)
{
    CooMatrix m = read_matrix_market_file(golden("pattern_symmetric.mtx"));
    // (2,1) and (3,2) mirror; (4,4) is diagonal: 5 total, all value 1.
    ASSERT_EQ(m.nnz(), 5u);
    m.sort_row_major();
    for (const Triplet& t : m.elements())
        EXPECT_FLOAT_EQ(t.val, 1.0f);
    EXPECT_EQ(m.elements()[0], (Triplet{0, 1, 1.0f}));
    EXPECT_EQ(m.elements()[4], (Triplet{3, 3, 1.0f}));
}

TEST(MatrixMarketGolden, OneBasedIndexCorners)
{
    CooMatrix m = read_matrix_market_file(golden("one_based.mtx"));
    ASSERT_EQ(m.nnz(), 4u);
    m.sort_row_major();
    // 1-based (1,1)..(3,7) corners land on 0-based (0,0)..(2,6).
    EXPECT_EQ(m.elements()[0], (Triplet{0, 0, 11.0f}));
    EXPECT_EQ(m.elements()[1], (Triplet{0, 6, 17.0f}));
    EXPECT_EQ(m.elements()[2], (Triplet{2, 0, 31.0f}));
    EXPECT_EQ(m.elements()[3], (Triplet{2, 6, 37.0f}));
}

TEST(MatrixMarketGolden, CrlfLineEndings)
{
    const CooMatrix m = read_matrix_market_file(golden("crlf.mtx"));
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.elements()[0], (Triplet{0, 1, 1.5f}));
    EXPECT_EQ(m.elements()[1], (Triplet{2, 2, -2.25f}));
}

TEST(MatrixMarketGolden, TruncatedEntryListThrows)
{
    EXPECT_THROW(read_matrix_market_file(golden("truncated_entries.mtx")),
                 MatrixMarketError);
}

TEST(MatrixMarketGolden, MissingSizeLineThrows)
{
    EXPECT_THROW(read_matrix_market_file(golden("truncated_size.mtx")),
                 MatrixMarketError);
}

TEST(MatrixMarketGolden, TruncatedValueThrows)
{
    EXPECT_THROW(read_matrix_market_file(golden("truncated_value.mtx")),
                 MatrixMarketError);
}

} // namespace
} // namespace serpens::sparse
