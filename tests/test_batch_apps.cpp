// Application-level lockdown of the decode-once / batched path: PageRank
// and traversal must produce bit-identical results whether each SpMV
// re-unpacks the packed image (decode_cache off — the seed behavior) or
// streams the cached decode, across thread counts and batch widths.
#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "apps/traversal.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/bitpack.h"

namespace serpens::apps {
namespace {

using sparse::CooMatrix;
using sparse::index_t;

core::Accelerator make_accelerator(bool decode_cache, unsigned sim_threads)
{
    core::SerpensConfig c = core::SerpensConfig::a16();
    c.arch.ha_channels = 2;
    c.arch.window = 128;
    c.decode_cache = decode_cache;
    c.sim_threads = sim_threads;
    return core::Accelerator(c);
}

void expect_ranks_identical(const std::vector<float>& a,
                            const std::vector<float>& b,
                            const std::string& label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(float_bits(a[i]), float_bits(b[i]))
            << label << " vertex " << i;
}

// --- PageRank through the cached decode ---

TEST(BatchApps, PageRankIdenticalAcrossEnginesAndThreads)
{
    const CooMatrix g = sparse::make_rmat(9, 8, 11);
    PageRankOptions opt;
    opt.max_iterations = 40;
    opt.tolerance = 1e-7;

    const PageRankResult seed =
        pagerank(make_accelerator(false, 1), g, opt);
    for (const bool cache : {true, false}) {
        for (const unsigned threads : {1u, 2u, 8u, 0u}) {
            const PageRankResult r =
                pagerank(make_accelerator(cache, threads), g, opt);
            const std::string label = std::string("cache=") +
                                      (cache ? "on" : "off") + " threads=" +
                                      std::to_string(threads);
            EXPECT_EQ(r.iterations, seed.iterations) << label;
            EXPECT_DOUBLE_EQ(r.modeled_ms, seed.modeled_ms) << label;
            expect_ranks_identical(r.rank, seed.rank, label);
        }
    }
}

// --- personalized PageRank: batched lockstep vs sequential columns ---

TEST(BatchApps, PersonalizedPageRankMatchesSequentialIteration)
{
    const CooMatrix g = sparse::make_rmat(8, 8, 13);
    const std::vector<index_t> sources = {0, 5, 17};
    PageRankOptions opt;
    opt.max_iterations = 25;
    opt.tolerance = 0.0;  // fixed iteration count keeps columns comparable

    for (const unsigned threads : {1u, 8u}) {
        const core::Accelerator acc = make_accelerator(true, threads);
        const PersonalizedPageRankResult batched =
            personalized_pagerank(acc, g, sources, opt);
        ASSERT_EQ(batched.rank.size(), sources.size());
        EXPECT_EQ(batched.iterations, opt.max_iterations);

        // Reference: iterate each source alone through run() (the decoded
        // single-vector path), exactly the batched recurrence.
        const CooMatrix p = transition_matrix(g);
        const core::PreparedMatrix prepared = acc.prepare(p);
        const auto n = static_cast<std::size_t>(p.rows());
        for (std::size_t b = 0; b < sources.size(); ++b) {
            std::vector<float> rank(n, 0.0f), teleport(n, 0.0f);
            rank[sources[b]] = 1.0f;
            teleport[sources[b]] = static_cast<float>(1.0 - opt.damping);
            for (int it = 0; it < opt.max_iterations; ++it)
                rank = acc.run(prepared, rank, teleport,
                               static_cast<float>(opt.damping), 1.0f)
                           .y;
            expect_ranks_identical(
                batched.rank[b], rank,
                "threads=" + std::to_string(threads) + " source " +
                    std::to_string(sources[b]));
        }
    }
}

TEST(BatchApps, PersonalizedPageRankConcentratesNearSource)
{
    // Sanity on semantics (not just engine equality): a path graph's
    // personalized rank must peak at the personalization vertex.
    const index_t n = 16;
    CooMatrix path(n, n);
    for (index_t v = 0; v + 1 < n; ++v) {
        path.add(v, v + 1, 1.0f);
        path.add(v + 1, v, 1.0f);
    }
    const std::vector<index_t> sources = {2, 12};
    const auto r = personalized_pagerank(make_accelerator(true, 1), path,
                                         sources, {});
    for (std::size_t b = 0; b < sources.size(); ++b) {
        for (index_t v = 0; v < n; ++v) {
            if (v != sources[b]) {
                EXPECT_GT(r.rank[b][sources[b]], r.rank[b][v])
                    << "source " << sources[b] << " vertex " << v;
            }
        }
    }
}

TEST(BatchApps, PersonalizedPageRankRejectsBadInput)
{
    const CooMatrix g = sparse::make_diagonal(8);
    const core::Accelerator acc = make_accelerator(true, 1);
    EXPECT_THROW(
        personalized_pagerank(acc, g, std::vector<index_t>{}, {}),
        std::invalid_argument);
    EXPECT_THROW(
        personalized_pagerank(acc, g, std::vector<index_t>{99}, {}),
        std::invalid_argument);
}

// --- multi-source BFS: batched accelerator vs CPU reference ---

TEST(BatchApps, MultiSourceBfsMatchesCpuReference)
{
    const CooMatrix g = sparse::make_rmat(8, 6, 21);
    const CooMatrix rev = g.transposed();
    const sparse::CsrMatrix rev_csr = sparse::to_csr(rev);
    const std::vector<index_t> sources = {0, 3, 100, 0};  // duplicate ok

    for (const bool cache : {true, false}) {
        for (const unsigned threads : {1u, 2u, 8u, 0u}) {
            const auto levels = multi_source_bfs(
                make_accelerator(cache, threads), rev, sources);
            ASSERT_EQ(levels.size(), sources.size());
            for (std::size_t b = 0; b < sources.size(); ++b) {
                const auto expect = bfs_levels(rev_csr, sources[b]);
                EXPECT_EQ(levels[b], expect)
                    << "cache=" << cache << " threads=" << threads
                    << " source " << sources[b];
            }
        }
    }
}

TEST(BatchApps, MultiSourceBfsBatchWidths)
{
    // Batch widths 1/3/8 over the same graph must each match the
    // single-source reference (the blocked accumulator's width never leaks
    // into results).
    const CooMatrix g = sparse::make_clustered(512, 4'000, 8, 32, 0.3, 43);
    const CooMatrix rev = g.transposed();
    const sparse::CsrMatrix rev_csr = sparse::to_csr(rev);
    const core::Accelerator acc = make_accelerator(true, 1);

    for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
        std::vector<index_t> sources;
        for (std::size_t b = 0; b < width; ++b)
            sources.push_back(static_cast<index_t>((b * 97) % g.rows()));
        const auto levels = multi_source_bfs(acc, rev, sources);
        for (std::size_t b = 0; b < width; ++b)
            EXPECT_EQ(levels[b], bfs_levels(rev_csr, sources[b]))
                << "width " << width << " source " << sources[b];
    }
}

TEST(BatchApps, MultiSourceBfsWeightedEdgesActAsUnit)
{
    // Edge weights are forced to 1 inside multi_source_bfs; a weighted
    // adjacency must give the same levels as its pattern.
    CooMatrix g(6, 6);
    g.add(0, 1, 0.25f);
    g.add(1, 2, 7.5f);
    g.add(0, 3, 100.0f);
    g.add(3, 4, 0.125f);
    g.add(4, 5, 3.0f);
    const CooMatrix rev = g.transposed();
    const auto levels = multi_source_bfs(make_accelerator(true, 1), rev,
                                         std::vector<index_t>{0});
    EXPECT_EQ(levels[0], (std::vector<int>{0, 1, 2, 1, 2, 3}));
}

TEST(BatchApps, MultiSourceBfsRejectsBadInput)
{
    const core::Accelerator acc = make_accelerator(true, 1);
    const CooMatrix g = sparse::make_diagonal(8);
    EXPECT_THROW(multi_source_bfs(acc, g, std::vector<index_t>{}),
                 std::invalid_argument);
    EXPECT_THROW(multi_source_bfs(acc, g, std::vector<index_t>{8}),
                 std::invalid_argument);
    EXPECT_THROW(multi_source_bfs(acc, CooMatrix(2, 3),
                                  std::vector<index_t>{0}),
                 std::invalid_argument);
}

} // namespace
} // namespace serpens::apps
