// Unit tests for the 64-bit element encoding and the row -> PE mapping.
#include <gtest/gtest.h>

#include <set>

#include "encode/element.h"
#include "encode/mapping.h"

namespace serpens::encode {
namespace {

TEST(EncodedElement, DefaultIsPadding)
{
    const EncodedElement e;
    EXPECT_FALSE(e.valid());
    EXPECT_EQ(e.bits(), 0u);
}

TEST(EncodedElement, PackUnpackRoundTrip)
{
    const EncodedElement e = EncodedElement::make(1234, true, 567, -3.25f);
    EXPECT_TRUE(e.valid());
    EXPECT_EQ(e.pair_addr(), 1234u);
    EXPECT_TRUE(e.half());
    EXPECT_EQ(e.col_off(), 567u);
    EXPECT_FLOAT_EQ(e.value(), -3.25f);
}

TEST(EncodedElement, ExtremeFieldValues)
{
    const EncodedElement e =
        EncodedElement::make(kMaxPairAddr - 1, false, kMaxWindow - 1, 1e30f);
    EXPECT_EQ(e.pair_addr(), kMaxPairAddr - 1);
    EXPECT_FALSE(e.half());
    EXPECT_EQ(e.col_off(), kMaxWindow - 1);
    EXPECT_FLOAT_EQ(e.value(), 1e30f);
}

TEST(EncodedElement, OverflowingAddrIsBug)
{
    EXPECT_THROW(EncodedElement::make(kMaxPairAddr, false, 0, 1.0f),
                 serpens::CheckError);
}

TEST(EncodedElement, OverflowingColOffIsBug)
{
    EXPECT_THROW(EncodedElement::make(0, false, kMaxWindow, 1.0f),
                 serpens::CheckError);
}

TEST(EncodedElement, BitsRoundTrip)
{
    const EncodedElement e = EncodedElement::make(77, true, 99, 0.5f);
    const EncodedElement back = EncodedElement::from_bits(e.bits());
    EXPECT_EQ(e, back);
}

TEST(EncodedElement, ValueBitsExactForNegativeZero)
{
    const EncodedElement e = EncodedElement::make(0, false, 0, -0.0f);
    EXPECT_EQ(serpens::float_bits(e.value()), 0x80000000u);
}

TEST(EncodedElement, FieldsDoNotAlias)
{
    // Setting every field to all-ones patterns must not bleed across.
    const EncodedElement e =
        EncodedElement::make((1u << kAddrBits) - 1, true, (1u << kColOffBits) - 1,
                             serpens::bits_float(0xFFFFFFFFu));
    EXPECT_EQ(e.pair_addr(), (1u << kAddrBits) - 1);
    EXPECT_EQ(e.col_off(), (1u << kColOffBits) - 1);
    EXPECT_TRUE(e.half());
    EXPECT_TRUE(e.valid());
}

// --- EncodeParams ---

TEST(EncodeParams, DefaultsMatchPaperTable1)
{
    const EncodeParams p;
    EXPECT_EQ(p.ha_channels, 16u);
    EXPECT_EQ(p.pes_per_channel, 8u);
    EXPECT_EQ(p.urams_per_pe, 3u);
    EXPECT_EQ(p.window, 8192u);
    EXPECT_EQ(p.total_pes(), 128u);
    EXPECT_NO_THROW(p.validate());
}

TEST(EncodeParams, RowCapacityEquation3)
{
    EncodeParams p;
    // 16 * HA * U * D = 16 * 16 * 3 * 4096
    EXPECT_EQ(p.row_capacity(), 16ull * 16 * 3 * 4096);
    p.ha_channels = 24;
    EXPECT_EQ(p.row_capacity(), 16ull * 24 * 3 * 4096);
}

TEST(EncodeParams, CoalescingDoublesCapacity)
{
    EncodeParams with;
    EncodeParams without;
    without.coalescing = false;
    EXPECT_EQ(with.row_capacity(), 2 * without.row_capacity());
}

TEST(EncodeParams, ValidationRejectsBadValues)
{
    EncodeParams p;
    p.ha_channels = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.pes_per_channel = 4;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.window = 20000;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.window = 100;  // not a multiple of 16
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.dsp_latency = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.urams_per_pe = 16;  // 16 * 4096 > 32768 address field
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

// --- RowMapping ---

TEST(RowMapping, CoalescedPairsShareAddress)
{
    EncodeParams p;
    const RowMapping m(p);
    const PeLocation even = m.locate(100);
    const PeLocation odd = m.locate(101);
    EXPECT_EQ(even.pe, odd.pe);
    EXPECT_EQ(even.addr, odd.addr);
    EXPECT_FALSE(even.half);
    EXPECT_TRUE(odd.half);
}

TEST(RowMapping, RowDirectDoesNotPair)
{
    EncodeParams p;
    p.coalescing = false;
    const RowMapping m(p);
    const PeLocation a = m.locate(100);
    const PeLocation b = m.locate(101);
    EXPECT_NE(a.pe, b.pe);
    EXPECT_FALSE(a.half);
    EXPECT_FALSE(b.half);
}

TEST(RowMapping, RoundTripCoalesced)
{
    EncodeParams p;
    const RowMapping m(p);
    for (sparse::index_t row = 0; row < 10'000; row += 37)
        EXPECT_EQ(m.row_of(m.locate(row)), row);
}

TEST(RowMapping, RoundTripRowDirect)
{
    EncodeParams p;
    p.coalescing = false;
    const RowMapping m(p);
    for (sparse::index_t row = 0; row < 10'000; row += 41)
        EXPECT_EQ(m.row_of(m.locate(row)), row);
}

TEST(RowMapping, LocationsAreDisjointAcrossRows)
{
    // No two distinct rows may share (pe, addr, half) — the hardware's
    // disjoint-URAM guarantee (paper §3.3).
    EncodeParams p;
    p.ha_channels = 2;  // 16 PEs, small space
    const RowMapping m(p);
    std::set<std::tuple<unsigned, std::uint32_t, bool>> seen;
    for (sparse::index_t row = 0; row < 50'000; ++row) {
        const PeLocation loc = m.locate(row);
        const bool fresh = seen.insert({loc.pe, loc.addr, loc.half}).second;
        ASSERT_TRUE(fresh) << "row " << row << " collides";
    }
}

TEST(RowMapping, ConsecutivePairsSpreadOverPes)
{
    // Pair k goes to PE k mod P: 2*P consecutive rows touch all P PEs.
    EncodeParams p;
    const RowMapping m(p);
    std::set<unsigned> pes;
    for (sparse::index_t row = 0; row < 2 * 128; ++row)
        pes.insert(m.locate(row).pe);
    EXPECT_EQ(pes.size(), 128u);
}

} // namespace
} // namespace serpens::encode
