// Lockdown of the decode-once / batched execution engines.
//
// The packed simulate_spmv walk is the differential reference (the same
// discipline as schedule_reference and read_matrix_market_reference). The
// contract pinned here: for every structure, thread count, and batch
// width, the DecodedImage engines produce *bit-identical* y and CycleStats
// — the decoded SoA expansion is the same machine, minus the per-walk bit
// unpacking.
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "encode/image.h"
#include "sim/decoded_image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens {
namespace {

void expect_stats_equal(const sim::CycleStats& a, const sim::CycleStats& b,
                        const std::string& label)
{
    EXPECT_EQ(a.compute_cycles, b.compute_cycles) << label;
    EXPECT_EQ(a.x_load_cycles, b.x_load_cycles) << label;
    EXPECT_EQ(a.y_phase_cycles, b.y_phase_cycles) << label;
    EXPECT_EQ(a.fill_cycles, b.fill_cycles) << label;
    EXPECT_EQ(a.total_slots, b.total_slots) << label;
    EXPECT_EQ(a.padding_slots, b.padding_slots) << label;
    EXPECT_EQ(a.traffic.bytes_read, b.traffic.bytes_read) << label;
    EXPECT_EQ(a.traffic.bytes_written, b.traffic.bytes_written) << label;
}

void expect_y_equal(const std::vector<float>& a, const std::vector<float>& b,
                    const std::string& label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(float_bits(a[i]), float_bits(b[i]))
            << label << " row " << i;
}

struct Vectors {
    std::vector<float> x, y;
};

Vectors random_vectors(const sparse::CooMatrix& m, std::uint64_t seed)
{
    Rng rng(seed);
    Vectors v;
    v.x.resize(m.cols());
    v.y.resize(m.rows());
    for (float& f : v.x)
        f = rng.next_float(-1.0f, 1.0f);
    for (float& f : v.y)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

// --- DecodedImage structure ---

TEST(DecodedSim, DecodeElidesPaddingAndKeepsExtents)
{
    const auto m = sparse::make_uniform_random(4096, 8192, 120'000, 17);
    encode::EncodeParams params;
    params.window = 1024;
    const auto img = encode::encode_matrix(m, params);
    const auto d = sim::DecodedImage::decode(img);

    EXPECT_EQ(d.rows(), img.rows());
    EXPECT_EQ(d.cols(), img.cols());
    EXPECT_EQ(d.num_segments(), img.num_segments());
    EXPECT_EQ(d.channels(), img.channels());

    // Padding slots are gone from the SoA arrays but still accounted.
    EXPECT_EQ(d.nnz(), img.stats().nnz);
    EXPECT_EQ(d.total_slots(), img.stats().total_slots);
    EXPECT_EQ(d.padding_slots(), img.stats().padding_slots);
    EXPECT_EQ(d.total_lines(), img.stats().total_lines);

    std::uint64_t elems = 0;
    for (unsigned ch = 0; ch < d.channels(); ++ch) {
        const auto& c = d.channel(ch);
        ASSERT_EQ(c.seg_begin.size(), d.num_segments() + 1u);
        ASSERT_EQ(c.seg_begin.front(), 0u);
        ASSERT_EQ(c.seg_begin.back(), c.value.size());
        ASSERT_EQ(c.acc_off.size(), c.value.size());
        ASSERT_EQ(c.col.size(), c.value.size());
        elems += c.value.size();
        // Per-segment line counts match the packed image's.
        for (unsigned s = 0; s < d.num_segments(); ++s)
            EXPECT_EQ(c.seg_lines[s], img.segment_lines(ch, s));
    }
    EXPECT_EQ(elems, d.nnz());

    // used_addrs covers the rows and no more than the architecture.
    const encode::RowMapping mapping(params);
    EXPECT_EQ(d.used_addrs(), mapping.locate(img.rows() - 1).addr + 1);
    EXPECT_LE(d.used_addrs(), params.addrs_per_pe());
}

TEST(DecodedSim, DecodeThreadCountsProduceIdenticalArrays)
{
    const auto m = sparse::make_clustered(2048, 60'000, 8, 64, 0.3, 19);
    encode::EncodeParams params;
    params.window = 512;
    const auto img = encode::encode_matrix(m, params);
    const auto serial = sim::DecodedImage::decode(img, {.threads = 1});
    for (const unsigned threads : {2u, 8u, 0u}) {
        const auto parallel =
            sim::DecodedImage::decode(img, {.threads = threads});
        for (unsigned ch = 0; ch < serial.channels(); ++ch) {
            EXPECT_EQ(parallel.channel(ch).acc_off, serial.channel(ch).acc_off);
            EXPECT_EQ(parallel.channel(ch).col, serial.channel(ch).col);
            ASSERT_EQ(parallel.channel(ch).value.size(),
                      serial.channel(ch).value.size());
            for (std::size_t i = 0; i < serial.channel(ch).value.size(); ++i)
                EXPECT_EQ(float_bits(parallel.channel(ch).value[i]),
                          float_bits(serial.channel(ch).value[i]));
        }
    }
}

// --- decoded engine vs packed reference ---

TEST(DecodedSim, BitIdenticalAcrossThreadCounts)
{
    const auto m = sparse::make_uniform_random(4096, 8192, 150'000, 41);
    encode::EncodeParams params;
    params.window = 1024;
    const auto img = encode::encode_matrix(m, params);
    const auto d = sim::DecodedImage::decode(img);
    const Vectors v = random_vectors(m, 3);

    const auto packed = sim::simulate_spmv(img, v.x, v.y, 1.25f, -0.75f, {});
    for (const unsigned threads : {1u, 2u, 8u, 0u}) {
        sim::SimOptions options;
        options.threads = threads;
        const auto decoded =
            sim::simulate_spmv_decoded(d, v.x, v.y, 1.25f, -0.75f, options);
        const std::string label = "threads=" + std::to_string(threads);
        expect_y_equal(decoded.y, packed.y, label);
        expect_stats_equal(decoded.cycles, packed.cycles, label);
    }
}

TEST(DecodedSim, BitIdenticalAcrossStructures)
{
    std::vector<sparse::CooMatrix> matrices;
    matrices.push_back(sparse::make_banded(2048, 9, 51));
    matrices.push_back(sparse::make_clustered(2048, 50'000, 8, 64, 0.3, 53));
    matrices.push_back(sparse::make_dense_rows(1024, 4096, 6, 512, 57));
    for (const auto& m : matrices) {
        encode::EncodeParams params;
        params.window = 512;
        const auto img = encode::encode_matrix(m, params);
        const auto d = sim::DecodedImage::decode(img);
        std::vector<float> x(m.cols(), 0.5f), y(m.rows(), 1.0f);
        const auto packed = sim::simulate_spmv(img, x, y, 2.0f, 0.5f, {});
        const auto decoded = sim::simulate_spmv_decoded(d, x, y, 2.0f, 0.5f, {});
        expect_y_equal(decoded.y, packed.y, "structure case");
        expect_stats_equal(decoded.cycles, packed.cycles, "structure case");
    }
}

TEST(DecodedSim, DoubleBufferAndFillOptionsMatch)
{
    // The decoded engine recomputes phase stats from preserved extents;
    // every SimOptions knob that shapes them must agree with the packed
    // walk, including the double-buffer overlap arithmetic.
    const auto m = sparse::make_uniform_random(2048, 16384, 80'000, 23);
    encode::EncodeParams params;
    params.window = 2048;  // 8 segments
    const auto img = encode::encode_matrix(m, params);
    const auto d = sim::DecodedImage::decode(img);
    const Vectors v = random_vectors(m, 29);

    for (const bool double_buffer : {false, true}) {
        sim::SimOptions options;
        options.double_buffer_x = double_buffer;
        options.fill_per_segment = 7;
        options.fill_y_phase = 13;
        const auto packed =
            sim::simulate_spmv(img, v.x, v.y, 1.0f, 1.0f, options);
        const auto decoded =
            sim::simulate_spmv_decoded(d, v.x, v.y, 1.0f, 1.0f, options);
        const std::string label =
            double_buffer ? "double-buffer" : "single-buffer";
        expect_y_equal(decoded.y, packed.y, label);
        expect_stats_equal(decoded.cycles, packed.cycles, label);
    }
}

TEST(DecodedSim, SingleChannelConfig)
{
    const auto m = sparse::make_banded(512, 5, 71);
    encode::EncodeParams params;
    params.ha_channels = 1;
    params.window = 256;
    const auto img = encode::encode_matrix(m, params);
    const auto d = sim::DecodedImage::decode(img);
    std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    const auto packed = sim::simulate_spmv(img, x, y, 1.0f, 0.0f, {});
    const auto decoded = sim::simulate_spmv_decoded(d, x, y, 1.0f, 0.0f, {});
    expect_y_equal(decoded.y, packed.y, "single channel");
    expect_stats_equal(decoded.cycles, packed.cycles, "single channel");
}

TEST(DecodedSim, NoCoalescingConfig)
{
    const auto m = sparse::make_uniform_random(1024, 1024, 30'000, 83);
    encode::EncodeParams params;
    params.coalescing = false;
    params.window = 512;
    const auto img = encode::encode_matrix(m, params);
    const auto d = sim::DecodedImage::decode(img);
    const Vectors v = random_vectors(m, 31);
    const auto packed = sim::simulate_spmv(img, v.x, v.y, 0.5f, 2.0f, {});
    const auto decoded = sim::simulate_spmv_decoded(d, v.x, v.y, 0.5f, 2.0f, {});
    expect_y_equal(decoded.y, packed.y, "no coalescing");
    expect_stats_equal(decoded.cycles, packed.cycles, "no coalescing");
}

// --- batched engine ---

TEST(DecodedSim, BatchColumnsBitIdenticalToPackedRuns)
{
    const auto m = sparse::make_uniform_random(4096, 8192, 120'000, 59);
    encode::EncodeParams params;
    params.window = 1024;
    const auto img = encode::encode_matrix(m, params);
    const auto d = sim::DecodedImage::decode(img);

    for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}, std::size_t{11}}) {
        std::vector<std::vector<float>> xs, ys;
        for (std::size_t b = 0; b < batch; ++b) {
            const Vectors v = random_vectors(m, 100 + b);
            xs.push_back(v.x);
            ys.push_back(v.y);
        }
        for (const unsigned threads : {1u, 2u, 8u, 0u}) {
            sim::SimOptions options;
            options.threads = threads;
            const auto batched =
                sim::simulate_spmv_batch(d, xs, ys, 1.5f, -0.25f, options);
            ASSERT_EQ(batched.y.size(), batch);
            for (std::size_t b = 0; b < batch; ++b) {
                const auto packed =
                    sim::simulate_spmv(img, xs[b], ys[b], 1.5f, -0.25f, {});
                const std::string label = "batch=" + std::to_string(batch) +
                                          " threads=" +
                                          std::to_string(threads) + " col " +
                                          std::to_string(b);
                expect_y_equal(batched.y[b], packed.y, label);
                expect_stats_equal(batched.cycles, packed.cycles, label);
            }
        }
    }
}

TEST(DecodedSim, BatchRejectsMalformedInput)
{
    const auto m = sparse::make_banded(256, 3, 5);
    const auto img = encode::encode_matrix(m, {});
    const auto d = sim::DecodedImage::decode(img);
    const std::vector<std::vector<float>> good_x(2,
                                                 std::vector<float>(m.cols()));
    const std::vector<std::vector<float>> good_y(2,
                                                 std::vector<float>(m.rows()));
    EXPECT_THROW(sim::simulate_spmv_batch(d, {}, {}, 1.0f, 0.0f, {}),
                 std::invalid_argument);
    const std::vector<std::vector<float>> one_y(1,
                                                std::vector<float>(m.rows()));
    EXPECT_THROW(sim::simulate_spmv_batch(d, good_x, one_y, 1.0f, 0.0f, {}),
                 std::invalid_argument);
    const std::vector<std::vector<float>> short_x(
        2, std::vector<float>(m.cols() - 1));
    EXPECT_THROW(sim::simulate_spmv_batch(d, short_x, good_y, 1.0f, 0.0f, {}),
                 std::invalid_argument);
}

// --- through the Accelerator facade ---

TEST(DecodedSim, AcceleratorCacheOnOffIdentical)
{
    const auto m = sparse::make_uniform_random(3000, 3000, 90'000, 61);
    const Vectors v = random_vectors(m, 8);

    core::SerpensConfig cached_cfg = core::SerpensConfig::a16();
    cached_cfg.decode_cache = true;
    core::SerpensConfig packed_cfg = core::SerpensConfig::a16();
    packed_cfg.decode_cache = false;

    const core::Accelerator cached_acc(cached_cfg);
    const core::Accelerator packed_acc(packed_cfg);
    const auto prepared_cached = cached_acc.prepare(m);
    const auto prepared_packed = packed_acc.prepare(m);

    EXPECT_FALSE(prepared_cached.decode_cached());
    const auto ra = cached_acc.run(prepared_cached, v.x, v.y, 0.5f, 2.0f);
    EXPECT_TRUE(prepared_cached.decode_cached());
    const auto rb = packed_acc.run(prepared_packed, v.x, v.y, 0.5f, 2.0f);
    EXPECT_FALSE(prepared_packed.decode_cached());

    expect_y_equal(ra.y, rb.y, "cache on/off");
    expect_stats_equal(ra.cycles, rb.cycles, "cache on/off");
    EXPECT_DOUBLE_EQ(ra.time_ms, rb.time_ms);
    EXPECT_DOUBLE_EQ(ra.metrics.gflops, rb.metrics.gflops);

    // Second run reuses the cache and stays identical.
    const auto rc = cached_acc.run(prepared_cached, v.x, v.y, 0.5f, 2.0f);
    expect_y_equal(rc.y, rb.y, "cached second run");
}

TEST(DecodedSim, AcceleratorRunBatchMatchesRun)
{
    const auto m = sparse::make_clustered(2000, 40'000, 8, 64, 0.3, 67);
    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(m);

    std::vector<std::vector<float>> xs, ys;
    for (std::size_t b = 0; b < 5; ++b) {
        const Vectors v = random_vectors(m, 200 + b);
        xs.push_back(v.x);
        ys.push_back(v.y);
    }
    const auto batch = acc.run_batch(prepared, xs, ys, 1.1f, 0.9f);
    ASSERT_EQ(batch.size(), xs.size());
    for (std::size_t b = 0; b < xs.size(); ++b) {
        const auto single = acc.run(prepared, xs[b], ys[b], 1.1f, 0.9f);
        const std::string label = "column " + std::to_string(b);
        expect_y_equal(batch[b].y, single.y, label);
        expect_stats_equal(batch[b].cycles, single.cycles, label);
        EXPECT_DOUBLE_EQ(batch[b].time_ms, single.time_ms) << label;
        EXPECT_DOUBLE_EQ(batch[b].metrics.gflops, single.metrics.gflops)
            << label;
    }
}

TEST(DecodedSim, RunBatchHonorsDecodeCacheKnob)
{
    // With the cache disabled, run_batch must fall back to per-column
    // packed reference runs — and still match the batched engine bit for
    // bit (the differential contract under --batch --no-decode-cache).
    const auto m = sparse::make_uniform_random(1500, 1500, 40'000, 71);
    core::SerpensConfig packed_cfg = core::SerpensConfig::a16();
    packed_cfg.decode_cache = false;
    const core::Accelerator packed_acc(packed_cfg);
    const core::Accelerator cached_acc(core::SerpensConfig::a16());
    const auto prepared_packed = packed_acc.prepare(m);
    const auto prepared_cached = cached_acc.prepare(m);

    std::vector<std::vector<float>> xs, ys;
    for (std::size_t b = 0; b < 3; ++b) {
        const Vectors v = random_vectors(m, 300 + b);
        xs.push_back(v.x);
        ys.push_back(v.y);
    }
    const auto packed = packed_acc.run_batch(prepared_packed, xs, ys, 2.0f, -1.0f);
    EXPECT_FALSE(prepared_packed.decode_cached());
    const auto cached = cached_acc.run_batch(prepared_cached, xs, ys, 2.0f, -1.0f);
    ASSERT_EQ(packed.size(), cached.size());
    for (std::size_t b = 0; b < packed.size(); ++b) {
        const std::string label = "column " + std::to_string(b);
        expect_y_equal(packed[b].y, cached[b].y, label);
        expect_stats_equal(packed[b].cycles, cached[b].cycles, label);
    }
}

TEST(DecodedSim, RunProgramUsesDecodedEngine)
{
    // The instruction path funnels into run(); it must hit the cache too.
    const auto m = sparse::make_banded(1024, 7, 73);
    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(m);
    const Vectors v = random_vectors(m, 77);
    const auto program = acc.compile_program(prepared, 1.5f, 0.5f);
    const auto r = acc.run_program(prepared, program, v.x, v.y);
    EXPECT_TRUE(prepared.decode_cached());
    const auto expect = acc.run(prepared, v.x, v.y, 1.5f, 0.5f);
    expect_y_equal(r.y, expect.y, "program path");
}

} // namespace
} // namespace serpens
