// Observability, part 1 (PR 10): the injectable clock and the trace
// recorder.
//
// Contracts pinned here:
//   - obs::FakeClock only moves when told, and sleep_ms advances it, so
//     components driven through the clock are instant and reproducible.
//   - The recorder's per-thread buffers are bounded (overflow counted in
//     dropped()), the disabled-mode probe is a null atomic load, and the
//     export order is deterministic: the same fake-clock load produces
//     byte-identical Chrome trace JSON twice.
//   - A trace id minted by the client rides SpmvRequest across the wire
//     and stitches the daemon's serve.* spans to the client's trace; an
//     id of 0 keeps the old frame layout (old-peer interop).
//   - validate_trace_json accepts the recorder's own output and rejects
//     structural corruption with a diagnostic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/client.h"
#include "net/daemon.h"
#include "net/protocol.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace serpens {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (float& f : v)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

TEST(ObsClock, FakeClockMovesOnlyWhenTold)
{
    obs::FakeClock clk;
    EXPECT_EQ(clk.now_ns(), 0u);
    clk.advance_ms(1.5);
    EXPECT_EQ(clk.now_ns(), 1'500'000u);
    clk.sleep_ms(2.0);  // a fake sleep advances instead of blocking
    EXPECT_EQ(clk.now_ns(), 3'500'000u);
    clk.sleep_ms(-1.0);  // never rewinds
    EXPECT_EQ(clk.now_ns(), 3'500'000u);
    EXPECT_DOUBLE_EQ(obs::Clock::ms_between(0, clk.now_ns()), 3.5);
    EXPECT_DOUBLE_EQ(obs::Clock::ms_between(clk.now_ns(), 0), -3.5);

    obs::FakeClock offset(7'000);
    EXPECT_EQ(offset.now_ns(), 7'000u);
}

TEST(ObsClock, RealClockIsMonotonic)
{
    obs::Clock& clk = obs::real_clock();
    const std::uint64_t a = clk.now_ns();
    const std::uint64_t b = clk.now_ns();
    EXPECT_LE(a, b);
}

TEST(ObsTrace, RecorderSortsSpansDeterministically)
{
    obs::FakeClock clk;
    obs::TraceRecorder rec(&clk);
    // Record out of chronological order; snapshot must sort by start.
    rec.span("late", "test", 1, 5'000, 6'000);
    rec.span("early", "test", 2, 1'000, 4'000, "width", 3);
    clk.advance_ms(0.002);
    rec.instant("point", "test", 3);

    const std::vector<obs::Span> spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_STREQ(spans[0].name, "early");
    EXPECT_EQ(spans[0].dur_ns, 3'000u);
    EXPECT_STREQ(spans[0].arg_name, "width");
    EXPECT_EQ(spans[0].arg, 3u);
    EXPECT_STREQ(spans[1].name, "point");
    EXPECT_TRUE(spans[1].instant);
    EXPECT_EQ(spans[1].start_ns, 2'000u);
    EXPECT_STREQ(spans[2].name, "late");
    EXPECT_EQ(rec.recorded(), 3u);
    EXPECT_EQ(rec.dropped(), 0u);

    std::string error;
    EXPECT_TRUE(obs::validate_trace_json(rec.to_chrome_json(), &error))
        << error;
}

TEST(ObsTrace, BoundedBufferCountsDrops)
{
    obs::FakeClock clk;
    obs::TraceRecorder rec(&clk, /*per_thread_capacity=*/4);
    for (int i = 0; i < 10; ++i)
        rec.span("s", "test", 0, 0, 1);
    EXPECT_EQ(rec.recorded(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    EXPECT_EQ(rec.snapshot().size(), 4u);
}

// The disabled-mode contract: no recorder installed means the probe is a
// single lock-free atomic load returning null, and traffic served in that
// state leaves no spans behind for a recorder installed later.
TEST(ObsTrace, NoOpRecorderLeavesNoTrace)
{
    static_assert(std::atomic<obs::TraceRecorder*>::is_always_lock_free,
                  "the tracing probe must stay a bare atomic load");
    ASSERT_EQ(obs::trace_recorder(), nullptr);

    const auto m = sparse::make_uniform_random(600, 600, 9'000, 11);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);
    const std::vector<float> x = random_vec(m.cols(), 1);
    const std::vector<float> y = random_vec(m.rows(), 2);
    server.spmv("m", x, y);  // untraced traffic
    server.drain();

    obs::TraceRecorder rec;
    obs::set_trace_recorder(&rec);
    server.spmv("m", x, y, 1.0f, 0.0f, 0.0, rec.next_trace_id());
    server.drain();
    obs::set_trace_recorder(nullptr);

    // Only the traced request's round shows up: exactly one serve.queue
    // span, even though two requests were served.
    std::size_t queue_spans = 0;
    for (const obs::Span& s : rec.snapshot())
        if (std::string(s.name) == "serve.queue")
            ++queue_spans;
    EXPECT_EQ(queue_spans, 1u);
}

// One paused burst under a fake clock: the span tree is exact, and the
// queue/device/extract durations add up to the request's end-to-end time
// with no remainder (integer nanoseconds, no wall clock involved).
TEST(ObsTrace, FakeClockProducesExactSpanTree)
{
    obs::FakeClock clk;
    obs::TraceRecorder rec(&clk);
    obs::set_trace_recorder(&rec);
    {
        const auto m = sparse::make_uniform_random(600, 600, 9'000, 13);
        core::SerpensConfig cfg = core::SerpensConfig::a16();
        cfg.max_batch = 8;
        serve::Server server(cfg, &clk);
        server.registry().admit("m", m);
        const std::vector<float> x = random_vec(m.cols(), 3);
        const std::vector<float> y = random_vec(m.rows(), 4);

        server.pause();
        auto f1 = server.submit("m", x, y, 1.0f, 0.0f, 0.0, 101);
        auto f2 = server.submit("m", x, y, 1.0f, 0.0f, 0.0, 102);
        clk.advance_ms(2.0);  // the only queue time that can exist
        server.resume();
        const serve::SpmvResult r1 = f1.get();
        const serve::SpmvResult r2 = f2.get();
        server.drain();
        EXPECT_DOUBLE_EQ(r1.queue_ms, 2.0);
        EXPECT_DOUBLE_EQ(r2.queue_ms, 2.0);
    }
    obs::set_trace_recorder(nullptr);

    const std::vector<obs::Span> spans = rec.snapshot();
    const obs::Span *queue1 = nullptr, *batch = nullptr, *device = nullptr,
                    *extract = nullptr;
    for (const obs::Span& s : spans) {
        const std::string name = s.name;
        if (name == "serve.queue" && s.trace_id == 101)
            queue1 = &s;
        else if (name == "serve.batch")
            batch = &s;
        else if (name == "serve.device")
            device = &s;
        else if (name == "serve.extract")
            extract = &s;
    }
    ASSERT_NE(queue1, nullptr);
    ASSERT_NE(batch, nullptr);
    ASSERT_NE(device, nullptr);
    ASSERT_NE(extract, nullptr);

    // Both members coalesced into one width-2 batch.
    EXPECT_EQ(batch->arg_name != nullptr ? std::string(batch->arg_name)
                                         : std::string(),
              "width");
    EXPECT_EQ(batch->arg, 2u);

    // The tree is gapless: queue ends where the batch starts, the device
    // pass and extraction tile the batch, and queue + batch durations sum
    // to the request's end-to-end time exactly.
    EXPECT_EQ(queue1->start_ns, 0u);
    EXPECT_EQ(queue1->dur_ns, 2'000'000u);
    EXPECT_EQ(queue1->start_ns + queue1->dur_ns, batch->start_ns);
    EXPECT_GE(device->start_ns, batch->start_ns);
    EXPECT_EQ(device->start_ns + device->dur_ns, extract->start_ns);
    EXPECT_EQ(extract->start_ns + extract->dur_ns,
              batch->start_ns + batch->dur_ns);
    const std::uint64_t e2e =
        batch->start_ns + batch->dur_ns - queue1->start_ns;
    EXPECT_EQ(queue1->dur_ns + (device->start_ns - batch->start_ns) +
                  device->dur_ns + extract->dur_ns,
              e2e);
}

// The determinism headline: the same seeded load under the same fake
// clock exports byte-identical JSON, twice.
TEST(ObsTrace, ByteIdenticalReplay)
{
    const auto run_once = []() -> std::string {
        obs::FakeClock clk;
        obs::TraceRecorder rec(&clk);
        obs::set_trace_recorder(&rec);
        {
            const auto m = sparse::make_uniform_random(500, 500, 7'000, 17);
            core::SerpensConfig cfg = core::SerpensConfig::a16();
            cfg.max_batch = 4;
            serve::Server server(cfg, &clk);
            server.registry().admit("m", m);
            const std::vector<float> x = random_vec(m.cols(), 5);
            const std::vector<float> y = random_vec(m.rows(), 6);
            for (int burst = 0; burst < 3; ++burst) {
                server.pause();
                auto f1 =
                    server.submit("m", x, y, 1.0f, 0.0f, 0.0,
                                  static_cast<std::uint64_t>(10 + burst));
                auto f2 =
                    server.submit("m", x, y, 1.0f, 0.0f, 0.0,
                                  static_cast<std::uint64_t>(20 + burst));
                clk.advance_ms(1.0 + burst);
                server.resume();
                f1.get();
                f2.get();
                server.drain();
            }
        }
        obs::set_trace_recorder(nullptr);
        return rec.to_chrome_json();
    };

    const std::string first = run_once();
    const std::string second = run_once();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    std::string error;
    EXPECT_TRUE(obs::validate_trace_json(first, &error)) << error;
}

TEST(ObsTrace, WireCarriesNonzeroTraceIdOnly)
{
    net::SpmvRequest req;
    req.name = "m";
    req.x = {1.0f, 2.0f};
    req.y = {3.0f};
    req.alpha = 1.0f;
    req.beta = 0.5f;
    req.deadline_ms = 12.0;

    // trace_id 0: the pre-tracing frame layout, byte for byte.
    const std::vector<std::uint8_t> old_frame = net::encode_spmv(req);
    req.trace_id = 0xDEADBEEFCAFEull;
    const std::vector<std::uint8_t> new_frame = net::encode_spmv(req);
    EXPECT_EQ(new_frame.size(), old_frame.size() + sizeof(std::uint64_t));

    {
        net::WireReader r(old_frame);
        ASSERT_EQ(net::decode_request_type(r), net::RequestType::kSpmv);
        const net::SpmvRequest back = net::decode_spmv(r);
        EXPECT_EQ(back.trace_id, 0u);  // old peer: the field is absent
        EXPECT_EQ(back.name, "m");
        EXPECT_DOUBLE_EQ(back.deadline_ms, 12.0);
    }
    {
        net::WireReader r(new_frame);
        ASSERT_EQ(net::decode_request_type(r), net::RequestType::kSpmv);
        const net::SpmvRequest back = net::decode_spmv(r);
        EXPECT_EQ(back.trace_id, 0xDEADBEEFCAFEull);
        EXPECT_EQ(back.y.size(), 1u);
    }
}

// End-to-end stitching: the client mints an id, the wire carries it, and
// the daemon's spans come back under the same id.
TEST(ObsTrace, DaemonStitchesClientTraceId)
{
    obs::TraceRecorder rec;
    obs::set_trace_recorder(&rec);
    std::uint64_t id = 0;
    {
        const auto m = sparse::make_uniform_random(500, 500, 7'000, 19);
        serve::Server server(core::SerpensConfig::a16());
        net::Daemon daemon(server, /*port=*/0);
        net::Client client("127.0.0.1", daemon.port(),
                           /*timeout_ms=*/30'000);
        client.admit("m", m);
        id = rec.next_trace_id();
        const net::SpmvReply reply =
            client.spmv("m", random_vec(m.cols(), 7), random_vec(m.rows(), 8),
                        1.0f, 0.0f, /*deadline_ms=*/0.0, id);
        EXPECT_EQ(reply.y.size(), m.rows());
        daemon.stop();
        server.drain();
    }
    obs::set_trace_recorder(nullptr);
    ASSERT_NE(id, 0u);

    bool saw_request = false, saw_queue = false, saw_device = false;
    for (const obs::Span& s : rec.snapshot()) {
        if (s.trace_id != id)
            continue;
        const std::string name = s.name;
        saw_request |= name == "daemon.request";
        saw_queue |= name == "serve.queue";
        saw_device |= name == "serve.device";
    }
    EXPECT_TRUE(saw_request);
    EXPECT_TRUE(saw_queue);
    EXPECT_TRUE(saw_device);

    std::string error;
    EXPECT_TRUE(obs::validate_trace_json(rec.to_chrome_json(), &error))
        << error;
}

TEST(ObsTrace, ValidatorRejectsCorruption)
{
    obs::FakeClock clk;
    obs::TraceRecorder rec(&clk);
    rec.span("serve.queue", "serve", 1, 1'000, 2'000, "width", 2);
    rec.instant("registry.admit", "registry", 0, "bytes", 64);
    const std::string good = rec.to_chrome_json();
    std::string error;
    ASSERT_TRUE(obs::validate_trace_json(good, &error)) << error;

    const auto expect_reject = [&](std::string doc, const char* what) {
        std::string why;
        EXPECT_FALSE(obs::validate_trace_json(doc, &why)) << what;
        EXPECT_FALSE(why.empty()) << what;
    };
    expect_reject("{}", "no traceEvents array");
    expect_reject("not json at all", "garbage");

    std::string no_name = good;
    const std::size_t name_at = no_name.find("\"name\"");
    ASSERT_NE(name_at, std::string::npos);
    no_name.replace(name_at, 6, "\"nope\"");
    expect_reject(no_name, "event without a name");

    std::string bad_phase = good;
    const std::size_t ph_at = bad_phase.find("\"ph\": \"X\"");
    ASSERT_NE(ph_at, std::string::npos);
    bad_phase.replace(ph_at, 9, "\"ph\": \"Q\"");
    expect_reject(bad_phase, "unknown phase");

    std::string bad_ts = good;
    const std::size_t ts_at = bad_ts.find("\"ts\":");
    ASSERT_NE(ts_at, std::string::npos);
    bad_ts.replace(ts_at, 5, "\"ts\": -1,\"xx\":");
    expect_reject(bad_ts, "negative timestamp");

    std::string truncated = good.substr(0, good.size() / 2);
    expect_reject(truncated, "truncated document");
}

} // namespace
} // namespace serpens
