// Tests for the 32-bit instruction channel: encoding, the device FSM's
// decoder, and cross-validation against the image.
#include <gtest/gtest.h>

#include "encode/instructions.h"
#include "sparse/generators.h"
#include "util/bitpack.h"

namespace serpens::encode {
namespace {

EncodeParams small_params()
{
    EncodeParams p;
    p.ha_channels = 2;
    p.window = 64;
    return p;
}

SerpensImage make_image()
{
    const auto m = sparse::make_uniform_random(128, 200, 1500, 4);
    return encode_matrix(m, small_params());
}

TEST(Instructions, WordPackingRoundTrip)
{
    const std::uint32_t w = make_instruction(Opcode::segment, 12345);
    EXPECT_EQ(opcode_of(w), Opcode::segment);
    EXPECT_EQ(payload_of(w), 12345u);
}

TEST(Instructions, PayloadMasked)
{
    const std::uint32_t w = make_instruction(Opcode::set_rows, 0xFFFFFFFF);
    EXPECT_EQ(payload_of(w), kPayloadMask);
    EXPECT_EQ(opcode_of(w), Opcode::set_rows);
}

TEST(Instructions, BuildDecodeValidate)
{
    const SerpensImage img = make_image();
    const auto words = build_instructions(img, 1.5f, -0.25f);
    const ControlProgram program =
        decode_instructions(words, img.params().ha_channels);

    EXPECT_EQ(program.rows, img.rows());
    EXPECT_EQ(program.cols, img.cols());
    EXPECT_FLOAT_EQ(program.alpha, 1.5f);
    EXPECT_FLOAT_EQ(program.beta, -0.25f);
    EXPECT_EQ(program.segments.size(), img.num_segments());
    EXPECT_NO_THROW(validate_program(program, img));
}

TEST(Instructions, StreamSizeIsCompact)
{
    // 6 setup words + per segment (1 + HA channels) + RUN + HALT.
    const SerpensImage img = make_image();
    const auto words = build_instructions(img, 1.0f, 0.0f);
    EXPECT_EQ(words.size(),
              6 + img.num_segments() * (1 + img.channels()) + 2);
}

TEST(Instructions, AlphaBetaAreBitExact)
{
    const SerpensImage img = make_image();
    const float alpha = serpens::bits_float(0x3F9E0651u);  // arbitrary bits
    const auto words = build_instructions(img, alpha, -0.0f);
    const auto program = decode_instructions(words, img.channels());
    EXPECT_EQ(serpens::float_bits(program.alpha), 0x3F9E0651u);
    EXPECT_EQ(serpens::float_bits(program.beta), 0x80000000u);
}

TEST(Instructions, RejectsMissingRun)
{
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::set_rows, 4),
        make_instruction(Opcode::set_cols, 4),
        make_instruction(Opcode::halt),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, RejectsMissingHalt)
{
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::set_rows, 4),
        make_instruction(Opcode::set_cols, 4),
        make_instruction(Opcode::run),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, RejectsWordsAfterHalt)
{
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::set_rows, 4),
        make_instruction(Opcode::set_cols, 4),
        make_instruction(Opcode::run),
        make_instruction(Opcode::halt),
        make_instruction(Opcode::run),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, RejectsStrayLines)
{
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::lines, 7),
        make_instruction(Opcode::run),
        make_instruction(Opcode::halt),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, RejectsTruncatedSegmentBlock)
{
    // SEGMENT must be followed by HA LINES words; give only one of two.
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::set_rows, 4),
        make_instruction(Opcode::set_cols, 4),
        make_instruction(Opcode::segment, 10),
        make_instruction(Opcode::lines, 10),
        make_instruction(Opcode::run),
        make_instruction(Opcode::halt),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, RejectsTruncatedScalar)
{
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::set_alpha),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, RejectsMissingDimensions)
{
    std::vector<std::uint32_t> words = {
        make_instruction(Opcode::run),
        make_instruction(Opcode::halt),
    };
    EXPECT_THROW(decode_instructions(words, 2), InstructionError);
}

TEST(Instructions, ValidateCatchesWrongImage)
{
    const SerpensImage img = make_image();
    const auto words = build_instructions(img, 1.0f, 0.0f);
    const auto program = decode_instructions(words, img.channels());

    // A different matrix's image must fail validation.
    const auto other_m = sparse::make_uniform_random(128, 200, 1500, 99);
    const SerpensImage other = encode_matrix(other_m, small_params());
    EXPECT_THROW(validate_program(program, other), InstructionError);
}

TEST(Instructions, ValidateCatchesTamperedDepth)
{
    const SerpensImage img = make_image();
    auto words = build_instructions(img, 1.0f, 0.0f);
    // Tamper with the first SEGMENT word's payload.
    for (auto& w : words) {
        if (opcode_of(w) == Opcode::segment) {
            w = make_instruction(Opcode::segment, payload_of(w) + 1);
            break;
        }
    }
    const auto program = decode_instructions(words, img.channels());
    EXPECT_THROW(validate_program(program, img), InstructionError);
}

} // namespace
} // namespace serpens::encode
