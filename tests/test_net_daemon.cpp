// Localhost daemon smoke: a real net::Daemon on an ephemeral port, driven
// through net::Client.
//
// The serving contract survives the wire: spmv responses are bit-identical
// to a direct Accelerator::run (y and all six CycleStats fields travel in
// the reply for exactly this comparison). Hostile transport input — an
// unknown request type, an oversized length prefix, a truncated frame —
// costs at most that one connection; the daemon keeps serving new ones.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/daemon.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens {
namespace {

constexpr int kClientTimeoutMs = 30'000;

struct Vectors {
    std::vector<float> x, y;
};

Vectors random_vectors(sparse::index_t cols, sparse::index_t rows,
                       std::uint64_t seed)
{
    Rng rng(seed);
    Vectors v;
    v.x.resize(cols);
    v.y.resize(rows);
    for (float& f : v.x)
        f = rng.next_float(-1.0f, 1.0f);
    for (float& f : v.y)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

// A server + daemon on an ephemeral port, torn down in order.
struct Fixture {
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    serve::Server server;
    net::Daemon daemon;

    Fixture() : server(cfg), daemon(server, /*port=*/0) {}
    ~Fixture() { daemon.stop(); }

    net::Client client() const
    {
        return net::Client("127.0.0.1", daemon.port(), kClientTimeoutMs);
    }
};

TEST(NetDaemon, SpmvOverTheWireIsBitIdenticalToDirectRun)
{
    const auto m = sparse::make_uniform_random(1500, 1500, 40'000, 77);
    Fixture fx;
    net::Client client = fx.client();
    client.ping();
    client.admit("web", m);

    const core::Accelerator acc(fx.cfg);
    const auto prepared = acc.prepare(m);

    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const Vectors v = random_vectors(m.cols(), m.rows(), seed);
        const net::SpmvReply reply =
            client.spmv("web", v.x, v.y, 1.25f, -0.5f);
        const core::RunResult direct =
            acc.run(prepared, v.x, v.y, 1.25f, -0.5f);
        ASSERT_EQ(reply.y.size(), direct.y.size());
        for (std::size_t i = 0; i < reply.y.size(); ++i)
            ASSERT_EQ(float_bits(reply.y[i]), float_bits(direct.y[i]))
                << "seed " << seed << " row " << i;
        EXPECT_EQ(reply.compute_cycles, direct.cycles.compute_cycles);
        EXPECT_EQ(reply.x_load_cycles, direct.cycles.x_load_cycles);
        EXPECT_EQ(reply.y_phase_cycles, direct.cycles.y_phase_cycles);
        EXPECT_EQ(reply.fill_cycles, direct.cycles.fill_cycles);
        EXPECT_EQ(reply.total_slots, direct.cycles.total_slots);
        EXPECT_EQ(reply.padding_slots, direct.cycles.padding_slots);
        EXPECT_DOUBLE_EQ(reply.time_ms, direct.time_ms);
        EXPECT_GE(reply.batch_width, 1u);
        EXPECT_GE(reply.service_ms, 0.0);
    }
}

TEST(NetDaemon, StatsEvictAndSetBatchingWork)
{
    Fixture fx;
    net::Client client = fx.client();
    client.admit("a", sparse::make_banded(512, 5, 3));
    const Vectors v = random_vectors(512, 512, 9);
    (void)client.spmv("a", v.x, v.y, 1.0f, 0.0f);
    // The reply can land before the dispatcher's post-round bookkeeping;
    // settle the counters before asking for them.
    fx.server.drain();

    // The stats frame returns the same JSON ci.sh archives — it must pass
    // the schema validator and carry the request we just made.
    const std::string json = client.stats_json();
    std::string err;
    EXPECT_TRUE(serve::validate_server_stats_json(json, &err)) << err;
    double requests = 0.0;
    std::size_t cursor = 0;
    ASSERT_TRUE(
        serve::find_number_after_key(json, "requests", &cursor, &requests));
    EXPECT_EQ(requests, 1.0);

    // set_batching round-trips into the dispatcher's live config.
    net::SetBatchingRequest sb;
    sb.max_batch = 3;
    sb.slo_ms = 0.0;
    sb.batch_wait_ms = 0.0;
    sb.max_queue_depth = 64;
    client.set_batching(sb);
    EXPECT_EQ(fx.server.current_max_batch(), 3u);

    EXPECT_TRUE(client.evict("a"));
    EXPECT_FALSE(client.evict("a"));
    // Unknown matrix after eviction is an application error -> RemoteError,
    // and the connection survives it.
    EXPECT_THROW((void)client.spmv("a", v.x, v.y, 1.0f, 0.0f),
                 net::RemoteError);
    client.ping();
}

TEST(NetDaemon, QueueFullSurfacesAsOverloadedError)
{
    Fixture fx;
    fx.server.registry().admit("m", sparse::make_banded(400, 4, 5));
    fx.server.set_batching(/*max_batch=*/8, /*slo_ms=*/0.0,
                           /*batch_wait_ms=*/0.0, /*max_queue_depth=*/1);

    // Fill the queue locally while paused; the wire request then hits the
    // admission bound and must come back OVERLOADED, not as a dead socket.
    fx.server.pause();
    const Vectors v = random_vectors(400, 400, 11);
    auto parked = fx.server.submit("m", v.x, v.y, 1.0f, 0.0f);

    net::Client client = fx.client();
    EXPECT_THROW((void)client.spmv("m", v.x, v.y, 1.0f, 0.0f),
                 net::OverloadedError);

    // Retryable: once the queue drains, the same connection succeeds.
    fx.server.resume();
    (void)parked.get();
    fx.server.drain();
    EXPECT_NO_THROW((void)client.spmv("m", v.x, v.y, 1.0f, 0.0f));
}

TEST(NetDaemon, GarbageFramesCostOnlyTheirOwnConnection)
{
    Fixture fx;
    fx.server.registry().admit("m", sparse::make_banded(256, 3, 7));

    {
        // Unknown request type: decoded behind the exception wall, so the
        // daemon answers ERROR and keeps the connection.
        net::Socket raw =
            net::connect_tcp("127.0.0.1", fx.daemon.port(), 5000);
        net::WireWriter junk;
        junk.u8(99);
        net::write_frame(raw, junk.take());
        const auto reply = net::read_frame(raw);
        ASSERT_TRUE(reply.has_value());
        EXPECT_THROW((void)net::open_reply(*reply), net::RemoteError);
        // Same connection still answers a well-formed ping.
        net::write_frame(raw, net::encode_request(net::RequestType::kPing,
                                                  net::WireWriter()));
        const auto pong = net::read_frame(raw);
        ASSERT_TRUE(pong.has_value());
        EXPECT_NO_THROW((void)net::open_reply(*pong));
    }
    {
        // A length prefix beyond kMaxFrameBytes is transport corruption:
        // the daemon drops the connection (best-effort error first).
        net::Socket raw =
            net::connect_tcp("127.0.0.1", fx.daemon.port(), 5000);
        const std::uint32_t evil = net::kMaxFrameBytes + 1;
        std::uint8_t header[4];
        std::memcpy(header, &evil, sizeof evil);
        ASSERT_EQ(::send(raw.fd(), header, sizeof header, MSG_NOSIGNAL), 4);
        // Whatever arrives (an error frame, then EOF; or EOF directly),
        // the connection ends without taking the daemon down.
        try {
            while (net::read_frame(raw).has_value()) {}
        } catch (const net::NetError&) {
        }
    }
    {
        // Truncated frame: promise 64 bytes, send 3, hang up.
        net::Socket raw =
            net::connect_tcp("127.0.0.1", fx.daemon.port(), 5000);
        const std::uint32_t n = 64;
        std::uint8_t header[4];
        std::memcpy(header, &n, sizeof n);
        ASSERT_EQ(::send(raw.fd(), header, sizeof header, MSG_NOSIGNAL), 4);
        const std::uint8_t partial[3] = {1, 2, 3};
        ASSERT_EQ(::send(raw.fd(), partial, sizeof partial, MSG_NOSIGNAL), 3);
    }

    // After all three abuses a fresh connection still serves spmv.
    net::Client client = fx.client();
    const Vectors v = random_vectors(256, 256, 13);
    EXPECT_NO_THROW((void)client.spmv("m", v.x, v.y, 1.0f, 0.0f));
}

TEST(NetDaemon, ConcurrentClientsEachGetTheirOwnConnection)
{
    const auto m = sparse::make_uniform_random(800, 800, 20'000, 17);
    Fixture fx;
    {
        net::Client admin = fx.client();
        admin.admit("m", m);
    }
    const core::Accelerator acc(fx.cfg);
    const auto prepared = acc.prepare(m);

    constexpr unsigned kThreads = 4, kPerThread = 5;
    std::vector<std::future<bool>> oks;
    for (unsigned t = 0; t < kThreads; ++t) {
        oks.push_back(std::async(std::launch::async, [&, t] {
            net::Client client("127.0.0.1", fx.daemon.port(),
                               kClientTimeoutMs);
            for (unsigned i = 0; i < kPerThread; ++i) {
                const Vectors v =
                    random_vectors(m.cols(), m.rows(), 1000 + t * 100 + i);
                const net::SpmvReply reply =
                    client.spmv("m", v.x, v.y, 1.5f, 0.25f);
                const core::RunResult direct =
                    acc.run(prepared, v.x, v.y, 1.5f, 0.25f);
                for (std::size_t r = 0; r < reply.y.size(); ++r)
                    if (float_bits(reply.y[r]) != float_bits(direct.y[r]))
                        return false;
            }
            return true;
        }));
    }
    for (auto& ok : oks)
        EXPECT_TRUE(ok.get());
    // A client can hold its reply before the dispatcher's post-round
    // bookkeeping lands; drain() waits that round out.
    fx.server.drain();
    EXPECT_EQ(fx.server.stats().requests, kThreads * kPerThread);
}

TEST(NetDaemon, ShutdownFrameWakesWaitAndStopUnblocksParkedReaders)
{
    Fixture fx;
    // A parked connection with no traffic: stop() must be able to unblock
    // its reader thread via shutdown_both().
    net::Client idle = fx.client();

    EXPECT_FALSE(fx.daemon.shutdown_requested());
    auto waiter = std::async(std::launch::async, [&] { fx.daemon.wait(); });

    net::Client client = fx.client();
    client.shutdown_daemon();  // acknowledged over the wire

    ASSERT_EQ(waiter.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_TRUE(fx.daemon.shutdown_requested());
    fx.daemon.stop();  // joins the acceptor, the idle conn, everything
}

TEST(NetDaemon, ClientTimeoutSurfacesAsTimeoutError)
{
    // A listener that accepts but never replies.
    std::uint16_t port = 0;
    net::Socket listener = net::listen_tcp(0, &port);

    net::Client client("127.0.0.1", port, /*timeout_ms=*/200);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(client.ping(), net::TimeoutError);
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(NetDaemon, ExpiredDeadlineSurfacesAsDeadlineExceededError)
{
    Fixture fx;
    fx.server.registry().admit("m", sparse::make_banded(400, 4, 7));

    // A vanishingly small budget always expires during queueing (no
    // pause/sleep timing to race): the shed must travel back as
    // DEADLINE_EXCEEDED, and the connection must stay usable — a shed
    // request is an answer, not a transport failure.
    net::Client client = fx.client();
    const Vectors v = random_vectors(400, 400, 13);
    EXPECT_THROW(
        (void)client.spmv("m", v.x, v.y, 1.0f, 0.0f, /*deadline_ms=*/1e-7),
        net::DeadlineExceededError);

    fx.server.drain();
    EXPECT_EQ(fx.server.stats().shed, 1u);
    // Same connection, generous budget: serves normally.
    EXPECT_NO_THROW(
        (void)client.spmv("m", v.x, v.y, 1.0f, 0.0f, 60'000.0));
}

} // namespace
} // namespace serpens
