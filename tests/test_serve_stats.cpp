// Serving-layer coverage for the batched device model (PR 6).
//
// Contracts pinned here:
//   - Every member of a coalesced batch rides ONE SpMM-mode invocation, so
//     every member's response reports the same device_batch_ms /
//     device_amortized_ms, and a width-1 batch reports exactly the
//     single-run modeled time.
//   - Distinct batch widths amortize distinctly (a paused burst of 11
//     chunks to 8 + 3 with the 8-wide group strictly cheaper per SpMV).
//   - The serpens_serve snapshot schema (serve::to_json) round-trips its
//     own validator, and corrupted documents are rejected with a
//     diagnostic.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "serve/server.h"
#include "serve/snapshot.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace serpens {
namespace {

struct Vectors {
    std::vector<float> x, y;
};

Vectors random_vectors(sparse::index_t cols, sparse::index_t rows,
                       std::uint64_t seed)
{
    Rng rng(seed);
    Vectors v;
    v.x.resize(cols);
    v.y.resize(rows);
    for (float& f : v.x)
        f = rng.next_float(-1.0f, 1.0f);
    for (float& f : v.y)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

TEST(ServeStats, CoalescedBatchSharesOneAmortizedDeviceTime)
{
    const auto m = sparse::make_uniform_random(1400, 1400, 35'000, 71);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    for (unsigned i = 0; i < 5; ++i) {
        const Vectors v = random_vectors(m.cols(), m.rows(), 50 + i);
        futures.push_back(server.submit("m", v.x, v.y, 1.5f, 0.25f));
    }
    server.resume();

    std::vector<serve::SpmvResult> results;
    for (auto& f : futures)
        results.push_back(f.get());

    for (const serve::SpmvResult& r : results) {
        EXPECT_EQ(r.batch_width, 5u);
        // One shared invocation: identical device figures for every member
        // (same doubles, not just close).
        EXPECT_EQ(r.device_batch_ms, results.front().device_batch_ms);
        EXPECT_EQ(r.device_amortized_ms,
                  results.front().device_amortized_ms);
        EXPECT_DOUBLE_EQ(r.device_amortized_ms, r.device_batch_ms / 5.0);
        // Sharing the A stream across 5 columns must beat 5 independent
        // SpMVs: amortized device time below the per-vector modeled time.
        EXPECT_LT(r.device_amortized_ms, r.run.time_ms);
        EXPECT_GT(r.device_amortized_ms, 0.0);
    }
}

TEST(ServeStats, WidthOneBatchReportsExactlyTheSingleRunTime)
{
    const auto m = sparse::make_banded(900, 7, 73);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    const Vectors v = random_vectors(m.cols(), m.rows(), 7);
    const serve::SpmvResult r = server.spmv("m", v.x, v.y);
    ASSERT_EQ(r.batch_width, 1u);
    EXPECT_DOUBLE_EQ(r.device_batch_ms, r.run.time_ms);
    EXPECT_DOUBLE_EQ(r.device_amortized_ms, r.run.time_ms);
}

TEST(ServeStats, PausedBurstOfElevenAmortizesDistinctlyAcrossChunks)
{
    const auto m = sparse::make_uniform_random(1200, 1200, 30'000, 79);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    for (unsigned i = 0; i < 11; ++i) {
        const Vectors v = random_vectors(m.cols(), m.rows(), 110 + i);
        futures.push_back(server.submit("m", v.x, v.y, 2.0f, 0.5f));
    }
    server.resume();

    std::vector<double> eight_amortized, three_amortized;
    for (auto& f : futures) {
        const serve::SpmvResult r = f.get();
        if (r.batch_width == 8)
            eight_amortized.push_back(r.device_amortized_ms);
        else if (r.batch_width == 3)
            three_amortized.push_back(r.device_amortized_ms);
        else
            FAIL() << "unexpected batch width " << r.batch_width;
    }
    ASSERT_EQ(eight_amortized.size(), 8u);
    ASSERT_EQ(three_amortized.size(), 3u);
    for (const double ms : eight_amortized)
        EXPECT_EQ(ms, eight_amortized.front());
    for (const double ms : three_amortized)
        EXPECT_EQ(ms, three_amortized.front());
    // The full 8-wide column block shares one A pass across more columns
    // than the 3-wide remainder: strictly better amortization.
    EXPECT_LT(eight_amortized.front(), three_amortized.front());
}

// --- Snapshot schema ---

serve::LoopSnapshot plausible_loop(double scale)
{
    serve::LoopSnapshot l;
    l.wall_s = 1.8 * scale;
    l.nnz_per_s = 2.5e8 / scale;
    l.mean_queue_ms = 0.4;
    l.mean_service_ms = 6.5 * scale;
    l.mean_batch_width = scale > 1.0 ? 1.0 : 5.2;
    l.mean_device_amortized_ms = 0.9 * scale;
    l.p50_queue_ms = 0.3;
    l.p99_queue_ms = 2.1 * scale;
    l.p50_service_ms = 6.0 * scale;
    l.p99_service_ms = 9.5 * scale;
    l.p50_e2e_ms = 6.5 * scale;
    l.p99_e2e_ms = 11.0 * scale;
    l.width_hist = scale > 1.0 ? std::vector<std::uint64_t>{192}
                               : std::vector<std::uint64_t>{4, 0, 0, 8, 20,
                                                            0, 0, 160};
    l.stats.requests = 192;
    l.stats.batches = scale > 1.0 ? 192 : 40;
    l.stats.rounds = 30;
    l.stats.coalesced = scale > 1.0 ? 0 : 180;
    l.stats.max_batch_seen = scale > 1.0 ? 1 : 8;
    l.stats.rejected = 0;
    l.stats.batch_shrinks = scale > 1.0 ? 0 : 3;
    l.stats.batch_grows = scale > 1.0 ? 0 : 1;
    return l;
}

serve::ServeSnapshot plausible_snapshot(bool with_comparison,
                                        bool open_loop = false)
{
    serve::ServeSnapshot snap;
    snap.open_loop = open_loop;
    snap.matrices = 3;
    snap.entries = 1'000'000;
    snap.clients = 8;
    snap.requests_per_client = 24;
    snap.max_batch = 8;
    snap.serve_threads = 4;
    if (open_loop) {
        snap.arrival_rate_rps = 100.0;
        snap.slo_ms = 20.0;
        snap.batch_wait_ms = 80.0;
        snap.max_queue_depth = 256;
    }
    snap.primary = plausible_loop(1.0);
    if (with_comparison)
        snap.comparison = plausible_loop(2.6);
    return snap;
}

TEST(ServeStats, SnapshotJsonRoundTripsItsValidator)
{
    for (const bool with_comparison : {true, false}) {
        const std::string json =
            serve::to_json(plausible_snapshot(with_comparison));
        std::string error;
        EXPECT_TRUE(serve::validate_snapshot_json(json, &error))
            << "with_comparison=" << with_comparison << ": " << error;
        EXPECT_NE(json.find("\"mean_device_amortized_ms\""),
                  std::string::npos);
        EXPECT_NE(json.find("\"p99_queue_ms\""), std::string::npos);
        EXPECT_NE(json.find("\"width_hist\""), std::string::npos);
        EXPECT_EQ(json.find("\"batched_speedup\"") != std::string::npos,
                  with_comparison);
    }
}

TEST(ServeStats, OpenLoopSnapshotRoundTripsWithAdaptiveAndFixedLoops)
{
    const std::string json = serve::to_json(
        plausible_snapshot(/*with_comparison=*/true, /*open_loop=*/true));
    std::string error;
    EXPECT_TRUE(serve::validate_snapshot_json(json, &error)) << error;
    EXPECT_NE(json.find("\"mode\": \"open-loop\""), std::string::npos);
    EXPECT_NE(json.find("\"adaptive\""), std::string::npos);
    EXPECT_NE(json.find("\"fixed\""), std::string::npos);
    EXPECT_NE(json.find("\"arrival_rate_rps\""), std::string::npos);
    // The closed-loop throughput figure has no meaning under open-loop
    // arrivals and must not be archived there.
    EXPECT_EQ(json.find("\"batched_speedup\""), std::string::npos);
}

TEST(ServeStats, DeadlineModeSnapshotNamesItsLoopsAndCarriesShedding)
{
    serve::ServeSnapshot snap =
        plausible_snapshot(/*with_comparison=*/true, /*open_loop=*/true);
    snap.deadline_ms = 10.0;
    snap.overload = 2.0;
    snap.primary.stats.shed = 25;
    snap.primary.retried = 3;

    const std::string json = serve::to_json(snap);
    std::string error;
    EXPECT_TRUE(serve::validate_snapshot_json(json, &error)) << error;
    // deadline_ms > 0 renames the open-loop ablation: the served loop is
    // "deadline", the baseline "no_deadline" — not adaptive/fixed.
    EXPECT_NE(json.find("\"deadline\""), std::string::npos);
    EXPECT_NE(json.find("\"no_deadline\""), std::string::npos);
    EXPECT_EQ(json.find("\"adaptive\""), std::string::npos);
    EXPECT_EQ(json.find("\"fixed\""), std::string::npos);
    EXPECT_NE(json.find("\"deadline_ms\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"overload\": 2"), std::string::npos);

    // The fault-tolerance counters travel in every loop.
    std::size_t cursor = 0;
    double shed = -1.0, retried = -1.0;
    EXPECT_TRUE(serve::find_number_after_key(json, "shed", &cursor, &shed));
    EXPECT_DOUBLE_EQ(shed, 25.0);
    cursor = 0;
    EXPECT_TRUE(
        serve::find_number_after_key(json, "retried", &cursor, &retried));
    EXPECT_DOUBLE_EQ(retried, 3.0);
}

TEST(ServeStats, ValidatorRequiresTheFaultToleranceKeys)
{
    serve::ServeSnapshot snap =
        plausible_snapshot(/*with_comparison=*/true, /*open_loop=*/true);
    snap.deadline_ms = 10.0;
    snap.overload = 2.0;
    const std::string good = serve::to_json(snap);
    const auto replaced = [&](const std::string& from,
                              const std::string& to) {
        std::string doc = good;
        const std::size_t at = doc.find(from);
        EXPECT_NE(at, std::string::npos) << from;
        doc.replace(at, from.size(), to);
        return doc;
    };

    std::string error;
    for (const char* key : {"shed", "retried", "deadline_ms", "overload"}) {
        const std::string quoted = "\"" + std::string(key) + "\"";
        EXPECT_FALSE(serve::validate_snapshot_json(
            replaced(quoted, "\"renamed_key\""), &error))
            << key;
        EXPECT_NE(error.find(key), std::string::npos) << error;
    }
}

TEST(ServeStats, SnapshotValidatorRejectsCorruptDocuments)
{
    const std::string good = serve::to_json(plausible_snapshot(true));
    const auto replaced = [&](const std::string& from,
                              const std::string& to) {
        std::string doc = good;
        const std::size_t at = doc.find(from);
        EXPECT_NE(at, std::string::npos) << from;
        doc.replace(at, from.size(), to);
        return doc;
    };

    std::string error;
    // A missing required key.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"mean_device_amortized_ms\"", "\"renamed_key\""),
        &error));
    EXPECT_NE(error.find("mean_device_amortized_ms"), std::string::npos);

    // A non-finite value.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"wall_s\": 1.8", "\"wall_s\": nan"), &error));

    // A key with its ':' separator deleted. The old parser skipped ':'
    // as if it were whitespace, so `"wall_s" 1.8` validated — this is the
    // regression lock on the colon requirement.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"wall_s\": 1.8", "\"wall_s\" 1.8"), &error));
    EXPECT_NE(error.find("wall_s"), std::string::npos);

    // A zero where the quantity must be strictly positive.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"nnz_per_s\": 2.5e+08", "\"nnz_per_s\": 0"), &error));

    // A negative count.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"coalesced\": 180", "\"coalesced\": -1"), &error));

    // A string where a number belongs.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"batches\": 40", "\"batches\": \"forty\""), &error));

    // A width histogram that is not an array of counts.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"width_hist\": [192]", "\"width_hist\": [-3]"), &error));

    // The comparison loop without its speedup (and vice versa).
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"batched_speedup\"", "\"renamed_speedup\""), &error));

    // An open-loop document carrying the closed-loop speedup figure.
    EXPECT_FALSE(serve::validate_snapshot_json(
        replaced("\"mode\": \"closed-loop\"", "\"mode\": \"open-loop\""),
        &error));

    // Not a serve snapshot at all.
    EXPECT_FALSE(serve::validate_snapshot_json("{\"tool\": \"other\"}",
                                               &error));
}

TEST(ServeStats, FindNumberAfterKeyRequiresTheColonSeparator)
{
    double v = 0.0;
    std::size_t cursor = 0;
    EXPECT_TRUE(serve::find_number_after_key("{\"wall_s\":  12.5}",
                                             "wall_s", &cursor, &v));
    EXPECT_DOUBLE_EQ(v, 12.5);

    // The bug this PR fixes: a colon-less key/value pair must not parse.
    cursor = 0;
    EXPECT_FALSE(serve::find_number_after_key("{\"wall_s\" 12.5}",
                                              "wall_s", &cursor, &v));
    cursor = 0;
    EXPECT_FALSE(serve::find_number_after_key("{\"wall_s\": \"x\"}",
                                              "wall_s", &cursor, &v));
}

// --- The daemon's stats document ---

TEST(ServeStats, ServerStatsJsonRoundTripsItsValidator)
{
    const auto m = sparse::make_banded(600, 5, 91);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);
    const Vectors v = random_vectors(m.cols(), m.rows(), 17);
    (void)server.spmv("m", v.x, v.y);
    (void)server.spmv("m", v.x, v.y, 2.0f, 0.5f);
    // A caller can hold its reply before the dispatcher's post-round
    // bookkeeping lands; drain() waits that round out so the counters
    // below are settled.
    server.drain();

    const serve::MatrixRegistry& reg = server.registry();
    const std::string json = serve::server_stats_to_json(
        server.stats(), reg.stats(), 1, reg.bytes_resident());
    std::string error;
    EXPECT_TRUE(serve::validate_server_stats_json(json, &error)) << error;
    EXPECT_NE(json.find("\"tool\": \"serpens_served\""), std::string::npos);

    // The live figures survive the trip through the document.
    std::size_t cursor = 0;
    double requests = 0.0, replacements = -1.0;
    EXPECT_TRUE(serve::find_number_after_key(json, "requests", &cursor,
                                             &requests));
    EXPECT_DOUBLE_EQ(requests, 2.0);
    cursor = 0;
    EXPECT_TRUE(serve::find_number_after_key(json, "replacements", &cursor,
                                             &replacements));
    EXPECT_DOUBLE_EQ(replacements, 0.0);

    // Corruption is caught here too (shared parser, shared colon rule).
    std::string doc = json;
    const std::size_t at = doc.find("\"requests\":");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 11, "\"requests\" ");
    EXPECT_FALSE(serve::validate_server_stats_json(doc, &error));
}

// --- Durability counters (PR 9) ---

TEST(ServeStats, LoopSnapshotCarriesFailoversAndValidatorRequiresIt)
{
    serve::ServeSnapshot snap = plausible_snapshot(/*with_comparison=*/true);
    snap.primary.failovers = 4;
    const std::string json = serve::to_json(snap);
    std::string error;
    ASSERT_TRUE(serve::validate_snapshot_json(json, &error)) << error;

    std::size_t cursor = 0;
    double failovers = -1.0;
    EXPECT_TRUE(serve::find_number_after_key(json, "failovers", &cursor,
                                             &failovers));
    EXPECT_DOUBLE_EQ(failovers, 4.0);

    // The key is required even when (as on single-endpoint runs) it is 0.
    std::string doc = json;
    const std::size_t at = doc.find("\"failovers\"");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 11, "\"renamed_ct\"");
    EXPECT_FALSE(serve::validate_snapshot_json(doc, &error));
    EXPECT_NE(error.find("failovers"), std::string::npos) << error;
}

TEST(ServeStats, ServerStatsJsonCarriesTheDurabilityCounters)
{
    serve::ServerStats server;
    server.requests = 3;
    serve::RegistryStats registry;
    registry.admissions = 2;
    serve::StoreStats store;
    store.recovered = 2;
    store.skipped_corrupt = 1;

    const std::string with_store = serve::server_stats_to_json(
        server, registry, 2, 4096, &store);
    std::string error;
    ASSERT_TRUE(serve::validate_server_stats_json(with_store, &error))
        << error;
    std::size_t cursor = 0;
    double recovered = -1.0, skipped = -1.0;
    EXPECT_TRUE(serve::find_number_after_key(with_store, "recovered",
                                             &cursor, &recovered));
    EXPECT_DOUBLE_EQ(recovered, 2.0);
    EXPECT_TRUE(serve::find_number_after_key(with_store, "skipped_corrupt",
                                             &cursor, &skipped));
    EXPECT_DOUBLE_EQ(skipped, 1.0);

    // A stateless daemon still writes the keys (as zeros): clients need no
    // schema branch on --state-dir.
    const std::string stateless = serve::server_stats_to_json(
        server, registry, 2, 4096, nullptr);
    ASSERT_TRUE(serve::validate_server_stats_json(stateless, &error))
        << error;
    cursor = 0;
    EXPECT_TRUE(serve::find_number_after_key(stateless, "recovered",
                                             &cursor, &recovered));
    EXPECT_DOUBLE_EQ(recovered, 0.0);

    // And the validator demands them.
    for (const char* key : {"recovered", "skipped_corrupt"}) {
        std::string doc = with_store;
        const std::string quoted = "\"" + std::string(key) + "\"";
        const std::size_t at = doc.find(quoted);
        ASSERT_NE(at, std::string::npos) << key;
        doc.replace(at + 1, 1, "X");  // "recovered" -> "Xecovered"
        EXPECT_FALSE(serve::validate_server_stats_json(doc, &error)) << key;
        EXPECT_NE(error.find(key), std::string::npos) << error;
    }
}

TEST(ServeStats, RecoveryReportRoundTripsAndRejectsCorruption)
{
    serve::StoreStats store;
    store.wal_records = 5;
    store.wal_torn_bytes = 23;
    store.recovered = 4;
    store.skipped_corrupt = 1;
    store.recovery_ms = 12.5;
    store.clean_shutdown = true;
    const std::string good = serve::recovery_to_json(store);
    std::string error;
    ASSERT_TRUE(serve::validate_recovery_json(good, &error)) << error;
    EXPECT_NE(good.find("\"tool\": \"serpens_served\""), std::string::npos);

    std::size_t cursor = 0;
    double v = -1.0;
    EXPECT_TRUE(serve::find_number_after_key(good, "wal_torn_bytes",
                                             &cursor, &v));
    EXPECT_DOUBLE_EQ(v, 23.0);
    EXPECT_TRUE(serve::find_number_after_key(good, "clean_shutdown",
                                             &cursor, &v));
    EXPECT_DOUBLE_EQ(v, 1.0);  // bool archived as 0/1

    const auto replaced = [&](const std::string& from,
                              const std::string& to) {
        std::string doc = good;
        const std::size_t at = doc.find(from);
        EXPECT_NE(at, std::string::npos) << from;
        doc.replace(at, from.size(), to);
        return doc;
    };

    // Every required key, individually renamed, is individually missed.
    for (const char* key :
         {"wal_records", "wal_torn_bytes", "recovered", "skipped_corrupt",
          "clean_shutdown", "recovery_ms"}) {
        const std::string quoted = "\"" + std::string(key) + "\"";
        EXPECT_FALSE(serve::validate_recovery_json(
            replaced(quoted, "\"renamed_key\""), &error))
            << key;
        EXPECT_NE(error.find(key), std::string::npos) << error;
    }

    // Colon-less, negative, non-finite, wrong tool, wrong document.
    EXPECT_FALSE(serve::validate_recovery_json(
        replaced("\"recovered\": 4", "\"recovered\" 4"), &error));
    EXPECT_FALSE(serve::validate_recovery_json(
        replaced("\"recovered\": 4", "\"recovered\": -4"), &error));
    EXPECT_FALSE(serve::validate_recovery_json(
        replaced("\"recovery_ms\": 12.5", "\"recovery_ms\": inf"), &error));
    EXPECT_FALSE(
        serve::validate_recovery_json("{\"tool\": \"other\"}", &error));
    serve::ServerStats server;
    serve::RegistryStats registry;
    EXPECT_FALSE(serve::validate_recovery_json(
        serve::server_stats_to_json(server, registry, 0, 0, nullptr),
        &error));
}

} // namespace
} // namespace serpens
