// Tests for the GraphBLAS-lite semiring substrate and graph algorithms
// built on it (BFS / SSSP patterns used by the examples).
#include <gtest/gtest.h>

#include "baselines/semiring.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace serpens::baselines {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::index_t;

TEST(Semiring, Identities)
{
    EXPECT_FLOAT_EQ(semiring_identity(SemiringKind::plus_times), 0.0f);
    EXPECT_FLOAT_EQ(semiring_identity(SemiringKind::or_and), 0.0f);
    EXPECT_EQ(semiring_identity(SemiringKind::min_plus), kMinPlusInf);
}

TEST(Semiring, PlusTimesIsPlainSpmv)
{
    CooMatrix m(2, 3);
    m.add(0, 0, 2.0f);
    m.add(0, 2, 3.0f);
    m.add(1, 1, -1.0f);
    const CsrMatrix a = sparse::to_csr(m);
    const std::vector<float> x = {1.0f, 2.0f, 3.0f};
    std::vector<float> y(2);
    spmv_semiring(a, x, y, SemiringKind::plus_times);
    EXPECT_FLOAT_EQ(y[0], 11.0f);
    EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(Semiring, OrAndTreatsNonzeroAsTrue)
{
    CooMatrix m(2, 2);
    m.add(0, 0, 5.0f);   // true
    m.add(1, 1, 1.0f);
    const CsrMatrix a = sparse::to_csr(m);
    std::vector<float> y(2);
    const std::vector<float> x = {0.0f, 7.0f};
    spmv_semiring(a, x, y, SemiringKind::or_and);
    EXPECT_FLOAT_EQ(y[0], 0.0f);  // 5 && 0
    EXPECT_FLOAT_EQ(y[1], 1.0f);  // 1 && 7
}

TEST(Semiring, MinPlusPropagatesDistances)
{
    // Row r holds incoming edge weights: dist'[r] = min_c (w(c, r) + dist[c]).
    CooMatrix m(3, 3);
    m.add(1, 0, 2.0f);
    m.add(2, 0, 10.0f);
    m.add(2, 1, 3.0f);
    const CsrMatrix a = sparse::to_csr(m);
    std::vector<float> next(3);
    const std::vector<float> dist = {0.0f, 2.0f, kMinPlusInf};
    spmv_semiring(a, dist, next, SemiringKind::min_plus);
    EXPECT_FLOAT_EQ(next[1], 2.0f);
    EXPECT_FLOAT_EQ(next[2], 5.0f);  // min(10 + 0, 3 + 2)
}

TEST(Semiring, MinPlusEmptyRowStaysInfinite)
{
    CooMatrix m(2, 2);
    m.add(1, 0, 1.0f);
    const CsrMatrix a = sparse::to_csr(m);
    std::vector<float> y(2);
    const std::vector<float> x = {0.0f, 0.0f};
    spmv_semiring(a, x, y, SemiringKind::min_plus);
    EXPECT_EQ(y[0], kMinPlusInf);
}

TEST(Semiring, ValidatesLengths)
{
    const CsrMatrix a = sparse::to_csr(sparse::make_diagonal(4));
    std::vector<float> x(3), y(4);
    EXPECT_THROW(spmv_semiring(a, x, y, SemiringKind::plus_times),
                 std::invalid_argument);
}

// BFS by repeated or_and SpMV over the reversed adjacency (CSR rows = heads).
std::vector<int> bfs_levels(const CsrMatrix& a_rev, index_t source)
{
    std::vector<int> level(a_rev.rows(), -1);
    level[source] = 0;
    std::vector<float> frontier(a_rev.rows(), 0.0f);
    frontier[source] = 1.0f;
    for (int depth = 1; depth < static_cast<int>(a_rev.rows()); ++depth) {
        std::vector<float> next(a_rev.rows(), 0.0f);
        spmv_semiring(a_rev, frontier, next, SemiringKind::or_and);
        bool advanced = false;
        for (index_t v = 0; v < a_rev.rows(); ++v) {
            if (next[v] != 0.0f && level[v] < 0) {
                level[v] = depth;
                advanced = true;
            } else if (level[v] >= 0) {
                next[v] = 0.0f;  // mask out settled vertices
            }
        }
        if (!advanced)
            break;
        frontier = std::move(next);
    }
    return level;
}

TEST(Semiring, BfsOnPathGraph)
{
    // 0 -> 1 -> 2 -> 3; reversed CSR: row v lists predecessors of v.
    CooMatrix g(4, 4);
    g.add(1, 0, 1.0f);
    g.add(2, 1, 1.0f);
    g.add(3, 2, 1.0f);
    const auto levels = bfs_levels(sparse::to_csr(g), 0);
    EXPECT_EQ(levels, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Semiring, BfsUnreachableStaysMinusOne)
{
    CooMatrix g(3, 3);
    g.add(1, 0, 1.0f);  // 0 -> 1; vertex 2 isolated
    const auto levels = bfs_levels(sparse::to_csr(g), 0);
    EXPECT_EQ(levels[2], -1);
}

TEST(Semiring, SsspBellmanFordStyle)
{
    // Graph: 0 -> 1 (1.0), 0 -> 2 (4.0), 1 -> 2 (2.0), 2 -> 3 (1.0)
    CooMatrix g(4, 4);
    g.add(1, 0, 1.0f);
    g.add(2, 0, 4.0f);
    g.add(2, 1, 2.0f);
    g.add(3, 2, 1.0f);
    const CsrMatrix a = sparse::to_csr(g);

    std::vector<float> dist(4, kMinPlusInf);
    dist[0] = 0.0f;
    for (int iter = 0; iter < 4; ++iter) {
        std::vector<float> relaxed(4);
        spmv_semiring(a, dist, relaxed, SemiringKind::min_plus);
        for (index_t v = 0; v < 4; ++v)
            dist[v] = std::min(dist[v], relaxed[v]);
    }
    EXPECT_FLOAT_EQ(dist[1], 1.0f);
    EXPECT_FLOAT_EQ(dist[2], 3.0f);  // via vertex 1
    EXPECT_FLOAT_EQ(dist[3], 4.0f);
}

TEST(SemiringMasked, MaskedRowsKeepIdentity)
{
    const CsrMatrix a = sparse::to_csr(sparse::make_diagonal(4, 2.0f));
    const std::vector<float> x = {1.0f, 1.0f, 1.0f, 1.0f};
    const std::vector<float> mask = {0.0f, 1.0f, 0.0f, 1.0f};
    std::vector<float> y(4);
    spmv_semiring_masked(a, x, mask, y, SemiringKind::plus_times);
    EXPECT_FLOAT_EQ(y[0], 2.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);  // masked -> identity
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(SemiringMasked, MinPlusMaskGivesInfinity)
{
    CooMatrix m(2, 2);
    m.add(0, 1, 1.0f);
    m.add(1, 0, 1.0f);
    const CsrMatrix a = sparse::to_csr(m);
    const std::vector<float> x = {0.0f, 0.0f};
    const std::vector<float> mask = {1.0f, 0.0f};
    std::vector<float> y(2);
    spmv_semiring_masked(a, x, mask, y, SemiringKind::min_plus);
    EXPECT_EQ(y[0], kMinPlusInf);  // masked
    EXPECT_FLOAT_EQ(y[1], 1.0f);
}

TEST(SemiringMasked, EmptyMaskEqualsUnmasked)
{
    const CsrMatrix a =
        sparse::to_csr(sparse::make_uniform_random(32, 32, 200, 5));
    std::vector<float> x(32, 0.5f);
    const std::vector<float> no_mask(32, 0.0f);
    std::vector<float> masked(32), plain(32);
    spmv_semiring_masked(a, x, no_mask, masked, SemiringKind::plus_times);
    spmv_semiring(a, x, plain, SemiringKind::plus_times);
    EXPECT_EQ(masked, plain);
}

TEST(SemiringMasked, ValidatesMaskLength)
{
    const CsrMatrix a = sparse::to_csr(sparse::make_diagonal(4));
    std::vector<float> x(4), y(4), bad_mask(3);
    EXPECT_THROW(spmv_semiring_masked(a, x, bad_mask, y,
                                      SemiringKind::plus_times),
                 std::invalid_argument);
}

} // namespace
} // namespace serpens::baselines
