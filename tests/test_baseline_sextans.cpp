// Tests for the Sextans SpMM baseline model.
#include <gtest/gtest.h>

#include "baselines/cpu_spmv.h"
#include "baselines/sextans.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace serpens::baselines {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;

std::vector<float> random_vector(std::size_t n, std::uint64_t seed)
{
    serpens::Rng rng(seed);
    std::vector<float> v(n);
    for (float& x : v)
        x = rng.next_float(-1.0f, 1.0f);
    return v;
}

TEST(Sextans, SpmmMatchesColumnwiseSpmv)
{
    const SextansModel sextans;
    const CsrMatrix a =
        sparse::to_csr(sparse::make_uniform_random(60, 80, 900, 1));
    const unsigned n = 4;
    const auto b = random_vector(80 * n, 2);
    std::vector<float> c(60 * n, 0.0f);
    sextans.spmm(a, b, c, n, 1.0f, 0.0f);

    // Column j of C must equal SpMV with column j of B.
    for (unsigned j = 0; j < n; ++j) {
        std::vector<float> xj(80), yj(60, 0.0f);
        for (std::size_t k = 0; k < 80; ++k)
            xj[k] = b[k * n + j];
        spmv_csr(a, xj, yj, 1.0f, 0.0f);
        for (std::size_t r = 0; r < 60; ++r)
            ASSERT_NEAR(c[r * n + j], yj[r], 1e-4) << "col " << j << " row " << r;
    }
}

TEST(Sextans, SpmmAlphaBeta)
{
    const SextansModel sextans;
    const CsrMatrix a = sparse::to_csr(sparse::make_diagonal(8, 2.0f));
    std::vector<float> b(8 * 2, 1.0f);
    std::vector<float> c(8 * 2, 10.0f);
    sextans.spmm(a, b, c, 2, 3.0f, 0.5f);
    // 3 * (2 * 1) + 0.5 * 10 = 11
    for (float v : c)
        EXPECT_FLOAT_EQ(v, 11.0f);
}

TEST(Sextans, SpmvViaSpmmMatchesReference)
{
    const SextansModel sextans;
    const CooMatrix m = sparse::make_uniform_random(100, 120, 1500, 3);
    const CsrMatrix a = sparse::to_csr(m);
    const auto x = random_vector(120, 4);
    const auto y = random_vector(100, 5);
    const std::vector<float> got = sextans.spmv(a, x, y, 1.25f, -0.5f);
    const auto ref = spmv_csr_ref64(a, x, y, 1.25f, -0.5f);
    for (std::size_t r = 0; r < ref.size(); ++r)
        ASSERT_NEAR(got[r], ref[r], 1e-4 * std::max(1.0, std::abs(ref[r])));
}

TEST(Sextans, SpmmValidatesShapes)
{
    const SextansModel sextans;
    const CsrMatrix a = sparse::to_csr(sparse::make_diagonal(4));
    std::vector<float> b(4 * 2), c(4 * 3);
    EXPECT_THROW(sextans.spmm(a, b, c, 3, 1.0f, 0.0f), std::invalid_argument);
}

TEST(Sextans, CapacityLimitMatchesTable4)
{
    // The paper's Table 4 marks G7 (1.63M), G9 (743K), G10 (576K),
    // G11 (1.07M) and G12 (2.45M) unsupported, while G8 (434K) runs.
    const SextansModel sextans;
    EXPECT_TRUE(sextans.estimate_spmv_ms(434'000, 434'000, 21'100'000).has_value());
    EXPECT_FALSE(sextans.estimate_spmv_ms(576'000, 576'000, 42'500'000).has_value());
    EXPECT_FALSE(sextans.estimate_spmv_ms(743'000, 743'000, 37'100'000).has_value());
    EXPECT_FALSE(
        sextans.estimate_spmv_ms(2'450'000, 2'450'000, 124'000'000).has_value());
}

TEST(Sextans, SpmvTimeNearPaperOnG2)
{
    // G2 crankseg_2: the paper measures 1.38 ms. The model must land within
    // 35% — it is calibrated from architecture parameters, not the table.
    const SextansModel sextans;
    const double ms = *sextans.estimate_spmv_ms(63'800, 63'800, 14'100'000);
    EXPECT_GT(ms, 1.38 * 0.65);
    EXPECT_LT(ms, 1.38 * 1.35);
}

TEST(Sextans, SpmmScalesWithN)
{
    const SextansModel sextans;
    const double n8 = *sextans.estimate_spmm_ms(100'000, 100'000, 10'000'000, 8);
    const double n16 = *sextans.estimate_spmm_ms(100'000, 100'000, 10'000'000, 16);
    // N=16 requires two passes over the sparse stream.
    EXPECT_GT(n16, 1.7 * n8);
}

TEST(Sextans, Table5KernelCrossover)
{
    // Table 5's lesson: Sextans beats Serpens at SpMM but loses at SpMV.
    // Sextans SpMM(16) on a TSOPF_c1-like matrix (~38K rows, ~12M nnz) is
    // ~2.9 ms; its SpMV is ~1.4 ms (vs Serpens ~0.5 ms, tested elsewhere).
    const SextansModel sextans;
    const double spmm16 = *sextans.estimate_spmm_ms(38'120, 38'120, 12'100'000, 16);
    const double spmv = *sextans.estimate_spmv_ms(38'120, 38'120, 12'100'000);
    EXPECT_NEAR(spmm16, 2.87, 1.0);
    EXPECT_NEAR(spmv, 1.44, 0.5);
    EXPECT_LT(spmv, spmm16);
}

TEST(Sextans, ConfigValidation)
{
    SextansConfig c;
    c.frequency_mhz = 0.0;
    EXPECT_THROW(SextansModel{c}, std::invalid_argument);
    c = {};
    c.schedule_stretch = 0.5;
    EXPECT_THROW(SextansModel{c}, std::invalid_argument);
}

} // namespace
} // namespace serpens::baselines
