// serve::RegistryStore lockdown: the durable-registry WAL contract.
//
// The high-order bits under test:
//   - a warm restart (record_admit → new store → recover) serves results
//     bit-identical to the original admission without re-encoding;
//   - the manifest replay lands on a valid prefix for EVERY possible torn
//     tail (truncation at each byte boundary) and EVERY single-bit flip
//     (fuzzed exhaustively — the CRC32 frame plus the redundant name_len
//     makes each deterministic to detect, never a misload);
//   - corrupt image files are skipped and counted, never served;
//   - compaction preserves the live set and sweeps stray images.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "encode/serialize.h"
#include "serve/registry.h"
#include "serve/store.h"
#include "sparse/generators.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace serpens {
namespace {

// A store directory under the test's CWD (the build tree), removed
// recursively on scope exit so repeated runs never see stale state.
struct TempDir {
    std::string path;

    explicit TempDir(const std::string& tag)
        : path(tag + "." + std::to_string(static_cast<long>(::getpid())))
    {
        remove_tree(path);
    }
    ~TempDir() { remove_tree(path); }

    static void remove_tree(const std::string& dir)
    {
        if (DIR* d = ::opendir(dir.c_str())) {
            while (const dirent* e = ::readdir(d)) {
                const std::string name = e->d_name;
                if (name == "." || name == "..")
                    continue;
                const std::string child = dir + "/" + name;
                remove_tree(child);  // no-op for regular files
                std::remove(child.c_str());
            }
            ::closedir(d);
            ::rmdir(dir.c_str());
        }
    }
};

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void spit(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

encode::SerpensImage tiny_image(std::uint64_t seed)
{
    const core::Accelerator acc(core::SerpensConfig::a16());
    return acc.prepare(sparse::make_banded(64, 3, seed)).image();
}

TEST(ServeStore, FilenameEncodingIsInjectiveAndFilesystemSafe)
{
    EXPECT_EQ(serve::RegistryStore::image_filename("web-Graph_1.x"),
              "web-Graph_1.x.img");
    EXPECT_EQ(serve::RegistryStore::image_filename("a/b c%"),
              "a%2Fb%20c%25.img");
    EXPECT_EQ(serve::RegistryStore::image_filename(""), ".img");
    // The '%' escape is itself escaped, so distinct names cannot collide.
    EXPECT_NE(serve::RegistryStore::image_filename("a%2F"),
              serve::RegistryStore::image_filename("a/"));
}

TEST(ServeStore, JournalsAdmitReplaceEvictAcrossReopen)
{
    TempDir dir("store_journal");
    const encode::SerpensImage img = tiny_image(1);
    {
        serve::RegistryStore store(dir.path);
        EXPECT_FALSE(store.stats().clean_shutdown);
        store.record_admit("a", img);
        store.record_admit("b", img);
        store.record_admit("a", img);  // replace, not a new entry
        EXPECT_TRUE(store.record_evict("b"));
        EXPECT_FALSE(store.record_evict("b"));
        EXPECT_FALSE(store.record_evict("ghost"));
        EXPECT_EQ(store.stats().appends, 4u);
        EXPECT_EQ(store.live_names(), std::vector<std::string>{"a"});
    }
    serve::RegistryStore reopened(dir.path);
    EXPECT_EQ(reopened.live_names(), std::vector<std::string>{"a"});
    EXPECT_EQ(reopened.stats().wal_records, 4u);
    EXPECT_EQ(reopened.stats().wal_torn_bytes, 0u);
}

TEST(ServeStore, CleanShutdownMarkerOnlyCountsAsTheFinalRecord)
{
    TempDir dir("store_clean");
    {
        serve::RegistryStore store(dir.path);
        store.record_admit("m", tiny_image(2));
        store.record_clean_shutdown();
    }
    {
        serve::RegistryStore store(dir.path);
        EXPECT_TRUE(store.stats().clean_shutdown);
        // A new session's records supersede the old marker.
        store.record_admit("n", tiny_image(3));
    }
    serve::RegistryStore store(dir.path);
    EXPECT_FALSE(store.stats().clean_shutdown);
    EXPECT_EQ(store.live_names().size(), 2u);
}

TEST(ServeStore, WarmRestartServesBitIdenticalWithoutReencoding)
{
    TempDir dir("store_warm");
    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    const sparse::CooMatrix coo =
        sparse::make_uniform_random(500, 500, 6000, 77);
    std::vector<float> x(500), y0(500);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = 0.25f * static_cast<float>(i % 17) - 1.0f;
        y0[i] = 0.5f - 0.125f * static_cast<float>(i % 5);
    }

    std::vector<float> reference;
    {
        serve::MatrixRegistry reg(cfg);
        serve::RegistryStore store(dir.path);
        const auto prepared = reg.admit("m", coo);
        store.record_admit("m", prepared->image());
        reference =
            reg.accelerator().run(*prepared, x, y0, 1.25f, -0.5f).y;
        store.record_clean_shutdown();
    }

    // Fresh process: replay the manifest, re-admit through admit_image
    // (decode only), and the served bits must match exactly.
    serve::MatrixRegistry reg(cfg);
    serve::RegistryStore store(dir.path);
    EXPECT_TRUE(store.stats().clean_shutdown);
    EXPECT_EQ(store.recover(reg), 1u);
    EXPECT_EQ(store.stats().recovered, 1u);
    EXPECT_EQ(store.stats().skipped_corrupt, 0u);
    EXPECT_EQ(reg.stats().encodes, 0u);
    EXPECT_EQ(reg.stats().admissions, 1u);

    const auto resident = reg.get("m");
    ASSERT_NE(resident, nullptr);
    const std::vector<float> replay =
        reg.accelerator().run(*resident, x, y0, 1.25f, -0.5f).y;
    ASSERT_EQ(replay.size(), reference.size());
    for (std::size_t i = 0; i < replay.size(); ++i)
        EXPECT_EQ(replay[i], reference[i]) << "y[" << i << "]";
}

TEST(ServeStore, CorruptImageIsSkippedCountedAndDropped)
{
    TempDir dir("store_corrupt");
    const core::SerpensConfig cfg = core::SerpensConfig::a16();
    {
        serve::RegistryStore store(dir.path);
        store.record_admit("good", tiny_image(4));
        store.record_admit("bad", tiny_image(5));

        // One flipped byte in the middle of bad's image: the v2 section
        // CRCs must refuse it at recovery.
        const std::string path = store.image_path("bad");
        std::string bytes = slurp(path);
        ASSERT_GT(bytes.size(), 100u);
        bytes[bytes.size() / 2] ^= 0x10;
        spit(path, bytes);
    }

    serve::MatrixRegistry reg(cfg);
    serve::RegistryStore store(dir.path);
    EXPECT_EQ(store.recover(reg), 1u);
    EXPECT_EQ(store.stats().recovered, 1u);
    EXPECT_EQ(store.stats().skipped_corrupt, 1u);
    EXPECT_NE(reg.get("good"), nullptr);
    EXPECT_EQ(reg.get("bad"), nullptr);
    // The loss is journaled: a reopen no longer expects "bad".
    EXPECT_EQ(store.live_names(), std::vector<std::string>{"good"});
    serve::RegistryStore reopened(dir.path);
    EXPECT_EQ(reopened.live_names(), std::vector<std::string>{"good"});
}

TEST(ServeStore, MissingImageIsSkippedNotFatal)
{
    TempDir dir("store_missing");
    {
        serve::RegistryStore store(dir.path);
        store.record_admit("m", tiny_image(6));
        std::remove(store.image_path("m").c_str());
    }
    serve::MatrixRegistry reg(core::SerpensConfig::a16());
    serve::RegistryStore store(dir.path);
    EXPECT_EQ(store.recover(reg), 0u);
    EXPECT_EQ(store.stats().skipped_corrupt, 1u);
    EXPECT_EQ(reg.size(), 0u);
}

TEST(ServeStore, CompactionPreservesLiveSetAndSweepsStrayImages)
{
    TempDir dir("store_compact");
    const encode::SerpensImage img = tiny_image(7);
    {
        // A 1-byte threshold forces a compaction after every append.
        serve::RegistryStore store(dir.path,
                                   /*compact_threshold_bytes=*/1);
        store.record_admit("a", img);
        store.record_admit("b", img);
        store.record_admit("a", img);
        store.record_evict("b");
        EXPECT_GE(store.stats().compactions, 4u);
        EXPECT_EQ(store.live_names(), std::vector<std::string>{"a"});

        // Plant a stray image (an orphan a crash between image publish
        // and WAL append would leave) and trigger one more compaction.
        spit(dir.path + "/images/stray.img", "junk");
        store.record_admit("c", img);
        std::ifstream stray(dir.path + "/images/stray.img");
        EXPECT_FALSE(stray.good());
    }
    // The compacted log replays to the same live set, and the log is now
    // minimal: one record per live resident.
    serve::RegistryStore store(dir.path);
    EXPECT_EQ(store.live_names(),
              (std::vector<std::string>{"a", "c"}));
    EXPECT_EQ(store.stats().wal_records, 2u);
}

// ---------------------------------------------------------------------------
// Torn-tail fuzz: the WAL must land on a valid prefix for every possible
// truncation point and every single-bit flip. The record layout is pinned
// here (8-byte frame + 1 type byte + 4 len bytes + name), so the test can
// compute which prefix each mutation must resolve to.

struct FuzzFixture {
    TempDir dir{"store_fuzz"};
    std::string manifest;             // the intact log bytes
    std::vector<std::size_t> bounds;  // byte offset where record k starts
    std::vector<std::vector<std::string>> live_after;  // after k records

    FuzzFixture()
    {
        const encode::SerpensImage img = tiny_image(8);
        serve::RegistryStore store(dir.path);
        store.record_admit("alpha", img);   // ADMIT alpha
        store.record_admit("bee", img);     // ADMIT bee
        store.record_admit("alpha", img);   // REPLACE alpha
        store.record_evict("bee");          // EVICT bee
        store.record_clean_shutdown();      // CLEAN

        manifest = slurp(store.manifest_path());
        const std::size_t rec[] = {
            record_bytes("alpha"), record_bytes("bee"),
            record_bytes("alpha"), record_bytes("bee"),
            record_bytes(""),
        };
        std::size_t off = 0;
        bounds.push_back(0);
        for (const std::size_t r : rec)
            bounds.push_back(off += r);
        EXPECT_EQ(manifest.size(), bounds.back());

        live_after = {
            {},
            {"alpha"},
            {"alpha", "bee"},
            {"bee", "alpha"},  // replace re-admits alpha as newest
            {"alpha"},
            {"alpha"},  // the clean marker changes no residency
        };
    }

    static std::size_t record_bytes(const std::string& name)
    {
        return 8 + 5 + name.size();
    }

    // The record index a byte offset falls inside.
    std::size_t record_of(std::size_t byte) const
    {
        for (std::size_t k = 0; k + 1 < bounds.size(); ++k)
            if (byte < bounds[k + 1])
                return k;
        return bounds.size() - 2;
    }

    // Replays `bytes` as a manifest and returns the live set seen.
    std::vector<std::string> replay(const std::string& bytes,
                                    std::uint64_t* torn = nullptr)
    {
        spit(dir.path + "/manifest.log", bytes);
        serve::RegistryStore store(dir.path);
        if (torn)
            *torn = store.stats().wal_torn_bytes;
        return store.live_names();
    }
};

TEST(ServeStore, TornTailFuzzEveryTruncationLandsOnTheValidPrefix)
{
    FuzzFixture fx;
    for (std::size_t cut = 0; cut <= fx.manifest.size(); ++cut) {
        // Number of records still complete after cutting at `cut`.
        std::size_t prefix = 0;
        while (prefix + 1 < fx.bounds.size() &&
               fx.bounds[prefix + 1] <= cut)
            ++prefix;
        std::uint64_t torn = 0;
        const std::vector<std::string> live =
            fx.replay(fx.manifest.substr(0, cut), &torn);
        EXPECT_EQ(live, fx.live_after[prefix]) << "cut at byte " << cut;
        EXPECT_EQ(torn, cut - fx.bounds[prefix]) << "cut at byte " << cut;
    }
}

TEST(ServeStore, TornTailFuzzEverySingleBitFlipIsDetected)
{
    FuzzFixture fx;
    for (std::size_t byte = 0; byte < fx.manifest.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = fx.manifest;
            mutated[byte] =
                static_cast<char>(mutated[byte] ^ (1u << bit));
            // The flipped record (and everything after it) must be
            // dropped; the prefix before it must survive untouched. A
            // flip is NEVER misread as a different valid record: the
            // payload is covered by CRC32 (all single-bit errors), and a
            // flip in the length frame is caught by the redundant
            // name_len cross-check.
            const std::size_t k = fx.record_of(byte);
            const std::vector<std::string> live = fx.replay(mutated);
            EXPECT_EQ(live, fx.live_after[k])
                << "flip byte " << byte << " bit " << bit;
        }
    }
}

TEST(ServeStore, TruncatesTheTornTailPhysicallyAndAppendsCleanly)
{
    TempDir dir("store_truncate");
    const encode::SerpensImage img = tiny_image(9);
    {
        serve::RegistryStore store(dir.path);
        store.record_admit("keep", img);
    }
    // Simulate a crash mid-append: half a record of garbage at the tail.
    const std::string intact = slurp(dir.path + "/manifest.log");
    spit(dir.path + "/manifest.log", intact + "\x07garbage");
    {
        serve::RegistryStore store(dir.path);
        EXPECT_EQ(store.stats().wal_torn_bytes, 8u);
        EXPECT_EQ(slurp(dir.path + "/manifest.log").size(), intact.size());
        // New appends extend the now-valid prefix.
        store.record_admit("next", img);
    }
    serve::RegistryStore store(dir.path);
    EXPECT_EQ(store.stats().wal_torn_bytes, 0u);
    EXPECT_EQ(store.live_names(),
              (std::vector<std::string>{"keep", "next"}));
}

} // namespace
} // namespace serpens
