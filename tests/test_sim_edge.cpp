// Simulator and accelerator edge cases: degenerate shapes, IEEE special
// values, minimum geometries, and the instruction-driven run path.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cpu_spmv.h"
#include "core/accelerator.h"
#include "encode/instructions.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace serpens {
namespace {

using core::Accelerator;
using core::SerpensConfig;
using sparse::CooMatrix;
using sparse::index_t;

SerpensConfig tiny_config()
{
    SerpensConfig c = SerpensConfig::a16();
    c.arch.ha_channels = 1;
    c.arch.window = 64;
    return c;
}

TEST(SimEdge, SingleElementMatrix)
{
    CooMatrix m(1, 1);
    m.add(0, 0, 3.0f);
    const Accelerator acc(tiny_config());
    const auto r = acc.run(acc.prepare(m), std::vector<float>{2.0f},
                           std::vector<float>{10.0f}, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(r.y[0], 16.0f);  // 3*2 + 10
}

TEST(SimEdge, SingleRowManyColumns)
{
    const index_t cols = 1000;
    CooMatrix m(1, cols);
    for (index_t c = 0; c < cols; ++c)
        m.add(0, c, 1.0f);
    const Accelerator acc(tiny_config());
    const auto r = acc.run(acc.prepare(m), std::vector<float>(cols, 1.0f),
                           std::vector<float>(1, 0.0f));
    EXPECT_FLOAT_EQ(r.y[0], static_cast<float>(cols));
}

TEST(SimEdge, SingleColumnManyRows)
{
    const index_t rows = 1000;
    CooMatrix m(rows, 1);
    for (index_t r = 0; r < rows; ++r)
        m.add(r, 0, static_cast<float>(r));
    const Accelerator acc(tiny_config());
    const auto result = acc.run(acc.prepare(m), std::vector<float>{2.0f},
                                std::vector<float>(rows, 0.0f));
    for (index_t r = 0; r < rows; ++r)
        EXPECT_FLOAT_EQ(result.y[r], 2.0f * static_cast<float>(r));
}

TEST(SimEdge, MinimumWindow)
{
    SerpensConfig c = tiny_config();
    c.arch.window = 16;  // the smallest legal window (one 512-bit line)
    const auto m = sparse::make_uniform_random(64, 200, 800, 3);
    const Accelerator acc(c);
    const auto prepared = acc.prepare(m);
    EXPECT_EQ(prepared.image().num_segments(), 13u);  // ceil(200/16)
    std::vector<float> x(200, 1.0f), y(64, 0.0f);
    const auto r = acc.run(prepared, x, y);
    std::vector<float> expect(y);
    baselines::spmv_csr(sparse::to_csr(m), x, expect, 1.0f, 0.0f);
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_NEAR(r.y[i], expect[i], 1e-3f);
}

TEST(SimEdge, InfinityPropagates)
{
    CooMatrix m(2, 2);
    m.add(0, 0, 1.0f);
    m.add(1, 1, 1.0f);
    const Accelerator acc(tiny_config());
    const float inf = std::numeric_limits<float>::infinity();
    const auto r = acc.run(acc.prepare(m), std::vector<float>{inf, 1.0f},
                           std::vector<float>(2, 0.0f));
    EXPECT_TRUE(std::isinf(r.y[0]));
    EXPECT_FLOAT_EQ(r.y[1], 1.0f);
}

TEST(SimEdge, NanPropagates)
{
    CooMatrix m(1, 1);
    m.add(0, 0, std::numeric_limits<float>::quiet_NaN());
    const Accelerator acc(tiny_config());
    const auto r = acc.run(acc.prepare(m), std::vector<float>{1.0f},
                           std::vector<float>{0.0f});
    EXPECT_TRUE(std::isnan(r.y[0]));
}

TEST(SimEdge, NegativeZeroValueSurvivesEncoding)
{
    CooMatrix m(1, 1);
    m.add(0, 0, -0.0f);
    const Accelerator acc(tiny_config());
    // -0.0 * 1.0 + 0.0 = 0.0; the interesting part is that encoding did not
    // corrupt the sign bit (checked via the element round-trip elsewhere);
    // here we check the arithmetic result stays well-formed.
    const auto r = acc.run(acc.prepare(m), std::vector<float>{1.0f},
                           std::vector<float>{0.0f});
    EXPECT_EQ(r.y[0], 0.0f);
}

TEST(SimEdge, EmptyMatrixScalesY)
{
    const CooMatrix m(32, 32);  // no non-zeros
    const Accelerator acc(tiny_config());
    std::vector<float> y(32, 3.0f);
    const auto r = acc.run(acc.prepare(m), std::vector<float>(32, 1.0f), y,
                           1.0f, 0.5f);
    for (float v : r.y)
        EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(SimEdge, HugeAlphaBeta)
{
    const auto m = sparse::make_diagonal(64, 1.0f);
    const Accelerator acc(tiny_config());
    const auto r = acc.run(acc.prepare(m), std::vector<float>(64, 1.0f),
                           std::vector<float>(64, 1.0f), 1e30f, -1e30f);
    for (float v : r.y)
        EXPECT_FLOAT_EQ(v, 0.0f);  // 1e30 - 1e30
}

// --- instruction-driven runs ---

TEST(SimEdge, RunProgramMatchesDirectRun)
{
    const auto m = sparse::make_uniform_random(300, 400, 4000, 7);
    const Accelerator acc(tiny_config());
    const auto prepared = acc.prepare(m);
    std::vector<float> x(400, 0.5f), y(300, 2.0f);

    const auto program = acc.compile_program(prepared, 1.5f, -0.5f);
    const auto via_program = acc.run_program(prepared, program, x, y);
    const auto direct = acc.run(prepared, x, y, 1.5f, -0.5f);
    EXPECT_EQ(via_program.y, direct.y);
    EXPECT_EQ(via_program.cycles.total_cycles(), direct.cycles.total_cycles());
}

TEST(SimEdge, RunProgramRejectsForeignProgram)
{
    const Accelerator acc(tiny_config());
    const auto m1 = acc.prepare(sparse::make_diagonal(64));
    const auto m2 = acc.prepare(sparse::make_diagonal(128));
    const auto program = acc.compile_program(m2, 1.0f, 0.0f);
    std::vector<float> x(64, 1.0f), y(64, 0.0f);
    EXPECT_THROW(acc.run_program(m1, program, x, y),
                 encode::InstructionError);
}

TEST(SimEdge, RunProgramRejectsTamperedStream)
{
    const Accelerator acc(tiny_config());
    const auto prepared = acc.prepare(sparse::make_diagonal(64));
    auto program = acc.compile_program(prepared, 1.0f, 0.0f);
    program.pop_back();  // drop HALT
    std::vector<float> x(64, 1.0f), y(64, 0.0f);
    EXPECT_THROW(acc.run_program(prepared, program, x, y),
                 encode::InstructionError);
}

// Geometry sweep: every legal HA with minimum/maximum window.
struct GeoCase {
    unsigned ha;
    unsigned window;
};

class GeometryEdge : public ::testing::TestWithParam<GeoCase> {};

TEST_P(GeometryEdge, CorrectAcrossGeometries)
{
    const GeoCase g = GetParam();
    SerpensConfig c = SerpensConfig::a16();
    c.arch.ha_channels = g.ha;
    c.arch.window = g.window;
    const auto m = sparse::make_uniform_random(500, 500, 5000, g.ha * 31 + g.window);
    const Accelerator acc(c);
    std::vector<float> x(500, 1.0f), y(500, 0.0f);
    const auto r = acc.run(acc.prepare(m), x, y);
    std::vector<float> expect(y);
    baselines::spmv_csr(sparse::to_csr(m), x, expect, 1.0f, 0.0f);
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_NEAR(r.y[i], expect[i], 1e-3f) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryEdge,
    ::testing::Values(GeoCase{1, 16}, GeoCase{1, 16384}, GeoCase{28, 16},
                      GeoCase{28, 16384}, GeoCase{5, 208}, GeoCase{16, 8192},
                      GeoCase{24, 8192}));

} // namespace
} // namespace serpens
