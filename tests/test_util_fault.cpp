// Tests for the fault-tolerance utilities under src/util: the seeded
// FaultInjector the chaos harness drives, the CRC-32 the image format's
// integrity sections use, and atomic_write_file (the --port-file
// publisher).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/fault.h"
#include "util/fs.h"

namespace serpens::util {
namespace {

std::vector<bool> decision_sequence(FaultInjector& f, const std::string& site,
                                    int probes)
{
    std::vector<bool> out;
    out.reserve(static_cast<std::size_t>(probes));
    for (int i = 0; i < probes; ++i)
        out.push_back(f.should_fire(site));
    return out;
}

TEST(FaultInjector, SameSeedReplaysTheSameFaultPattern)
{
    // The whole point of the harness: a chaos run is reproducible from its
    // seed alone.
    FaultInjector a(42);
    FaultInjector b(42);
    a.arm("net.frame.drop", 0.3);
    b.arm("net.frame.drop", 0.3);
    EXPECT_EQ(decision_sequence(a, "net.frame.drop", 500),
              decision_sequence(b, "net.frame.drop", 500));
    EXPECT_EQ(a.fired("net.frame.drop"), b.fired("net.frame.drop"));
    EXPECT_GT(a.fired("net.frame.drop"), 0u);
    EXPECT_LT(a.fired("net.frame.drop"), 500u);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultInjector a(1);
    FaultInjector b(2);
    a.arm("s", 0.5);
    b.arm("s", 0.5);
    EXPECT_NE(decision_sequence(a, "s", 200), decision_sequence(b, "s", 200));
}

TEST(FaultInjector, ProbabilityEndpoints)
{
    FaultInjector f(7);
    f.arm("never", 0.0);
    f.arm("always", 1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(f.should_fire("never"));
        EXPECT_TRUE(f.should_fire("always"));
    }
    EXPECT_EQ(f.fired("never"), 0u);
    EXPECT_EQ(f.fired("always"), 100u);
    EXPECT_EQ(f.probes("never"), 100u);
    EXPECT_EQ(f.probes("always"), 100u);
}

TEST(FaultInjector, UnarmedSiteNeverFiresButIsNotCounted)
{
    FaultInjector f(9);
    EXPECT_FALSE(f.should_fire("nobody.armed.this"));
    EXPECT_EQ(f.probes("nobody.armed.this"), 0u);
    EXPECT_EQ(f.fired("nobody.armed.this"), 0u);
    EXPECT_EQ(f.value("nobody.armed.this"), 0.0);
}

TEST(FaultInjector, MaxFiresCapsTheDamage)
{
    FaultInjector f(11);
    f.arm("s", 1.0, 0.0, /*max_fires=*/3);
    int fired = 0;
    for (int i = 0; i < 50; ++i)
        fired += f.should_fire("s") ? 1 : 0;
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(f.fired("s"), 3u);
    EXPECT_EQ(f.probes("s"), 50u);
}

TEST(FaultInjector, DisarmStopsFiringButKeepsCounters)
{
    FaultInjector f(13);
    f.arm("s", 1.0, 2.5);
    EXPECT_TRUE(f.should_fire("s"));
    f.disarm("s");
    EXPECT_FALSE(f.should_fire("s"));
    EXPECT_EQ(f.fired("s"), 1u);
    EXPECT_EQ(f.probes("s"), 2u);
}

TEST(FaultInjector, ValueRidesAlongWithTheSite)
{
    FaultInjector f(17);
    f.arm("net.frame.delay", 1.0, /*value=*/2.0);
    EXPECT_EQ(f.value("net.frame.delay"), 2.0);
}

TEST(FaultInjector, GlobalInstallAndProbeHelpers)
{
    // fault_fires/fault_value are what the instrumented production sites
    // call; with no injector installed they must be inert.
    EXPECT_EQ(fault_injector(), nullptr);
    EXPECT_FALSE(fault_fires("serve.queue_full"));
    EXPECT_EQ(fault_value("net.frame.delay"), 0.0);

    FaultInjector f(19);
    f.arm("serve.queue_full", 1.0);
    f.arm("net.frame.delay", 1.0, 3.0);
    set_fault_injector(&f);
    EXPECT_EQ(fault_injector(), &f);
    EXPECT_TRUE(fault_fires("serve.queue_full"));
    EXPECT_EQ(fault_value("net.frame.delay"), 3.0);
    set_fault_injector(nullptr);
    EXPECT_FALSE(fault_fires("serve.queue_full"));
}

TEST(Crc32, MatchesTheKnownCheckValue)
{
    // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
    const char* s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    EXPECT_EQ(crc32("x", 0), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    const std::string data =
        "The image format checksums each section incrementally.";
    const std::uint32_t whole = crc32(data.data(), data.size());
    for (std::size_t split = 0; split <= data.size(); ++split) {
        std::uint32_t c = crc32(data.data(), split);
        c = crc32(data.data() + split, data.size() - split, c);
        EXPECT_EQ(c, whole) << "split at " << split;
    }
}

TEST(Crc32, SingleBitFlipChangesTheChecksum)
{
    std::string data(256, '\0');
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<char>(i * 7 + 1);
    const std::uint32_t good = crc32(data.data(), data.size());
    for (std::size_t bit = 0; bit < data.size() * 8; bit += 13) {
        std::string bad = data;
        bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1 << (bit % 8)));
        EXPECT_NE(crc32(bad.data(), bad.size()), good) << "bit " << bit;
    }
}

std::string read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(AtomicFile, WritesAndOverwrites)
{
    const std::string path = ::testing::TempDir() + "/serpens_atomic_test";
    atomic_write_file(path, "12345\n");
    EXPECT_EQ(read_file(path), "12345\n");
    atomic_write_file(path, "6789\n");
    EXPECT_EQ(read_file(path), "6789\n");
    std::remove(path.c_str());
}

TEST(AtomicFile, LeavesNoTempSibling)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "serpens_atomic_dir";
    fs::create_directory(dir);
    const fs::path target = dir / "port";
    atomic_write_file(target.string(), "4242\n");
    std::size_t entries = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);  // just the target, no leftover temp file
    fs::remove_all(dir);
}

TEST(AtomicFile, FailureLeavesDestinationUntouched)
{
    EXPECT_THROW(
        atomic_write_file("/nonexistent-dir/serpens/port", "1\n"),
        std::runtime_error);
}

} // namespace
} // namespace serpens::util
